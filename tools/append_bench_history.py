#!/usr/bin/env python3
"""Append one benchmark run to BENCH_history.jsonl, or validate the file.

    append_bench_history.py append BENCH_table1.json BENCH_history.jsonl
    append_bench_history.py append BENCH_score.json BENCH_history.jsonl
    append_bench_history.py --check BENCH_history.jsonl

Each history line is one compact JSON object per benchmark run: the git
SHA under test, the thread count, the workload knobs, the total wall time
and a per-circuit summary.  bench_table1 records carry per-phase wall
splits; bench_score records (marked "bench": "score") carry the
scalar-vs-kernel scoring times and the headline speedup per thread width.
BENCH_table1.json / BENCH_score.json only ever hold the latest run; the
history file is what makes the perf trajectory inspectable PR over PR
(and greppable by git SHA).

Appending is the benchmark harness's job (run_benchmarks.sh); --check is
the CI gate that keeps the accumulated file parseable.
"""

import json
import sys

REQUIRED_KEYS = ("git_sha", "threads", "scale", "samples", "chips",
                 "total_seconds", "circuits")


def score_record(score):
    circuits = {}
    for c in score.get("circuits", []):
        runs = {}
        for r in c.get("runs", []):
            runs[str(r.get("threads"))] = {
                "scalar_score_s": r.get("scalar_score_s"),
                "kernel_warm_score_s": r.get("kernel_warm_score_s"),
                "speedup_scoring": r.get("speedup_scoring"),
            }
        circuits[c["name"]] = {
            "seconds": c.get("seconds"),
            "suspects": c.get("suspects"),
            "runs": runs,
        }
    return {
        "bench": "score",
        "bit_identical": score.get("bit_identical"),
        "git_sha": score.get("git_sha", "unknown"),
        "threads": score.get("threads"),
        "scale": score.get("scale"),
        "samples": score.get("samples"),
        "chips": score.get("chips"),
        "total_seconds": score.get("total_seconds"),
        "circuits": circuits,
    }


def history_record(table1):
    if table1.get("bench") == "score":
        return score_record(table1)
    circuits = {}
    for c in table1.get("circuits", []):
        ph = c.get("phases", {})
        circuits[c["name"]] = {
            "seconds": c.get("seconds"),
            "setup_s": ph.get("setup_s"),
            "calibration_s": ph.get("calibration_s"),
            "trials_s": ph.get("trials_s"),
        }
    return {
        "git_sha": table1.get("git_sha", "unknown"),
        "threads": table1.get("threads"),
        "scale": table1.get("scale"),
        "samples": table1.get("samples"),
        "chips": table1.get("chips"),
        "total_seconds": table1.get("total_seconds"),
        "circuits": circuits,
    }


def cmd_append(table1_path, history_path):
    with open(table1_path) as f:
        table1 = json.load(f)
    record = history_record(table1)
    with open(history_path, "a") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended {record['git_sha']} ({record['threads']} threads, "
          f"{record['total_seconds']:.2f}s) to {history_path}")
    return 0


def cmd_check(history_path):
    with open(history_path) as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    for lineno, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"{history_path}:{lineno}: not valid JSON: {e}",
                  file=sys.stderr)
            return 1
        missing = [k for k in REQUIRED_KEYS if k not in record]
        if missing:
            print(f"{history_path}:{lineno}: missing keys {missing}",
                  file=sys.stderr)
            return 1
    print(f"{history_path}: {len(lines)} records ok")
    return 0


def main(argv):
    if len(argv) == 3 and argv[1] == "--check":
        return cmd_check(argv[2])
    if len(argv) == 4 and argv[1] == "append":
        return cmd_append(argv[2], argv[3])
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
