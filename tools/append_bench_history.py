#!/usr/bin/env python3
"""Append one benchmark run to BENCH_history.jsonl, or validate the file.

    append_bench_history.py append BENCH_table1.json BENCH_history.jsonl
    append_bench_history.py append BENCH_score.json BENCH_history.jsonl
    append_bench_history.py --check BENCH_history.jsonl

Each history line is one compact JSON object per benchmark run: the git
SHA under test, the run_id stamped by the bench binary, the thread count,
the workload knobs, the total wall time and a per-circuit summary.
bench_table1 records carry per-phase wall splits; bench_score records
(marked "bench": "score") carry the scalar-vs-kernel scoring times and the
headline speedup per thread width.  BENCH_table1.json / BENCH_score.json
only ever hold the latest run; the history file is what makes the perf
trajectory inspectable PR over PR (and what tools/check_bench_regression.py
gates CI on).

Appending is guarded three ways:
  * the candidate record is schema-validated BEFORE anything is written;
  * malformed lines already in the history are skipped with a warning (they
    never poison an append), while --check still fails CI on them;
  * a candidate whose run_id equals the history tail's run_id is refused
    (exit 1) -- that is a stale BENCH_*.json being appended twice -- and an
    exact duplicate of any existing (git_sha, bench, threads) record is
    skipped quietly (exit 0) instead of double-appending.
"""

import json
import sys

REQUIRED_KEYS = ("git_sha", "threads", "scale", "samples", "chips",
                 "total_seconds", "circuits")
# Serve-bench records measure socket throughput, so their workload shape
# is (clients, batch) on top of the common keys; scale/samples are still
# present (they size the store under test) and validated when given.
SERVE_REQUIRED_KEYS = ("git_sha", "threads", "clients", "batch", "chips",
                       "total_seconds", "circuits",
                       "latency_p50_ms", "latency_p95_ms", "latency_p99_ms")


def required_keys(record):
    return (SERVE_REQUIRED_KEYS if record.get("bench") == "serve"
            else REQUIRED_KEYS)


def serve_record(serve):
    circuits = {}
    for c in serve.get("circuits", []):
        runs = {}
        for r in c.get("runs", []):
            runs[str(r.get("clients"))] = {
                "wall_s": r.get("wall_s"),
                "chips_per_s": r.get("chips_per_s"),
                "sheds": r.get("sheds"),
                "reconnects": r.get("reconnects"),
            }
        circuits[c["name"]] = {
            "seconds": c.get("seconds"),
            "latency_p50_ms": c.get("latency_p50_ms"),
            "latency_p95_ms": c.get("latency_p95_ms"),
            "latency_p99_ms": c.get("latency_p99_ms"),
            "runs": runs,
        }
    return {
        "bench": "serve",
        "bit_identical": serve.get("bit_identical"),
        "run_id": serve.get("run_id", ""),
        "git_sha": serve.get("git_sha", "unknown"),
        "threads": serve.get("threads"),
        "scale": serve.get("scale"),
        "samples": serve.get("samples"),
        "clients": serve.get("clients"),
        "batch": serve.get("batch"),
        "chips": serve.get("chips"),
        "total_seconds": serve.get("total_seconds"),
        "latency_p50_ms": serve.get("latency_p50_ms"),
        "latency_p95_ms": serve.get("latency_p95_ms"),
        "latency_p99_ms": serve.get("latency_p99_ms"),
        "circuits": circuits,
    }


def score_record(score):
    circuits = {}
    for c in score.get("circuits", []):
        runs = {}
        for r in c.get("runs", []):
            runs[str(r.get("threads"))] = {
                "scalar_score_s": r.get("scalar_score_s"),
                "kernel_warm_score_s": r.get("kernel_warm_score_s"),
                "speedup_scoring": r.get("speedup_scoring"),
            }
        circuits[c["name"]] = {
            "seconds": c.get("seconds"),
            "suspects": c.get("suspects"),
            "runs": runs,
        }
    return {
        "bench": "score",
        "bit_identical": score.get("bit_identical"),
        "run_id": score.get("run_id", ""),
        "git_sha": score.get("git_sha", "unknown"),
        "threads": score.get("threads"),
        "scale": score.get("scale"),
        "samples": score.get("samples"),
        "chips": score.get("chips"),
        "total_seconds": score.get("total_seconds"),
        "circuits": circuits,
    }


def history_record(table1):
    if table1.get("bench") == "serve":
        return serve_record(table1)
    if table1.get("bench") == "score":
        return score_record(table1)
    circuits = {}
    for c in table1.get("circuits", []):
        ph = c.get("phases", {})
        circuits[c["name"]] = {
            "seconds": c.get("seconds"),
            "setup_s": ph.get("setup_s"),
            "calibration_s": ph.get("calibration_s"),
            "trials_s": ph.get("trials_s"),
        }
    return {
        "run_id": table1.get("run_id", ""),
        "git_sha": table1.get("git_sha", "unknown"),
        "threads": table1.get("threads"),
        "scale": table1.get("scale"),
        "samples": table1.get("samples"),
        "chips": table1.get("chips"),
        "total_seconds": table1.get("total_seconds"),
        "circuits": circuits,
    }


def validate_record(record):
    """Schema problems as a list of strings; empty means appendable."""
    problems = []
    for key in required_keys(record):
        if key not in record or record[key] is None:
            problems.append(f"missing key {key!r}")
    if not isinstance(record.get("circuits"), dict) or not record["circuits"]:
        problems.append("circuits must be a non-empty object")
    for key in ("threads", "samples", "chips", "clients", "batch"):
        if key in record and record[key] is not None:
            if not isinstance(record[key], int) or record[key] < 0:
                problems.append(f"{key} must be a non-negative integer")
    for key in ("scale", "total_seconds",
                "latency_p50_ms", "latency_p95_ms", "latency_p99_ms"):
        if key in record and record[key] is not None:
            if not isinstance(record[key], (int, float)):
                problems.append(f"{key} must be a number")
    run_id = record.get("run_id", "")
    if run_id and (len(run_id) != 16
                   or any(ch not in "0123456789abcdef" for ch in run_id)):
        problems.append("run_id must be 16 lower-case hex digits")
    return problems


def load_history(history_path):
    """Valid records from the history; malformed lines warn, never fail."""
    records = []
    try:
        with open(history_path) as f:
            lines = f.read().splitlines()
    except FileNotFoundError:
        return records
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"warning: {history_path}:{lineno}: skipping malformed "
                  f"line ({e})", file=sys.stderr)
            continue
        if not isinstance(record, dict):
            print(f"warning: {history_path}:{lineno}: skipping non-object "
                  f"line", file=sys.stderr)
            continue
        records.append(record)
    return records


def cmd_append(artifact_path, history_path):
    with open(artifact_path) as f:
        artifact = json.load(f)
    record = history_record(artifact)
    problems = validate_record(record)
    if problems:
        for p in problems:
            print(f"error: {artifact_path}: {p}", file=sys.stderr)
        print(f"error: refusing to append invalid record to {history_path}",
              file=sys.stderr)
        return 1

    existing = load_history(history_path)
    run_id = record.get("run_id", "")
    if run_id and existing:
        tail = existing[-1]
        if tail.get("run_id", "") == run_id:
            print(f"error: {artifact_path} run_id {run_id} is already the "
                  f"tail of {history_path}; looks like a stale artifact "
                  f"being appended twice -- re-run the benchmark first",
                  file=sys.stderr)
            return 1
    for old in existing:
        if (old.get("git_sha"), old.get("bench", "table1"),
                old.get("threads")) != (record.get("git_sha"),
                                        record.get("bench", "table1"),
                                        record.get("threads")):
            continue
        if old == record or (run_id and old.get("run_id", "") == run_id):
            print(f"skipping exact duplicate of ({record.get('git_sha')}, "
                  f"{record.get('bench', 'table1')}, "
                  f"{record.get('threads')} threads); already in "
                  f"{history_path}")
            return 0

    with open(history_path, "a") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended {record['git_sha']} ({record['threads']} threads, "
          f"{record['total_seconds']:.2f}s) to {history_path}")
    return 0


def cmd_check(history_path):
    with open(history_path) as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    for lineno, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"{history_path}:{lineno}: not valid JSON: {e}",
                  file=sys.stderr)
            return 1
        missing = [k for k in required_keys(record) if k not in record]
        if missing:
            print(f"{history_path}:{lineno}: missing keys {missing}",
                  file=sys.stderr)
            return 1
    print(f"{history_path}: {len(lines)} records ok")
    return 0


def main(argv):
    if len(argv) == 3 and argv[1] == "--check":
        return cmd_check(argv[2])
    if len(argv) == 4 and argv[1] == "append":
        return cmd_append(argv[2], argv[3])
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
