#!/usr/bin/env bash
# The full pre-merge gate, runnable locally or from any CI runner:
#
#   1. tier-1 verify: Release configure + build + complete ctest suite;
#   2. sanitizer pass: smoke-labeled ctest entries under ASan+UBSan;
#   3. lint gate: sddd_lint over the embedded ISCAS catalog circuits plus
#      a dictionary audit -- any error-severity finding fails the gate;
#   4. clang-tidy profile (skipped automatically when not installed).
#
#   tools/ci.sh [-jN]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

echo "== [1/4] tier-1 build + tests =="
cmake -B build -S .
cmake --build build "$JOBS"
ctest --test-dir build --output-on-failure "$JOBS"

echo "== [2/4] smoke tests under ASan+UBSan =="
cmake -B build-san -S . -DSDDD_ASAN=ON -DSDDD_UBSAN=ON
cmake --build build-san "$JOBS"
ctest --test-dir build-san --output-on-failure -L smoke "$JOBS"

echo "== [3/4] sddd_lint on the ISCAS catalog =="
./build/tools/sddd_lint --dict --catalog c17 s27

echo "== [4/4] clang-tidy profile =="
tools/run_static_checks.sh

echo "ci.sh: all gates passed"
