#!/usr/bin/env bash
# The full pre-merge gate, runnable locally or from any CI runner:
#
#   1. tier-1 verify: Release configure + build + complete ctest suite;
#   2. sanitizer pass: smoke-labeled ctest entries under ASan+UBSan;
#   3. lint gate: sddd_lint over the embedded ISCAS catalog circuits plus
#      a dictionary audit -- any error-severity finding fails the gate;
#   4. observability smoke: diagnose an s1196-class stand-in with
#      --trace-out/--metrics-out and validate that both JSON files parse
#      and the trace actually contains dictionary-build spans; then run
#      sddd_cli explain on the same circuit and assert the top-1 per-pattern
#      phi contributions sum consistently with the reported Sim-II score,
#      every score sits inside its 95% CI, and the run_id cross-links the
#      explain report, result JSON, and manifest;
#   5. scoring-kernel smoke: re-run the same diagnose and explain with
#      --no-kernel (scalar scoring) and require the result JSON to be
#      byte-identical to the kernel run's, the explain candidates to agree
#      rank by rank and phi by phi, and the kernel-enabled run's metrics to
#      show the diag.kernel.* / dict.sig_cache.* counters actually firing;
#   6. diagnosability gate: sddd_lint --diagnosability --json on the same
#      circuit must emit a well-formed machine-readable report (ambiguity
#      groups, per-suspect coverage, coverage ratio in [0,1]); then re-run
#      the diagnose with --collapse and require the result JSON to be
#      byte-identical while diag.phi_evals strictly drops;
#   7. crash/resume smoke: SIGKILL a journaled diagnose mid-trials, resume
#      it, and require the resumed result JSON to be byte-identical to an
#      uninterrupted run's (at both 1 and 2 threads);
#   8. fault-injection smoke: SDDD_FAULTS poisons two trials; the run must
#      still exit 0 with exactly those trials quarantined in the metrics;
#   9. postmortem + ledger/report smoke: a quarantined trial must leave a
#      flight-recorder postmortem bundle whose run_id cross-links the run's
#      manifest; two identical ledgered runs must report "rank stability:
#      identical" through sddd_cli report (text and JSON);
#  10. store/serve crash-replay smoke: build a dictionary store twice
#      (byte-identical), SIGKILL `sddd_cli serve` mid-batch, restart it on
#      the same store, replay the batch, and require the socket responses
#      byte-identical to the in-process dict-query render;
#  11. store corruption smoke: SDDD_FAULTS=store.crc@... poisons one of two
#      stores at open; the server must quarantine it, report degraded
#      health, keep answering from the healthy store, and drain with
#      exit 0 on SIGTERM;
#  12. live observability smoke: serve with metrics + postmortem wired,
#      fire a concurrent dict-query batch, then assert the stats surface
#      end to end -- JSON stats carry non-zero per-phase latency
#      histograms and a trace-id-bearing slow-request ring, the
#      Prometheus rendering parses line by line with cumulative buckets,
#      SIGUSR1 dumps live stats without dropping the server, a
#      serve.store fault quarantines with a postmortem whose event key
#      matches the client's trace id, and a SIGTERM drain leaves a
#      complete metrics snapshot on disk;
#  13. perf sentry gate: the bench-history tooling self-check proves the
#      regression gate fires on an injected 2x slowdown (and passes an
#      unmodified rerun); the real BENCH_history.jsonl, when present, is
#      then checked warn-free against its own rolling baseline;
#  14. clang-tidy profile (skipped automatically when not installed).
#
#   tools/ci.sh [-jN]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

echo "== [1/14] tier-1 build + tests =="
cmake -B build -S .
cmake --build build "$JOBS"
ctest --test-dir build --output-on-failure "$JOBS"

echo "== [2/14] smoke tests under ASan+UBSan =="
cmake -B build-san -S . -DSDDD_ASAN=ON -DSDDD_UBSAN=ON
cmake --build build-san "$JOBS"
ctest --test-dir build-san --output-on-failure -L smoke "$JOBS"

echo "== [3/14] sddd_lint on the ISCAS catalog =="
./build/tools/sddd_lint --dict --catalog c17 s27

echo "== [4/14] observability smoke (trace + metrics round-trip) =="
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
./build/tools/sddd_cli synth "$OBS_DIR/s1196.bench" \
  --profile s1196 --scale 0.15 --seed 7
./build/tools/sddd_cli diagnose "$OBS_DIR/s1196.bench" \
  --chips 2 --samples 60 --threads 2 \
  --json "$OBS_DIR/result.json" --manifest-out "$OBS_DIR/manifest.json" \
  --trace-out "$OBS_DIR/trace.json" --metrics-out "$OBS_DIR/metrics.json"
python3 - "$OBS_DIR/trace.json" "$OBS_DIR/metrics.json" <<'EOF'
import json, sys
trace_path, metrics_path = sys.argv[1], sys.argv[2]
with open(trace_path) as f:
    trace = json.load(f)
events = trace["traceEvents"]
names = {e.get("name", "") for e in events}
assert any(n.startswith("dict.") for n in names), \
    f"no dict.* spans in trace (got {sorted(names)})"
with open(metrics_path) as f:
    metrics = json.load(f)
counters = metrics["counters"]
for key in ("mc.samples", "dict.columns_built", "diag.phi_evals"):
    assert counters.get(key, 0) > 0, f"counter {key} missing or zero"
print(f"obs smoke ok: {len(events)} trace events, "
      f"{len(counters)} counters")
EOF

# Explain the same experiment (same chips/samples/seed, so the manifest
# fingerprint matches the diagnose run above) and check the report's
# internal consistency end to end.
./build/tools/sddd_cli explain "$OBS_DIR/s1196.bench" \
  --chips 2 --samples 60 --threads 2 --out "$OBS_DIR/explain.json"
python3 - "$OBS_DIR/explain.json" "$OBS_DIR/result.json" \
  "$OBS_DIR/manifest.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    explain = json.load(f)
cands = explain["candidates"]
assert cands, "explain report has no candidates"
top = cands[0]
# Sim-II is Sum(phi)/|TP|: the per-pattern phi contributions of the top
# candidate must reproduce its reported score to round-off.
sim2 = next(m for m in top["methods"] if m["method"] == "Alg_sim-II")
mean_phi = top["phi_sum"] / explain["n_patterns"]
assert abs(mean_phi - sim2["score"]) < 1e-9, \
    f"phi sum/|TP| {mean_phi} != reported Sim-II score {sim2['score']}"
pattern_sum = sum(p["phi"] for p in top["patterns"])
assert abs(pattern_sum - top["phi_sum"]) < 1e-9, \
    f"per-pattern phi sum {pattern_sum} != phi_sum {top['phi_sum']}"
# Every reported score must sit inside its own 95% confidence interval.
for cand in cands:
    for m in cand["methods"]:
        lo, hi = m["ci"]
        assert lo - 1e-12 <= m["score"] <= hi + 1e-12, \
            f"score {m['score']} outside CI [{lo}, {hi}] for {m['method']}"
assert set(explain["rank_separable_at_95"]) == \
    {"Alg_sim-I", "Alg_sim-II", "Alg_sim-III", "Alg_rev"}
# The run fingerprint must cross-link all three artifacts.
with open(sys.argv[2]) as f:
    result = json.load(f)
with open(sys.argv[3]) as f:
    manifest = json.load(f)
assert explain["run_id"] == result["run_id"] == manifest["run_id"], \
    (explain["run_id"], result["run_id"], manifest["run_id"])
print(f"explain smoke ok: {len(cands)} candidates, run_id "
      f"{explain['run_id']} consistent across explain/result/manifest")
EOF

# The benchmark history (when present) must stay parseable line by line.
if [ -f BENCH_history.jsonl ]; then
  python3 tools/append_bench_history.py --check BENCH_history.jsonl
fi

echo "== [5/14] scoring-kernel smoke (scalar vs kernel, byte-identical) =="
# The step-4 runs above used the packed scoring kernel (the default).
# Re-run both with --no-kernel: use_score_kernel is excluded from the
# experiment fingerprint, so the scalar result JSON must be byte-identical
# to the kernel run's -- same run_id, same scores, same bytes.
./build/tools/sddd_cli diagnose "$OBS_DIR/s1196.bench" \
  --chips 2 --samples 60 --threads 2 --no-kernel \
  --json "$OBS_DIR/result_scalar.json"
cmp "$OBS_DIR/result.json" "$OBS_DIR/result_scalar.json"
./build/tools/sddd_cli explain "$OBS_DIR/s1196.bench" \
  --chips 2 --samples 60 --threads 2 --no-kernel \
  --out "$OBS_DIR/explain_scalar.json"
python3 - "$OBS_DIR/explain.json" "$OBS_DIR/explain_scalar.json" \
  "$OBS_DIR/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    kernel = json.load(f)
with open(sys.argv[2]) as f:
    scalar = json.load(f)
# Candidate lists must agree rank by rank, score by score, phi by phi --
# the kernel is a reimplementation of the same arithmetic, not an
# approximation of it.
kc, sc = kernel["candidates"], scalar["candidates"]
assert len(kc) == len(sc), (len(kc), len(sc))
for i, (a, b) in enumerate(zip(kc, sc)):
    assert a["arc"] == b["arc"], f"rank {i}: arc {a['arc']} != {b['arc']}"
    assert a["phi_sum"] == b["phi_sum"], f"rank {i}: phi_sum differs"
    for ma, mb in zip(a["methods"], b["methods"]):
        assert ma["score"] == mb["score"], \
            f"rank {i} {ma['method']}: {ma['score']} != {mb['score']}"
    for pa, pb in zip(a["patterns"], b["patterns"]):
        assert pa["phi"] == pb["phi"], f"rank {i}: per-pattern phi differs"
# The kernel-enabled diagnose must actually have exercised the kernel.
with open(sys.argv[3]) as f:
    counters = json.load(f)["counters"]
for key in ("diag.kernel.patterns", "diag.kernel.suspects",
            "dict.sig_cache.misses", "dict.sig_cache.bytes"):
    assert counters.get(key, 0) > 0, f"counter {key} missing or zero"
print(f"kernel smoke ok: {len(kc)} candidates identical scalar-vs-kernel, "
      f"{counters['diag.kernel.suspects']} kernel phi columns, "
      f"{counters['dict.sig_cache.misses']} cache builds")
EOF

echo "== [6/14] diagnosability gate (static analysis + suspect collapse) =="
# The machine-readable diagnosability report on the same circuit: the DIAG
# pass must produce a well-formed report whose shape downstream tooling
# can rely on (DESIGN.md section 13 schema).
./build/tools/sddd_lint --diagnosability --json "$OBS_DIR/s1196.bench" \
  > "$OBS_DIR/diag_lint.json"
python3 - "$OBS_DIR/diag_lint.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lint = json.load(f)
diag = lint["circuits"][0]["diagnosability"]
assert diag["n_arcs"] > 0 and diag["n_patterns"] > 0, diag
assert 0.0 <= diag["coverage_ratio"] <= 1.0, diag["coverage_ratio"]
assert len(diag["arc_coverage"]) == diag["n_arcs"], \
    (len(diag["arc_coverage"]), diag["n_arcs"])
groups = diag["ambiguity_groups"]
assert groups, "expected at least one ambiguity group on this circuit"
for g in groups:
    assert len(g["arcs"]) >= 2, g
    assert all(0 <= a < diag["n_arcs"] for a in g["arcs"]), g
for pair in diag["dominance"]:
    assert pair["dominated"] != pair["dominator"], pair
print(f"diagnosability gate ok: {len(groups)} ambiguity groups, "
      f"coverage {diag['coverage_ratio']:.3f}, "
      f"{len(diag['dead_arcs'])} dead arcs")
EOF

# Suspect collapse: per-pattern unsensitized suspects share one phi
# evaluation.  Like --no-kernel, --collapse is excluded from the experiment
# fingerprint because the scores are provably bit-identical -- so the
# result JSON must be byte-identical while diag.phi_evals strictly drops.
./build/tools/sddd_cli diagnose "$OBS_DIR/s1196.bench" \
  --chips 2 --samples 60 --threads 2 --collapse \
  --json "$OBS_DIR/result_collapse.json" \
  --metrics-out "$OBS_DIR/collapse_metrics.json"
cmp "$OBS_DIR/result.json" "$OBS_DIR/result_collapse.json"
python3 - "$OBS_DIR/metrics.json" "$OBS_DIR/collapse_metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    full = json.load(f)["counters"]
with open(sys.argv[2]) as f:
    collapsed = json.load(f)["counters"]
assert 0 < collapsed["diag.phi_evals"] < full["diag.phi_evals"], \
    (collapsed["diag.phi_evals"], full["diag.phi_evals"])
print(f"collapse ok: result JSON byte-identical, phi_evals "
      f"{full['diag.phi_evals']} -> {collapsed['diag.phi_evals']}")
EOF

echo "== [7/14] crash/resume smoke (SIGKILL mid-trials, byte-identical) =="
# Reference: the same experiment, uninterrupted, at two thread counts.
# The deterministic result JSON must not depend on threads or on how many
# times the run was killed and resumed.
DIAG_ARGS=("$OBS_DIR/s1196.bench" --chips 6 --samples 80)
./build/tools/sddd_cli diagnose "${DIAG_ARGS[@]}" --threads 1 \
  --json "$OBS_DIR/ref_t1.json"
./build/tools/sddd_cli diagnose "${DIAG_ARGS[@]}" --threads 2 \
  --json "$OBS_DIR/ref_t2.json"
cmp "$OBS_DIR/ref_t1.json" "$OBS_DIR/ref_t2.json"

# Kill a journaled run mid-trials.  The kill is best-effort: on a fast
# machine the run may finish first, in which case the resume degenerates to
# a pure journal replay -- still a valid byte-identity check.
./build/tools/sddd_cli diagnose "${DIAG_ARGS[@]}" --threads 2 \
  --checkpoint "$OBS_DIR/run.ckpt" &
VICTIM=$!
sleep 0.4
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true

./build/tools/sddd_cli diagnose "${DIAG_ARGS[@]}" --threads 2 \
  --checkpoint "$OBS_DIR/run.ckpt" --resume --json "$OBS_DIR/resumed.json"
cmp "$OBS_DIR/ref_t1.json" "$OBS_DIR/resumed.json"
echo "crash/resume smoke ok: resumed JSON byte-identical to reference"

echo "== [8/14] fault-injection smoke (quarantine, exit 0) =="
SDDD_FAULTS="exp.trial@1,3" ./build/tools/sddd_cli diagnose \
  "${DIAG_ARGS[@]}" --threads 2 --metrics-out "$OBS_DIR/fault_metrics.json"
python3 - "$OBS_DIR/fault_metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]
assert counters.get("fault.injected") == 2, \
    f"expected 2 injected faults, got {counters.get('fault.injected')}"
assert counters.get("trial.quarantined") == 2, \
    f"expected 2 quarantined trials, got {counters.get('trial.quarantined')}"
print("fault smoke ok: 2 faults injected, 2 trials quarantined, exit 0")
EOF

echo "== [9/14] flight-recorder postmortem + run ledger/report smoke =="
# A quarantined trial must leave a postmortem bundle behind, and the bundle
# must cross-link the SAME run_id the manifest carries (the experiment
# fingerprint), so the crash dump and the run's provenance can be joined.
SDDD_FAULTS="exp.trial@1" ./build/tools/sddd_cli diagnose \
  "${DIAG_ARGS[@]}" --threads 2 \
  --postmortem-out "$OBS_DIR/postmortem.json" \
  --manifest-out "$OBS_DIR/pm_manifest.json"
python3 - "$OBS_DIR/postmortem.json" "$OBS_DIR/pm_manifest.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    pm = json.load(f)
with open(sys.argv[2]) as f:
    manifest = json.load(f)
assert pm["reason"] == "trial_quarantined", pm["reason"]
assert pm["run_id"] == manifest["run_id"], \
    (pm["run_id"], manifest["run_id"])
kinds = {e["kind"] for e in pm["events"]}
assert "trial.error" in kinds, f"no trial.error event (got {sorted(kinds)})"
assert "trial.begin" in kinds, f"no trial.begin event (got {sorted(kinds)})"
assert pm["events_recorded"] > 0
assert "counters" in pm["metrics"], "postmortem missing metrics snapshot"
print(f"postmortem smoke ok: {len(pm['events'])} events, run_id "
      f"{pm['run_id']} cross-links the manifest")
EOF

# Two identical runs appended to one ledger: the diff must verify the
# result hashes match ("rank stability: identical") in both renderings.
./build/tools/sddd_cli diagnose "${DIAG_ARGS[@]}" --threads 2 \
  --ledger "$OBS_DIR/ledger.jsonl" --json "$OBS_DIR/led_a.json"
./build/tools/sddd_cli diagnose "${DIAG_ARGS[@]}" --threads 2 \
  --ledger "$OBS_DIR/ledger.jsonl" --json "$OBS_DIR/led_b.json"
./build/tools/sddd_cli report --ledger "$OBS_DIR/ledger.jsonl" --last 2 \
  | grep -q "rank stability: identical"
./build/tools/sddd_cli report --ledger "$OBS_DIR/ledger.jsonl" --last 2 \
  --json "$OBS_DIR/report_diff.json" > /dev/null
python3 - "$OBS_DIR/report_diff.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    diff = json.load(f)
assert diff["rank_stability"] == "identical", diff["rank_stability"]
assert diff["run_a"] == diff["run_b"], (diff["run_a"], diff["run_b"])
assert diff["phases"] and diff["counters"], "empty diff tables"
print(f"ledger/report smoke ok: runs {diff['run_a']} vs {diff['run_b']}, "
      f"{len(diff['counters'])} counters compared")
EOF

echo "== [10/14] store/serve crash-replay smoke (SIGKILL, byte-identical) =="
CLI=./build/tools/sddd_cli
# Build the store twice: a store build is a pure function of (netlist,
# config), so the two files must be byte-identical.
"$CLI" dict build "$OBS_DIR/s1196.bench" "$OBS_DIR/s1196.dict" --samples 60
"$CLI" dict build "$OBS_DIR/s1196.bench" "$OBS_DIR/s1196b.dict" --samples 60
cmp "$OBS_DIR/s1196.dict" "$OBS_DIR/s1196b.dict"
"$CLI" dict verify "$OBS_DIR/s1196.dict"

# Draw a batch of failing chips and render the in-process reference
# response -- the bytes every socket replay below must reproduce exactly.
"$CLI" dict chips "$OBS_DIR/s1196.bench" "$OBS_DIR/s1196.dict" \
  --chips 4 --out "$OBS_DIR/serve_req.json"
"$CLI" dict query "$OBS_DIR/s1196.dict" --request "$OBS_DIR/serve_req.json" \
  --out "$OBS_DIR/serve_ref.json"

wait_ready() { # log_file
  for _ in $(seq 1 100); do
    grep -q "serve: ready" "$1" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "error: server never became ready ($1)" >&2
  cat "$1" >&2
  return 1
}

# First server: answer the batch once, then SIGKILL it mid-request (the
# --hold-s stall guarantees a request is in flight when the kill lands).
"$CLI" serve "$OBS_DIR/s1196.dict" --socket "$OBS_DIR/serve.sock" \
  --hold-s 0.5 > "$OBS_DIR/serve1.log" 2>&1 &
SERVE_PID=$!
wait_ready "$OBS_DIR/serve1.log"
"$CLI" dict query - --request "$OBS_DIR/serve_req.json" \
  --socket "$OBS_DIR/serve.sock" --out "$OBS_DIR/serve_resp1.json"
cmp "$OBS_DIR/serve_ref.json" "$OBS_DIR/serve_resp1.json"
"$CLI" dict query - --request "$OBS_DIR/serve_req.json" \
  --socket "$OBS_DIR/serve.sock" --out "$OBS_DIR/serve_orphan.json" \
  > /dev/null 2>&1 &
KILLED_CLIENT=$!
sleep 0.2
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
wait "$KILLED_CLIENT" 2>/dev/null || true

# Restart on the same store file and replay the same batch: the mmap'd
# store survived the SIGKILL untouched and diagnosis is idempotent, so the
# replayed response must be byte-identical to the in-process reference.
SDDD_LEDGER="$OBS_DIR/serve_ledger.jsonl" \
  "$CLI" serve "$OBS_DIR/s1196.dict" --socket "$OBS_DIR/serve.sock" \
  > "$OBS_DIR/serve2.log" 2>&1 &
SERVE_PID=$!
wait_ready "$OBS_DIR/serve2.log"
"$CLI" dict query - --request "$OBS_DIR/serve_req.json" \
  --socket "$OBS_DIR/serve.sock" --out "$OBS_DIR/serve_resp2.json"
cmp "$OBS_DIR/serve_ref.json" "$OBS_DIR/serve_resp2.json"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q '"tool":"serve"' "$OBS_DIR/serve_ledger.jsonl"
echo "serve crash-replay ok: responses byte-identical across SIGKILL+restart"

echo "== [11/14] store corruption smoke (quarantine + degraded health) =="
# A second store from a different circuit, then poison the FIRST store's
# header checksum verify at open (store.crc ordinal 0).  The server must
# come up degraded, keep serving the healthy store, and drain with exit 0.
./build/tools/sddd_cli synth "$OBS_DIR/alt.bench" \
  --inputs 10 --outputs 6 --gates 60 --depth 8 --seed 3
"$CLI" dict build "$OBS_DIR/alt.bench" "$OBS_DIR/alt.dict" --samples 60
"$CLI" dict chips "$OBS_DIR/alt.bench" "$OBS_DIR/alt.dict" \
  --chips 2 --out "$OBS_DIR/alt_req.json"
"$CLI" dict query "$OBS_DIR/alt.dict" --request "$OBS_DIR/alt_req.json" \
  --out "$OBS_DIR/alt_ref.json"
printf '{"op":"health"}' > "$OBS_DIR/health_req.json"

SDDD_FAULTS="store.crc@0" \
  "$CLI" serve "$OBS_DIR/s1196.dict" "$OBS_DIR/alt.dict" \
  --socket "$OBS_DIR/serve.sock" > "$OBS_DIR/serve3.log" 2>&1 &
SERVE_PID=$!
wait_ready "$OBS_DIR/serve3.log"
grep -q "quarantined=1" "$OBS_DIR/serve3.log"
"$CLI" dict query - --request "$OBS_DIR/health_req.json" \
  --socket "$OBS_DIR/serve.sock" --out "$OBS_DIR/health.json"
python3 - "$OBS_DIR/health.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    health = json.load(f)
assert health["ok"] and health["degraded"], health
states = {s["path"].rsplit("/", 1)[-1]: s["state"] for s in health["stores"]}
assert states["s1196.dict"] == "quarantined", states
assert states["alt.dict"] == "serving", states
print(f"health ok: degraded=true, {states}")
PYEOF
"$CLI" dict query - --request "$OBS_DIR/alt_req.json" \
  --socket "$OBS_DIR/serve.sock" --out "$OBS_DIR/alt_resp.json"
cmp "$OBS_DIR/alt_ref.json" "$OBS_DIR/alt_resp.json"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "corruption smoke ok: quarantined store isolated, healthy store served, exit 0"

echo "== [12/14] live observability smoke (stats, tracing, drain flush) =="
# A server with the full observability surface wired: concurrent clients,
# then the stats op in both renderings, a SIGUSR1 live dump, and a
# SIGTERM drain that must leave a complete metrics snapshot behind.
SDDD_METRICS="$OBS_DIR/serve_metrics.json" \
  "$CLI" serve "$OBS_DIR/s1196.dict" --socket "$OBS_DIR/serve.sock" \
  > "$OBS_DIR/serve4.log" 2>&1 &
SERVE_PID=$!
wait_ready "$OBS_DIR/serve4.log"
CLIENT_PIDS=()
for i in 1 2 3; do
  "$CLI" dict query - --request "$OBS_DIR/serve_req.json" \
    --socket "$OBS_DIR/serve.sock" --out "$OBS_DIR/obs_resp_$i.json" \
    > /dev/null 2>&1 &
  CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do wait "$pid"; done
for i in 1 2 3; do
  cmp "$OBS_DIR/serve_ref.json" "$OBS_DIR/obs_resp_$i.json"
done

./build/tools/sddd_cli stats --socket "$OBS_DIR/serve.sock" --json \
  > "$OBS_DIR/stats.json"
./build/tools/sddd_cli stats --socket "$OBS_DIR/serve.sock" --prom \
  > "$OBS_DIR/stats.prom"
python3 - "$OBS_DIR/stats.json" "$OBS_DIR/stats.prom" <<'EOF'
import json, re, sys
with open(sys.argv[1]) as f:
    stats = json.load(f)
assert stats["ok"] and stats["op"] == "stats", stats
assert stats["uptime_s"] > 0 and not stats["draining"], stats
win = stats["window"]
hists = win["histograms"]
# Every request phase was measured: the rolling histograms are non-empty
# and internally consistent (bucket counts sum to the total).
for phase in ("parse_us", "queue_us", "score_us", "render_us", "write_us"):
    h = hists[f"serve.phase.{phase}"]
    assert h["total"] >= 3, f"serve.phase.{phase} total {h['total']}"
    assert sum(h["counts"]) == h["total"], f"serve.phase.{phase} counts"
    assert len(h["counts"]) == len(h["bounds"]) + 1
req = hists["serve.request_us"]
assert req["total"] >= 3 and req["p50"] > 0 and req["p99"] >= req["p50"]
assert win["counters"]["serve.served"] >= 3
assert win["counters"]["serve.requests"] >= 3
assert stats["counters"]["serve.served"] >= 3, "cumulative family missing"
# The slow ring carries the slowest requests, slowest first, each with a
# well-formed trace id and the full phase breakdown.
slow = stats["slow"]
assert slow, "slow-request ring is empty"
totals = [s["total_us"] for s in slow]
assert totals == sorted(totals, reverse=True), totals
for s in slow:
    assert re.fullmatch(r"[A-Za-z0-9._-]{1,64}", s["trace_id"]), s
    assert set(s["phases"]) == {"parse_us", "queue_us", "score_us",
                                "render_us", "write_us"}, s["phases"]
# Prometheus rendering: every line is a comment or `name[{labels}] value`
# with a parseable value; the phase histograms expose CUMULATIVE buckets
# whose +Inf count equals _count.
name_re = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*(\{[^{}]*\})?")
buckets, bucket_count = [], None
with open(sys.argv[2]) as f:
    prom = f.read().splitlines()
assert prom, "empty Prometheus exposition"
for line in prom:
    if not line or line.startswith("#"):
        continue
    name, _, value = line.rpartition(" ")
    assert name_re.fullmatch(name), f"bad series name: {line!r}"
    float(value)  # must parse (raises on garbage)
    if name.startswith('sddd_win_serve_phase_parse_us_bucket{'):
        buckets.append(float(value))
    if name == "sddd_win_serve_phase_parse_us_count":
        bucket_count = float(value)
assert buckets == sorted(buckets), f"buckets not cumulative: {buckets}"
assert bucket_count is not None and buckets[-1] == bucket_count
assert any(l.startswith("sddd_win_serve_served") for l in prom), prom
assert any(l.startswith("# TYPE sddd_") for l in prom)
print(f"stats ok: {req['total']} requests windowed, p50 {req['p50']:.0f}us, "
      f"{len(slow)} slow entries, {len(prom)} Prometheus lines")
EOF

# SIGUSR1: the server prints a live stats snapshot and keeps serving.
kill -USR1 "$SERVE_PID"
for _ in $(seq 1 50); do
  grep -q '"op":"stats"' "$OBS_DIR/serve4.log" && break
  sleep 0.1
done
grep -q '"op":"stats"' "$OBS_DIR/serve4.log"
"$CLI" dict query - --request "$OBS_DIR/serve_req.json" \
  --socket "$OBS_DIR/serve.sock" --out "$OBS_DIR/obs_resp_after.json"
cmp "$OBS_DIR/serve_ref.json" "$OBS_DIR/obs_resp_after.json"

# SIGTERM drain: the metrics snapshot must be flushed by the drain path
# itself (complete JSON on disk the moment the process exits).
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
python3 - "$OBS_DIR/serve_metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    metrics = json.load(f)
counters = metrics["counters"]
assert counters.get("serve.requests", 0) >= 4, counters.get("serve.requests")
assert counters.get("serve.served", 0) >= 4, counters.get("serve.served")
assert "serve.request_us" in metrics["histograms"], "no latency histogram"
print(f"drain flush ok: {counters['serve.requests']} requests in the "
      f"flushed snapshot")
EOF

# serve.store fault: the first diagnose quarantines mid-flight; the
# postmortem bundle must carry the offending request's trace id (the
# serve.request event key is the parsed canonical id).
SDDD_FAULTS="serve.store@0" SDDD_POSTMORTEM="$OBS_DIR/quar_pm.json" \
  "$CLI" serve "$OBS_DIR/s1196.dict" --socket "$OBS_DIR/serve.sock" \
  > "$OBS_DIR/serve5.log" 2>&1 &
SERVE_PID=$!
wait_ready "$OBS_DIR/serve5.log"
python3 - "$OBS_DIR/serve.sock" "$OBS_DIR/serve_req.json" <<'EOF'
import json, socket, struct, sys
with open(sys.argv[2]) as f:
    req = json.load(f)
req["trace_id"] = "deadbeefcafe0001"
payload = json.dumps(req, separators=(",", ":")).encode()
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(struct.pack(">I", len(payload)) + payload)
def read_exact(n):
    buf = b""
    while len(buf) < n:
        chunk = s.recv(n - len(buf))
        assert chunk, "server closed mid-frame"
        buf += chunk
    return buf
(length,) = struct.unpack(">I", read_exact(4))
resp = json.loads(read_exact(length))
assert resp["trace_id"] == "deadbeefcafe0001", resp.get("trace_id")
assert resp["payload"]["error"] == "store_quarantined", resp["payload"]
print("quarantine response ok: trace id echoed through the envelope")
EOF
# Read the bundle BEFORE draining: the drain path writes its own
# postmortem over the same file.
python3 - "$OBS_DIR/quar_pm.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    pm = json.load(f)
assert pm["reason"] == "serve.quarantine", pm["reason"]
events = [e for e in pm["events"]
          if e["kind"] == "serve.request" and e.get("detail") == "quarantine"]
assert events, f"no quarantine serve.request event in {pm['reason']}"
want = int("deadbeefcafe0001", 16)
assert any(e["key"] == want for e in events), \
    [hex(e["key"]) for e in events]
print(f"quarantine postmortem ok: event key {hex(want)} matches the "
      f"client trace id")
EOF
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
echo "live observability smoke ok"

echo "== [13/14] perf sentry gate (must fire on injected slowdown) =="
# Deterministic proof on a synthetic history: the sentry passes a healthy
# run and FAILS the same run under --inject-slowdown 2.0.
python3 tools/selfcheck_bench_tools.py "$OBS_DIR"
# Then the real history, when present: fresh entries must sit within the
# rolling baseline (new workload shapes are skipped, not failed).
if [ -f BENCH_history.jsonl ]; then
  python3 tools/check_bench_regression.py --history BENCH_history.jsonl \
    --last 3
fi

echo "== [14/14] clang-tidy profile =="
tools/run_static_checks.sh

echo "ci.sh: all gates passed"
