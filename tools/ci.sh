#!/usr/bin/env bash
# The full pre-merge gate, runnable locally or from any CI runner:
#
#   1. tier-1 verify: Release configure + build + complete ctest suite;
#   2. sanitizer pass: smoke-labeled ctest entries under ASan+UBSan;
#   3. lint gate: sddd_lint over the embedded ISCAS catalog circuits plus
#      a dictionary audit -- any error-severity finding fails the gate;
#   4. observability smoke: diagnose an s1196-class stand-in with
#      --trace-out/--metrics-out and validate that both JSON files parse
#      and the trace actually contains dictionary-build spans;
#   5. clang-tidy profile (skipped automatically when not installed).
#
#   tools/ci.sh [-jN]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:--j$(nproc)}"

echo "== [1/5] tier-1 build + tests =="
cmake -B build -S .
cmake --build build "$JOBS"
ctest --test-dir build --output-on-failure "$JOBS"

echo "== [2/5] smoke tests under ASan+UBSan =="
cmake -B build-san -S . -DSDDD_ASAN=ON -DSDDD_UBSAN=ON
cmake --build build-san "$JOBS"
ctest --test-dir build-san --output-on-failure -L smoke "$JOBS"

echo "== [3/5] sddd_lint on the ISCAS catalog =="
./build/tools/sddd_lint --dict --catalog c17 s27

echo "== [4/5] observability smoke (trace + metrics round-trip) =="
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
./build/tools/sddd_cli synth "$OBS_DIR/s1196.bench" \
  --profile s1196 --scale 0.15 --seed 7
./build/tools/sddd_cli diagnose "$OBS_DIR/s1196.bench" \
  --chips 2 --samples 60 --threads 2 \
  --trace-out "$OBS_DIR/trace.json" --metrics-out "$OBS_DIR/metrics.json"
python3 - "$OBS_DIR/trace.json" "$OBS_DIR/metrics.json" <<'EOF'
import json, sys
trace_path, metrics_path = sys.argv[1], sys.argv[2]
with open(trace_path) as f:
    trace = json.load(f)
events = trace["traceEvents"]
names = {e.get("name", "") for e in events}
assert any(n.startswith("dict.") for n in names), \
    f"no dict.* spans in trace (got {sorted(names)})"
with open(metrics_path) as f:
    metrics = json.load(f)
counters = metrics["counters"]
for key in ("mc.samples", "dict.columns_built", "diag.phi_evals"):
    assert counters.get(key, 0) > 0, f"counter {key} missing or zero"
print(f"obs smoke ok: {len(events)} trace events, "
      f"{len(counters)} counters")
EOF

echo "== [5/5] clang-tidy profile =="
tools/run_static_checks.sh

echo "ci.sh: all gates passed"
