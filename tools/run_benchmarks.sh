#!/usr/bin/env bash
# run_benchmarks.sh - Build the Release tree and record wall-clock timings
# for the two hot benchmarks at 1 thread and at N threads.
#
#   tools/run_benchmarks.sh [N_THREADS] [BUILD_DIR]
#
#   N_THREADS  parallel width for the second run (default: nproc)
#   BUILD_DIR  cmake build tree (default: build-bench)
#
# Outputs:
#   BENCH_table1.json        (repo root, tracked) - written by bench_table1
#                            from the N-thread run; the 1-thread run is kept
#                            next to it as BENCH_table1.serial.json so the
#                            speedup is inspectable from the two files.
#   BENCH_table1.trace.json  Chrome trace of the N-thread run (open in
#                            Perfetto; see DESIGN.md section 9).
#   BENCH_score.json         scalar vs packed-kernel scoring throughput at
#                            1 and N threads (bench_score; the run fails
#                            unless kernel results are bit-identical to the
#                            scalar reference).
#   BENCH_serve.json         diagnosis-server throughput over the unix
#                            socket at 1 and N concurrent clients
#                            (bench_serve; fails unless every socket
#                            response is byte-identical to the in-process
#                            render of the same batch).
#   bench_dictionary console output for both widths.
#
# A failing bench run fails the script before any JSON is interpreted: the
# stale outputs are removed up front, so a crash can never leave the
# previous run's numbers in place looking current.
#
# The diagnosis results themselves are identical at every width (see
# DESIGN.md "Parallel execution"); only the timings differ.
set -euo pipefail

cd "$(dirname "$0")/.."

N_THREADS="${1:-$(nproc)}"
BUILD_DIR="${2:-build-bench}"
# Stamp the JSON records with the commit under test so the perf trajectory
# in BENCH_table1.json stays attributable PR over PR.
GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
# Every bench invocation also appends one checksummed record to the run
# ledger (phase walls, counter snapshot, peak RSS, run_id) so any two runs
# can be diffed afterwards with `sddd_cli report`.  Gitignored; override
# with SDDD_LEDGER=path, disable with SDDD_LEDGER=0.
export SDDD_LEDGER="${SDDD_LEDGER:-BENCH_ledger.jsonl}"

echo "== configure + build (Release) =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_table1 \
  bench_dictionary bench_score bench_serve

# No stale outputs: if a bench binary dies below, these files are gone, not
# silently left over from the previous run.
rm -f BENCH_table1.json BENCH_table1.serial.json BENCH_table1.trace.json \
  BENCH_score.json BENCH_serve.json

run_or_die() {
  local label="$1"
  shift
  if ! "$@"; then
    echo "error: $label exited non-zero; benchmark JSON discarded" >&2
    exit 1
  fi
}

echo
echo "== bench_dictionary, 1 thread =="
run_or_die "bench_dictionary (1 thread)" \
  "$BUILD_DIR/bench/bench_dictionary" --threads 1 \
  --benchmark_min_time=0.2 --benchmark_filter='DictionaryBuild'

echo
echo "== bench_dictionary, $N_THREADS threads =="
run_or_die "bench_dictionary ($N_THREADS threads)" \
  "$BUILD_DIR/bench/bench_dictionary" --threads "$N_THREADS" \
  --benchmark_min_time=0.2 --benchmark_filter='DictionaryBuild'

echo
echo "== bench_score (scalar vs packed kernel, 1 and $N_THREADS threads) =="
# bench_score sweeps {1, N} threads internally and exits non-zero if any
# kernel result diverges from the scalar reference by even one bit.
run_or_die "bench_score" \
  "$BUILD_DIR/bench/bench_score" --threads "$N_THREADS" --chips 6 \
  --git-sha "$GIT_SHA" --json BENCH_score.json

echo
echo "== bench_serve (socket throughput, 1 and $N_THREADS clients) =="
# bench_serve boots the diagnosis server in-process, replays one batch
# from 1 and N concurrent clients, and exits non-zero if any response
# diverges from the offline dict-query bytes.
run_or_die "bench_serve" \
  "$BUILD_DIR/bench/bench_serve" --clients "$N_THREADS" \
  --git-sha "$GIT_SHA" --json BENCH_serve.json

echo
echo "== bench_table1, 1 thread =="
run_or_die "bench_table1 (1 thread)" \
  "$BUILD_DIR/bench/bench_table1" --threads 1 --scale 0.35 --samples 120 \
  --chips 8 --git-sha "$GIT_SHA" --json BENCH_table1.serial.json

echo
echo "== bench_table1, $N_THREADS threads =="
run_or_die "bench_table1 ($N_THREADS threads)" \
  "$BUILD_DIR/bench/bench_table1" --threads "$N_THREADS" --scale 0.35 \
  --samples 120 --chips 8 --git-sha "$GIT_SHA" --json BENCH_table1.json \
  --trace-out BENCH_table1.trace.json

# Accumulate the run into the append-only history (BENCH_table1.json only
# ever shows the latest run; the history keeps the trajectory).  Both
# widths are recorded so serial-vs-parallel regressions are visible too.
python3 tools/append_bench_history.py append \
  BENCH_table1.serial.json BENCH_history.jsonl
python3 tools/append_bench_history.py append \
  BENCH_table1.json BENCH_history.jsonl
python3 tools/append_bench_history.py append \
  BENCH_score.json BENCH_history.jsonl
python3 tools/append_bench_history.py append \
  BENCH_serve.json BENCH_history.jsonl

# Warn-only perf check against the rolling baseline: the developer sees a
# regression immediately, but only ci.sh turns the sentry into a hard gate.
echo
echo "== perf sentry (warn-only; ci.sh enforces) =="
python3 tools/check_bench_regression.py --history BENCH_history.jsonl \
  --last 3 ||
  echo "warning: perf sentry flagged a regression (see above)" >&2

echo
serial=$(grep -o '"total_seconds": *[0-9.]*' BENCH_table1.serial.json |
  grep -o '[0-9.]*')
parallel=$(grep -o '"total_seconds": *[0-9.]*' BENCH_table1.json |
  grep -o '[0-9.]*')
echo "table1 wall: ${serial}s @1 thread -> ${parallel}s @${N_THREADS} threads"
awk -v s="$serial" -v p="$parallel" \
  'BEGIN { if (p > 0) printf "speedup: %.2fx\n", s / p }'
kernel_speedup=$(grep -o '"speedup_scoring": *[0-9.]*' BENCH_score.json |
  tail -1 | grep -o '[0-9.]*$')
echo "scoring kernel speedup (warm cache, ${N_THREADS} threads):" \
  "${kernel_speedup}x"
serve_rate=$(grep -o '"chips_per_s": *[0-9.]*' BENCH_serve.json |
  tail -1 | grep -o '[0-9.]*$')
echo "serve throughput (${N_THREADS} clients): ${serve_rate} chips/s"
