// sddd_lint - Rule-based static verification of netlists, statistical
// timing models and probabilistic fault dictionaries.
//
//   sddd_lint [options] <netlist file | --catalog NAME> ...
//
//   --json          emit the report(s) as JSON on stdout
//   --dict          also build a small probabilistic dictionary for each
//                   circuit and run the dictionary rule pack (slower)
//   --diagnosability  run the DIAG static-diagnosability rules on each
//                   circuit's scan core and (with --json) emit the
//                   machine-readable diagnosability report: ambiguity
//                   groups, per-suspect coverage, dead arcs, redundant
//                   patterns, coverage ratio (DESIGN.md section 13)
//   --coverage-threshold R  DIAG006 warns below this coverage (0.9)
//   --catalog       subsequent names are catalog circuits instead of files:
//                   c17 / s27 (embedded) or a Table I profile stand-in;
//                   "all" = every Table I circuit
//   --scale S       stand-in synthesis scale for catalog circuits (0.25)
//   --samples N     Monte-Carlo samples for --dict (120)
//   --patterns N    test patterns for --dict (6)
//   --suspects N    suspect signatures audited under --dict (12)
//   --seed N        seed for stand-ins / --dict sampling (2003)
//   --threads N     rule fan-out width (0 = all hardware threads)
//   --list          print the rule table (id, severity, description)
//
// Exit code: 0 = no error-severity findings, 1 = error findings present,
// 2 = usage or load failure.  Netlist format by extension (.bench /
// Verilog), matching sddd_cli.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analysis_graph.h"
#include "analysis/analyzer.h"
#include "analysis/pass.h"
#include "atpg/pdf_atpg.h"
#include "diagnosis/dictionary.h"
#include "logicsim/bitsim.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "netlist/scan.h"
#include "netlist/verilog_io.h"
#include "runtime/parallel_for.h"
#include "stats/rng.h"
#include "timing/celllib.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

using namespace sddd;

namespace {

struct LintOptions {
  bool json = false;
  bool dict = false;
  bool diagnosability = false;
  double coverage_threshold = 0.9;
  double scale = 0.25;
  std::size_t samples = 120;
  std::size_t patterns = 6;
  std::size_t suspects = 12;
  std::uint64_t seed = 2003;
  double ci_halfwidth = 0.1;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: sddd_lint [options] <netlist file | --catalog NAME> ...\n"
      "  --json       JSON report on stdout\n"
      "  --dict       also audit a small probabilistic dictionary\n"
      "  --diagnosability  run the DIAG rules (static sensitization) on the\n"
      "               scan core; with --json, also emit the diagnosability\n"
      "               report (ambiguity groups, coverage, dead arcs)\n"
      "  --coverage-threshold R  DIAG006 threshold (default 0.9)\n"
      "  --catalog    following names are catalog circuits\n"
      "               (c17 / s27 / a Table I profile / all)\n"
      "  --scale S    stand-in scale (default 0.25)\n"
      "  --samples N  Monte-Carlo samples for --dict (default 120)\n"
      "  --patterns N patterns for --dict (default 6)\n"
      "  --suspects N signatures audited under --dict (default 12)\n"
      "  --ci-halfwidth H  target worst-case 95%% confidence halfwidth per\n"
      "               dictionary entry; DICT006 warns when --samples cannot\n"
      "               deliver it (default 0.1)\n"
      "  --seed N     stand-in / sampling seed (default 2003)\n"
      "  --threads N  rule fan-out width\n"
      "  --list       print the rule table and exit\n"
      "exit: 0 clean, 1 error findings, 2 usage/load failure\n");
}

netlist::Netlist load_target(const std::string& target, bool is_catalog,
                             const LintOptions& opt) {
  if (!is_catalog) {
    const std::filesystem::path path(target);
    return path.extension() == ".bench" ? netlist::parse_bench_file(path)
                                        : netlist::parse_verilog_file(path);
  }
  if (target == "c17") {
    return netlist::parse_bench_string(netlist::c17_bench_text(), "c17");
  }
  if (target == "s27") {
    return netlist::parse_bench_string(netlist::s27_bench_text(), "s27");
  }
  const auto* profile = netlist::find_profile(target);
  if (profile == nullptr) {
    throw std::runtime_error("unknown catalog circuit: " + target);
  }
  return netlist::make_standin(*profile, opt.scale, opt.seed);
}

/// Builds the dictionary subject: M_crt over all patterns plus signature
/// matrices for `opt.suspects` evenly spaced arcs.
analysis::DictionarySubject build_dictionary_subject(
    const netlist::Netlist& nl, const LintOptions& opt) {
  const netlist::Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, opt.samples, 0.03, opt.seed);
  const logicsim::BitSimulator logic_sim(nl, lev);
  const timing::DynamicTimingSimulator sim(field, lev);
  const defect::DefectSizeModel size_model =
      defect::DefectSizeModel::paper_default(model.mean_cell_delay(),
                                             opt.seed + 1);

  stats::Rng rng(opt.seed + 2);
  std::vector<logicsim::PatternPair> patterns;
  for (std::size_t j = 0; j < opt.patterns; ++j) {
    patterns.push_back(atpg::random_pattern_pair(nl.inputs().size(), rng));
  }
  // clk at the 0.9 quantile of the induced delays, the informative regime
  // (cf. the diagnosis test fixture).
  stats::SampleVector delta(field.sample_count(), 0.0);
  for (const auto& p : patterns) {
    const paths::TransitionGraph tg(logic_sim, lev, p);
    delta.max_with(sim.induced_delay(tg, sim.simulate(tg)));
  }
  const double clk = delta.quantile(0.9);

  const diagnosis::FaultDictionary dict(sim, logic_sim, lev, patterns, clk);
  analysis::DictionarySubject subject;
  subject.n_outputs = nl.outputs().size();
  subject.n_patterns = patterns.size();
  subject.m_crt = dict.m_matrix();
  subject.mc_samples = dict.sample_count();
  subject.target_ci_halfwidth = opt.ci_halfwidth;

  const std::size_t n_arcs = nl.arc_count();
  const std::size_t n_suspects = std::min(opt.suspects, n_arcs);
  const std::size_t stride = n_suspects > 0 ? n_arcs / n_suspects : 1;
  for (std::size_t s = 0; s < n_suspects; ++s) {
    const auto arc = static_cast<netlist::ArcId>(s * stride);
    analysis::DictionarySubject::Signature sig;
    sig.label = "arc " + std::to_string(arc);
    sig.s_crt.assign(subject.n_outputs,
                     std::vector<double>(patterns.size(), 0.0));
    for (std::size_t j = 0; j < patterns.size(); ++j) {
      const auto col = dict.slice(j).signature_column(arc, size_model);
      for (std::size_t i = 0; i < col.size(); ++i) sig.s_crt[i][j] = col[i];
    }
    subject.signatures.push_back(std::move(sig));
  }
  return subject;
}

/// Owns everything a DiagnosabilitySubject points at: the subject holds
/// const pointers, so the netlist/levelization/simulator/model must
/// outlive the analyzer run.
struct DiagnosabilityBundle {
  netlist::Netlist core;
  std::unique_ptr<netlist::Levelization> lev;
  timing::StatisticalCellLibrary lib;
  std::unique_ptr<timing::ArcDelayModel> model;
  std::unique_ptr<logicsim::BitSimulator> logic_sim;
  analysis::DiagnosabilitySubject subject;
};

DiagnosabilityBundle build_diagnosability_bundle(const netlist::Netlist& nl,
                                                 const LintOptions& opt) {
  DiagnosabilityBundle b;
  b.core = nl.dff_count() > 0 ? netlist::full_scan_transform(nl) : nl;
  b.lev = std::make_unique<netlist::Levelization>(b.core);
  b.model = std::make_unique<timing::ArcDelayModel>(b.core, b.lib);
  b.logic_sim = std::make_unique<logicsim::BitSimulator>(b.core, *b.lev);

  // Same pattern source as the --dict audit, so both rule families judge
  // one pattern set and DICT005 findings can cross-link to DIAG001 groups.
  stats::Rng rng(opt.seed + 2);
  b.subject.netlist = &b.core;
  b.subject.lev = b.lev.get();
  b.subject.logic_sim = b.logic_sim.get();
  b.subject.delay_model = b.model.get();
  for (std::size_t j = 0; j < opt.patterns; ++j) {
    b.subject.patterns.push_back(
        atpg::random_pattern_pair(b.core.inputs().size(), rng));
  }
  b.subject.coverage_threshold = opt.coverage_threshold;
  return b;
}

/// Lints one netlist; when --diagnosability produced sensitization facts
/// and `diag_json` is non-null, writes the machine-readable report there.
analysis::Report lint_one(const netlist::Netlist& raw,
                          const analysis::Analyzer& analyzer,
                          const LintOptions& opt, std::string* diag_json) {
  analysis::Report report = analysis::lint_netlist(analyzer, raw);

  // Dictionary audit and diagnosability analysis need a levelizable
  // combinational core; skip them when structural errors already make
  // that meaningless.
  const bool core_usable = raw.frozen() && report.error_count() == 0;
  if (opt.dict && core_usable) {
    const netlist::Netlist core =
        raw.dff_count() > 0 ? netlist::full_scan_transform(raw) : raw;
    const auto subject = build_dictionary_subject(core, opt);
    analysis::AnalysisInput dict_in;
    dict_in.dictionary = &subject;
    report.merge(analyzer.run(dict_in));
  }
  if (opt.diagnosability && core_usable) {
    const auto bundle = build_diagnosability_bundle(raw, opt);
    analysis::AnalysisInput diag_in;
    diag_in.diagnosability = &bundle.subject;
    // Caller-owned context: the DIAG rules and the JSON report below share
    // one sensitization-facts computation.
    const analysis::PassContext ctx(diag_in);
    report.merge(analyzer.run(ctx));
    if (diag_json != nullptr) {
      *diag_json = analysis::diagnosability_report_json(
          bundle.subject, ctx.sensitization_facts());
    }
  }
  return report;
}

int run_list(const analysis::Analyzer& analyzer) {
  std::printf("%-8s %-8s %s\n", "rule", "severity", "catches");
  for (const auto& rule : analyzer.rules()) {
    std::printf("%-8s %-8s %.*s\n", std::string(rule->id()).c_str(),
                std::string(analysis::severity_name(rule->severity())).c_str(),
                static_cast<int>(rule->summary().size()),
                rule->summary().data());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  runtime::configure_threads_from_args(&argc, argv);
  LintOptions opt;
  bool list = false;
  bool catalog_mode = false;
  // (name, is_catalog) lint targets in command-line order.
  std::vector<std::pair<std::string, bool>> targets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--dict") {
      opt.dict = true;
    } else if (arg == "--diagnosability") {
      opt.diagnosability = true;
    } else if (arg == "--coverage-threshold") {
      opt.coverage_threshold = std::atof(next());
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--catalog") {
      catalog_mode = true;
    } else if (arg == "--scale") {
      opt.scale = std::atof(next());
    } else if (arg == "--samples") {
      opt.samples = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--patterns") {
      opt.patterns = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--suspects") {
      opt.suspects = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--ci-halfwidth") {
      opt.ci_halfwidth = std::atof(next());
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else {
      targets.emplace_back(arg, catalog_mode);
    }
  }

  const auto analyzer = analysis::Analyzer::with_default_rules();
  if (list) return run_list(analyzer);
  if (targets.empty()) {
    usage();
    return 2;
  }
  // Expand --catalog all into the Table I circuits.
  std::vector<std::pair<std::string, bool>> expanded;
  for (const auto& [name, is_catalog] : targets) {
    if (is_catalog && name == "all") {
      for (const auto& profile : netlist::table1_circuits()) {
        expanded.emplace_back(std::string(profile.name), true);
      }
    } else {
      expanded.emplace_back(name, is_catalog);
    }
  }

  std::size_t total_errors = 0;
  if (opt.json) std::printf("{\n  \"circuits\": [\n");
  for (std::size_t t = 0; t < expanded.size(); ++t) {
    const auto& [name, is_catalog] = expanded[t];
    analysis::Report report;
    std::string circuit_name = name;
    std::string diag_json;
    try {
      const auto nl = load_target(name, is_catalog, opt);
      circuit_name = nl.name();
      report = lint_one(nl, analyzer, opt, opt.json ? &diag_json : nullptr);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", name.c_str(), e.what());
      return 2;
    }
    total_errors += report.error_count();
    if (opt.json) {
      if (diag_json.empty()) {
        std::printf("    {\"name\": \"%s\", \"report\": %s}%s\n",
                    circuit_name.c_str(), report.to_json().c_str(),
                    t + 1 < expanded.size() ? "," : "");
      } else {
        std::printf(
            "    {\"name\": \"%s\", \"report\": %s, \"diagnosability\": "
            "%s}%s\n",
            circuit_name.c_str(), report.to_json().c_str(), diag_json.c_str(),
            t + 1 < expanded.size() ? "," : "");
      }
    } else {
      std::printf("== %s ==\n%s", circuit_name.c_str(),
                  report.to_text().c_str());
    }
  }
  if (opt.json) {
    std::printf("  ],\n  \"total_errors\": %zu\n}\n", total_errors);
  }
  return total_errors > 0 ? 1 : 0;
}
