#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over the library, tool, bench and
# example sources using a CMake compile database.
#
#   tools/run_static_checks.sh [build-dir]
#
# The build dir defaults to build-tidy/ and is configured on demand with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON.  Exits 0 with a notice when clang-tidy
# is not installed (the supported toolchain is gcc-only; the tidy pass is
# an extra layer, not a gate), non-zero when clang-tidy reports warnings.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" > /dev/null 2>&1; then
  echo "run_static_checks: $TIDY not found; skipping (install clang-tidy" \
       "or set CLANG_TIDY to enable this pass)"
  exit 0
fi

BUILD_DIR="${1:-build-tidy}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

# Every first-party translation unit in the database; third-party code and
# generated files never enter it because only our targets are configured.
mapfile -t SOURCES < <(find src tools bench examples -name '*.cc' | sort)

echo "run_static_checks: ${#SOURCES[@]} files against $BUILD_DIR"
"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
echo "run_static_checks: clean"
