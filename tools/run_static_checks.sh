#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over the library, tool, bench and
# example sources using a CMake compile database, gated against a warning
# baseline.
#
#   tools/run_static_checks.sh [build-dir]
#
# The build dir defaults to build-tidy/ and is configured on demand with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON.  Exits 0 with a notice when clang-tidy
# is not installed (the supported toolchain is gcc-only; the tidy pass is
# an extra layer, not a hard dependency).
#
# Baseline gate: tools/tidy_baseline.txt records the accepted warning
# count.  The gate fails only when the current count EXCEEDS the baseline,
# so pre-existing findings never block unrelated work but new code cannot
# add more.  When the count drops, the script says so - ratchet the
# baseline down by committing the printed number.  With no baseline file,
# any warning fails (a clean tree wants a zero gate).
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" > /dev/null 2>&1; then
  echo "run_static_checks: $TIDY not found; skipping (install clang-tidy" \
       "or set CLANG_TIDY to enable this pass)"
  exit 0
fi

BUILD_DIR="${1:-build-tidy}"
BASELINE_FILE="tools/tidy_baseline.txt"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

# Every first-party translation unit in the database; third-party code and
# generated files never enter it because only our targets are configured.
mapfile -t SOURCES < <(find src tools bench examples -name '*.cc' | sort)

echo "run_static_checks: ${#SOURCES[@]} files against $BUILD_DIR"
LOG="$(mktemp)"
trap 'rm -f "$LOG"' EXIT
# clang-tidy exits non-zero on warnings; the gate below decides, not it.
"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}" > "$LOG" 2>&1 || true

COUNT="$(grep -c 'warning:' "$LOG" || true)"
BASELINE=0
if [ -f "$BASELINE_FILE" ]; then
  BASELINE="$(tr -dc '0-9' < "$BASELINE_FILE")"
  BASELINE="${BASELINE:-0}"
fi

if [ "$COUNT" -gt "$BASELINE" ]; then
  cat "$LOG"
  echo "run_static_checks: FAIL - $COUNT warning(s) exceeds baseline" \
       "$BASELINE ($BASELINE_FILE)"
  exit 1
fi
if [ "$COUNT" -lt "$BASELINE" ]; then
  echo "run_static_checks: $COUNT warning(s), below baseline $BASELINE -" \
       "consider ratcheting $BASELINE_FILE down to $COUNT"
else
  echo "run_static_checks: $COUNT warning(s), at baseline $BASELINE"
fi
