#!/usr/bin/env python3
"""Self-check for the bench-history tooling: proves the perf gate fires.

    selfcheck_bench_tools.py [SCRATCH_DIR]

Builds a small synthetic BENCH_history.jsonl in SCRATCH_DIR (default: a
temp dir) and asserts, end to end against the real scripts:

  * append_bench_history.py appends a valid artifact, refuses a stale
    re-append of the same run_id at the tail (exit 1), refuses an invalid
    schema (exit 1), and survives a malformed line mid-history;
  * check_bench_regression.py passes an unmodified rerun (exit 0) and
    FAILS the same data under --inject-slowdown 2.0 (exit 1) -- the CI
    proof that the sentry actually gates.

Exit 0 when every scenario behaves; 1 with a message otherwise.  Run by
ctest (bench_history_tools) and by ci.sh, so the gate's behavior is itself
under test on every PR.
"""

import json
import os
import subprocess
import sys
import tempfile

TOOLS = os.path.dirname(os.path.abspath(__file__))


def run(script, *argv):
    return subprocess.run(
        [sys.executable, os.path.join(TOOLS, script), *argv],
        capture_output=True, text=True)


def expect(result, want_code, what):
    if result.returncode != want_code:
        print(f"FAIL: {what}: expected exit {want_code}, got "
              f"{result.returncode}\nstdout: {result.stdout}\n"
              f"stderr: {result.stderr}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {what} (exit {result.returncode})")


def table1_artifact(run_id, sha, seconds):
    return {
        "run_id": run_id, "git_sha": sha, "threads": 4, "scale": 0.35,
        "samples": 120, "chips": 8, "total_seconds": seconds,
        "circuits": [{"name": "s1196", "seconds": seconds,
                      "phases": {"setup_s": 0.1, "calibration_s": 0.2,
                                 "trials_s": seconds - 0.3}}],
    }


def serve_artifact(run_id, sha, seconds, p95_ms=2.5):
    return {
        "bench": "serve", "bit_identical": True,
        "run_id": run_id, "git_sha": sha, "threads": 4, "scale": 0.35,
        "samples": 120, "clients": 4, "batch": 6, "chips": 6,
        "total_seconds": seconds,
        "latency_p50_ms": p95_ms * 0.4,
        "latency_p95_ms": p95_ms,
        "latency_p99_ms": p95_ms * 2.0,
        "circuits": [{"name": "s9234", "seconds": seconds,
                      "latency_p50_ms": p95_ms * 0.4,
                      "latency_p95_ms": p95_ms,
                      "latency_p99_ms": p95_ms * 2.0,
                      "runs": [{"clients": 1, "wall_s": 0.2,
                                "chips_per_s": 30.0, "sheds": 0,
                                "reconnects": 0},
                               {"clients": 4, "wall_s": 0.3,
                                "chips_per_s": 80.0, "sheds": 0,
                                "reconnects": 0}]}],
    }


def main(argv):
    scratch = argv[1] if len(argv) > 1 else tempfile.mkdtemp()
    os.makedirs(scratch, exist_ok=True)
    hist = os.path.join(scratch, "selfcheck_history.jsonl")
    art = os.path.join(scratch, "selfcheck_artifact.json")
    if os.path.exists(hist):
        os.remove(hist)

    # Seed a baseline: four prior runs of the same workload shape.
    for i, seconds in enumerate([10.0, 10.4, 9.8, 10.2]):
        with open(art, "w") as f:
            json.dump(table1_artifact(f"{i:016x}", f"sha{i:04}", seconds), f)
        expect(run("append_bench_history.py", "append", art, hist), 0,
               f"append baseline run {i}")

    # Stale re-append of the tail artifact must be refused.
    expect(run("append_bench_history.py", "append", art, hist), 1,
           "refuse stale tail re-append")

    # Invalid schema must be refused before anything is written.
    with open(art, "w") as f:
        json.dump({"git_sha": "deadbee", "threads": 4}, f)
    expect(run("append_bench_history.py", "append", art, hist), 1,
           "refuse invalid schema")

    # A malformed line mid-history must not poison later appends.
    with open(hist, "a") as f:
        f.write("{torn line from a crash\n")
    with open(art, "w") as f:
        json.dump(table1_artifact("00000000000000ff", "sha0005", 10.1), f)
    expect(run("append_bench_history.py", "append", art, hist), 0,
           "append past malformed line")

    # Sentry: the fresh run is within threshold of the rolling median.
    expect(run("check_bench_regression.py", "--history", hist, "--last", "1"),
           0, "sentry passes healthy run")

    # Sentry: the SAME data with a 2x injected slowdown must fail -- this
    # is the proof the CI gate fires when perf regresses.
    expect(run("check_bench_regression.py", "--history", hist, "--last", "1",
               "--inject-slowdown", "2.0"),
           1, "sentry fails 2x injected slowdown")

    # A genuine slow record appended for real must also fail.
    with open(art, "w") as f:
        json.dump(table1_artifact("00000000000000aa", "sha0006", 25.0), f)
    expect(run("append_bench_history.py", "append", art, hist), 0,
           "append genuinely slow run")
    expect(run("check_bench_regression.py", "--history", hist, "--last", "1"),
           1, "sentry fails real 2.5x regression")

    # Serve-shape records ("bench": "serve", clients/batch instead of a
    # scale/samples-only shape) must append and survive --check (on a
    # clean history: the torn line above still fails --check by design).
    serve_hist = os.path.join(scratch, "selfcheck_serve_history.jsonl")
    if os.path.exists(serve_hist):
        os.remove(serve_hist)
    with open(art, "w") as f:
        json.dump(serve_artifact("00000000000000bb", "sha0007", 3.0), f)
    expect(run("append_bench_history.py", "append", art, serve_hist), 0,
           "append serve-bench record")
    expect(run("append_bench_history.py", "--check", serve_hist), 0,
           "--check accepts serve-bench record")
    # A serve artifact missing its shape fields must be refused.
    broken = serve_artifact("00000000000000cc", "sha0008", 3.0)
    del broken["clients"]
    with open(art, "w") as f:
        json.dump(broken, f)
    expect(run("append_bench_history.py", "append", art, serve_hist), 1,
           "refuse serve record without clients")
    # ... and so must one without its latency percentiles (the serve
    # schema carries the server-reported p50/p95/p99 since the stats op
    # landed).
    broken = serve_artifact("00000000000000cd", "sha0008", 3.0)
    del broken["latency_p95_ms"]
    with open(art, "w") as f:
        json.dump(broken, f)
    expect(run("append_bench_history.py", "append", art, serve_hist), 1,
           "refuse serve record without latency_p95_ms")

    # Latency gate: seed a serve baseline, then append a run whose WALL
    # time is healthy but whose tail latency tripled -- the sentry must
    # fail on the percentile alone.
    for i, p95 in enumerate([2.4, 2.6, 2.5, 2.5]):
        with open(art, "w") as f:
            json.dump(serve_artifact(f"{i + 16:016x}", f"sha01{i:02}", 3.0,
                                     p95_ms=p95), f)
        expect(run("append_bench_history.py", "append", art, serve_hist), 0,
               f"append serve latency baseline run {i}")
    expect(run("check_bench_regression.py", "--history", serve_hist,
               "--last", "1"),
           0, "sentry passes healthy serve latency")
    with open(art, "w") as f:
        json.dump(serve_artifact("00000000000000ee", "sha0109", 3.0,
                                 p95_ms=7.5), f)
    expect(run("append_bench_history.py", "append", art, serve_hist), 0,
           "append serve run with 3x tail latency")
    expect(run("check_bench_regression.py", "--history", serve_hist,
               "--last", "1"),
           1, "sentry fails serve tail-latency regression")

    print("bench tooling self-check: all scenarios behaved")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
