#!/usr/bin/env python3
"""Perf-regression sentry: gate CI on the benchmark history.

    check_bench_regression.py --history BENCH_history.jsonl [--last K]
                              [--threshold 1.5] [--window 5]
                              [--min-baseline 2] [--inject-slowdown F]

The last K history records (default 3: the table1 serial, table1 parallel
and score runs one run_benchmarks.sh invocation appends) are treated as
CANDIDATES.  Each candidate is compared against a rolling BASELINE: the
median total_seconds of up to --window earlier records with the same
workload shape -- same (bench, threads, scale, samples, chips) tuple --
so a 4-thread run is never judged against a 1-thread baseline and a
--scale 1.0 run never against a laptop-scale one.

Serve-bench candidates ("bench": "serve") are additionally gated on the
server-reported request-latency percentiles (latency_p50_ms /
latency_p95_ms / latency_p99_ms, measured by the server's own rolling
histogram and read back over the stats op): each percentile is judged
against the baseline median of the same key over the same-shape window,
with the same --threshold.  Prior records that predate the latency keys
simply don't contribute to that baseline, so the gate arms itself once
enough history carries them.

Exit codes:
  0  every candidate is within --threshold x its baseline median, or has
     fewer than --min-baseline comparable prior records (warned, not
     failed: a brand-new workload shape cannot regress against nothing);
  1  at least one candidate exceeds threshold x baseline;
  2  usage or I/O error.

--inject-slowdown F multiplies every candidate's timings by F before
comparison.  It exists purely so CI can prove the gate actually fires:
ci.sh runs the sentry once normally (must pass) and once with
--inject-slowdown 2.0 (must fail).  It is never used on real data.
"""

import argparse
import json
import statistics
import sys


def load_history(path):
    records = []
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return None
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"warning: {path}:{lineno}: skipping malformed line ({e})",
                  file=sys.stderr)
            continue
        if not isinstance(rec, dict) or not isinstance(
                rec.get("total_seconds"), (int, float)):
            print(f"warning: {path}:{lineno}: skipping record without "
                  f"numeric total_seconds", file=sys.stderr)
            continue
        records.append(rec)
    return records


def shape_key(rec):
    """Workload shape: only like-for-like runs are comparable."""
    return (rec.get("bench", "table1"), rec.get("threads"),
            rec.get("scale"), rec.get("samples"), rec.get("chips"))


def describe(rec):
    key = shape_key(rec)
    run_id = rec.get("run_id") or "-"
    return (f"{key[0]} @{key[1]} threads (scale={key[2]}, "
            f"samples={key[3]}, chips={key[4]}, sha={rec.get('git_sha')}, "
            f"run {run_id})")


LATENCY_KEYS = ("latency_p50_ms", "latency_p95_ms", "latency_p99_ms")


def latency_values(rec):
    """{key: ms} for the serve latency percentiles present on a record."""
    out = {}
    if rec.get("bench") != "serve":
        return out
    for key in LATENCY_KEYS:
        if isinstance(rec.get(key), (int, float)):
            out[key] = rec[key]
    return out


def circuit_seconds(rec):
    """{circuit: seconds} for the per-circuit breakdown lines."""
    out = {}
    circuits = rec.get("circuits")
    if isinstance(circuits, dict):
        for name, c in circuits.items():
            if isinstance(c, dict) and isinstance(c.get("seconds"),
                                                  (int, float)):
                out[name] = c["seconds"]
    return out


def main(argv):
    ap = argparse.ArgumentParser(
        description="fail when fresh benchmark runs regress vs the rolling "
                    "baseline in BENCH_history.jsonl")
    ap.add_argument("--history", default="BENCH_history.jsonl")
    ap.add_argument("--last", type=int, default=3, metavar="K",
                    help="treat the last K records as candidates (default 3)")
    ap.add_argument("--threshold", type=float, default=1.5,
                    help="fail when candidate > threshold x baseline median "
                         "(default 1.5)")
    ap.add_argument("--window", type=int, default=5,
                    help="baseline = median of up to this many prior "
                         "same-shape records (default 5)")
    ap.add_argument("--min-baseline", type=int, default=2,
                    help="need at least this many prior same-shape records "
                         "to judge at all (default 2)")
    ap.add_argument("--inject-slowdown", type=float, default=1.0, metavar="F",
                    help="multiply candidate timings by F (CI smoke only)")
    args = ap.parse_args(argv[1:])
    if args.last < 1 or args.threshold <= 1.0 or args.window < 1:
        ap.print_usage(sys.stderr)
        return 2

    records = load_history(args.history)
    if records is None:
        return 2
    if len(records) <= args.last:
        print(f"{args.history}: only {len(records)} records, nothing "
              f"predating the last {args.last} candidates; sentry passes "
              f"vacuously")
        return 0

    candidates = records[-args.last:]
    prior = records[:-args.last]
    failures = 0
    judged = 0
    for cand in candidates:
        key = shape_key(cand)
        baseline_pool = [r for r in prior if shape_key(r) == key]
        baseline_pool = baseline_pool[-args.window:]
        cand_s = cand["total_seconds"] * args.inject_slowdown
        if len(baseline_pool) < args.min_baseline:
            print(f"SKIP  {describe(cand)}: only {len(baseline_pool)} "
                  f"comparable prior record(s), need {args.min_baseline}")
            continue
        judged += 1
        base = statistics.median(r["total_seconds"] for r in baseline_pool)
        ratio = cand_s / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > args.threshold else "ok"
        print(f"{verdict:4}  {describe(cand)}: {cand_s:.2f}s vs baseline "
              f"median {base:.2f}s over {len(baseline_pool)} run(s) "
              f"(x{ratio:.2f}, limit x{args.threshold:.2f})")
        cand_failed = ratio > args.threshold
        if cand_failed:
            # Per-circuit breakdown so the report names the culprit.
            base_circ = {}
            for r in baseline_pool:
                for name, s in circuit_seconds(r).items():
                    base_circ.setdefault(name, []).append(s)
            for name, s in sorted(circuit_seconds(cand).items()):
                if name in base_circ:
                    med = statistics.median(base_circ[name])
                    s_inj = s * args.inject_slowdown
                    mark = " <-- regressed" if med > 0 and \
                        s_inj / med > args.threshold else ""
                    print(f"        {name}: {s_inj:.2f}s vs {med:.2f}s"
                          f"{mark}")
        # Serve candidates are also held to their request-latency
        # percentiles; a throughput-neutral change that doubles tail
        # latency should still trip the gate.
        for lat_key, cand_ms in sorted(latency_values(cand).items()):
            pool = [r[lat_key] for r in baseline_pool
                    if isinstance(r.get(lat_key), (int, float))]
            if len(pool) < args.min_baseline:
                print(f"SKIP  {describe(cand)} {lat_key}: only {len(pool)} "
                      f"comparable prior value(s), need {args.min_baseline}")
                continue
            cand_ms *= args.inject_slowdown
            base_ms = statistics.median(pool)
            if base_ms > 0:
                lat_ratio = cand_ms / base_ms
            else:
                lat_ratio = 1.0 if cand_ms <= 0 else float("inf")
            verdict = "FAIL" if lat_ratio > args.threshold else "ok"
            print(f"{verdict:4}  {describe(cand)} {lat_key}: "
                  f"{cand_ms:.3f}ms vs baseline median {base_ms:.3f}ms over "
                  f"{len(pool)} run(s) (x{lat_ratio:.2f}, limit "
                  f"x{args.threshold:.2f})")
            if lat_ratio > args.threshold:
                cand_failed = True
        if cand_failed:
            failures += 1
    if args.inject_slowdown != 1.0:
        print(f"note: candidate timings were multiplied by "
              f"x{args.inject_slowdown} (--inject-slowdown smoke)")
    if failures:
        print(f"perf sentry: {failures} of {judged} judged candidate(s) "
              f"regressed beyond x{args.threshold}", file=sys.stderr)
        return 1
    print(f"perf sentry: {judged} candidate(s) within x{args.threshold} of "
          f"baseline ({len(candidates) - judged} skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
