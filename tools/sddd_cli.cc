// sddd_cli - Command-line front end to the library.
//
//   sddd_cli info <netlist>                 summary + statistical timing
//   sddd_cli convert <in> <out>             .bench <-> .v conversion
//   sddd_cli scan <in> <out>                full-scan transform
//   sddd_cli synth <out> [--inputs N] [--outputs N] [--gates N]
//                        [--depth N] [--seed N]
//   sddd_cli atpg <netlist> [--site ARC] [--max-patterns N] [--seed N]
//   sddd_cli diagnose <netlist> [--chips N] [--samples N] [--seed N]
//                     [--checkpoint FILE [--resume]] [--deadline-s S]
//                     [--json FILE] [--explain-out FILE [--explain-trial N]]
//                     [--manifest-out FILE]
//   sddd_cli explain <netlist> [--chips N] [--samples N] [--seed N]
//                    [--trial N] [--top K] [--out FILE] [--md FILE]
//                    [--manifest-out FILE]
//   sddd_cli report [--ledger FILE] [--a RUN_ID --b RUN_ID | --last N]
//                   [--json FILE]           diff two run-ledger records
//
// Netlist format is chosen by extension: .bench / anything else = Verilog.
// Sequential netlists are full-scan transformed automatically where the
// command needs a combinational core.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "analysis/analyzer.h"
#include "atpg/diag_patterns.h"
#include "eval/checkpoint.h"
#include "eval/experiment.h"
#include "eval/explain.h"
#include "introspect/manifest.h"
#include "obs/atomic_file.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "netlist/levelize.h"
#include "netlist/scan.h"
#include "netlist/synth.h"
#include "obs/log.h"
#include "obs/obs.h"
#include "netlist/verilog_io.h"
#include "paths/transition_graph.h"
#include "runtime/parallel_for.h"
#include "store/client.h"
#include "store/query.h"
#include "store/server.h"
#include "store/store.h"
#include "store/wire.h"
#include "timing/celllib.h"
#include "timing/clark_ssta.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/ssta.h"

using namespace sddd;

namespace {

[[noreturn]] void usage_and_exit() {
  std::fprintf(
      stderr,
      "usage: sddd_cli <command> ...\n"
      "  info <netlist>                      structure + timing summary\n"
      "  convert <in> <out>                  format conversion\n"
      "  scan <in> <out>                     full-scan transform\n"
      "  synth <out> [--inputs N] [--outputs N] [--gates N] [--depth N]\n"
      "              [--seed N] | [--profile NAME [--scale S]]\n"
      "  atpg <netlist> [--site ARC] [--max-patterns N] [--seed N]\n"
      "  diagnose <netlist> [--chips N] [--samples N] [--seed N]\n"
      "           [--checkpoint FILE [--resume]]  journal finished trials;\n"
      "                 --resume replays them (bit-identical, any threads)\n"
      "           [--deadline-s S]  soft trial-loop budget; on expiry the\n"
      "                 run degrades (skips trials) instead of failing\n"
      "           [--json FILE]     deterministic result JSON (no timings)\n"
      "           [--explain-out FILE [--explain-trial N]]  write the\n"
      "                 explanation report for one trial (default: first\n"
      "                 diagnosable) as deterministic JSON\n"
      "           [--manifest-out FILE]  run-provenance manifest (run id,\n"
      "                 seeds, threads, git sha, input hashes, artifacts)\n"
      "           [--no-kernel]  score through the scalar reference path\n"
      "                 instead of the cached packed kernel (bit-identical\n"
      "                 results either way; also accepted by explain)\n"
      "           [--collapse]  collapse suspects a pattern cannot observe\n"
      "                 onto one shared phi per pattern (bit-identical\n"
      "                 results, fewer phi evals; also accepted by explain)\n"
      "  dict build <netlist> <out.store> [--samples N] [--seed N]\n"
      "             [--pattern-sites N] [--max-patterns N] [--clk X]\n"
      "             [--max-suspects N] [--calibration-sites N]\n"
      "             [--quantile Q]  freeze the probabilistic dictionary\n"
      "                 into a checksummed, mmappable store file (atomic\n"
      "                 write; pure function of netlist + flags, so equal\n"
      "                 args => byte-identical files)\n"
      "  dict verify <store>      full integrity sweep (checksums, sizes);\n"
      "                 exit 0 serving-grade, 1 corrupt (section named)\n"
      "  dict info <store>        header + section table summary\n"
      "  dict chips <netlist> <store> [--chips N] [--match e|s] [--top K]\n"
      "             [--deadline-ms N] [--out FILE]  draw failing chips\n"
      "                 from the instance Monte-Carlo world and render the\n"
      "                 canonical diagnose request (the serve wire format)\n"
      "  dict query <store> --request FILE [--out FILE]\n"
      "             [--socket PATH | --port N]  answer a diagnose request\n"
      "                 in-process from the store, or (with an endpoint)\n"
      "                 relay it to a running server with retry/backoff -\n"
      "                 both transports produce byte-identical responses\n"
      "  serve <store...> [--socket PATH] [--port N (0 = ephemeral)]\n"
      "        [--max-inflight N] [--deadline-ms N] [--top K]\n"
      "                 long-running batch diagnosis server: mmaps the\n"
      "                 stores once, quarantines corrupt ones (keeps\n"
      "                 serving the rest), sheds load past the in-flight\n"
      "                 budget, drains cleanly on SIGTERM; SIGUSR1 prints\n"
      "                 live stats + postmortem without draining\n"
      "  stats [--socket PATH | --port N] [--watch S] [--prom | --json]\n"
      "                 one stats snapshot from a running server (rolling\n"
      "                 60s window, per-phase latency histograms, slow\n"
      "                 requests); --watch S re-polls every S seconds,\n"
      "                 --prom prints the Prometheus text exposition\n"
      "  report [--ledger FILE] [--a RUN_ID --b RUN_ID | --last N]\n"
      "         [--json FILE]  compare two ledger records: per-phase wall\n"
      "                 deltas, changed counters, rank stability (run_ids\n"
      "                 may be unique prefixes; default: the last two)\n"
      "  explain <netlist> [--chips N] [--samples N] [--seed N] [--trial N]\n"
      "          [--top K] [--out FILE] [--md FILE] [--manifest-out FILE]\n"
      "                 re-run one diagnosis trial and decompose its scores\n"
      "                 into per-pattern phi contributions with Wilson 95%%\n"
      "                 confidence intervals; same defaults as diagnose, so\n"
      "                 equal args => equal run ids across artifacts\n"
      "global: --threads N (0 = all hardware threads, 1 = serial; also\n"
      "        honours SDDD_THREADS; results are identical at any setting)\n"
      "        --lint   static-analysis preflight of the input netlist;\n"
      "                 error-severity findings abort the command\n"
      "%s"
      "formats by extension: .bench = ISCAS bench, otherwise Verilog\n",
      sddd::obs::observability_usage());
  std::exit(2);
}

bool is_bench(const std::filesystem::path& path) {
  return path.extension() == ".bench";
}

netlist::Netlist load(const std::filesystem::path& path) {
  return is_bench(path) ? netlist::parse_bench_file(path)
                        : netlist::parse_verilog_file(path);
}

void store(const netlist::Netlist& nl, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write: " + path.string());
  }
  if (is_bench(path)) {
    netlist::write_bench(nl, out);
  } else {
    netlist::write_verilog(nl, out);
  }
}

/// Removes a value-less `flag` from argv (wherever it appears) and
/// reports whether it was present.  Mirrors configure_threads_from_args so
/// global flags stay invisible to the per-command option scanners.
bool consume_flag(int* argc, char** argv, const char* flag) {
  bool found = false;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      found = true;
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  return found;
}

/// The --lint preflight: netlist + statistical-model rule packs over the
/// input circuit.  Returns false (after printing the report) when error-
/// severity findings make the requested command meaningless.
bool preflight_lint(const std::filesystem::path& path) {
  const auto nl = load(path);
  const auto report =
      analysis::lint_netlist(analysis::Analyzer::with_default_rules(), nl);
  if (!report.empty()) {
    SDDD_LOG_WARN("lint (%s):\n%s", nl.name().c_str(),
                  report.to_text().c_str());
  }
  return report.error_count() == 0;
}

/// "--key value" option scanner over argv[from..).
class Options {
 public:
  Options(int argc, char** argv, int from) {
    for (int i = from; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0 && i + 1 < argc) {
        values_[argv[i] + 2] = argv[i + 1];
        ++i;
      } else {
        positional_.push_back(argv[i]);
      }
    }
  }

  long get(const char* key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

  double get_double(const char* key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  std::string str(const char* key, const std::string& fallback = {}) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

int cmd_info(const std::filesystem::path& path) {
  const auto raw = load(path);
  std::printf("%s\n", raw.summary().c_str());
  const auto nl = raw.dff_count() > 0 ? netlist::full_scan_transform(raw) : raw;
  if (raw.dff_count() > 0) {
    std::printf("full-scan core: %s\n", nl.summary().c_str());
  }
  const netlist::Levelization lev(nl);
  std::printf("logic depth: %u levels\n", lev.depth());
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const timing::DelayField field(model, 1000, 0.03, 1);
  const timing::StaticTiming mc(field, lev);
  const timing::ClarkStaticTiming clark(model, lev);
  std::printf("static Delta(C):  MC mean %.1f sd %.1f (q99 %.1f)   "
              "Clark mean %.1f sd %.1f\n",
              mc.circuit_delay().mean(), mc.circuit_delay().stddev(),
              mc.clk_at_quantile(0.99), clark.circuit_delay().mean,
              clark.circuit_delay().sigma());
  return 0;
}

int cmd_convert(const std::filesystem::path& in,
                const std::filesystem::path& out) {
  store(load(in), out);
  std::printf("wrote %s\n", out.string().c_str());
  return 0;
}

int cmd_scan(const std::filesystem::path& in,
             const std::filesystem::path& out) {
  store(netlist::full_scan_transform(load(in)), out);
  std::printf("wrote %s\n", out.string().c_str());
  return 0;
}

int cmd_synth(const std::filesystem::path& out, const Options& opts) {
  // --profile synthesizes the ISCAS stand-in from the catalog (the same
  // generator the Table I harness uses), so scripts can build e.g. an
  // s1196-class circuit without replicating its structural numbers.
  const std::string profile_name = opts.str("profile");
  if (!profile_name.empty()) {
    const netlist::IscasProfile* profile = netlist::find_profile(profile_name);
    if (profile == nullptr) {
      std::fprintf(stderr, "unknown profile: %s\n", profile_name.c_str());
      return 1;
    }
    const auto nl = netlist::make_standin(
        *profile, opts.get_double("scale", 1.0),
        static_cast<std::uint64_t>(opts.get("seed", 1)));
    store(nl, out);
    std::printf("wrote %s (%s)\n", out.string().c_str(),
                nl.summary().c_str());
    return 0;
  }
  netlist::SynthSpec spec;
  spec.name = out.stem().string();
  spec.n_inputs = static_cast<std::uint32_t>(opts.get("inputs", 16));
  spec.n_outputs = static_cast<std::uint32_t>(opts.get("outputs", 12));
  spec.n_gates = static_cast<std::uint32_t>(opts.get("gates", 200));
  spec.depth = static_cast<std::uint32_t>(opts.get("depth", 14));
  spec.seed = static_cast<std::uint64_t>(opts.get("seed", 1));
  const auto nl = netlist::synthesize(spec);
  store(nl, out);
  std::printf("wrote %s (%s)\n", out.string().c_str(), nl.summary().c_str());
  return 0;
}

int cmd_atpg(const std::filesystem::path& path, const Options& opts) {
  auto nl = load(path);
  if (nl.dff_count() > 0) nl = netlist::full_scan_transform(nl);
  const netlist::Levelization lev(nl);
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(nl, lib);
  const auto site = static_cast<netlist::ArcId>(
      opts.get("site", static_cast<long>(nl.arc_count() / 2)));
  if (site >= nl.arc_count()) {
    std::fprintf(stderr, "site %u out of range (%zu arcs)\n", site,
                 nl.arc_count());
    return 1;
  }
  atpg::DiagnosticPatternConfig config;
  config.max_patterns =
      static_cast<std::size_t>(opts.get("max-patterns", 12));
  stats::Rng rng(static_cast<std::uint64_t>(opts.get("seed", 1)));
  const auto patterns =
      atpg::generate_diagnostic_patterns(model, lev, site, config, rng);
  const auto& arc = nl.arc(site);
  std::printf("site: arc %u (pin %u of %s); %zu patterns\n", site, arc.pin,
              nl.gate(arc.gate).name.c_str(), patterns.size());
  const logicsim::BitSimulator sim(nl, lev);
  for (std::size_t j = 0; j < patterns.size(); ++j) {
    const paths::TransitionGraph tg(sim, lev, patterns[j]);
    std::printf("  v%zu (site %sactive): v1=", j,
                tg.is_active(site) ? "" : "NOT ");
    for (const bool b : patterns[j].v1) std::printf("%d", b ? 1 : 0);
    std::printf(" v2=");
    for (const bool b : patterns[j].v2) std::printf("%d", b ? 1 : 0);
    std::printf("\n");
  }
  return 0;
}

/// The provenance skeleton shared by `diagnose --manifest-out` and
/// `explain --manifest-out`: run identity, environment and the hashed
/// input file.  Artifact entries are the caller's.
introspect::RunManifest base_manifest(const char* tool,
                                      const std::filesystem::path& input,
                                      const netlist::Netlist& nl,
                                      const eval::ExperimentConfig& config) {
  introspect::RunManifest m;
  m.tool = tool;
  m.circuit = nl.name();
  m.run_id =
      introspect::to_hex64(eval::experiment_fingerprint(nl.name(), config));
  m.seed = config.seed;
  m.mc_samples = config.mc_samples;
  m.n_chips = config.n_chips;
  m.threads = runtime::thread_count();
  const char* sha = std::getenv("SDDD_GIT_SHA");
  m.git_sha = sha != nullptr ? sha : "unknown";
  const char* faults = std::getenv("SDDD_FAULTS");
  m.faults = faults != nullptr ? faults : "";
  introspect::RunManifest::InputFile f;
  f.path = input.string();
  std::uint64_t bytes = 0;
  f.fnv1a = introspect::to_hex64(introspect::fnv1a_file(input.string(), &bytes));
  f.bytes = bytes;
  m.inputs.push_back(std::move(f));
  return m;
}

eval::ExperimentConfig diagnose_config_from(const Options& opts) {
  // One parser for diagnose and explain: identical defaults mean identical
  // experiment fingerprints, so their artifacts cross-link by run id.
  eval::ExperimentConfig config;
  config.n_chips = static_cast<std::size_t>(opts.get("chips", 10));
  config.mc_samples = static_cast<std::size_t>(opts.get("samples", 250));
  config.seed = static_cast<std::uint64_t>(opts.get("seed", 2003));
  return config;
}

int cmd_diagnose(const std::filesystem::path& path, const Options& opts,
                 bool resume, bool no_kernel, bool collapse) {
  auto nl = load(path);
  if (nl.dff_count() > 0) nl = netlist::full_scan_transform(nl);
  eval::ExperimentConfig config = diagnose_config_from(opts);
  config.use_score_kernel = !no_kernel;
  config.collapse_unobservable = collapse;
  config.checkpoint_path = opts.str("checkpoint");
  config.resume = resume;
  config.deadline_s = opts.get_double("deadline-s", 0.0);
  if (config.resume && config.checkpoint_path.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint FILE\n");
    return 2;
  }
  const auto result = eval::run_diagnosis_experiment(nl, config);
  std::printf("%s: clk=%.1f diagnosable=%zu/%zu avg|S|=%.1f\n",
              nl.name().c_str(), result.clk, result.diagnosable_trials(),
              result.trials.size(), result.avg_suspects());
  if (result.resumed_trials > 0) {
    std::printf("resumed %zu trials from %s\n", result.resumed_trials,
                config.checkpoint_path.c_str());
  }
  if (result.quarantined_trials() > 0) {
    std::printf("quarantined %zu/%zu trials (success rates are over the "
                "%zu diagnosable trials):\n",
                result.quarantined_trials(), result.trials.size(),
                result.diagnosable_trials());
    for (std::size_t i = 0; i < result.trials.size(); ++i) {
      const eval::TrialRecord& t = result.trials[i];
      if (t.status != eval::TrialStatus::kQuarantined) continue;
      std::printf("  trial %zu [%.*s]: %s\n", i,
                  static_cast<int>(error_code_name(t.error_code).size()),
                  error_code_name(t.error_code).data(),
                  t.error_message.c_str());
    }
  }
  if (result.degraded) {
    std::printf("DEGRADED: deadline expired with %zu/%zu trials skipped"
                "%s\n",
                result.skipped_trials(), result.trials.size(),
                config.checkpoint_path.empty()
                    ? ""
                    : "; re-run with --resume to finish them");
  }
  std::printf("%4s | %7s %7s %8s %7s\n", "K", "sim-I", "sim-II", "sim-III",
              "rev");
  for (const int k : {1, 2, 3, 5, 7, 10}) {
    std::printf("%4d | %6.0f%% %6.0f%% %7.0f%% %6.0f%%\n", k,
                100 * result.success_rate(diagnosis::Method::kSimI, k),
                100 * result.success_rate(diagnosis::Method::kSimII, k),
                100 * result.success_rate(diagnosis::Method::kSimIII, k),
                100 * result.success_rate(diagnosis::Method::kRev, k));
  }
  const std::string json_path = opts.str("json");
  if (!json_path.empty()) {
    eval::write_experiment_json(result, json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }
  const std::string explain_out = opts.str("explain-out");
  if (!explain_out.empty()) {
    eval::ExplainRequest request;
    const long explain_trial = opts.get("explain-trial", -1);
    if (explain_trial >= 0) {
      request.trial = static_cast<std::size_t>(explain_trial);
    }
    request.top_k = static_cast<std::size_t>(opts.get("top", 5));
    const auto report = eval::explain_trial(nl, config, request);
    obs::atomic_write_file_or_throw(explain_out,
                                    introspect::to_json(report));
    std::printf("wrote %s (trial %zu, run %s)\n", explain_out.c_str(),
                report.trial, report.run_id.c_str());
  }
  const std::string manifest_out = opts.str("manifest-out");
  if (!manifest_out.empty()) {
    auto manifest = base_manifest("sddd_cli diagnose", path, nl, config);
    manifest.quarantined_trials = result.quarantined_trials();
    manifest.resumed_trials = result.resumed_trials;
    manifest.skipped_trials = result.skipped_trials();
    manifest.degraded = result.degraded;
    if (!json_path.empty()) {
      manifest.artifacts.push_back({"result_json", json_path});
    }
    if (!config.checkpoint_path.empty()) {
      manifest.artifacts.push_back({"checkpoint", config.checkpoint_path});
    }
    if (!explain_out.empty()) {
      manifest.artifacts.push_back({"explain", explain_out});
    }
    introspect::write_manifest(manifest, manifest_out);
    std::printf("wrote %s\n", manifest_out.c_str());
  }
  if (!obs::ledger_out_path().empty()) {
    obs::LedgerRecord rec;
    rec.run_id =
        introspect::to_hex64(eval::experiment_fingerprint(nl.name(), config));
    rec.tool = "diagnose";
    rec.circuit = nl.name();
    const char* sha = std::getenv("SDDD_GIT_SHA");
    rec.git_sha = sha != nullptr ? sha : "";
    rec.seed = config.seed;
    rec.threads = runtime::thread_count();
    rec.mc_samples = config.mc_samples;
    rec.n_chips = config.n_chips;
    rec.wall_seconds = result.wall_seconds;
    const eval::PhaseBreakdown& ph = result.phases;
    rec.phases["setup_s"] = ph.setup_seconds;
    rec.phases["calibration_s"] = ph.calibration_seconds;
    rec.phases["trials_s"] = ph.trials_seconds;
    rec.phases["dict_build_cpu_s"] = ph.dict_build_cpu_seconds;
    rec.phases["score_cpu_s"] = ph.score_cpu_seconds;
    rec.counters = obs::MetricsRegistry::instance().snapshot().counters;
    rec.peak_rss_kb = obs::read_peak_rss_kb();
    if (!manifest_out.empty()) {
      rec.manifest_fnv =
          introspect::to_hex64(introspect::fnv1a_file(manifest_out));
    }
    if (!json_path.empty()) {
      rec.result_path = json_path;
      rec.result_fnv =
          introspect::to_hex64(introspect::fnv1a_file(json_path));
    }
    rec.unix_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    if (obs::append_ledger_record(obs::ledger_out_path(), rec)) {
      std::printf("ledger: appended run %s to %s\n", rec.run_id.c_str(),
                  obs::ledger_out_path().c_str());
    }
  }
  return 0;
}

/// `sddd_cli report`: diff two ledger records.  Run ids may be unique
/// prefixes; with no --a/--b the last two records are compared (--last N
/// widens the lookback so `--last 3` compares against two runs ago).
int cmd_report(const Options& opts) {
  // --ledger is one of the shared observability flags, so by the time we
  // run it has already been consumed into ledger_out_path().
  const std::string ledger_path =
      !obs::ledger_out_path().empty() ? obs::ledger_out_path()
                                      : opts.str("ledger", "sddd_ledger.jsonl");
  const obs::LedgerFile file = obs::load_ledger(ledger_path);
  if (file.skipped_lines != 0) {
    std::fprintf(stderr, "warning: %zu malformed line(s) in %s skipped\n",
                 file.skipped_lines, ledger_path.c_str());
  }
  if (file.records.empty()) {
    std::fprintf(stderr, "no valid records in %s\n", ledger_path.c_str());
    return 1;
  }
  const auto find_by_prefix =
      [&file](const std::string& prefix) -> const obs::LedgerRecord* {
    for (auto it = file.records.rbegin(); it != file.records.rend(); ++it) {
      if (it->run_id.rfind(prefix, 0) == 0) return &*it;
    }
    return nullptr;
  };
  const obs::LedgerRecord* a = nullptr;
  const obs::LedgerRecord* b = nullptr;
  const std::string id_a = opts.str("a");
  const std::string id_b = opts.str("b");
  if (!id_a.empty() || !id_b.empty()) {
    if (id_a.empty() || id_b.empty()) {
      std::fprintf(stderr, "report: --a and --b must be given together\n");
      return 2;
    }
    a = find_by_prefix(id_a);
    b = find_by_prefix(id_b);
    if (a == nullptr || b == nullptr) {
      std::fprintf(stderr, "report: run id %s not found in %s\n",
                   (a == nullptr ? id_a : id_b).c_str(), ledger_path.c_str());
      return 1;
    }
  } else {
    const auto last = static_cast<std::size_t>(opts.get("last", 2));
    if (last < 2 || file.records.size() < last) {
      std::fprintf(stderr,
                   "report: need at least %zu records in %s (have %zu)\n",
                   std::max<std::size_t>(last, 2), ledger_path.c_str(),
                   file.records.size());
      return 1;
    }
    a = &file.records[file.records.size() - last];
    b = &file.records.back();
  }
  const obs::LedgerDiff diff = obs::diff_ledger_records(*a, *b);
  std::fputs(obs::ledger_diff_to_text(diff).c_str(), stdout);
  const std::string json_path = opts.str("json");
  if (!json_path.empty()) {
    obs::atomic_write_file_or_throw(json_path, obs::ledger_diff_to_json(diff));
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_explain(const std::filesystem::path& path, const Options& opts,
                bool no_kernel, bool collapse) {
  auto nl = load(path);
  if (nl.dff_count() > 0) nl = netlist::full_scan_transform(nl);
  eval::ExperimentConfig config = diagnose_config_from(opts);
  config.use_score_kernel = !no_kernel;
  config.collapse_unobservable = collapse;
  eval::ExplainRequest request;
  const long trial = opts.get("trial", -1);
  if (trial >= 0) request.trial = static_cast<std::size_t>(trial);
  request.top_k = static_cast<std::size_t>(opts.get("top", 5));
  const auto report = eval::explain_trial(nl, config, request);

  const std::string out = opts.str("out", "explain.json");
  obs::atomic_write_file_or_throw(out, introspect::to_json(report));
  std::printf("wrote %s\n", out.c_str());
  const std::string md_path = opts.str("md");
  if (!md_path.empty()) {
    obs::atomic_write_file_or_throw(md_path, introspect::to_markdown(report));
    std::printf("wrote %s\n", md_path.c_str());
  }
  const std::string manifest_out = opts.str("manifest-out");
  if (!manifest_out.empty()) {
    auto manifest = base_manifest("sddd_cli explain", path, nl, config);
    manifest.artifacts.push_back({"explain", out});
    if (!md_path.empty()) {
      manifest.artifacts.push_back({"explain_md", md_path});
    }
    introspect::write_manifest(manifest, manifest_out);
    std::printf("wrote %s\n", manifest_out.c_str());
  }

  std::printf("%s trial %zu (run %s): %zu suspects, clk=%.1f, "
              "%zu MC samples\n",
              report.circuit.c_str(), report.trial, report.run_id.c_str(),
              report.n_suspects, report.clk, report.mc_samples);
  if (!report.candidates.empty()) {
    const auto& top = report.candidates.front();
    std::printf("top-1: arc %u%s, phi_sum=%.6g over %zu patterns%s\n",
                top.arc,
                top.arc == report.injected_arc ? " (the injected defect)"
                                               : "",
                top.phi_sum, report.n_patterns,
                report.near_tie ? "  [NEAR TIE with rank 2]" : "");
  }
  for (const auto& v : report.separability) {
    std::printf("  %-12.*s rank-1 %s rank-2 at 95%%\n",
                static_cast<int>(diagnosis::method_name(v.method).size()),
                diagnosis::method_name(v.method).data(),
                v.separable_at_95 ? "separable from" : "NOT separable from");
  }
  return 0;
}

// The local store() writer above shadows the sddd::store namespace, so
// the dictionary-store commands reach it through an alias.
namespace dstore = sddd::store;

netlist::Netlist load_combinational(const std::filesystem::path& path) {
  auto nl = load(path);
  if (nl.dff_count() > 0) nl = netlist::full_scan_transform(nl);
  return nl;
}

dstore::StoreBuildConfig dict_build_config_from(const Options& opts) {
  dstore::StoreBuildConfig config;
  config.mc_samples = static_cast<std::size_t>(opts.get("samples", 250));
  config.seed = static_cast<std::uint64_t>(opts.get("seed", 2003));
  config.pattern_sites =
      static_cast<std::size_t>(opts.get("pattern-sites", 6));
  config.max_patterns = static_cast<std::size_t>(opts.get("max-patterns", 24));
  config.max_suspects =
      static_cast<std::size_t>(opts.get("max-suspects", 300));
  config.calibration_sites =
      static_cast<std::size_t>(opts.get("calibration-sites", 16));
  config.clk_site_quantile = opts.get_double("quantile", 0.7);
  config.clk_override = opts.get_double("clk", 0.0);
  return config;
}

int cmd_dict_build(const std::filesystem::path& netlist_path,
                   const std::string& out_path, const Options& opts) {
  const auto nl = load_combinational(netlist_path);
  const auto info =
      dstore::build_dictionary_store(nl, dict_build_config_from(opts), out_path);
  std::printf("wrote %s: run %s, clk=%.1f, %zu patterns x %zu outputs x "
              "%zu arcs, %llu bytes\n",
              out_path.c_str(), info.run_id.c_str(), info.clk,
              info.n_patterns, info.n_outputs, info.n_arcs,
              static_cast<unsigned long long>(info.bytes));
  return 0;
}

int cmd_dict_verify(const std::string& path) {
  const dstore::StoreVerifyReport report = dstore::verify_store_file(path);
  if (report.ok) {
    std::printf("%s: ok\n", path.c_str());
    return 0;
  }
  std::printf("%s: CORRUPT (section %s): %s\n", path.c_str(),
              report.bad_section.c_str(), report.message.c_str());
  return 1;
}

int cmd_dict_info(const std::string& path) {
  const dstore::DictionaryStore st(path);
  std::printf("%s\n", path.c_str());
  std::printf("  run %s  circuit %s  seed %llu\n", st.run_id().c_str(),
              st.circuit().c_str(),
              static_cast<unsigned long long>(st.build_seed()));
  std::printf("  clk %.4f  %zu MC samples  %zu patterns  %zu inputs  "
              "%zu outputs  %zu arcs  max_suspects %zu\n",
              st.clk(), st.mc_samples(), st.n_patterns(), st.n_inputs(),
              st.n_outputs(), st.n_arcs(), st.max_suspects());
  std::printf("  %llu bytes, sections:\n",
              static_cast<unsigned long long>(st.file_bytes()));
  for (const auto& sec : st.sections()) {
    std::printf("    %-8s  offset %8llu  %10llu bytes  crc %016llx\n",
                sec.name.c_str(), static_cast<unsigned long long>(sec.offset),
                static_cast<unsigned long long>(sec.bytes),
                static_cast<unsigned long long>(sec.crc));
  }
  return 0;
}

int cmd_dict_chips(const std::filesystem::path& netlist_path,
                   const std::string& store_path, const Options& opts) {
  const auto nl = load_combinational(netlist_path);
  const dstore::DictionaryStore st(store_path);
  const auto n_chips = static_cast<std::size_t>(opts.get("chips", 8));
  const auto sampled = dstore::sample_failing_chips(nl, st, n_chips);
  std::vector<dstore::ChipQuery> chips;
  chips.reserve(sampled.size());
  for (std::size_t t = 0; t < sampled.size(); ++t) {
    chips.push_back(dstore::ChipQuery{"chip" + std::to_string(t),
                                     sampled[t].B});
  }
  const std::string request = dstore::make_diagnose_request(
      st.run_id(), opts.str("match", "e"),
      static_cast<std::size_t>(opts.get("top", 10)),
      static_cast<std::uint64_t>(opts.get("deadline-ms", 0)), chips);
  const std::string out_path = opts.str("out");
  if (out_path.empty()) {
    std::printf("%s\n", request.c_str());
    return 0;
  }
  obs::atomic_write_file_or_throw(out_path, request);
  std::printf("wrote %s: %zu failing chips against run %s\n",
              out_path.c_str(), chips.size(), st.run_id().c_str());
  for (std::size_t t = 0; t < sampled.size(); ++t) {
    std::printf("  chip%zu: arc %u size %.4f (sample %zu, %zu failing "
                "cells)\n",
                t, sampled[t].chip.defect_arc, sampled[t].chip.defect_size,
                sampled[t].chip.sample_index, sampled[t].B.failure_count());
  }
  return 0;
}

int cmd_dict_query(const std::string& store_path, const Options& opts) {
  const std::string request_path = opts.str("request");
  if (request_path.empty()) {
    std::fprintf(stderr, "dict query: need --request FILE\n");
    return 2;
  }
  std::ifstream in(request_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "dict query: cannot read %s\n",
                 request_path.c_str());
    return 1;
  }
  std::string request_text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());

  const std::string socket_path = opts.str("socket");
  const auto port = static_cast<int>(opts.get("port", -1));
  std::string response;
  if (!socket_path.empty() || port >= 0) {
    // Relay mode: the request bytes go to the server (stamped with a
    // trace id); unwrapping the trace envelope yields payload bytes
    // byte-identical to the in-process path below.
    dstore::ServeClient client = dstore::ServeClient::connect(socket_path, port);
    dstore::RetryStats stats;
    response = dstore::request_with_retry(client, socket_path, port,
                                         request_text, dstore::RetryPolicy{},
                                         &stats);
    std::string echoed_id;
    std::string payload;
    if (dstore::split_response_envelope(response, &echoed_id, &payload)) {
      response = std::move(payload);
    }
    if (stats.reconnects > 0 || stats.sheds > 0) {
      std::fprintf(stderr,
                   "dict query: %zu attempts, %zu reconnects, %zu sheds "
                   "(trace %s)\n",
                   stats.attempts, stats.reconnects, stats.sheds,
                   echoed_id.c_str());
    }
  } else {
    const dstore::DictionaryStore st(store_path);
    const dstore::StoreQueryEngine engine(st);
    const dstore::JsonValue req = dstore::parse_json(request_text);
    const dstore::JsonValue* chips_json = req.get("chips");
    if (chips_json == nullptr || !chips_json->is_array()) {
      std::fprintf(stderr, "dict query: request has no \"chips\" array\n");
      return 1;
    }
    std::vector<dstore::ChipQuery> chips;
    for (std::size_t c = 0; c < chips_json->array.size(); ++c) {
      const dstore::JsonValue& chip = chips_json->array[c];
      std::vector<std::string> rows;
      const dstore::JsonValue* rows_json = chip.get("b");
      if (rows_json == nullptr || !rows_json->is_array()) {
        std::fprintf(stderr, "dict query: chip %zu has no \"b\" rows\n", c);
        return 1;
      }
      for (const auto& row : rows_json->array) rows.push_back(row.string);
      chips.push_back(dstore::ChipQuery{
          chip.get_string("id", std::to_string(c)),
          dstore::behavior_from_rows(rows, st.n_outputs(), st.n_patterns())});
    }
    const std::string match =
        opts.str("match", req.get_string("match", "e"));
    const auto top_k = static_cast<std::size_t>(
        opts.get("top", static_cast<long>(req.get_number("top", 10))));
    response = dstore::diagnose_batch_json(engine, chips, match == "e", top_k);
  }

  const std::string out_path = opts.str("out");
  if (out_path.empty()) {
    std::printf("%s\n", response.c_str());
  } else {
    obs::atomic_write_file_or_throw(out_path, response);
    std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), response.size());
  }
  return 0;
}

int cmd_serve(const Options& opts) {
  dstore::ServerConfig config;
  config.store_paths = opts.positional();
  if (config.store_paths.empty()) {
    std::fprintf(stderr, "serve: need at least one store file\n");
    return 2;
  }
  config.unix_socket = opts.str("socket");
  config.tcp_port = static_cast<int>(opts.get("port", -1));
  if (config.unix_socket.empty() && config.tcp_port < 0) {
    std::fprintf(stderr, "serve: need --socket PATH and/or --port N\n");
    return 2;
  }
  config.max_inflight = static_cast<std::size_t>(opts.get("max-inflight", 4));
  config.default_deadline_ms =
      static_cast<std::uint64_t>(opts.get("deadline-ms", 0));
  config.default_top_k = static_cast<std::size_t>(opts.get("top", 10));
  config.test_hold_seconds = opts.get_double("hold-s", 0.0);
  const char* sha = std::getenv("SDDD_GIT_SHA");
  config.git_sha = sha != nullptr ? sha : "";
  return dstore::serve_main(config);
}

int cmd_stats(const Options& opts, bool prom) {
  const std::string socket_path = opts.str("socket");
  const auto port = static_cast<int>(opts.get("port", -1));
  if (socket_path.empty() && port < 0) {
    std::fprintf(stderr, "stats: need --socket PATH or --port N\n");
    return 2;
  }
  const double watch_s = opts.get_double("watch", 0.0);
  const std::string request =
      prom ? "{\"op\":\"stats\",\"format\":\"prom\"}" : "{\"op\":\"stats\"}";
  dstore::ServeClient client = dstore::ServeClient::connect(socket_path, port);
  while (true) {
    dstore::RetryStats stats;
    const std::string response = dstore::request_with_retry(
        client, socket_path, port, request, dstore::RetryPolicy{}, &stats);
    const std::string payload = dstore::response_payload(response);
    if (prom) {
      // The prom payload quotes the exposition text; print it raw.
      const dstore::JsonValue v = dstore::parse_json(payload);
      std::printf("%s", v.get_string("text").c_str());
    } else {
      std::printf("%s\n", payload.c_str());
    }
    std::fflush(stdout);
    if (watch_s <= 0.0) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(watch_s));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::configure_observability_from_args(&argc, argv);
  runtime::configure_threads_from_args(&argc, argv);
  const bool lint = consume_flag(&argc, argv, "--lint");
  if (argc < 2) usage_and_exit();
  const std::string cmd = argv[1];
  try {
    // Commands that read a netlist take it as argv[2]; synth writes one.
    const bool has_input_netlist =
        argc >= 3 && (cmd == "info" || cmd == "convert" || cmd == "scan" ||
                      cmd == "atpg" || cmd == "diagnose" || cmd == "explain");
    if (lint && has_input_netlist && !preflight_lint(argv[2])) {
      std::fprintf(stderr, "lint: error findings; aborting %s\n", cmd.c_str());
      return 1;
    }
    if (cmd == "info" && argc >= 3) return cmd_info(argv[2]);
    if (cmd == "convert" && argc >= 4) return cmd_convert(argv[2], argv[3]);
    if (cmd == "scan" && argc >= 4) return cmd_scan(argv[2], argv[3]);
    if (cmd == "synth" && argc >= 3) {
      return cmd_synth(argv[2], Options(argc, argv, 3));
    }
    if (cmd == "atpg" && argc >= 3) {
      return cmd_atpg(argv[2], Options(argc, argv, 3));
    }
    if (cmd == "diagnose" && argc >= 3) {
      const bool resume = consume_flag(&argc, argv, "--resume");
      const bool no_kernel = consume_flag(&argc, argv, "--no-kernel");
      const bool collapse = consume_flag(&argc, argv, "--collapse");
      return cmd_diagnose(argv[2], Options(argc, argv, 3), resume, no_kernel,
                          collapse);
    }
    if (cmd == "report") {
      return cmd_report(Options(argc, argv, 2));
    }
    if (cmd == "explain" && argc >= 3) {
      const bool no_kernel = consume_flag(&argc, argv, "--no-kernel");
      const bool collapse = consume_flag(&argc, argv, "--collapse");
      return cmd_explain(argv[2], Options(argc, argv, 3), no_kernel, collapse);
    }
    if (cmd == "dict" && argc >= 4) {
      const std::string sub = argv[2];
      if (sub == "build" && argc >= 5) {
        return cmd_dict_build(argv[3], argv[4], Options(argc, argv, 5));
      }
      if (sub == "verify") return cmd_dict_verify(argv[3]);
      if (sub == "info") return cmd_dict_info(argv[3]);
      if (sub == "chips" && argc >= 5) {
        return cmd_dict_chips(argv[3], argv[4], Options(argc, argv, 5));
      }
      if (sub == "query") return cmd_dict_query(argv[3], Options(argc, argv, 4));
    }
    if (cmd == "serve" && argc >= 3) return cmd_serve(Options(argc, argv, 2));
    if (cmd == "stats") {
      const bool prom = consume_flag(&argc, argv, "--prom");
      consume_flag(&argc, argv, "--json");  // the default rendering
      return cmd_stats(Options(argc, argv, 2), prom);
    }
  } catch (const sddd::Error& e) {
    // what() already carries the "[<code>] " prefix.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage_and_exit();
}
