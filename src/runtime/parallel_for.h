// parallel_for.h - Process-wide parallel loop primitives over the shared
// ThreadPool, plus the thread-count knob.
//
// Knob resolution (first match wins):
//   1. set_thread_count(n) - explicit program/CLI request (`--threads`);
//   2. the SDDD_THREADS environment variable;
//   3. hardware concurrency.
// n = 0 means "hardware concurrency"; n = 1 is an exact serial fallback
// (the loops run inline on the caller, no pool involved).
//
// Determinism contract (see thread_pool.h): callers must give every index
// its own result slot and keep floating-point reductions in fixed index
// order.  parallel_map_reduce below encodes that pattern: the map phase is
// parallel into per-index slots, the reduce phase is serial over
// increasing i, so the reduction order never depends on the schedule.
//
// Nested parallel_for calls (e.g. the per-suspect loop of a Diagnoser
// invoked from a parallel experiment trial) execute serially inline on the
// calling worker - composable and still deterministic.  Direct nested
// ThreadPool::run is an error instead (it would deadlock).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/thread_pool.h"

namespace sddd::runtime {

/// Sets the requested thread count.  0 = hardware concurrency,
/// 1 = strictly serial.  Takes effect on the next parallel loop (the
/// shared pool is rebuilt lazily when the resolved width changes).
void set_thread_count(std::size_t n);

/// The resolved execution width (>= 1) a parallel loop would use now.
std::size_t thread_count();

/// True when a parallel loop launched from this call site would actually
/// fan out over `n` items (width > 1, n > 1, not already inside a parallel
/// region).  Lets callers run setup that is only needed for concurrent
/// execution - e.g. DynamicTimingSimulator::prewarm() - exactly when
/// required.
bool would_parallelize(std::size_t n);

/// True while the calling thread executes inside a parallel region.
bool in_parallel_region();

/// Consumes a `--threads N` / `--threads=N` option from argv (if present),
/// applies it via set_thread_count(), and compacts argv in place updating
/// *argc.  Shared by every bench harness and the CLI so the knob is spelled
/// the same everywhere; tools with their own option scanners may instead
/// call set_thread_count() directly.
void configure_threads_from_args(int* argc, char** argv);

/// Runs fn(i) for i in [0, n).  Serial (in index order) when thread_count()
/// is 1, n < 2, or the caller is already inside a parallel region;
/// otherwise fans out over the shared pool and blocks until done.  The
/// first exception thrown by fn is rethrown.
///
/// Cancellation: the caller's ambient CancelToken (runtime/cancel.h) is
/// visible inside fn on every thread.  A hard cancel stops the loop and
/// raises sddd::CancelledError when indices were skipped; a deadline is
/// purely cooperative (bodies poll and decide).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Chunked variant for fine-grained items: fn(begin, end) over contiguous
/// sub-ranges of [0, n) of at most `grain` items.  Chunk boundaries depend
/// only on (n, grain), never on the thread count, so per-chunk outputs are
/// schedule-independent.
void parallel_for_chunked(std::size_t n, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& fn);

/// Deterministic map-reduce: maps every index into its own slot in
/// parallel, then folds the slots serially in increasing index order.
template <typename T, typename MapFn, typename ReduceFn>
T parallel_map_reduce(std::size_t n, T init, const MapFn& map,
                      const ReduceFn& reduce) {
  std::vector<T> mapped(n);
  parallel_for(n, [&](std::size_t i) { mapped[i] = map(i); });
  T acc = std::move(init);
  for (std::size_t i = 0; i < n; ++i) {
    acc = reduce(std::move(acc), std::move(mapped[i]));
  }
  return acc;
}

}  // namespace sddd::runtime
