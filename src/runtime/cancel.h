// cancel.h - Cooperative cancellation and deadlines for parallel work.
//
// A CancelToken is a tiny shared flag + optional absolute deadline that
// long-running loops poll.  Cancellation is cooperative: nothing is ever
// interrupted mid-operation; code reaches a poll point, observes the
// token, and unwinds with a typed sddd::Error (code `cancelled` or
// `deadline`), which the quarantine/degradation layers above know how to
// classify.  That keeps the determinism story intact - a cancelled index
// either ran completely or not at all.
//
// Tokens travel as an *ambient* thread-local rather than as a parameter:
// ScopedCancelToken installs one for the current scope, ThreadPool
// re-installs the publishing thread's token on every worker for the
// duration of a job, and deep code (e.g. DynamicTimingSimulator's sample
// loops) polls via the free function poll_cancellation() without any API
// churn through the layers in between.  With no token installed a poll is
// one thread-local load.
#pragma once

#include <atomic>
#include <cstdint>

namespace sddd::runtime {

/// Shared cancellation state.  All members are safe for concurrent use.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests hard cancellation (sticky).
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Absolute deadline on the obs::now_ns() clock; 0 = none.
  void set_deadline_ns(std::uint64_t deadline_ns) noexcept {
    deadline_ns_.store(deadline_ns, std::memory_order_release);
  }

  /// Deadline `seconds` from now (convenience; <= 0 clears it).
  void set_deadline_after_seconds(double seconds) noexcept;

  std::uint64_t deadline_ns() const noexcept {
    return deadline_ns_.load(std::memory_order_acquire);
  }

  bool deadline_passed() const noexcept;

  /// True when work should stop: hard cancel OR deadline passed.
  bool stop_requested() const noexcept {
    return cancel_requested() || deadline_passed();
  }

  /// Throws sddd::CancelledError / sddd::DeadlineError when stop is
  /// requested; returns normally otherwise.
  void poll() const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> deadline_ns_{0};
};

/// The token installed for the calling thread; nullptr when none.
const CancelToken* current_cancel_token() noexcept;

/// Polls the ambient token (no-op without one).  The poll point hot loops
/// call; throws per CancelToken::poll().
void poll_cancellation();

/// RAII installation of an ambient token for the current scope.  Nests:
/// the previous token is restored on destruction.  ThreadPool propagates
/// the publisher's ambient token to its workers per job, so a token
/// installed around a parallel_for is visible inside the loop body on
/// every thread.
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(const CancelToken* token) noexcept;
  ~ScopedCancelToken();

  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  const CancelToken* prev_;
};

}  // namespace sddd::runtime
