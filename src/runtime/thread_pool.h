// thread_pool.h - Deterministic fork-join thread pool.
//
// The diagnosis flow has three embarrassingly parallel hot loops (pattern
// slices of the fault dictionary, suspects inside the diagnoser, chips of
// the injection experiment).  All of them share one execution discipline:
//
//   - every loop iteration writes only its own pre-reserved result slot,
//   - shared inputs are read-only for the duration of the loop, and
//   - any floating-point reduction happens serially, in index order,
//     after the parallel region.
//
// Under that discipline the results are bit-identical for ANY thread
// count, including 1 - the determinism contract the experiment harness
// relies on (EXPERIMENTS.md records seeds next to results).
//
// The pool is a single-job fork-join pool: run() publishes one index range,
// the calling thread participates in draining it, and returns only when
// every index has been executed.  There is no task queue and no futures -
// the simplest structure that cannot reorder observable results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/cancel.h"

namespace sddd::runtime {

/// Fixed-size fork-join pool.  `n_threads` counts the calling thread, so
/// ThreadPool(4) spawns 3 workers; ThreadPool(1) spawns none and run()
/// degenerates to an exact serial loop.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the participating caller).
  std::size_t size() const { return workers_.size() + 1; }

  /// Executes fn(i) for every i in [0, n), using all pool threads plus the
  /// caller.  Blocks until every index has run.  The first exception thrown
  /// by any fn(i) is rethrown here (remaining indices are cancelled on a
  /// best-effort basis).
  ///
  /// Cancellation: the calling thread's ambient CancelToken (see
  /// runtime/cancel.h) is re-installed on every worker for the duration of
  /// the job, so loop bodies and the code beneath them can poll it.  A
  /// hard cancel (request_cancel) additionally stops threads from claiming
  /// further indices; when any index was skipped that way and no body
  /// exception is pending, run() throws sddd::CancelledError so callers
  /// never mistake a partially-executed loop for a complete one.  Deadline
  /// expiry alone does NOT skip indices - deadline handling is left to the
  /// bodies, which know how to mark their own slots as degraded.
  ///
  /// Calling run() from inside a task of the same pool (or while another
  /// thread is mid-run()) throws std::logic_error: a fork-join pool cannot
  /// nest without deadlocking.  Use runtime::parallel_for, which degrades
  /// nested regions to serial execution instead.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like run(), but returns false instead of throwing when the pool is
  /// already mid-run on another thread (the caller should then execute the
  /// loop serially).  Still throws std::logic_error on nested use from
  /// inside a parallel region.
  bool try_run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is currently executing inside a run()
  /// region of *any* ThreadPool (worker or participating caller).
  static bool in_parallel_region();

 private:
  void worker_loop();
  void drain(const std::function<void(std::size_t)>& fn);
  void record_error();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  /// The publisher's ambient cancel token, re-installed on workers for the
  /// duration of the job (nullptr = none).  Guarded by mu_.
  const CancelToken* job_token_ = nullptr;
  std::size_t n_ = 0;
  std::size_t pending_workers_ = 0;  ///< workers not yet done with the job
  std::uint64_t epoch_ = 0;          ///< bumped once per run()
  bool busy_ = false;                ///< a run() is in flight
  bool stop_ = false;
  std::exception_ptr error_;

  std::atomic<std::size_t> next_{0};  ///< next unclaimed index
  /// Set when a thread stopped claiming indices due to a hard cancel, so
  /// run() can report the loop as incomplete.
  std::atomic<bool> cancel_skipped_{false};

  /// obs::now_ns() stamp of the latest job publish; workers subtract it on
  /// wake to attribute queue-wait time (pool.steal_or_queue_wait_ns).
  std::atomic<std::uint64_t> publish_ns_{0};
};

}  // namespace sddd::runtime
