#include "runtime/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/error.h"
#include "runtime/cancel.h"

namespace sddd::runtime {

namespace {

constexpr std::size_t kUnset = static_cast<std::size_t>(-1);

/// set_thread_count() request; kUnset = fall back to env / hardware.
std::atomic<std::size_t> g_requested{kUnset};

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t env_threads() {
  // Read once: the env knob selects the run configuration, it is not a
  // live control.
  static const std::size_t cached = [] {
    const char* env = std::getenv("SDDD_THREADS");
    if (env == nullptr || *env == '\0') return kUnset;
    const long v = std::atol(env);
    return v < 0 ? kUnset : static_cast<std::size_t>(v);
  }();
  return cached;
}

/// Shared pool, rebuilt when the resolved width changes between loops.
std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;

std::shared_ptr<ThreadPool> pool_for(std::size_t width) {
  const std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool || g_pool->size() != width) {
    g_pool = std::make_shared<ThreadPool>(width);
  }
  return g_pool;
}

}  // namespace

void set_thread_count(std::size_t n) {
  g_requested.store(n, std::memory_order_relaxed);
}

std::size_t thread_count() {
  std::size_t n = g_requested.load(std::memory_order_relaxed);
  if (n == kUnset) n = env_threads();
  if (n == kUnset || n == 0) n = hardware_threads();
  return n;
}

bool in_parallel_region() { return ThreadPool::in_parallel_region(); }

bool would_parallelize(std::size_t n) {
  return n > 1 && !in_parallel_region() && thread_count() > 1;
}

namespace {

/// The inline serial loop shared by the no-pool paths; honours the same
/// hard-cancel contract as ThreadPool::run so callers see one behavior.
void serial_loop(std::size_t n, const std::function<void(std::size_t)>& fn) {
  const CancelToken* token = current_cancel_token();
  for (std::size_t i = 0; i < n; ++i) {
    if (token != nullptr && token->cancel_requested()) {
      throw CancelledError("parallel_for cancelled with indices remaining");
    }
    fn(i);
  }
}

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (!would_parallelize(n)) {
    serial_loop(n, fn);
    return;
  }
  // Hold the pool alive for the duration of the loop even if another
  // thread requests a different width concurrently.
  const std::shared_ptr<ThreadPool> pool = pool_for(thread_count());
  if (!pool->try_run(n, fn)) {
    // Another thread owns the pool right now; run serially rather than
    // fail - same results, just no extra speedup.
    serial_loop(n, fn);
  }
}

void configure_threads_from_args(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < *argc) {
      set_thread_count(static_cast<std::size_t>(
          std::max(0L, std::atol(argv[i + 1]))));
      ++i;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      set_thread_count(
          static_cast<std::size_t>(std::max(0L, std::atol(argv[i] + 10))));
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

void parallel_for_chunked(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const std::size_t n_chunks = (n + g - 1) / g;
  parallel_for(n_chunks, [&](std::size_t c) {
    const std::size_t begin = c * g;
    fn(begin, std::min(begin + g, n));
  });
}

}  // namespace sddd::runtime
