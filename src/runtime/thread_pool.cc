#include "runtime/thread_pool.h"

#include <stdexcept>

#include "obs/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sddd::runtime {

namespace {

// Pool metrics, registered once per process (see obs/metrics.h):
//   pool.runs                    parallel regions executed
//   pool.tasks                   loop indices drained (all threads)
//   pool.steal_or_queue_wait_ns  worker wake latency after a job publish
obs::Counter& pool_runs_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("pool.runs");
  return c;
}

obs::Counter& pool_tasks_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("pool.tasks");
  return c;
}

obs::Counter& pool_wait_counter() {
  static obs::Counter& c = obs::MetricsRegistry::instance().register_counter(
      "pool.steal_or_queue_wait_ns");
  return c;
}

/// Set (to the owning pool) while a thread - worker or participating
/// caller - executes inside a run() region.  Shared across pools: nesting
/// any pool inside any region is refused, which keeps the check a single
/// thread-local load.
thread_local const ThreadPool* t_region = nullptr;

struct RegionGuard {
  const ThreadPool* prev;
  explicit RegionGuard(const ThreadPool* pool) : prev(t_region) {
    t_region = pool;
  }
  ~RegionGuard() { t_region = prev; }
};

}  // namespace

bool ThreadPool::in_parallel_region() { return t_region != nullptr; }

ThreadPool::ThreadPool(std::size_t n_threads) {
  const std::size_t total = n_threads == 0 ? 1 : n_threads;
  workers_.reserve(total - 1);
  for (std::size_t i = 1; i < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::record_error() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!error_) error_ = std::current_exception();
  // Best-effort cancellation: claim the remaining indices so idle threads
  // stop picking up work.  Tasks already in flight still finish.
  next_.store(n_, std::memory_order_relaxed);
}

void ThreadPool::drain(const std::function<void(std::size_t)>& fn) {
  const CancelToken* token = current_cancel_token();
  std::uint64_t executed = 0;
  for (;;) {
    // Hard cancel stops this thread from claiming further indices.  (A
    // mere deadline expiry does not: bodies that care mark their own
    // result slots instead, so the loop still visits every index.)
    if (token != nullptr && token->cancel_requested()) {
      if (next_.load(std::memory_order_relaxed) < n_) {
        cancel_skipped_.store(true, std::memory_order_relaxed);
      }
      break;
    }
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) break;
    ++executed;
    try {
      fn(i);
    } catch (...) {
      record_error();
      break;
    }
  }
  if (executed > 0) pool_tasks_counter().add(executed);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    const CancelToken* token = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      fn = fn_;
      token = job_token_;
    }
    {
      // Wake latency: time from the job publish to this worker starting.
      const std::uint64_t published =
          publish_ns_.load(std::memory_order_relaxed);
      const std::uint64_t now = obs::now_ns();
      if (now > published) pool_wait_counter().add(now - published);
    }
    {
      // Make the publisher's ambient cancel token visible to loop bodies
      // (and everything they call) on this worker too.
      const ScopedCancelToken cancel_guard(token);
      const RegionGuard guard(this);
      drain(*fn);
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (!try_run(n, fn)) {
    throw std::logic_error(
        "ThreadPool::run: pool is already mid-run on another thread");
  }
}

bool ThreadPool::try_run(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  if (t_region != nullptr) {
    throw std::logic_error(
        "ThreadPool::run: nested use inside a parallel region (would "
        "deadlock); use runtime::parallel_for for composable loops");
  }
  if (n == 0) return true;
  SDDD_SPAN(span, "pool.run");
  span.arg("n", static_cast<std::int64_t>(n))
      .arg("threads", static_cast<std::int64_t>(size()));
  const CancelToken* token = current_cancel_token();
  if (workers_.empty()) {
    // Serial pool: run in place, still marked as a region so the
    // determinism guards (and nested-use detection) behave identically -
    // including the hard-cancel contract.
    pool_runs_counter().add(1);
    const RegionGuard guard(this);
    std::uint64_t executed = 0;
    for (std::size_t i = 0; i < n; ++i, ++executed) {
      if (token != nullptr && token->cancel_requested()) {
        pool_tasks_counter().add(executed);
        throw CancelledError(
            "ThreadPool::run cancelled with indices remaining");
      }
      fn(i);
    }
    pool_tasks_counter().add(executed);
    return true;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (busy_) return false;
    busy_ = true;
    fn_ = &fn;
    job_token_ = token;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    cancel_skipped_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    pending_workers_ = workers_.size();
    ++epoch_;
  }
  pool_runs_counter().add(1);
  publish_ns_.store(obs::now_ns(), std::memory_order_relaxed);
  cv_work_.notify_all();
  {
    const RegionGuard guard(this);
    drain(fn);
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_workers_ == 0; });
    fn_ = nullptr;
    job_token_ = nullptr;
    busy_ = false;
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
  if (cancel_skipped_.load(std::memory_order_relaxed)) {
    throw CancelledError("ThreadPool::run cancelled with indices remaining");
  }
  return true;
}

}  // namespace sddd::runtime
