#include "runtime/cancel.h"

#include "obs/error.h"
#include "obs/metrics.h"

namespace sddd::runtime {

namespace {

thread_local const CancelToken* t_token = nullptr;

}  // namespace

void CancelToken::set_deadline_after_seconds(double seconds) noexcept {
  if (seconds <= 0.0) {
    set_deadline_ns(0);
    return;
  }
  set_deadline_ns(obs::now_ns() +
                  static_cast<std::uint64_t>(seconds * 1e9));
}

bool CancelToken::deadline_passed() const noexcept {
  const std::uint64_t d = deadline_ns();
  return d != 0 && obs::now_ns() >= d;
}

void CancelToken::poll() const {
  if (cancel_requested()) {
    throw CancelledError("cancellation requested");
  }
  if (deadline_passed()) {
    throw DeadlineError("deadline expired");
  }
}

const CancelToken* current_cancel_token() noexcept { return t_token; }

void poll_cancellation() {
  if (t_token != nullptr) t_token->poll();
}

ScopedCancelToken::ScopedCancelToken(const CancelToken* token) noexcept
    : prev_(t_token) {
  t_token = token;
}

ScopedCancelToken::~ScopedCancelToken() { t_token = prev_; }

}  // namespace sddd::runtime
