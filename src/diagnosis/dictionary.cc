#include "diagnosis/dictionary.h"

#include <algorithm>

#include "analysis/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"

namespace sddd::diagnosis {

namespace {

// Dictionary construction accounting.  dict.columns_built counts every
// column landed in the dictionary (M on slice build, E per suspect);
// dict.build_ns / dict.e_ns split the CPU time between the two.
obs::Counter& dict_slices_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("dict.slices");
  return c;
}

obs::Counter& dict_columns_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("dict.columns_built");
  return c;
}

obs::Counter& dict_e_columns_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("dict.e_columns");
  return c;
}

obs::Counter& dict_build_ns_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("dict.build_ns");
  return c;
}

obs::Counter& dict_e_ns_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("dict.e_ns");
  return c;
}

}  // namespace

PatternSlice::PatternSlice(const timing::DynamicTimingSimulator& sim,
                           const logicsim::BitSimulator& logic_sim,
                           const netlist::Levelization& lev,
                           const logicsim::PatternPair& pattern, double clk)
    : sim_(&sim), tg_(logic_sim, lev, pattern), clk_(clk) {
  SDDD_SPAN(span, "dict.slice");
  const obs::ScopedNsTimer timer(dict_build_ns_counter());
  baseline_ = sim.simulate(tg_);
  m_col_ = sim.error_vector(tg_, baseline_, clk);
  analysis::check_probability_column(m_col_, "PatternSlice M_crt column");
  dict_slices_counter().add(1);
  dict_columns_counter().add(1);
}

std::vector<double> PatternSlice::e_column(
    netlist::ArcId suspect, const defect::DefectSizeModel& size_model) const {
  // sample(arc, k) is a pure function of (arc, k), so resampling here per
  // call draws the exact sizes a precomputed table holds; callers that
  // loop over (pattern, suspect) precompute once and use e_column_into.
  const std::size_t n = sim_->field().sample_count();
  std::vector<double> sizes(n);
  for (std::size_t k = 0; k < n; ++k) {
    sizes[k] = size_model.sample(suspect, k);
  }
  std::vector<double> e;
  e_column_into(suspect, sizes, e);
  return e;
}

void PatternSlice::e_column_into(netlist::ArcId suspect,
                                 std::span<const double> sizes,
                                 std::vector<double>& out) const {
  const obs::ScopedNsTimer timer(dict_e_ns_counter());
  dict_e_columns_counter().add(1);
  dict_columns_counter().add(1);
  sim_->error_vector_with_defect_into(tg_, baseline_, suspect, sizes, clk_,
                                      out);
  analysis::check_probability_column(out, "PatternSlice E_crt column");
}

std::vector<double> PatternSlice::signature_column(
    netlist::ArcId suspect, const defect::DefectSizeModel& size_model) const {
  std::vector<double> s = e_column(suspect, size_model);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = std::max(s[i] - m_col_[i], 0.0);
  }
  analysis::check_signature_column(s, "PatternSlice S_crt column");
  return s;
}

void PatternSlice::signature_column_into(netlist::ArcId suspect,
                                         std::span<const double> sizes,
                                         std::vector<double>& out) const {
  e_column_into(suspect, sizes, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::max(out[i] - m_col_[i], 0.0);
  }
  analysis::check_signature_column(out, "PatternSlice S_crt column");
}

FaultDictionary::FaultDictionary(
    const timing::DynamicTimingSimulator& sim,
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> patterns, double clk) {
  SDDD_SPAN(span, "dict.build");
  span.arg("patterns", static_cast<std::int64_t>(patterns.size()));
  // Patterns are independent given read-only shared inputs; the simulator
  // only needs its lazy delay memoization pre-materialized before the
  // slices fan out.  Each slice writes its own pre-reserved slot, so the
  // dictionary is bit-identical for every thread count.
  if (runtime::would_parallelize(patterns.size())) sim.prewarm();
  slices_.resize(patterns.size());
  runtime::parallel_for(patterns.size(), [&](std::size_t j) {
    slices_[j] =
        std::make_unique<PatternSlice>(sim, logic_sim, lev, patterns[j], clk);
  });
}

std::vector<std::vector<double>> FaultDictionary::m_matrix() const {
  if (slices_.empty()) return {};
  const std::size_t n_out = slices_.front()->m_column().size();
  std::vector<std::vector<double>> m(n_out,
                                     std::vector<double>(slices_.size(), 0.0));
  for (std::size_t j = 0; j < slices_.size(); ++j) {
    const auto& col = slices_[j]->m_column();
    for (std::size_t i = 0; i < n_out; ++i) m[i][j] = col[i];
  }
  return m;
}

std::vector<std::vector<double>> FaultDictionary::e_matrix(
    netlist::ArcId suspect, const defect::DefectSizeModel& size_model) const {
  if (slices_.empty()) return {};
  const std::size_t n_out = slices_.front()->m_column().size();
  std::vector<std::vector<double>> e(n_out,
                                     std::vector<double>(slices_.size(), 0.0));
  // Column j only writes element j of each row: disjoint slots, so the
  // per-pattern E columns evaluate concurrently.  Slice construction
  // already materialized every arc delay these cones read.
  runtime::parallel_for(slices_.size(), [&](std::size_t j) {
    const auto col = slices_[j]->e_column(suspect, size_model);
    for (std::size_t i = 0; i < n_out; ++i) e[i][j] = col[i];
  });
  return e;
}

}  // namespace sddd::diagnosis
