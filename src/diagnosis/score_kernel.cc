#include "diagnosis/score_kernel.h"

namespace sddd::diagnosis {

namespace {

obs::Counter& kernel_patterns_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("diag.kernel.patterns");
  return c;
}

obs::Counter& kernel_suspects_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("diag.kernel.suspects");
  return c;
}

}  // namespace

obs::Counter& kernel_build_ns_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("diag.kernel.build_ns");
  return c;
}

obs::Counter& kernel_phi_ns_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("diag.kernel.phi_ns");
  return c;
}

void note_kernel_pattern(std::size_t n_suspects) {
  kernel_patterns_counter().add(1);
  kernel_suspects_counter().add(static_cast<std::uint64_t>(n_suspects));
}

void PackedBColumn::pack(const BehaviorMatrix& B, std::size_t pattern) {
  n_ = B.output_count();
  words_.assign((n_ + 63) / 64, 0);
  for (std::size_t k = 0; k < n_; ++k) {
    if (B.at(k, pattern)) {
      words_[k >> 6] |= std::uint64_t{1} << (k & 63);
    }
  }
}

void phi_block(const double* const* cols, std::size_t n_cols,
               std::size_t n_outputs, const PackedBColumn& b, double* out) {
  std::size_t base = 0;
  for (; base + kKernelLanes <= n_cols; base += kKernelLanes) {
    const double* c0 = cols[base + 0];
    const double* c1 = cols[base + 1];
    const double* c2 = cols[base + 2];
    const double* c3 = cols[base + 3];
    const double* c4 = cols[base + 4];
    const double* c5 = cols[base + 5];
    const double* c6 = cols[base + 6];
    const double* c7 = cols[base + 7];
    double a0 = 1.0, a1 = 1.0, a2 = 1.0, a3 = 1.0;
    double a4 = 1.0, a5 = 1.0, a6 = 1.0, a7 = 1.0;
    for (std::size_t k = 0; k < n_outputs; ++k) {
      // Select, not blend: `fail ? s : 1 - s` is the scalar phi() factor
      // verbatim, so each lane's product is the scalar product bit for bit.
      const bool fail = b.test(k);
      a0 *= fail ? c0[k] : 1.0 - c0[k];
      a1 *= fail ? c1[k] : 1.0 - c1[k];
      a2 *= fail ? c2[k] : 1.0 - c2[k];
      a3 *= fail ? c3[k] : 1.0 - c3[k];
      a4 *= fail ? c4[k] : 1.0 - c4[k];
      a5 *= fail ? c5[k] : 1.0 - c5[k];
      a6 *= fail ? c6[k] : 1.0 - c6[k];
      a7 *= fail ? c7[k] : 1.0 - c7[k];
    }
    out[base + 0] = a0;
    out[base + 1] = a1;
    out[base + 2] = a2;
    out[base + 3] = a3;
    out[base + 4] = a4;
    out[base + 5] = a5;
    out[base + 6] = a6;
    out[base + 7] = a7;
  }
  for (; base < n_cols; ++base) {
    const double* c = cols[base];
    double a = 1.0;
    for (std::size_t k = 0; k < n_outputs; ++k) {
      a *= b.test(k) ? c[k] : 1.0 - c[k];
    }
    out[base] = a;
  }
}

}  // namespace sddd::diagnosis
