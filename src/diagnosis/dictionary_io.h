// dictionary_io.h - Persisting the probabilistic fault dictionary.
//
// The paper's future work #4 asks how to "reduce the expense of computing
// and storing the probabilistic fault dictionary".  This module provides
// the storage half: CSV export/import of dictionary matrices and behavior
// matrices (for offline analysis and interchange with the failure-analysis
// flow), plus an exact accounting of what a dense dictionary would cost -
// the number the paper's feasibility question weighs against recomputing
// columns on demand (which is what the Diagnoser does).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>

#include "defect/defect_model.h"
#include "diagnosis/behavior.h"
#include "diagnosis/dictionary.h"

namespace sddd::diagnosis {

/// Writes one row per (suspect, pattern, output) with the M / E / S
/// probabilities.  Header: suspect_arc,pattern,output,m,e,s.
void write_dictionary_csv(const FaultDictionary& dict,
                          std::span<const netlist::ArcId> suspects,
                          const defect::DefectSizeModel& size_model,
                          std::ostream& out);

/// Behavior matrix as CSV: header "outputs,patterns" then one row per
/// output of 0/1 cells.
void write_behavior_csv(const BehaviorMatrix& b, std::ostream& out);

/// Inverse of write_behavior_csv.  Throws std::runtime_error on malformed
/// input.
BehaviorMatrix read_behavior_csv(std::istream& in);

/// Bytes a dense double-precision dictionary would occupy for
/// |suspects| x |patterns| x |outputs| entries (the paper's storage
/// question, made concrete).
std::uint64_t dense_dictionary_bytes(std::size_t n_suspects,
                                     std::size_t n_patterns,
                                     std::size_t n_outputs);

}  // namespace sddd::diagnosis
