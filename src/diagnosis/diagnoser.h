// diagnoser.h - Algorithms E.1 (Alg_sim, Methods I/II/III) and F.1
// (Alg_rev) over the probabilistic fault dictionary.
//
// Flow per Algorithm E.1:
//   1. suspect extraction (cause-effect, logic domain): every arc lying on
//      an active path to a failing output under a failing pattern;
//   2. per suspect i, per pattern j: signature column S_j = E_crt - M_crt
//      via incremental dynamic simulation, then
//   3. phi_j = prod_k [b_kj s_kj + (1-b_kj)(1-s_kj)]  (steps 5-6);
//   4. aggregate phi into one score per error function (step 7 / revised
//      step 7) and rank (step 8 / revised step 8).
//
// The pattern loop is outermost so only one pattern's baseline arrival
// matrix is alive at a time; all methods share one pass (the phi values
// are method-independent).
#pragma once

#include <span>
#include <vector>

#include "defect/defect_model.h"
#include "diagnosis/behavior.h"
#include "diagnosis/dictionary.h"
#include "diagnosis/error_fn.h"

namespace sddd::diagnosis {

class SignatureCache;

struct DiagnoserConfig {
  /// Cap on |S|; 0 = unlimited.  When capped, suspects with the highest
  /// support (number of failing (output, pattern) cells whose cone
  /// contains them) are kept, the paper's range being 100-600.
  std::size_t max_suspects = 0;
  /// What phi matches against the observed B column:
  ///   true  (default): the total predicted failure probability E_crt.
  ///   false:           the paper-literal signature S_crt = E_crt - M_crt.
  /// The two are identical in the paper's operating regime ("we can always
  /// make clk large enough so that M_crt = 0", Section E), but when clk
  /// sits where process-slow chips produce baseline failures (M_crt > 0),
  /// matching on S zeroes phi for *every* suspect at each baseline-caused
  /// failing cell and destroys resolution; matching on E attributes those
  /// cells to the baseline instead.  The ablation bench quantifies the
  /// difference.
  bool match_on_total_probability = true;
  /// When set, diagnose() stores the full per-(suspect, pattern) phi
  /// matrix in DiagnosisResult::phi for downstream introspection (the
  /// explanation engine decomposes scores back into these).  Off by
  /// default: the matrix is |S| x |TP| doubles the scoring loop otherwise
  /// never materializes.
  bool capture_phi = false;
  /// When set, diagnose() scores through the packed kernel path against
  /// this cache (signature_matrix.h): suspect columns are built once per
  /// (circuit, clk, pattern) and reused across every chip, the chip's B
  /// column is bit-packed, and phi evaluates kKernelLanes suspects per
  /// block - bit-identical scores, keys, ranks and captured phi to the
  /// scalar path (score_kernel.h states the argument).  The cache must
  /// have been built against the same simulator, clk and match mode;
  /// diagnose() throws on a clk/match mismatch.  Null (default) keeps the
  /// scalar per-chip path.
  const SignatureCache* cache = nullptr;
  /// When set, suspects the pattern does not sensitize are collapsed onto
  /// one shared phi evaluation per pattern: an inactive suspect's E column
  /// provably equals the baseline M column (dynamic_sim falls back to the
  /// defect-free error vector when the arc is off every active path), and
  /// its S column is exactly zero - so one phi of the baseline column
  /// serves every inactive suspect bit-identically.  Scores, keys, ranks
  /// and captured phi are byte-identical to the uncollapsed run (ci.sh
  /// compares the result JSONs); only diag.phi_evals and the per-pattern
  /// column work drop.  The static diagnosability report (sddd_lint
  /// --diagnosability) predicts exactly which (suspect, pattern) cells
  /// this collapses.
  bool collapse_unobservable = false;
};

/// One ranked candidate.
struct RankedSuspect {
  netlist::ArcId arc = netlist::kInvalidArc;
  double score = 0.0;
};

/// Scores for every suspect under every requested method, plus the suspect
/// set itself.
struct DiagnosisResult {
  std::vector<netlist::ArcId> suspects;
  std::vector<Method> methods;
  /// scores[m][s]: probability-domain score of suspects[s] under
  /// methods[m] (the paper's formulas; may underflow for Methods I/III on
  /// wide circuits - see ScoreAccumulator).
  std::vector<std::vector<double>> scores;
  /// keys[m][s]: underflow-safe log-domain ranking surrogate; what
  /// ranked() actually sorts by.
  std::vector<std::vector<double>> keys;
  /// phi[s][j]: consistency probability of suspects[s] under pattern j.
  /// Only populated when DiagnoserConfig::capture_phi is set; empty
  /// otherwise.
  std::vector<std::vector<double>> phi;
  /// Monte-Carlo samples behind every dictionary entry the scores were
  /// computed from (the n of every confidence interval downstream).
  std::size_t mc_samples = 0;

  /// Suspects sorted best-first under method m (Algorithm E.1 step 8 /
  /// F.1 revised step 8).
  std::vector<RankedSuspect> ranked(Method m) const;

  /// True when `arc` is among the top-K candidates under method m (the
  /// paper's success criterion; ties are resolved pessimistically: a tied
  /// candidate only counts inside K if it fits after stable ordering).
  bool hit_within(Method m, netlist::ArcId arc, std::size_t k) const;
};

class Diagnoser {
 public:
  /// `sim` must wrap the *dictionary* delay field (the model predictor),
  /// never the instance field the chip was drawn from.
  Diagnoser(const timing::DynamicTimingSimulator& sim,
            const logicsim::BitSimulator& logic_sim,
            const netlist::Levelization& lev,
            const defect::DefectSizeModel& size_model,
            DiagnoserConfig config = {});

  /// Step 1: the suspect set S for the observed behavior.
  std::vector<netlist::ArcId> extract_suspects(
      std::span<const logicsim::PatternPair> patterns,
      const BehaviorMatrix& B) const;

  /// Full diagnosis: returns scores for all requested methods in one pass
  /// over (patterns x suspects).
  DiagnosisResult diagnose(std::span<const logicsim::PatternPair> patterns,
                           const BehaviorMatrix& B,
                           std::span<const Method> methods, double clk) const;

 private:
  /// The per-chip scalar scoring loop (reference semantics): one
  /// PatternSlice per pattern, per-suspect columns through reused buffers
  /// and precomputed size tables, phi() per (suspect, pattern).
  void score_scalar(std::span<const logicsim::PatternPair> patterns,
                    const BehaviorMatrix& B, double clk,
                    DiagnosisResult& result,
                    std::vector<std::vector<ScoreAccumulator>>& acc) const;

  /// The cached kernel scoring loop: columns from config_.cache, packed B,
  /// blocked phi.  Bit-identical outputs to score_scalar.
  void score_kernel_path(std::span<const logicsim::PatternPair> patterns,
                         const BehaviorMatrix& B, double clk,
                         DiagnosisResult& result,
                         std::vector<std::vector<ScoreAccumulator>>& acc) const;

  const timing::DynamicTimingSimulator* sim_;
  const logicsim::BitSimulator* logic_sim_;
  const netlist::Levelization* lev_;
  const defect::DefectSizeModel* size_model_;
  DiagnoserConfig config_;
};

}  // namespace sddd::diagnosis
