#include "diagnosis/pattern_select.h"

#include <algorithm>
#include <cmath>

#include "diagnosis/dictionary.h"

namespace sddd::diagnosis {

using netlist::ArcId;

PatternSelectResult select_diagnostic_patterns(
    const timing::DynamicTimingSimulator& sim,
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> candidates,
    std::span<const ArcId> suspects,
    const defect::DefectSizeModel& size_model, double clk,
    const PatternSelectConfig& config) {
  const std::size_t n_cand = candidates.size();
  const std::size_t n_susp = suspects.size();

  PatternSelectResult result;
  result.total_pairs = n_susp < 2 ? 0 : n_susp * (n_susp - 1) / 2;
  if (n_cand == 0 || result.total_pairs == 0) return result;

  // Per candidate: which suspect pairs it distinguishes.  Signatures are
  // computed once per (candidate, suspect).
  std::vector<std::vector<bool>> distinguishes(
      n_cand, std::vector<bool>(result.total_pairs, false));
  for (std::size_t c = 0; c < n_cand; ++c) {
    const PatternSlice slice(sim, logic_sim, lev, candidates[c], clk);
    std::vector<std::vector<double>> sig(n_susp);
    for (std::size_t s = 0; s < n_susp; ++s) {
      sig[s] = slice.signature_column(suspects[s], size_model);
    }
    std::size_t pair = 0;
    for (std::size_t a = 0; a < n_susp; ++a) {
      for (std::size_t b = a + 1; b < n_susp; ++b, ++pair) {
        for (std::size_t i = 0; i < sig[a].size(); ++i) {
          if (std::abs(sig[a][i] - sig[b][i]) >= config.epsilon) {
            distinguishes[c][pair] = true;
            break;
          }
        }
      }
    }
  }

  // Greedy set cover over pairs.
  std::vector<bool> covered(result.total_pairs, false);
  std::vector<bool> used(n_cand, false);
  std::size_t covered_count = 0;
  for (std::size_t round = 0;
       round < std::min(config.budget, n_cand); ++round) {
    std::size_t best = n_cand;
    std::size_t best_gain = 0;
    for (std::size_t c = 0; c < n_cand; ++c) {
      if (used[c]) continue;
      std::size_t gain = 0;
      for (std::size_t p = 0; p < result.total_pairs; ++p) {
        gain += (!covered[p] && distinguishes[c][p]) ? 1U : 0U;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    if (best == n_cand || best_gain == 0) break;  // no further progress
    used[best] = true;
    for (std::size_t p = 0; p < result.total_pairs; ++p) {
      if (distinguishes[best][p] && !covered[p]) {
        covered[p] = true;
        ++covered_count;
      }
    }
    result.chosen.push_back(best);
    result.pairs_covered.push_back(covered_count);
  }
  return result;
}

}  // namespace sddd::diagnosis
