// resolution.h - Diagnosis resolution analysis (Section C of the paper).
//
// In logic diagnosis, "the resolution of the diagnosis is the same as the
// fault resolution": two faults no pattern distinguishes are one
// equivalence class, and the best any algorithm can do is name the class.
// The paper's core observation is that with statistical timing the notion
// blurs: whether a pattern distinguishes two faults becomes a probability
// that depends on clk.
//
// This module makes both notions measurable:
//
//   - logic_equivalence_classes(): faults with identical *activation
//     footprints* across the pattern set (the same active (pattern,
//     output-cone) incidence) - indistinguishable in the logic domain no
//     matter the delays;
//   - signature_distance() / timing_equivalence_classes(): faults whose
//     probabilistic signatures differ by less than a tolerance across the
//     dictionary - indistinguishable *at this clk and Monte-Carlo depth*;
//   - class_rank(): the rank metric the paper's Table I success criterion
//     implicitly uses, lifted to classes: a diagnosis that names any
//     member of the true fault's class is as good as naming the fault.
//
// The gap between logic classes and timing classes quantifies the paper's
// claim that timing information *refines* logic resolution (Figure 1 case
// 2: a pattern that cannot distinguish two faults logically may do so
// timing-wise).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "defect/defect_model.h"
#include "diagnosis/dictionary.h"
#include "netlist/netlist.h"

namespace sddd::diagnosis {

/// Partition of a suspect set into equivalence classes.  Classes are
/// vectors of arc ids; every input arc appears in exactly one class.
struct EquivalenceClasses {
  std::vector<std::vector<netlist::ArcId>> classes;
  /// class_of[i] = index of the class containing suspects[i] (parallel to
  /// the suspect span passed in).
  std::vector<std::size_t> class_of;

  std::size_t count() const { return classes.size(); }

  /// Largest class size: the worst-case ambiguity.
  std::size_t largest() const;

  /// Diagnostic resolution = #classes / #faults in [1/n, 1]; 1 means every
  /// fault is distinguishable.
  double resolution(std::size_t n_faults) const;
};

/// Groups suspects by their logic-domain activation footprint: for every
/// pattern, the set of outputs whose active cone contains the arc.  Two
/// arcs with identical footprints cannot be told apart by any 0/1
/// observation of this pattern set.
EquivalenceClasses logic_equivalence_classes(
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> patterns,
    std::span<const netlist::ArcId> suspects);

/// Max-norm distance between two suspects' dictionary signatures across
/// all patterns and outputs (columns computed on demand).
double signature_distance(const FaultDictionary& dict,
                          const defect::DefectSizeModel& size_model,
                          netlist::ArcId a, netlist::ArcId b);

/// Groups suspects whose signatures are within `tolerance` (max-norm) of
/// each other (single-linkage over the pairwise predicate).  With
/// tolerance ~ a few Monte-Carlo standard errors this is "what the timing
/// dictionary can actually resolve".
EquivalenceClasses timing_equivalence_classes(
    const FaultDictionary& dict, const defect::DefectSizeModel& size_model,
    std::span<const netlist::ArcId> suspects, double tolerance);

/// Class-level rank: position of the true arc's class in the best-first
/// class order induced by a per-suspect ranking (classes ranked by their
/// best member).  -1 when the arc is not among the suspects.
int class_rank(const EquivalenceClasses& classes,
               std::span<const netlist::ArcId> suspects,
               std::span<const netlist::ArcId> ranked_arcs,
               netlist::ArcId true_arc);

}  // namespace sddd::diagnosis
