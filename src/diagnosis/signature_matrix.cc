#include "diagnosis/signature_matrix.h"

#include <cstring>
#include <new>

#include "obs/metrics.h"
#include "obs/recorder.h"

namespace sddd::diagnosis {

namespace {

obs::Counter& sig_cache_hits_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("dict.sig_cache.hits");
  return c;
}

obs::Counter& sig_cache_misses_counter() {
  static obs::Counter& c = obs::MetricsRegistry::instance().register_counter(
      "dict.sig_cache.misses");
  return c;
}

obs::Counter& sig_cache_bytes_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("dict.sig_cache.bytes");
  return c;
}

// FNV-1a over the launch/capture bits plus their lengths.  Equality of the
// stored pattern is always verified afterwards, so a collision only costs
// one extra Entry in the bucket, never a wrong column.
std::uint64_t pattern_fingerprint(const logicsim::PatternPair& p) {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  const auto mix = [&h](std::uint64_t byte) {
    h ^= byte;
    h *= kPrime;
  };
  const auto mix_bits = [&](const logicsim::Pattern& bits) {
    mix(bits.size() & 0xff);
    mix((bits.size() >> 8) & 0xff);
    std::uint64_t word = 0;
    std::size_t fill = 0;
    for (const bool bit : bits) {
      word = (word << 1) | static_cast<std::uint64_t>(bit);
      if (++fill == 8) {
        mix(word);
        word = 0;
        fill = 0;
      }
    }
    if (fill != 0) mix(word);
  };
  mix_bits(p.v1);
  mix_bits(p.v2);
  return h;
}

bool same_pattern(const logicsim::PatternPair& a,
                  const logicsim::PatternPair& b) {
  return a.v1 == b.v1 && a.v2 == b.v2;
}

}  // namespace

void SignatureCache::AlignedFree::operator()(double* p) const noexcept {
  ::operator delete[](p, std::align_val_t{64});
}

SignatureCache::SignatureCache(const timing::DynamicTimingSimulator& sim,
                               const logicsim::BitSimulator& logic_sim,
                               const netlist::Levelization& lev,
                               const defect::DefectSizeModel& size_model,
                               double clk, bool match_on_total_probability)
    : sim_(&sim),
      logic_sim_(&logic_sim),
      lev_(&lev),
      size_model_(&size_model),
      clk_(clk),
      match_e_(match_on_total_probability) {}

std::span<const double> SignatureCache::sizes_for(
    netlist::ArcId suspect) const {
  const std::lock_guard<std::mutex> lock(sizes_mu_);
  auto it = sizes_.find(suspect);
  if (it == sizes_.end()) {
    const std::size_t n = sim_->field().sample_count();
    std::vector<double> table(n);
    for (std::size_t k = 0; k < n; ++k) {
      table[k] = size_model_->sample(suspect, k);
    }
    it = sizes_.emplace(suspect, std::move(table)).first;
  }
  // The vector's heap buffer survives any later map rehash, so the span
  // stays valid without holding the lock.
  return {it->second.data(), it->second.size()};
}

SignatureCache::Entry& SignatureCache::entry_for(
    const logicsim::PatternPair& pattern) const {
  const std::uint64_t fp = pattern_fingerprint(pattern);
  const std::lock_guard<std::mutex> lock(map_mu_);
  auto& bucket = entries_[fp];
  for (const auto& e : bucket) {
    if (same_pattern(e->pattern, pattern)) return *e;
  }
  bucket.push_back(std::make_unique<Entry>());
  bucket.back()->pattern = pattern;
  return *bucket.back();
}

const SignatureCache::CollapseSlice& SignatureCache::collapse_slice(
    const logicsim::PatternPair& pattern) const {
  Entry& entry = entry_for(pattern);
  const std::lock_guard<std::mutex> lock(entry.mu);
  if (entry.collapse == nullptr) {
    // One transient PatternSlice: its ternary transition graph yields the
    // active-arc flags, its baseline error vector the column every
    // inactive suspect's E column equals (dynamic_sim falls back to
    // error_vector_into when the arc is off every active path).  Under S
    // matching that shared column is exactly zero: S = max(M - M, 0).
    const PatternSlice slice(*sim_, *logic_sim_, *lev_, pattern, clk_);
    auto cs = std::make_unique<CollapseSlice>();
    const auto& nl = logic_sim_->netlist();
    cs->active.resize(nl.arc_count());
    for (netlist::ArcId a = 0; a < nl.arc_count(); ++a) {
      cs->active[a] = slice.transition_graph().is_active(a) ? 1 : 0;
    }
    if (match_e_) {
      cs->baseline = slice.m_column();
    } else {
      cs->baseline.assign(slice.m_column().size(), 0.0);
    }
    n_outputs_.store(cs->baseline.size(), std::memory_order_release);
    entry.collapse = std::move(cs);
  }
  return *entry.collapse;
}

void SignatureCache::columns(const logicsim::PatternPair& pattern,
                             std::span<const netlist::ArcId> suspects,
                             std::vector<const double*>& out) const {
  Entry& entry = entry_for(pattern);
  out.resize(suspects.size());
  const std::lock_guard<std::mutex> lock(entry.mu);

  // First pass: serve what is already built, collect the rest.
  std::vector<std::size_t> missing;
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    const auto it = entry.index.find(suspects[i]);
    if (it != entry.index.end()) {
      out[i] = entry.cols[it->second].get();
      ++hits;
    } else {
      out[i] = nullptr;
      missing.push_back(i);
    }
  }
  if (hits != 0) {
    hits_.fetch_add(hits, std::memory_order_relaxed);
    sig_cache_hits_counter().add(hits);
  }
  if (missing.empty()) return;

  // Build the missing columns through the same validated dictionary path
  // the scalar diagnoser uses; the slice (baseline arrival matrix) lives
  // only for this scope - the cache keeps just the |O|-double columns.
  const PatternSlice slice(*sim_, *logic_sim_, *lev_, pattern, clk_);
  std::vector<double> scratch;
  std::uint64_t built = 0;
  std::uint64_t built_bytes = 0;
  for (const std::size_t i : missing) {
    const netlist::ArcId suspect = suspects[i];
    // A suspect may repeat within one call; the second occurrence is now
    // a hit on the column the first one just built.
    const auto it = entry.index.find(suspect);
    if (it != entry.index.end()) {
      out[i] = entry.cols[it->second].get();
      hits_.fetch_add(1, std::memory_order_relaxed);
      sig_cache_hits_counter().add(1);
      continue;
    }
    const std::span<const double> sizes = sizes_for(suspect);
    if (match_e_) {
      slice.e_column_into(suspect, sizes, scratch);
    } else {
      slice.signature_column_into(suspect, sizes, scratch);
    }
    const std::size_t n = scratch.size();
    Column col(static_cast<double*>(
        ::operator new[](n * sizeof(double), std::align_val_t{64})));
    if (n != 0) std::memcpy(col.get(), scratch.data(), n * sizeof(double));
    entry.index.emplace(suspect, entry.cols.size());
    entry.cols.push_back(std::move(col));
    out[i] = entry.cols.back().get();
    ++built;
    built_bytes += n * sizeof(double);
    n_outputs_.store(n, std::memory_order_release);
  }
  misses_.fetch_add(built, std::memory_order_relaxed);
  sig_cache_misses_counter().add(built);
  bytes_.fetch_add(built_bytes, std::memory_order_relaxed);
  sig_cache_bytes_counter().add(built_bytes);
  if (built != 0) {
    // One breadcrumb per miss *batch*, not per column: which caller built
    // a shared column is schedule-dependent, so these events are excluded
    // from the deterministic-merge contract (DESIGN.md section 14).
    obs::Recorder::instance().record(obs::EventKind::kCacheMiss, "sig", built,
                                     built_bytes);
  }
}

SignatureCache::Stats SignatureCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sddd::diagnosis
