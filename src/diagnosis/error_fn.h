// error_fn.h - Diagnosis error functions (Sections E step 7 and F).
//
// Each function turns the per-pattern consistency probabilities phi_j into
// one score per suspect, and defines whether larger or smaller is better:
//
//   phi_j = prod_k [ b_kj * s_kj + (1 - b_kj) * (1 - s_kj) ]       (steps 5-6)
//
//   Method I    score = 1 - prod_j (1 - phi_j)     maximize
//   Method II   score = (sum_j phi_j) / |TP|       maximize
//   Method III  score = prod_j phi_j               maximize (degenerate:
//               collapses to ~0 whenever any pattern mismatches - the
//               paper's Section I observation)
//   Alg_rev     score = sum_j (1 - phi_j)^2        minimize (Euclidean
//               distance to the all-match ideal, eq. (5))
//
// The interface is open: users add error functions (the paper's future
// work #5) by implementing DiagnosisErrorFn.
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace sddd::diagnosis {

/// The four built-in functions, in the paper's naming.
enum class Method {
  kSimI,
  kSimII,
  kSimIII,
  kRev,
};

std::string_view method_name(Method m);

/// Computes phi_j for one pattern: the probability that the suspect's
/// signature column reproduces the observed column of B (Algorithm E.1
/// steps 5-6).  `b_column[k]` is the observed fail bit of output k;
/// `s_column[k]` the signature probability.
double phi(std::span<const double> s_column,
           const std::vector<bool>& b_column);

/// Batched form of the diag.phi_evals accounting phi() performs per call.
/// The packed multi-suspect kernel (score_kernel.h) evaluates a whole
/// suspect set per pattern and accounts for all of them with one counter
/// update instead of |S| atomic adds in the inner loop.
void note_phi_evals(std::size_t n);

/// Strategy interface for scoring a suspect from its per-pattern phi
/// values.  Implementations must be stateless and cheap to copy.
class DiagnosisErrorFn {
 public:
  virtual ~DiagnosisErrorFn() = default;

  /// Aggregates phi_1..phi_|TP| into one score.
  virtual double score(std::span<const double> phis) const = 0;

  /// True when a larger score means a more probable suspect.
  virtual bool higher_is_better() const = 0;

  virtual std::string_view name() const = 0;
};

/// Factory for the built-in functions.
std::unique_ptr<DiagnosisErrorFn> make_error_fn(Method m);

/// Applies `fn` incrementally: the diagnoser accumulates phi values one
/// pattern at a time without storing the full phi matrix.  Accumulator
/// semantics per method are kept inside this class.
///
/// phi values are products over all primary outputs and can be far below
/// double's representable range once |O| is large; the products in Methods
/// I and III then underflow (e.g. 1 - prod(1 - phi) evaluates to exactly 0
/// for EVERY suspect, collapsing the ranking to declaration order).  The
/// accumulator therefore also tracks log-domain statistics and exposes an
/// order-equivalent, underflow-safe ranking_key(); finish() still reports
/// the probability-domain score of the paper's formulas.
class ScoreAccumulator {
 public:
  explicit ScoreAccumulator(Method m);

  void add_phi(double phi_j);

  /// The paper's probability-domain score (may underflow for I/III).
  double finish(std::size_t n_patterns) const;

  /// Monotone surrogate of finish() computed in log space; always finite
  /// and strictly order-preserving.  Direction matches the method
  /// (ranks_better).
  double ranking_key(std::size_t n_patterns) const;

  Method method() const { return method_; }

 private:
  Method method_;
  double sum_ = 0.0;        ///< sum phi                    (Method II)
  double sq_sum_ = 0.0;     ///< sum (1 - phi)^2            (Alg_rev)
  double log1m_sum_ = 0.0;  ///< sum log(1 - phi)           (Method I)
  double logphi_sum_ = 0.0; ///< sum log(max(phi, 1e-300))  (Method III)
};

/// True when `a` ranks strictly better than `b` under method `m` (applies
/// to both finish() scores and ranking_key() values - the direction is the
/// same).
bool ranks_better(Method m, double a, double b);

}  // namespace sddd::diagnosis
