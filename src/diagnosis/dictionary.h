// dictionary.h - The probabilistic fault dictionary (Sections C-1, E).
//
// For a pattern set TP and cut-off clk the dictionary holds, per pattern v:
//   - M_crt column: Err(C, v, clk), the defect-free critical probabilities
//     per output (Definition D.7), and
//   - on demand, E_crt columns: Err(D_s(C), v, clk) for a candidate single
//     defect D_s on a suspect arc, with the defect size drawn per
//     Monte-Carlo sample from the (known) defect-size model - the paper's
//     "delay defect size is a random variable".
// The signature column is their difference S = E - M (Definition E.1),
// guaranteed >= 0 because every timing quantity is monotone in every arc
// delay under the transition-mode semantics.
//
// Construction cost note (the paper's feasibility question (3)): M columns
// require one full dynamic simulation per pattern; each E column only
// re-simulates the suspect's active fan-out cone against the cached
// baseline.  Memory holds one pattern's baseline arrival matrix at a time
// when used through PatternSlice, so dictionaries for large circuits never
// materialize |E| x |TP| probability matrices unless asked to.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "defect/defect_model.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "paths/transition_graph.h"
#include "timing/dynamic_sim.h"

namespace sddd::diagnosis {

/// Everything the dictionary needs about one pattern: the induced circuit,
/// the baseline (defect-free) arrivals and the M_crt column.
class PatternSlice {
 public:
  PatternSlice(const timing::DynamicTimingSimulator& sim,
               const logicsim::BitSimulator& logic_sim,
               const netlist::Levelization& lev,
               const logicsim::PatternPair& pattern, double clk);

  const paths::TransitionGraph& transition_graph() const { return tg_; }

  /// M_crt column: defect-free critical probability per output.
  const std::vector<double>& m_column() const { return m_col_; }

  /// E_crt column for a defect on `suspect` whose per-sample sizes come
  /// from `size_model` (addressed by the suspect arc id, so the same chip
  /// sample sees the same defect size across patterns).
  std::vector<double> e_column(netlist::ArcId suspect,
                               const defect::DefectSizeModel& size_model) const;

  /// Signature column S = max(E - M, 0) (Definition E.1).
  std::vector<double> signature_column(
      netlist::ArcId suspect, const defect::DefectSizeModel& size_model) const;

  /// Allocation-free e_column: the per-sample defect sizes come from
  /// `sizes` (sizes[k] must equal size_model.sample(suspect, k) - the
  /// diagnoser and the signature cache precompute these once per suspect
  /// instead of resampling per (pattern, suspect) call), and the column is
  /// written into `out`, which hot callers reuse across calls.  Produces
  /// bit-identical columns to e_column().
  void e_column_into(netlist::ArcId suspect, std::span<const double> sizes,
                     std::vector<double>& out) const;

  /// signature_column through the same reused-buffer path:
  /// S = max(E - M, 0) computed in place in `out`.
  void signature_column_into(netlist::ArcId suspect,
                             std::span<const double> sizes,
                             std::vector<double>& out) const;

  double clk() const { return clk_; }

  /// Monte-Carlo samples behind every probability this slice produces
  /// (the n of the Wilson intervals the introspection layer attaches).
  std::size_t sample_count() const { return sim_->field().sample_count(); }

 private:
  const timing::DynamicTimingSimulator* sim_;
  paths::TransitionGraph tg_;
  timing::ArrivalMatrix baseline_;
  std::vector<double> m_col_;
  double clk_;
};

/// Full-dictionary convenience: owns slices for every pattern.  Fine for
/// the benchmark-scale circuits of the paper; memory-conscious callers
/// (the Table I harness) construct PatternSlices one at a time instead.
class FaultDictionary {
 public:
  FaultDictionary(const timing::DynamicTimingSimulator& sim,
                  const logicsim::BitSimulator& logic_sim,
                  const netlist::Levelization& lev,
                  std::span<const logicsim::PatternPair> patterns, double clk);

  std::size_t pattern_count() const { return slices_.size(); }
  const PatternSlice& slice(std::size_t j) const { return *slices_[j]; }

  /// Monte-Carlo samples behind every entry (0 for an empty dictionary).
  std::size_t sample_count() const {
    return slices_.empty() ? 0 : slices_.front()->sample_count();
  }

  /// Full M_crt matrix, output-major: [output][pattern].
  std::vector<std::vector<double>> m_matrix() const;

  /// Full E_crt matrix for one suspect, output-major.
  std::vector<std::vector<double>> e_matrix(
      netlist::ArcId suspect, const defect::DefectSizeModel& size_model) const;

 private:
  std::vector<std::unique_ptr<PatternSlice>> slices_;
};

}  // namespace sddd::diagnosis
