// logic_baseline.h - Traditional logic-domain diagnosis baseline.
//
// The paper's Sections A-C motivate the statistical approach by contrast
// with classic effect-cause dictionary diagnosis, which "is done purely on
// the logic domain" and cannot account for delay configurations or defect
// sizes.  To make that contrast measurable, this module implements the
// strongest logic-only competitor available for delay defects: a
// *gross-delay* fault dictionary.
//
// Under the gross-delay assumption a defect on arc e makes every
// transition through e arrive too late, so pattern v flags output o iff e
// lies on an active path to o - a deterministic 0/1 signature computable
// from sensitization alone (exactly the cone information Algorithm E.1's
// step 1 uses, with no timing).  Diagnosis then ranks suspects by Hamming
// distance between their 0/1 signature and the observed behavior matrix.
//
// The Table I-style comparison (bench_ablation A7) shows where this
// breaks: real defects are finite-size, so short-path cells predicted "1"
// by the gross dictionary actually pass, and the logic baseline
// mis-ranks - the gap is the value of the probabilistic dictionary.
#pragma once

#include <span>
#include <vector>

#include "diagnosis/behavior.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"

namespace sddd::diagnosis {

/// One suspect's ranking under the logic baseline.
struct LogicRankedSuspect {
  netlist::ArcId arc = netlist::kInvalidArc;
  std::size_t hamming = 0;  ///< mismatched cells vs B (lower = better)
};

/// Gross-delay 0/1 dictionary diagnosis.  Suspect extraction is the same
/// cause-effect cone union as the statistical Diagnoser; ranking is
/// Hamming distance over all (output, pattern) cells.
class LogicBaselineDiagnoser {
 public:
  LogicBaselineDiagnoser(const logicsim::BitSimulator& logic_sim,
                         const netlist::Levelization& lev)
      : logic_sim_(&logic_sim), lev_(&lev) {}

  /// 0/1 signature of one suspect: cell (i, j) = 1 iff the suspect arc is
  /// on an active path to output i under pattern j.
  std::vector<std::vector<bool>> signature(
      std::span<const logicsim::PatternPair> patterns,
      netlist::ArcId suspect) const;

  /// Ranked diagnosis, best (smallest Hamming distance) first.  Ties keep
  /// arc-id order.  The suspect set is extracted from B exactly as in
  /// Algorithm E.1 step 1.
  std::vector<LogicRankedSuspect> diagnose(
      std::span<const logicsim::PatternPair> patterns,
      const BehaviorMatrix& B) const;

 private:
  const logicsim::BitSimulator* logic_sim_;
  const netlist::Levelization* lev_;
};

}  // namespace sddd::diagnosis
