// score_kernel.h - The per-chip scoring hot path: phi for a whole suspect
// block against one chip's bit-packed behavior column.
//
// The scalar reference is phi() in error_fn.h: per suspect, a product over
// primary outputs k of (b_k ? s_k : 1 - s_k).  The kernel evaluates
// kKernelLanes suspects at a time, each lane keeping its own independent
// accumulator chain over a contiguous (suspect-major SoA) signature
// column, and reads the chip's b bits from a 64-bit packed column.
//
// Bit-identity argument (DESIGN.md section 12): each lane multiplies its
// factors in exactly the scalar loop's output order, the factor is the
// same select between s and 1 - s (never an arithmetic blend like
// (1 - s) + b * (2s - 1), which rounds differently), and lanes never mix,
// so every phi the kernel produces equals the scalar phi() bit for bit.
// The independence of the 8 accumulator chains is what keeps the FP
// pipeline fed - the multiply latency of one chain hides behind the other
// seven - without reassociating any suspect's own product.
//
// The kernel performs no per-call contract scan and no per-suspect counter
// update: columns are validated once at cache-ingest time (see
// signature_matrix.h) and the diagnoser batches diag.phi_evals per pattern
// via note_phi_evals().
#pragma once

#include <cstdint>
#include <vector>

#include "diagnosis/behavior.h"
#include "obs/metrics.h"

namespace sddd::diagnosis {

/// One chip behavior column B[:, j] packed one bit per primary output.
class PackedBColumn {
 public:
  PackedBColumn() = default;

  /// Packs column `pattern` of B, reusing the word storage across calls.
  void pack(const BehaviorMatrix& B, std::size_t pattern);

  std::size_t bit_count() const { return n_; }

  bool test(std::size_t k) const {
    return ((words_[k >> 6] >> (k & 63)) & 1U) != 0;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Suspects evaluated per block of independent accumulator chains.
inline constexpr std::size_t kKernelLanes = 8;

/// phi for `n_cols` suspects: cols[i] is suspect i's signature/E column of
/// `n_outputs` doubles, `b` the packed chip column (bit_count() must be
/// n_outputs), out[i] the resulting phi - bit-identical to
/// phi(cols[i], b_unpacked) minus that function's per-call contract scan
/// and counter update (see header comment).
void phi_block(const double* const* cols, std::size_t n_cols,
               std::size_t n_outputs, const PackedBColumn& b, double* out);

/// diag.kernel.* accounting, batched per pattern by the kernel scoring
/// path: one pattern evaluated over `n_suspects` cached columns.
void note_kernel_pattern(std::size_t n_suspects);

/// Wall-time split of the kernel scoring path (both are sub-spans of
/// diag.score_ns): cached-column acquisition vs packed phi evaluation.
obs::Counter& kernel_build_ns_counter();
obs::Counter& kernel_phi_ns_counter();

}  // namespace sddd::diagnosis
