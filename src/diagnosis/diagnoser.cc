#include "diagnosis/diagnoser.h"

#include <algorithm>
#include <stdexcept>

#include "diagnosis/score_kernel.h"
#include "diagnosis/signature_matrix.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "paths/path_enum.h"
#include "runtime/parallel_for.h"

namespace sddd::diagnosis {

using netlist::ArcId;
using netlist::GateId;

namespace {

// Diagnosis accounting: CPU split between suspect extraction and the
// per-pattern scoring loop (counters sum across threads).
obs::Counter& diag_extract_ns_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("diag.extract_ns");
  return c;
}

obs::Counter& diag_score_ns_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("diag.score_ns");
  return c;
}

obs::Counter& diag_suspects_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("diag.suspects");
  return c;
}

// Per-diagnosis wall latency shape (one sample per diagnosed chip); the
// p50/p95/p99 summaries land in the metrics JSON.  Wall-clock valued, so
// not part of any byte-identity contract.
obs::Histogram& diag_chip_ms_histogram() {
  static constexpr double kBoundsMs[] = {0.25, 0.5, 1,    2.5,  5,    10,
                                         25,   50,  100,  250,  500,  1000,
                                         2500, 5000};
  static obs::Histogram& h = obs::MetricsRegistry::instance()
                                 .register_histogram("diag.chip_ms",
                                                     kBoundsMs);
  return h;
}

}  // namespace

Diagnoser::Diagnoser(const timing::DynamicTimingSimulator& sim,
                     const logicsim::BitSimulator& logic_sim,
                     const netlist::Levelization& lev,
                     const defect::DefectSizeModel& size_model,
                     DiagnoserConfig config)
    : sim_(&sim),
      logic_sim_(&logic_sim),
      lev_(&lev),
      size_model_(&size_model),
      config_(config) {}

std::vector<ArcId> Diagnoser::extract_suspects(
    std::span<const logicsim::PatternPair> patterns,
    const BehaviorMatrix& B) const {
  SDDD_SPAN(span, "diag.extract");
  span.arg("failing_patterns",
           static_cast<std::int64_t>(B.failing_patterns().size()));
  const obs::ScopedNsTimer timer(diag_extract_ns_counter());
  const auto& nl = logic_sim_->netlist();
  std::vector<std::uint32_t> support(nl.arc_count(), 0);
  for (const std::size_t j : B.failing_patterns()) {
    const paths::TransitionGraph tg(*logic_sim_, *lev_, patterns[j]);
    for (const GateId o : B.failing_output_gates(nl, j)) {
      const auto cone = tg.cone_to_output(o);
      for (ArcId a = 0; a < nl.arc_count(); ++a) {
        if (cone[a]) ++support[a];
      }
    }
  }
  std::vector<ArcId> suspects;
  for (ArcId a = 0; a < nl.arc_count(); ++a) {
    if (support[a] > 0) suspects.push_back(a);
  }
  if (config_.max_suspects > 0 && suspects.size() > config_.max_suspects) {
    // Keep the best-supported suspects; stable ordering keeps the result
    // deterministic.
    std::stable_sort(suspects.begin(), suspects.end(),
                     [&](ArcId a, ArcId b) { return support[a] > support[b]; });
    suspects.resize(config_.max_suspects);
    std::sort(suspects.begin(), suspects.end());
  }
  diag_suspects_counter().add(suspects.size());
  return suspects;
}

DiagnosisResult Diagnoser::diagnose(
    std::span<const logicsim::PatternPair> patterns, const BehaviorMatrix& B,
    std::span<const Method> methods, double clk) const {
  if (B.pattern_count() != patterns.size()) {
    throw std::invalid_argument("Diagnoser: behavior/pattern size mismatch");
  }
  const std::uint64_t t0 = obs::now_ns();
  DiagnosisResult result;
  result.methods.assign(methods.begin(), methods.end());
  result.suspects = extract_suspects(patterns, B);
  result.mc_samples = sim_->field().sample_count();

  const std::size_t n_suspects = result.suspects.size();
  const std::size_t n_patterns = patterns.size();
  if (config_.capture_phi) {
    result.phi.assign(n_suspects, std::vector<double>(n_patterns, 0.0));
  }

  // One accumulator per (method, suspect); filled pattern-by-pattern so a
  // single baseline arrival matrix is alive at a time.
  std::vector<std::vector<ScoreAccumulator>> acc;
  acc.reserve(methods.size());
  for (const Method m : methods) {
    acc.emplace_back(n_suspects, ScoreAccumulator(m));
  }

  // Both scoring paths feed each (method, suspect) accumulator its phi
  // values in pattern order, so scores and ranks are bit-identical for
  // every thread count - and to each other (score_kernel.h carries the
  // argument; tests/test_score_kernel.cc and the ci.sh kernel smoke step
  // enforce it end to end).
  if (config_.cache != nullptr) {
    score_kernel_path(patterns, B, clk, result, acc);
  } else {
    score_scalar(patterns, B, clk, result, acc);
  }

  result.scores.resize(methods.size());
  result.keys.resize(methods.size());
  for (std::size_t m = 0; m < methods.size(); ++m) {
    result.scores[m].resize(n_suspects);
    result.keys[m].resize(n_suspects);
    for (std::size_t s = 0; s < n_suspects; ++s) {
      result.scores[m][s] = acc[m][s].finish(n_patterns);
      result.keys[m][s] = acc[m][s].ranking_key(n_patterns);
    }
  }
  diag_chip_ms_histogram().record(static_cast<double>(obs::now_ns() - t0) *
                                  1e-6);
  obs::Recorder::instance().record(obs::EventKind::kDiagnose, "",
                                   B.failure_count(), n_suspects, n_patterns);
  return result;
}

void Diagnoser::score_scalar(
    std::span<const logicsim::PatternPair> patterns, const BehaviorMatrix& B,
    double clk, DiagnosisResult& result,
    std::vector<std::vector<ScoreAccumulator>>& acc) const {
  const std::size_t n_suspects = result.suspects.size();
  const std::size_t n_outputs = B.output_count();

  // Per-suspect defect-size tables, computed once: sample(arc, k) is a
  // pure function of (arc, k), so hoisting the resampling out of the
  // (pattern, suspect) loop changes nothing but the allocation count.
  std::vector<std::vector<double>> sizes(n_suspects);
  const std::size_t n_samples = sim_->field().sample_count();
  runtime::parallel_for(n_suspects, [&](std::size_t s) {
    auto& table = sizes[s];
    table.resize(n_samples);
    for (std::size_t k = 0; k < n_samples; ++k) {
      table[k] = size_model_->sample(result.suspects[s], k);
    }
  });

  // Suspects are embarrassingly parallel once the pattern's baseline
  // arrival matrix exists: the slice is built serially (it materializes
  // every arc-delay row its cones will read), then each suspect evaluates
  // its E column against the shared read-only slice and writes only its
  // own accumulators.  Chunking lets one column buffer serve a whole run
  // of suspects instead of heap-allocating per (pattern, suspect).
  std::vector<bool> b_col(n_outputs);
  std::vector<char> inactive(n_suspects, 0);
  for (std::size_t j = 0; j < patterns.size(); ++j) {
    SDDD_SPAN(span, "diag.pattern");
    span.arg("pattern", static_cast<std::int64_t>(j))
        .arg("suspects", static_cast<std::int64_t>(n_suspects));
    const obs::ScopedNsTimer timer(diag_score_ns_counter());
    const PatternSlice slice(*sim_, *logic_sim_, *lev_, patterns[j], clk);
    for (std::size_t i = 0; i < n_outputs; ++i) b_col[i] = B.at(i, j);

    // Equivalence-class collapse: a suspect off every active path of this
    // pattern has an E column bit-identical to the baseline M column (and
    // an exactly-zero S column), so one phi of the baseline serves all of
    // them.  phi values, scores and ranks are unchanged; only the eval
    // count drops.
    double collapsed_phi = 0.0;
    bool any_inactive = false;
    if (config_.collapse_unobservable) {
      const paths::TransitionGraph& tg = slice.transition_graph();
      for (std::size_t s = 0; s < n_suspects; ++s) {
        inactive[s] = tg.is_active(result.suspects[s]) ? 0 : 1;
        if (inactive[s]) any_inactive = true;
      }
      if (any_inactive) {
        if (config_.match_on_total_probability) {
          collapsed_phi = phi(slice.m_column(), b_col);
        } else {
          const std::vector<double> zeros(n_outputs, 0.0);
          collapsed_phi = phi(zeros, b_col);
        }
      }
    }

    runtime::parallel_for_chunked(
        n_suspects, 16, [&](std::size_t lo, std::size_t hi) {
          std::vector<double> col;
          for (std::size_t s = lo; s < hi; ++s) {
            double phi_j;
            if (config_.collapse_unobservable && inactive[s]) {
              phi_j = collapsed_phi;
            } else {
              if (config_.match_on_total_probability) {
                slice.e_column_into(result.suspects[s], sizes[s], col);
              } else {
                slice.signature_column_into(result.suspects[s], sizes[s], col);
              }
              phi_j = phi(col, b_col);
            }
            if (config_.capture_phi) result.phi[s][j] = phi_j;
            for (auto& method_acc : acc) method_acc[s].add_phi(phi_j);
          }
        });
  }
}

void Diagnoser::score_kernel_path(
    std::span<const logicsim::PatternPair> patterns, const BehaviorMatrix& B,
    double clk, DiagnosisResult& result,
    std::vector<std::vector<ScoreAccumulator>>& acc) const {
  const SignatureCache& cache = *config_.cache;
  if (cache.clk() != clk) {
    throw std::invalid_argument(
        "Diagnoser: signature cache built for a different clk");
  }
  if (cache.match_on_total_probability() !=
      config_.match_on_total_probability) {
    throw std::invalid_argument(
        "Diagnoser: signature cache built for a different match mode");
  }

  const std::size_t n_suspects = result.suspects.size();
  const std::size_t n_outputs = B.output_count();
  std::vector<const double*> cols;
  std::vector<double> phi_row(n_suspects);
  std::vector<netlist::ArcId> active_suspects;
  std::vector<std::size_t> active_pos;
  std::vector<double> phi_active;
  PackedBColumn b;
  for (std::size_t j = 0; j < patterns.size(); ++j) {
    SDDD_SPAN(span, "diag.kernel.pattern");
    span.arg("pattern", static_cast<std::int64_t>(j))
        .arg("suspects", static_cast<std::int64_t>(n_suspects));
    const obs::ScopedNsTimer timer(diag_score_ns_counter());

    if (config_.collapse_unobservable) {
      // Equivalence-class collapse, kernel flavor: the cache's per-pattern
      // collapse slice says which suspects this pattern sensitizes at all;
      // the rest provably share the baseline column, so they share one
      // phi_block lane and never build (or even look up) a column.
      const SignatureCache::CollapseSlice& cs =
          cache.collapse_slice(patterns[j]);
      active_suspects.clear();
      active_pos.clear();
      for (std::size_t s = 0; s < n_suspects; ++s) {
        if (cs.active[result.suspects[s]]) {
          active_suspects.push_back(result.suspects[s]);
          active_pos.push_back(s);
        }
      }
      const std::size_t n_active = active_suspects.size();
      const bool any_inactive = n_active < n_suspects;
      double collapsed_phi = 0.0;
      {
        const obs::ScopedNsTimer build_timer(kernel_build_ns_counter());
        cache.columns(patterns[j], active_suspects, cols);
        b.pack(B, j);
      }
      {
        const obs::ScopedNsTimer phi_timer(kernel_phi_ns_counter());
        if (any_inactive) {
          const double* baseline = cs.baseline.data();
          phi_block(&baseline, 1, n_outputs, b, &collapsed_phi);
        }
        phi_active.resize(n_active);
        runtime::parallel_for_chunked(
            n_active, 64, [&](std::size_t lo, std::size_t hi) {
              phi_block(cols.data() + lo, hi - lo, n_outputs, b,
                        phi_active.data() + lo);
            });
        // Scatter: every suspect gets the same phi value the uncollapsed
        // run computes for it (phi_block is per-column independent, so
        // compaction changes nothing), inactive ones the shared baseline.
        std::fill(phi_row.begin(), phi_row.end(), collapsed_phi);
        for (std::size_t i = 0; i < n_active; ++i) {
          phi_row[active_pos[i]] = phi_active[i];
        }
        for (std::size_t s = 0; s < n_suspects; ++s) {
          if (config_.capture_phi) result.phi[s][j] = phi_row[s];
          for (auto& method_acc : acc) method_acc[s].add_phi(phi_row[s]);
        }
      }
      note_phi_evals(n_active + (any_inactive ? 1 : 0));
      note_kernel_pattern(n_active);
      continue;
    }

    {
      const obs::ScopedNsTimer build_timer(kernel_build_ns_counter());
      cache.columns(patterns[j], result.suspects, cols);
      b.pack(B, j);
    }
    {
      const obs::ScopedNsTimer phi_timer(kernel_phi_ns_counter());
      // Chunk boundaries depend only on (n, grain), each lane keeps its
      // own accumulator, and every suspect writes only its own slots - so
      // phi_row is byte-identical at any thread count.
      runtime::parallel_for_chunked(
          n_suspects, 64, [&](std::size_t lo, std::size_t hi) {
            phi_block(cols.data() + lo, hi - lo, n_outputs, b,
                      phi_row.data() + lo);
            for (std::size_t s = lo; s < hi; ++s) {
              if (config_.capture_phi) result.phi[s][j] = phi_row[s];
              for (auto& method_acc : acc) method_acc[s].add_phi(phi_row[s]);
            }
          });
    }
    // Same diag.phi_evals accounting as n_suspects scalar phi() calls,
    // batched; plus the kernel's own pattern/suspect tallies.
    note_phi_evals(n_suspects);
    note_kernel_pattern(n_suspects);
  }
}

std::vector<RankedSuspect> DiagnosisResult::ranked(Method m) const {
  const auto it = std::find(methods.begin(), methods.end(), m);
  if (it == methods.end()) {
    throw std::invalid_argument("DiagnosisResult: method not computed");
  }
  const auto mi = static_cast<std::size_t>(it - methods.begin());
  const auto& sc = scores[mi];
  const auto& key = keys[mi];
  std::vector<std::size_t> order(suspects.size());
  for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ranks_better(m, key[a], key[b]);
                   });
  std::vector<RankedSuspect> out(suspects.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    out[i] = RankedSuspect{suspects[order[i]], sc[order[i]]};
  }
  return out;
}

bool DiagnosisResult::hit_within(Method m, ArcId arc, std::size_t k) const {
  const auto r = ranked(m);
  const std::size_t limit = std::min(k, r.size());
  for (std::size_t i = 0; i < limit; ++i) {
    if (r[i].arc == arc) return true;
  }
  return false;
}

}  // namespace sddd::diagnosis
