// signature_matrix.h - Cached suspect signature/E columns, shared across
// every chip of an experiment.
//
// A dictionary column depends only on (pattern, suspect, size model,
// dictionary delay field, clk, match mode) - never on the chip under
// diagnosis - yet the scalar diagnose() path re-runs the Monte-Carlo cone
// simulation behind every column for every chip.  The cache materializes
// each column exactly once, in a suspect-major SoA layout (one 64-byte-
// aligned contiguous column of |O| doubles per suspect), and hands the
// scoring kernel (score_kernel.h) stable pointers; every later chip that
// shares the (circuit, clk, pattern set) pays only the packed phi
// evaluation.  Columns are validated once here, at ingest, so the kernel
// needs no per-evaluation contract scan; coverage under SDDD_CHECK is
// unchanged because every column still passes through the same
// check_probability_column / check_signature_column guards as the scalar
// path - just once per column instead of once per (chip, column).
//
// Keying: patterns are keyed by an FNV-1a fingerprint of their (v1, v2)
// bits with full equality verification on the stored pattern (collisions
// fall into a bucket list), and the cache as a whole is keyed by
// construction - one cache per ExperimentSetup, whose inputs are exactly
// the fields of the experiment run fingerprint (see DESIGN.md section 12).
// The defect-size table per suspect is precomputed once (sample(arc, k) is
// a pure function of (arc, k)), so cached columns are bit-identical to the
// ones the scalar path rebuilds per chip.
//
// Thread safety: one experiment shares a single cache across its parallel
// trial workers.  A cache-level mutex guards the pattern map, a per-entry
// mutex serializes column builds for one pattern (distinct patterns build
// concurrently), and returned pointers stay valid for the cache's lifetime
// - columns are never moved or evicted.  The underlying simulator must be
// prewarm()ed before concurrent use, exactly as for the scalar path.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "defect/defect_model.h"
#include "diagnosis/dictionary.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "timing/dynamic_sim.h"

namespace sddd::diagnosis {

class SignatureCache {
 public:
  /// `sim` must wrap the *dictionary* delay field.  `clk` and the match
  /// mode are fixed per cache (they change every column); diagnose() calls
  /// against a different clk or match mode are rejected.
  SignatureCache(const timing::DynamicTimingSimulator& sim,
                 const logicsim::BitSimulator& logic_sim,
                 const netlist::Levelization& lev,
                 const defect::DefectSizeModel& size_model, double clk,
                 bool match_on_total_probability);

  double clk() const { return clk_; }
  bool match_on_total_probability() const { return match_e_; }

  /// Monte-Carlo samples behind every cached column.
  std::size_t sample_count() const { return sim_->field().sample_count(); }

  /// Column length (|O|); 0 until the first column has been built.
  std::size_t output_count() const {
    return n_outputs_.load(std::memory_order_acquire);
  }

  /// Writes the column pointer of every suspect under `pattern` into
  /// out[i] (suspect order preserved), building any columns not yet
  /// cached.  Pointers address contiguous, ingest-validated columns of
  /// output_count() doubles and stay valid for the cache's lifetime.
  void columns(const logicsim::PatternPair& pattern,
               std::span<const netlist::ArcId> suspects,
               std::vector<const double*>& out) const;

  /// Per-pattern equivalence-class collapse support (see
  /// DiagnoserConfig::collapse_unobservable): which arcs the pattern
  /// sensitizes at all, plus the baseline column every *unsensitized*
  /// suspect's column provably equals bit-for-bit (the defect-free M
  /// column under E matching, the exact-zero column under S matching).
  struct CollapseSlice {
    std::vector<char> active;      ///< per arc: on some active path
    std::vector<double> baseline;  ///< |O| doubles; shared inactive column
  };

  /// The collapse slice of `pattern`, built on first use (one transient
  /// PatternSlice, amortized across every chip of the experiment).  The
  /// reference stays valid for the cache's lifetime.
  const CollapseSlice& collapse_slice(
      const logicsim::PatternPair& pattern) const;

  /// Precomputed per-sample defect sizes of one suspect; sizes()[k] ==
  /// size_model.sample(suspect, k).  The span stays valid for the cache's
  /// lifetime.
  std::span<const double> sizes_for(netlist::ArcId suspect) const;

  struct Stats {
    std::uint64_t hits = 0;    ///< (pattern, suspect) lookups served cached
    std::uint64_t misses = 0;  ///< lookups that built a column
    std::uint64_t bytes = 0;   ///< resident column bytes
  };
  /// This cache's own accounting; the dict.sig_cache.{hits,misses,bytes}
  /// counters aggregate the same events across all caches.
  Stats stats() const;

 private:
  struct AlignedFree {
    void operator()(double* p) const noexcept;
  };
  /// One suspect's column: contiguous, 64-byte aligned, address-stable.
  using Column = std::unique_ptr<double[], AlignedFree>;

  struct Entry {
    logicsim::PatternPair pattern;
    std::mutex mu;
    std::unordered_map<netlist::ArcId, std::size_t> index;
    std::deque<Column> cols;  ///< deque: growth never moves a column
    std::unique_ptr<CollapseSlice> collapse;  ///< lazily built, never moved
  };

  Entry& entry_for(const logicsim::PatternPair& pattern) const;

  const timing::DynamicTimingSimulator* sim_;
  const logicsim::BitSimulator* logic_sim_;
  const netlist::Levelization* lev_;
  const defect::DefectSizeModel* size_model_;
  double clk_;
  bool match_e_;

  mutable std::mutex map_mu_;
  mutable std::unordered_map<std::uint64_t,
                             std::vector<std::unique_ptr<Entry>>>
      entries_;
  mutable std::mutex sizes_mu_;
  mutable std::unordered_map<netlist::ArcId, std::vector<double>> sizes_;
  mutable std::atomic<std::size_t> n_outputs_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace sddd::diagnosis
