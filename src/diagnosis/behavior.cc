#include "diagnosis/behavior.h"

#include <numeric>

namespace sddd::diagnosis {

using netlist::GateId;

bool BehaviorMatrix::any_failure() const {
  for (const std::uint8_t b : bits_) {
    if (b != 0) return true;
  }
  return false;
}

std::size_t BehaviorMatrix::failure_count() const {
  return static_cast<std::size_t>(
      std::accumulate(bits_.begin(), bits_.end(), std::size_t{0}));
}

std::vector<std::size_t> BehaviorMatrix::failing_patterns() const {
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < n_patterns_; ++j) {
    for (std::size_t i = 0; i < n_outputs_; ++i) {
      if (at(i, j)) {
        out.push_back(j);
        break;
      }
    }
  }
  return out;
}

std::vector<GateId> BehaviorMatrix::failing_output_gates(
    const netlist::Netlist& nl, std::size_t pattern) const {
  std::vector<GateId> out;
  for (std::size_t i = 0; i < n_outputs_; ++i) {
    if (at(i, pattern)) out.push_back(nl.outputs()[i]);
  }
  return out;
}

BehaviorMatrix observe_behavior(
    const timing::DynamicTimingSimulator& instance_sim,
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> patterns, std::size_t sample_index,
    std::optional<std::pair<netlist::ArcId, double>> defect, double clk) {
  if (defect) {
    const std::pair<netlist::ArcId, double> one[] = {*defect};
    return observe_behavior_multi(instance_sim, logic_sim, lev, patterns,
                                  sample_index, one, clk);
  }
  return observe_behavior_multi(instance_sim, logic_sim, lev, patterns,
                                sample_index, {}, clk);
}

BehaviorMatrix observe_behavior_multi(
    const timing::DynamicTimingSimulator& instance_sim,
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> patterns, std::size_t sample_index,
    std::span<const std::pair<netlist::ArcId, double>> defects, double clk) {
  const auto& nl = logic_sim.netlist();
  BehaviorMatrix B(nl.outputs().size(), patterns.size());
  for (std::size_t j = 0; j < patterns.size(); ++j) {
    const paths::TransitionGraph tg(logic_sim, lev, patterns[j]);
    const auto arrival =
        instance_sim.simulate_instance_multi(tg, sample_index, defects);
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
      const GateId o = nl.outputs()[i];
      B.set(i, j, tg.toggles(o) && arrival[o] > clk);
    }
  }
  return B;
}

}  // namespace sddd::diagnosis
