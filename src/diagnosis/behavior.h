// behavior.h - The observed failing-chip behavior matrix B (Section E).
//
// b_ij = 1 iff primary output o_i fails (arrives after the cut-off clk)
// under test pattern v_j on the chip under diagnosis.  This is the only
// information the tester gives the diagnosis algorithm about the chip.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "logicsim/bitsim.h"
#include "netlist/netlist.h"
#include "paths/transition_graph.h"
#include "timing/dynamic_sim.h"

namespace sddd::diagnosis {

/// Dense |O| x |TP| 0/1 matrix.
class BehaviorMatrix {
 public:
  BehaviorMatrix(std::size_t n_outputs, std::size_t n_patterns)
      : n_outputs_(n_outputs),
        n_patterns_(n_patterns),
        bits_(n_outputs * n_patterns, 0) {}

  std::size_t output_count() const { return n_outputs_; }
  std::size_t pattern_count() const { return n_patterns_; }

  bool at(std::size_t output, std::size_t pattern) const {
    return bits_[output * n_patterns_ + pattern] != 0;
  }
  void set(std::size_t output, std::size_t pattern, bool fails) {
    bits_[output * n_patterns_ + pattern] = fails ? 1 : 0;
  }

  /// True when at least one (output, pattern) cell fails - i.e. the chip
  /// is observably bad and diagnosis has something to work with.
  bool any_failure() const;

  /// Number of failing cells.
  std::size_t failure_count() const;

  /// Pattern indices with at least one failing output.
  std::vector<std::size_t> failing_patterns() const;

  /// Output *gate ids* failing under pattern j (for suspect extraction).
  std::vector<netlist::GateId> failing_output_gates(
      const netlist::Netlist& nl, std::size_t pattern) const;

 private:
  std::size_t n_outputs_;
  std::size_t n_patterns_;
  std::vector<std::uint8_t> bits_;
};

/// Simulates the failing chip: instance `sample_index` of `instance_sim`'s
/// delay field, with a fixed-size defect on `defect_arc`, against every
/// pattern; fails where the output arrival exceeds clk.  Pass nullopt as
/// the defect for a defect-free (good-chip) reference.
BehaviorMatrix observe_behavior(
    const timing::DynamicTimingSimulator& instance_sim,
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> patterns, std::size_t sample_index,
    std::optional<std::pair<netlist::ArcId, double>> defect, double clk);

/// Multi-defect variant (relaxed single-defect assumption): all listed
/// (arc, extra delay) defects are present on the chip simultaneously.
BehaviorMatrix observe_behavior_multi(
    const timing::DynamicTimingSimulator& instance_sim,
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> patterns, std::size_t sample_index,
    std::span<const std::pair<netlist::ArcId, double>> defects, double clk);

}  // namespace sddd::diagnosis
