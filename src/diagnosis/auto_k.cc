#include "diagnosis/auto_k.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace sddd::diagnosis {

namespace {

/// Ranking keys of the suspects in best-first order for `method`.
std::vector<double> sorted_keys(const DiagnosisResult& result, Method method) {
  const auto it =
      std::find(result.methods.begin(), result.methods.end(), method);
  if (it == result.methods.end()) {
    throw std::invalid_argument("select_k: method not computed");
  }
  const auto mi = static_cast<std::size_t>(it - result.methods.begin());
  std::vector<double> keys = result.keys[mi];
  std::sort(keys.begin(), keys.end(), [&](double a, double b) {
    return ranks_better(method, a, b);
  });
  return keys;
}

std::size_t gap_cut(const std::vector<double>& keys, std::size_t max_k) {
  const std::size_t window = std::min(max_k + 1, keys.size());
  if (window <= 1) return 1;
  // Largest absolute gap between consecutive keys inside the window; keys
  // are already ordered best-first, so a big gap marks the end of the
  // leader cluster.
  std::size_t best_cut = 1;
  double best_gap = -1.0;
  for (std::size_t i = 1; i < window; ++i) {
    const double gap = std::abs(keys[i] - keys[i - 1]);
    if (gap > best_gap) {
      best_gap = gap;
      best_cut = i;
    }
  }
  return std::max<std::size_t>(best_cut, 1);
}

std::size_t mass_cut(const std::vector<double>& keys, Method method,
                     std::size_t max_k, double mass) {
  const std::size_t window = std::min(max_k, keys.size());
  if (window <= 1) return 1;
  // Convert keys into non-negative "explanatory weights", larger = better.
  std::vector<double> weight(window);
  if (method == Method::kRev) {
    // Minimization: invert around the worst key in the window.
    const double worst = keys[window - 1];
    for (std::size_t i = 0; i < window; ++i) weight[i] = worst - keys[i];
  } else {
    const double floor = keys[window - 1];
    for (std::size_t i = 0; i < window; ++i) weight[i] = keys[i] - floor;
  }
  double total = 0.0;
  for (const double w : weight) total += w;
  if (total <= 0.0) return 1;  // flat landscape: no evidence beyond top-1
  double acc = 0.0;
  for (std::size_t i = 0; i < window; ++i) {
    acc += weight[i];
    if (acc >= mass * total) return i + 1;
  }
  return window;
}

}  // namespace

std::size_t select_k(const DiagnosisResult& result, Method method,
                     const AutoKConfig& config) {
  if (result.suspects.empty()) return 1;
  const auto keys = sorted_keys(result, method);
  switch (config.policy) {
    case AutoKPolicy::kGapCut:
      return std::min(gap_cut(keys, config.max_k), keys.size());
    case AutoKPolicy::kMassCut:
      return std::min(mass_cut(keys, method, config.max_k, config.mass),
                      keys.size());
  }
  return 1;
}

}  // namespace sddd::diagnosis
