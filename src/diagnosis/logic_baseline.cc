#include "diagnosis/logic_baseline.h"

#include <algorithm>

#include "paths/path_enum.h"
#include "paths/transition_graph.h"

namespace sddd::diagnosis {

using netlist::ArcId;
using netlist::GateId;

std::vector<std::vector<bool>> LogicBaselineDiagnoser::signature(
    std::span<const logicsim::PatternPair> patterns, ArcId suspect) const {
  const auto& nl = logic_sim_->netlist();
  std::vector<std::vector<bool>> sig(
      nl.outputs().size(), std::vector<bool>(patterns.size(), false));
  for (std::size_t j = 0; j < patterns.size(); ++j) {
    const paths::TransitionGraph tg(*logic_sim_, *lev_, patterns[j]);
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
      const auto cone = tg.cone_to_output(nl.outputs()[i]);
      sig[i][j] = cone[suspect];
    }
  }
  return sig;
}

std::vector<LogicRankedSuspect> LogicBaselineDiagnoser::diagnose(
    std::span<const logicsim::PatternPair> patterns,
    const BehaviorMatrix& B) const {
  const auto& nl = logic_sim_->netlist();
  const std::size_t n_out = nl.outputs().size();

  // One pass per pattern: cones for every output, accumulating each
  // suspect's Hamming distance incrementally (and the suspect universe
  // from the failing cells).
  std::vector<std::uint32_t> mismatch(nl.arc_count(), 0);
  std::vector<bool> is_suspect(nl.arc_count(), false);
  for (std::size_t j = 0; j < patterns.size(); ++j) {
    const paths::TransitionGraph tg(*logic_sim_, *lev_, patterns[j]);
    for (std::size_t i = 0; i < n_out; ++i) {
      const bool observed = B.at(i, j);
      const auto cone = tg.cone_to_output(nl.outputs()[i]);
      for (ArcId a = 0; a < nl.arc_count(); ++a) {
        // Gross-delay prediction: fails iff in the cone.
        if (cone[a] != observed) ++mismatch[a];
        if (observed && cone[a]) is_suspect[a] = true;
      }
    }
  }

  std::vector<LogicRankedSuspect> ranked;
  for (ArcId a = 0; a < nl.arc_count(); ++a) {
    if (is_suspect[a]) ranked.push_back(LogicRankedSuspect{a, mismatch[a]});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const LogicRankedSuspect& x, const LogicRankedSuspect& y) {
                     return x.hamming < y.hamming;
                   });
  return ranked;
}

}  // namespace sddd::diagnosis
