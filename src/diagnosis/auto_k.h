// auto_k.h - Automatic K selection (the paper's future-work item #2:
// "develop heuristics to select K automatically").
//
// Algorithm E.1 leaves K (how many top-ranked candidates to report) to the
// user.  These heuristics derive K from the score landscape itself:
//
//   kGapCut     - cut at the largest relative gap between consecutive
//                 ranking keys within the first `max_k` candidates: report
//                 the "cluster of leaders" the error function actually
//                 separated.
//   kMassCut    - smallest K whose (method-normalized) score mass covers
//                 `mass` of the total: report candidates until the tail
//                 stops adding explanatory power.  For minimize-methods
//                 (Alg_rev) scores are inverted before normalizing.
//
// Both return at least 1 and at most max_k (or |S|).
#pragma once

#include <cstddef>

#include "diagnosis/diagnoser.h"

namespace sddd::diagnosis {

enum class AutoKPolicy {
  kGapCut,
  kMassCut,
};

struct AutoKConfig {
  AutoKPolicy policy = AutoKPolicy::kGapCut;
  std::size_t max_k = 16;   ///< never report more than this many
  double mass = 0.8;        ///< kMassCut: fraction of score mass to cover
};

/// Chooses K for `method` from a finished diagnosis result.
std::size_t select_k(const DiagnosisResult& result, Method method,
                     const AutoKConfig& config = {});

}  // namespace sddd::diagnosis
