#include "diagnosis/error_fn.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/check.h"
#include "obs/metrics.h"

namespace sddd::diagnosis {

namespace {

obs::Counter& phi_evals_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("diag.phi_evals");
  return c;
}

}  // namespace

std::string_view method_name(Method m) {
  switch (m) {
    case Method::kSimI:
      return "Alg_sim-I";
    case Method::kSimII:
      return "Alg_sim-II";
    case Method::kSimIII:
      return "Alg_sim-III";
    case Method::kRev:
      return "Alg_rev";
  }
  return "?";
}

void note_phi_evals(std::size_t n) {
  phi_evals_counter().add(static_cast<std::uint64_t>(n));
}

double phi(std::span<const double> s_column,
           const std::vector<bool>& b_column) {
  if (s_column.size() != b_column.size()) {
    throw std::invalid_argument("phi: column size mismatch");
  }
  // Runtime contract: phi matches probabilities, so an out-of-range entry
  // means the signature fed to diagnosis scoring is corrupt.
  analysis::check_probability_column(s_column, "phi signature match");
  phi_evals_counter().add(1);
  double acc = 1.0;
  for (std::size_t k = 0; k < s_column.size(); ++k) {
    const double s = s_column[k];
    acc *= b_column[k] ? s : (1.0 - s);
  }
  return acc;
}

namespace {

class SimI final : public DiagnosisErrorFn {
 public:
  double score(std::span<const double> phis) const override {
    double prod_not = 1.0;
    for (const double p : phis) prod_not *= (1.0 - p);
    return 1.0 - prod_not;
  }
  bool higher_is_better() const override { return true; }
  std::string_view name() const override { return method_name(Method::kSimI); }
};

class SimII final : public DiagnosisErrorFn {
 public:
  double score(std::span<const double> phis) const override {
    if (phis.empty()) return 0.0;
    double sum = 0.0;
    for (const double p : phis) sum += p;
    return sum / static_cast<double>(phis.size());
  }
  bool higher_is_better() const override { return true; }
  std::string_view name() const override { return method_name(Method::kSimII); }
};

class SimIII final : public DiagnosisErrorFn {
 public:
  double score(std::span<const double> phis) const override {
    double prod = 1.0;
    for (const double p : phis) prod *= p;
    return prod;
  }
  bool higher_is_better() const override { return true; }
  std::string_view name() const override {
    return method_name(Method::kSimIII);
  }
};

class Rev final : public DiagnosisErrorFn {
 public:
  double score(std::span<const double> phis) const override {
    double acc = 0.0;
    for (const double p : phis) acc += (1.0 - p) * (1.0 - p);
    return acc;
  }
  bool higher_is_better() const override { return false; }
  std::string_view name() const override { return method_name(Method::kRev); }
};

}  // namespace

std::unique_ptr<DiagnosisErrorFn> make_error_fn(Method m) {
  switch (m) {
    case Method::kSimI:
      return std::make_unique<SimI>();
    case Method::kSimII:
      return std::make_unique<SimII>();
    case Method::kSimIII:
      return std::make_unique<SimIII>();
    case Method::kRev:
      return std::make_unique<Rev>();
  }
  throw std::invalid_argument("make_error_fn: unknown method");
}

ScoreAccumulator::ScoreAccumulator(Method m) : method_(m) {}

namespace {
// Floor keeping log() finite; ~log(min subnormal) would do as well.
constexpr double kLogFloor = 1e-300;
}  // namespace

void ScoreAccumulator::add_phi(double phi_j) {
  sum_ += phi_j;
  sq_sum_ += (1.0 - phi_j) * (1.0 - phi_j);
  log1m_sum_ += std::log1p(-std::min(phi_j, 1.0 - 1e-16));
  logphi_sum_ += std::log(std::max(phi_j, kLogFloor));
}

double ScoreAccumulator::finish(std::size_t n_patterns) const {
  switch (method_) {
    case Method::kSimI:
      return 1.0 - std::exp(log1m_sum_);
    case Method::kSimII:
      return n_patterns == 0 ? 0.0 : sum_ / static_cast<double>(n_patterns);
    case Method::kSimIII:
      return std::exp(logphi_sum_);
    case Method::kRev:
      return sq_sum_;
  }
  return 0.0;
}

double ScoreAccumulator::ranking_key(std::size_t n_patterns) const {
  switch (method_) {
    case Method::kSimI:
      // Maximizing 1 - prod(1 - phi) == minimizing sum log(1 - phi).
      return -log1m_sum_;
    case Method::kSimII:
      return n_patterns == 0 ? 0.0 : sum_ / static_cast<double>(n_patterns);
    case Method::kSimIII:
      // Maximizing prod phi == maximizing sum log phi (floored, so k
      // zero-phi patterns cost k * log(floor) - strictly worse than any
      // suspect with fewer zeros).
      return logphi_sum_;
    case Method::kRev:
      return sq_sum_;
  }
  return 0.0;
}

bool ranks_better(Method m, double a, double b) {
  return m == Method::kRev ? a < b : a > b;
}

}  // namespace sddd::diagnosis
