#include "diagnosis/resolution.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "paths/transition_graph.h"

namespace sddd::diagnosis {

using netlist::ArcId;
using netlist::GateId;

std::size_t EquivalenceClasses::largest() const {
  std::size_t best = 0;
  for (const auto& c : classes) best = std::max(best, c.size());
  return best;
}

double EquivalenceClasses::resolution(std::size_t n_faults) const {
  if (n_faults == 0) return 1.0;
  return static_cast<double>(classes.size()) / static_cast<double>(n_faults);
}

EquivalenceClasses logic_equivalence_classes(
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> patterns,
    std::span<const ArcId> suspects) {
  const auto& nl = logic_sim.netlist();
  // Footprint per suspect: for every (pattern, output), one bit saying
  // whether the suspect arc lies on an active path into that output.
  const std::size_t n_out = nl.outputs().size();
  std::vector<std::vector<bool>> footprint(
      suspects.size(), std::vector<bool>(patterns.size() * n_out, false));

  for (std::size_t j = 0; j < patterns.size(); ++j) {
    const paths::TransitionGraph tg(logic_sim, lev, patterns[j]);
    for (std::size_t i = 0; i < n_out; ++i) {
      const auto cone = tg.cone_to_output(nl.outputs()[i]);
      for (std::size_t s = 0; s < suspects.size(); ++s) {
        if (cone[suspects[s]]) footprint[s][j * n_out + i] = true;
      }
    }
  }

  EquivalenceClasses result;
  result.class_of.assign(suspects.size(), 0);
  std::map<std::vector<bool>, std::size_t> index;
  for (std::size_t s = 0; s < suspects.size(); ++s) {
    const auto [it, inserted] =
        index.emplace(footprint[s], result.classes.size());
    if (inserted) result.classes.emplace_back();
    result.classes[it->second].push_back(suspects[s]);
    result.class_of[s] = it->second;
  }
  return result;
}

double signature_distance(const FaultDictionary& dict,
                          const defect::DefectSizeModel& size_model,
                          ArcId a, ArcId b) {
  double dist = 0.0;
  for (std::size_t j = 0; j < dict.pattern_count(); ++j) {
    const auto sa = dict.slice(j).signature_column(a, size_model);
    const auto sb = dict.slice(j).signature_column(b, size_model);
    for (std::size_t i = 0; i < sa.size(); ++i) {
      dist = std::max(dist, std::abs(sa[i] - sb[i]));
    }
  }
  return dist;
}

EquivalenceClasses timing_equivalence_classes(
    const FaultDictionary& dict, const defect::DefectSizeModel& size_model,
    std::span<const ArcId> suspects, double tolerance) {
  // Union-find over the "within tolerance" predicate (single linkage).
  std::vector<std::size_t> parent(suspects.size());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  // Cache each suspect's concatenated signature to avoid recomputing
  // columns O(n^2) times.
  std::vector<std::vector<double>> sig(suspects.size());
  for (std::size_t s = 0; s < suspects.size(); ++s) {
    for (std::size_t j = 0; j < dict.pattern_count(); ++j) {
      const auto col = dict.slice(j).signature_column(suspects[s], size_model);
      sig[s].insert(sig[s].end(), col.begin(), col.end());
    }
  }
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    for (std::size_t j = i + 1; j < suspects.size(); ++j) {
      double dist = 0.0;
      for (std::size_t k = 0; k < sig[i].size() && dist <= tolerance; ++k) {
        dist = std::max(dist, std::abs(sig[i][k] - sig[j][k]));
      }
      if (dist <= tolerance) parent[find(i)] = find(j);
    }
  }
  EquivalenceClasses result;
  result.class_of.assign(suspects.size(), 0);
  std::map<std::size_t, std::size_t> index;
  for (std::size_t s = 0; s < suspects.size(); ++s) {
    const std::size_t root = find(s);
    const auto [it, inserted] = index.emplace(root, result.classes.size());
    if (inserted) result.classes.emplace_back();
    result.classes[it->second].push_back(suspects[s]);
    result.class_of[s] = it->second;
  }
  return result;
}

int class_rank(const EquivalenceClasses& classes,
               std::span<const ArcId> suspects,
               std::span<const ArcId> ranked_arcs, ArcId true_arc) {
  // Class of the true arc.
  std::size_t true_class = classes.count();
  for (std::size_t s = 0; s < suspects.size(); ++s) {
    if (suspects[s] == true_arc) {
      true_class = classes.class_of[s];
      break;
    }
  }
  if (true_class == classes.count()) return -1;
  // Walk the ranked list, counting distinct classes until the true one.
  std::vector<bool> seen(classes.count(), false);
  int distinct = 0;
  for (const ArcId arc : ranked_arcs) {
    std::size_t cls = classes.count();
    for (std::size_t s = 0; s < suspects.size(); ++s) {
      if (suspects[s] == arc) {
        cls = classes.class_of[s];
        break;
      }
    }
    if (cls == classes.count()) continue;  // not a suspect
    if (cls == true_class) return distinct;
    if (!seen[cls]) {
      seen[cls] = true;
      ++distinct;
    }
  }
  return -1;
}

}  // namespace sddd::diagnosis
