#include "diagnosis/dictionary_io.h"

#include <sstream>
#include <stdexcept>
#include <string>

namespace sddd::diagnosis {

void write_dictionary_csv(const FaultDictionary& dict,
                          std::span<const netlist::ArcId> suspects,
                          const defect::DefectSizeModel& size_model,
                          std::ostream& out) {
  out << "suspect_arc,pattern,output,m,e,s\n";
  for (const netlist::ArcId arc : suspects) {
    for (std::size_t j = 0; j < dict.pattern_count(); ++j) {
      const auto& m = dict.slice(j).m_column();
      const auto e = dict.slice(j).e_column(arc, size_model);
      for (std::size_t i = 0; i < m.size(); ++i) {
        const double s = std::max(e[i] - m[i], 0.0);
        out << arc << ',' << j << ',' << i << ',' << m[i] << ',' << e[i]
            << ',' << s << '\n';
      }
    }
  }
}

void write_behavior_csv(const BehaviorMatrix& b, std::ostream& out) {
  out << b.output_count() << ',' << b.pattern_count() << '\n';
  for (std::size_t i = 0; i < b.output_count(); ++i) {
    for (std::size_t j = 0; j < b.pattern_count(); ++j) {
      if (j != 0) out << ',';
      out << (b.at(i, j) ? '1' : '0');
    }
    out << '\n';
  }
}

BehaviorMatrix read_behavior_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("behavior csv: missing header");
  }
  const auto comma = line.find(',');
  if (comma == std::string::npos) {
    throw std::runtime_error("behavior csv: malformed header");
  }
  std::size_t n_outputs = 0;
  std::size_t n_patterns = 0;
  try {
    n_outputs = std::stoul(line.substr(0, comma));
    n_patterns = std::stoul(line.substr(comma + 1));
  } catch (const std::exception&) {
    throw std::runtime_error("behavior csv: malformed header");
  }
  BehaviorMatrix b(n_outputs, n_patterns);
  for (std::size_t i = 0; i < n_outputs; ++i) {
    if (!std::getline(in, line)) {
      throw std::runtime_error("behavior csv: truncated matrix");
    }
    std::size_t j = 0;
    for (const char c : line) {
      if (c == ',') continue;
      if (c != '0' && c != '1') {
        throw std::runtime_error("behavior csv: bad cell value");
      }
      if (j >= n_patterns) {
        throw std::runtime_error("behavior csv: row too long");
      }
      b.set(i, j++, c == '1');
    }
    if (j != n_patterns) {
      throw std::runtime_error("behavior csv: row too short");
    }
  }
  return b;
}

std::uint64_t dense_dictionary_bytes(std::size_t n_suspects,
                                     std::size_t n_patterns,
                                     std::size_t n_outputs) {
  return static_cast<std::uint64_t>(n_suspects) * n_patterns * n_outputs *
         sizeof(double);
}

}  // namespace sddd::diagnosis
