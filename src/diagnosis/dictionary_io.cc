#include "diagnosis/dictionary_io.h"

#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/error.h"

namespace sddd::diagnosis {

void write_dictionary_csv(const FaultDictionary& dict,
                          std::span<const netlist::ArcId> suspects,
                          const defect::DefectSizeModel& size_model,
                          std::ostream& out) {
  out << "suspect_arc,pattern,output,m,e,s\n";
  for (const netlist::ArcId arc : suspects) {
    for (std::size_t j = 0; j < dict.pattern_count(); ++j) {
      const auto& m = dict.slice(j).m_column();
      const auto e = dict.slice(j).e_column(arc, size_model);
      for (std::size_t i = 0; i < m.size(); ++i) {
        const double s = std::max(e[i] - m[i], 0.0);
        out << arc << ',' << j << ',' << i << ',' << m[i] << ',' << e[i]
            << ',' << s << '\n';
      }
    }
  }
}

void write_behavior_csv(const BehaviorMatrix& b, std::ostream& out) {
  out << b.output_count() << ',' << b.pattern_count() << '\n';
  for (std::size_t i = 0; i < b.output_count(); ++i) {
    for (std::size_t j = 0; j < b.pattern_count(); ++j) {
      if (j != 0) out << ',';
      out << (b.at(i, j) ? '1' : '0');
    }
    out << '\n';
  }
}

BehaviorMatrix read_behavior_csv(std::istream& in) {
  // Every diagnostic names its 1-based line (header = line 1, matrix row i
  // = line i+2) and, for cell problems, the offending output row / pattern
  // column - a behavior matrix usually comes straight off tester logs, and
  // "bad cell value" without coordinates is unactionable there.
  constexpr const char* kSource = "behavior csv";
  std::string line;
  if (!std::getline(in, line)) {
    throw ParseError(kSource, 1, "missing header (expected <outputs>,<patterns>)");
  }
  const auto comma = line.find(',');
  if (comma == std::string::npos) {
    throw ParseError(kSource, 1,
                     "malformed header '" + line +
                         "' (expected <outputs>,<patterns>)");
  }
  std::size_t n_outputs = 0;
  std::size_t n_patterns = 0;
  try {
    n_outputs = std::stoul(line.substr(0, comma));
    n_patterns = std::stoul(line.substr(comma + 1));
  } catch (const std::exception&) {
    throw ParseError(kSource, 1,
                     "malformed header '" + line +
                         "' (expected <outputs>,<patterns>)");
  }
  if (n_outputs == 0 || n_patterns == 0) {
    throw ParseError(kSource, 1,
                     "empty matrix (" + std::to_string(n_outputs) +
                         " outputs x " + std::to_string(n_patterns) +
                         " patterns); a behavior matrix needs at least one "
                         "output and one pattern");
  }
  BehaviorMatrix b(n_outputs, n_patterns);
  for (std::size_t i = 0; i < n_outputs; ++i) {
    const std::size_t line_no = i + 2;
    if (!std::getline(in, line)) {
      throw ParseError(kSource, line_no,
                       "truncated matrix: got " + std::to_string(i) +
                           " of " + std::to_string(n_outputs) +
                           " output rows");
    }
    std::size_t j = 0;
    for (const char c : line) {
      if (c == ',' || c == '\r') continue;
      if (c != '0' && c != '1') {
        throw ParseError(kSource, line_no,
                         std::string("bad cell value '") + c +
                             "' at output row " + std::to_string(i) +
                             ", pattern column " + std::to_string(j) +
                             " (cells must be 0 or 1)");
      }
      if (j >= n_patterns) {
        throw ParseError(kSource, line_no,
                         "jagged row: output row " + std::to_string(i) +
                             " has more than " + std::to_string(n_patterns) +
                             " pattern cells");
      }
      b.set(i, j++, c == '1');
    }
    if (j != n_patterns) {
      throw ParseError(kSource, line_no,
                       "jagged row: output row " + std::to_string(i) +
                           " has " + std::to_string(j) + " of " +
                           std::to_string(n_patterns) + " pattern cells");
    }
  }
  return b;
}

std::uint64_t dense_dictionary_bytes(std::size_t n_suspects,
                                     std::size_t n_patterns,
                                     std::size_t n_outputs) {
  return static_cast<std::uint64_t>(n_suspects) * n_patterns * n_outputs *
         sizeof(double);
}

}  // namespace sddd::diagnosis
