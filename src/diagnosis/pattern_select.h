// pattern_select.h - Dictionary-driven diagnostic pattern selection.
//
// The paper's question (2): given patterns that are good in the logic
// domain, what remains for the timing domain?  Its Section C-1 answer: a
// test set optimal under logic conditions "may not be optimal for delay
// defect diagnosis" - what matters is how well the patterns' probabilistic
// signatures *separate* the suspects.
//
// This module turns that into an algorithm: from a candidate pattern pool,
// greedily select the subset that distinguishes the most suspect pairs,
// where pattern v distinguishes suspects (a, b) when their signature
// columns under v differ by at least epsilon somewhere (i.e. some output's
// failure probability differs observably).  This is the classic greedy
// set-cover heuristic on the pairwise-distinction matrix, now over
// probabilistic signatures instead of 0/1 dictionary entries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "defect/defect_model.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "timing/dynamic_sim.h"

namespace sddd::diagnosis {

struct PatternSelectConfig {
  std::size_t budget = 12;   ///< max patterns to pick
  double epsilon = 0.05;     ///< min signature difference that counts
};

struct PatternSelectResult {
  /// Indices into the candidate span, in pick order.
  std::vector<std::size_t> chosen;
  /// Suspect pairs distinguished after each pick (monotone).
  std::vector<std::size_t> pairs_covered;
  /// Total suspect pairs.
  std::size_t total_pairs = 0;

  /// Fraction of pairs the chosen set distinguishes - the "diagnostic
  /// power" of the selection.
  double coverage() const {
    return total_pairs == 0
               ? 1.0
               : static_cast<double>(
                     pairs_covered.empty() ? 0 : pairs_covered.back()) /
                     static_cast<double>(total_pairs);
  }
};

/// Greedy selection (see header).  Cost: |candidates| dictionary slices
/// plus |candidates| x |suspects| signature columns up front; keep the
/// suspect set modest (<~100) since pair counting is quadratic.
PatternSelectResult select_diagnostic_patterns(
    const timing::DynamicTimingSimulator& sim,
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> candidates,
    std::span<const netlist::ArcId> suspects,
    const defect::DefectSizeModel& size_model, double clk,
    const PatternSelectConfig& config = {});

}  // namespace sddd::diagnosis
