#include "timing/delay_field.h"

#include <stdexcept>

#include "stats/rv.h"

namespace sddd::timing {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30U)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27U)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31U);
}

}  // namespace

double counter_uniform(std::uint64_t seed, std::uint64_t salt,
                       std::uint64_t index) {
  const std::uint64_t h =
      splitmix64(splitmix64(seed ^ (salt * 0xd1342543de82ef95ULL)) ^
                 (index * 0x2545f4914f6cdd1dULL));
  // Map to (0, 1) using the top 53 bits, offset by half a ulp so the
  // endpoints are excluded (quantile() requires an open interval).
  return (static_cast<double>(h >> 11U) + 0.5) * 0x1.0p-53;
}

DelayField::DelayField(const ArcDelayModel& model, std::size_t n_samples,
                       double global_weight, std::uint64_t seed)
    : model_(&model), global_weight_(global_weight), seed_(seed) {
  if (n_samples == 0) {
    throw std::invalid_argument("DelayField: need at least one sample");
  }
  if (global_weight < 0.0) {
    throw std::invalid_argument("DelayField: global_weight must be >= 0");
  }
  global_factor_.resize(n_samples);
  for (std::size_t k = 0; k < n_samples; ++k) {
    global_factor_[k] =
        stats::inverse_normal_cdf(counter_uniform(seed, 0x61b0a1ULL, k));
  }
}

double DelayField::local_uniform(netlist::ArcId a, std::size_t k) const {
  return counter_uniform(seed_, 0x10ca1ULL + a, k);
}

}  // namespace sddd::timing
