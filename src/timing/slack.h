// slack.h - Statistical slack analysis.
//
// Completes the classic STA pair: arrival times forward (ssta.h), required
// times backward from the cut-off period, slack = required - arrival.
// Everything is computed per Monte-Carlo sample over a DelayField, so
// slack(a) is an empirical random variable and the probability of an arc
// being "critical at clk" (negative slack) falls out directly.
//
// Relation to the rest of the library: an arc's statistical slack at clk
// is the margin a delay defect must consume before the *static* paths
// through it violate the period - the structural upper bound on
// detectability that the dynamic (pattern-induced) analysis refines.  The
// experiment harness's detectability gate and the coverage module measure
// the pattern-dependent reality; slack explains which sites could ever be
// at risk.
#pragma once

#include <vector>

#include "netlist/levelize.h"
#include "stats/sample_vector.h"
#include "timing/delay_field.h"

namespace sddd::timing {

/// Forward arrivals, backward required times and per-arc slacks at a given
/// cut-off period, all per Monte-Carlo sample.
class SlackAnalysis {
 public:
  SlackAnalysis(const DelayField& field, const netlist::Levelization& lev,
                double clk);

  double clk() const { return clk_; }

  /// Latest arrival at gate g's output (all topological paths), per sample.
  const stats::SampleVector& arrival(netlist::GateId g) const {
    return arrival_[g];
  }

  /// Latest time gate g's output may settle without violating clk at any
  /// reachable output, per sample.
  const stats::SampleVector& required(netlist::GateId g) const {
    return required_[g];
  }

  /// Slack of arc a = required(head) - arrival(tail) - delay(a), per
  /// sample: how much extra delay the arc tolerates in that chip before
  /// some topological path through it misses clk.
  stats::SampleVector arc_slack(netlist::ArcId a) const;

  /// P(arc slack < 0): the arc lies on a violating path in that fraction
  /// of chips.
  double violation_probability(netlist::ArcId a) const;

  /// P(arc slack < margin): the detectability bound for a defect of size
  /// `margin` on the arc (a defect smaller than every chip's slack can
  /// never be seen at clk, under any pattern).
  double slack_below_probability(netlist::ArcId a, double margin) const;

 private:
  const DelayField* field_;
  const netlist::Levelization* lev_;
  double clk_;
  std::vector<stats::SampleVector> arrival_;
  std::vector<stats::SampleVector> required_;
};

}  // namespace sddd::timing
