#include "timing/celllib.h"

#include <cmath>
#include <stdexcept>

namespace sddd::timing {

using netlist::ArcId;
using netlist::CellType;
using netlist::Netlist;

StatisticalCellLibrary::StatisticalCellLibrary(const CellLibraryConfig& config)
    : config_(config) {
  if (config.three_sigma_pct < 0.0 || config.arity_factor <= 0.0) {
    throw std::invalid_argument("StatisticalCellLibrary: bad config");
  }
}

double StatisticalCellLibrary::base_delay(CellType type) const {
  switch (type) {
    case CellType::kBuf:
      return config_.buf_delay;
    case CellType::kNot:
      return config_.not_delay;
    case CellType::kAnd:
      return config_.and_delay;
    case CellType::kNand:
      return config_.nand_delay;
    case CellType::kOr:
      return config_.or_delay;
    case CellType::kNor:
      return config_.nor_delay;
    case CellType::kXor:
      return config_.xor_delay;
    case CellType::kXnor:
      return config_.xnor_delay;
    case CellType::kInput:
    case CellType::kDff:
    case CellType::kConst0:
    case CellType::kConst1:
      throw std::invalid_argument(
          "StatisticalCellLibrary: no delay for non-combinational cell");
  }
  return 0.0;
}

double StatisticalCellLibrary::nominal_delay(const Netlist& nl,
                                             ArcId a) const {
  const auto& arc = nl.arc(a);
  const auto& gate = nl.gate(arc.gate);
  double d = base_delay(gate.type);
  const auto fanins = gate.fanins.size();
  if (fanins > 2) {
    d *= std::pow(config_.arity_factor, static_cast<double>(fanins - 2));
  }
  const auto fanouts = gate.fanouts.size();
  if (fanouts > 1) {
    d *= 1.0 + config_.load_slope * static_cast<double>(fanouts - 1);
  }
  return d;
}

stats::RandomVariable StatisticalCellLibrary::arc_delay(const Netlist& nl,
                                                        ArcId a) const {
  return stats::RandomVariable::NormalThreeSigmaPct(nominal_delay(nl, a),
                                                    config_.three_sigma_pct);
}

double StatisticalCellLibrary::mean_cell_delay() const {
  return (config_.nand_delay + config_.nor_delay + config_.and_delay +
          config_.or_delay) /
         4.0;
}

}  // namespace sddd::timing
