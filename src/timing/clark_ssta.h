// clark_ssta.h - Analytic statistical static timing via Clark's moment
// matching.
//
// The Monte-Carlo SSTA (ssta.h) is the reference engine: exact joint
// semantics at O(samples) cost per node.  This module provides the classic
// closed-form alternative used throughout the SSTA literature (and by the
// block-based tools the paper's framework [5][17] compares against): every
// arrival time is approximated as a Normal, sums add moments, and MAX is
// propagated with Clark's 1961 first/second-moment formulas.
//
// The implementation makes the standard independence approximation at
// merge points (correlation from reconvergent fanout is ignored), which is
// exactly the error source the paper's Monte-Carlo approach avoids - the
// comparison bench and tests quantify the gap on reconvergent circuits.
#pragma once

#include <vector>

#include "netlist/levelize.h"
#include "timing/delay_model.h"

namespace sddd::timing {

/// A Normal arrival-time approximation.
struct GaussianArrival {
  double mean = 0.0;
  double var = 0.0;

  double sigma() const;
  /// P(X > clk) under the Normal approximation.
  double critical_probability(double clk) const;
  /// mean + z * sigma.
  double quantile(double q) const;
};

/// Clark's E[max(X, Y)] / Var[max(X, Y)] for two Normals with correlation
/// rho.  Exposed for tests.
GaussianArrival clark_max(const GaussianArrival& x, const GaussianArrival& y,
                          double rho = 0.0);

/// Block-based analytic SSTA: one topological sweep, Normal arrivals.
class ClarkStaticTiming {
 public:
  ClarkStaticTiming(const ArcDelayModel& model,
                    const netlist::Levelization& lev);

  const GaussianArrival& arrival(netlist::GateId g) const {
    return arrival_[g];
  }

  /// Delta(C) approximation: Clark-max over the primary outputs.
  const GaussianArrival& circuit_delay() const { return delta_; }

 private:
  std::vector<GaussianArrival> arrival_;
  GaussianArrival delta_;
};

}  // namespace sddd::timing
