// criticality.h - Statistical criticality analysis.
//
// The criticality of a timing arc is the probability (over the process
// space) that it lies on the circuit's critical path - the quantity the
// paper's companion work ([5], [16]: "statistical performance sensitivity
// analysis") uses to select paths for delay testing.  With the Monte-Carlo
// delay field the computation is exact per sample: trace the argmax
// arrival backwards from the latest output and tally which arcs carried
// it.
//
// Uses: ranking fault sites by how observable a small extra delay is,
// choosing calibration sites, and reporting which part of a circuit
// dominates its timing distribution.
#pragma once

#include <vector>

#include "netlist/levelize.h"
#include "timing/delay_field.h"

namespace sddd::timing {

/// Per-arc and per-gate criticality over a delay field.
class CriticalityAnalysis {
 public:
  /// Runs static (all-paths) analysis: one forward sweep plus one argmax
  /// backtrace per Monte-Carlo sample.
  CriticalityAnalysis(const DelayField& field,
                      const netlist::Levelization& lev);

  /// Probability that arc `a` lies on the critical path.
  double arc_criticality(netlist::ArcId a) const { return arc_crit_[a]; }

  /// Probability that the critical path ends at output `o` (sums to 1
  /// over outputs up to ties, which are resolved to the first maximum).
  double output_criticality(netlist::GateId o) const {
    return output_crit_[o];
  }

  /// Arcs sorted by descending criticality (ties by arc id).
  std::vector<netlist::ArcId> ranked_arcs() const;

 private:
  std::vector<double> arc_crit_;
  std::vector<double> output_crit_;
};

}  // namespace sddd::timing
