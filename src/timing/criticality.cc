#include "timing/criticality.h"

#include <algorithm>

namespace sddd::timing {

using netlist::ArcId;
using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;

CriticalityAnalysis::CriticalityAnalysis(const DelayField& field,
                                         const netlist::Levelization& lev) {
  const Netlist& nl = field.model().netlist();
  const std::size_t n = field.sample_count();
  arc_crit_.assign(nl.arc_count(), 0.0);
  output_crit_.assign(nl.gate_count(), 0.0);

  // Forward arrivals plus, per gate, the argmax fanin pin for each sample.
  // Memory: one double + one pin index per (gate, sample).
  std::vector<std::vector<double>> arrival(nl.gate_count());
  std::vector<std::vector<std::uint32_t>> argmax(nl.gate_count());
  for (const GateId g : lev.topo_order()) {
    const Gate& gate = nl.gate(g);
    if (!is_combinational(gate.type)) {
      arrival[g].assign(n, 0.0);
      continue;
    }
    arrival[g].assign(n, 0.0);
    argmax[g].assign(n, 0);
    for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
      const ArcId a = nl.arc_of(g, pin);
      const auto& in = arrival[gate.fanins[pin]];
      auto& out = arrival[g];
      auto& arg = argmax[g];
      for (std::size_t k = 0; k < n; ++k) {
        const double cand = in[k] + field.delay(a, k);
        if (pin == 0 || cand > out[k]) {
          out[k] = cand;
          arg[k] = pin;
        }
      }
    }
  }

  // Backtrace the critical path of every sample.
  const double w = 1.0 / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    GateId best_o = nl.outputs().empty() ? netlist::kInvalidGate
                                         : nl.outputs().front();
    for (const GateId o : nl.outputs()) {
      if (arrival[o][k] > arrival[best_o][k]) best_o = o;
    }
    if (best_o == netlist::kInvalidGate) break;
    output_crit_[best_o] += w;
    GateId g = best_o;
    while (is_combinational(nl.gate(g).type) && !nl.gate(g).fanins.empty()) {
      const std::uint32_t pin = argmax[g][k];
      arc_crit_[nl.arc_of(g, pin)] += w;
      g = nl.gate(g).fanins[pin];
    }
  }
}

std::vector<ArcId> CriticalityAnalysis::ranked_arcs() const {
  std::vector<ArcId> order(arc_crit_.size());
  for (ArcId a = 0; a < order.size(); ++a) order[a] = a;
  std::stable_sort(order.begin(), order.end(), [&](ArcId a, ArcId b) {
    return arc_crit_[a] > arc_crit_[b];
  });
  return order;
}

}  // namespace sddd::timing
