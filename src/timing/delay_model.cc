#include "timing/delay_model.h"

#include <stdexcept>

namespace sddd::timing {

ArcDelayModel::ArcDelayModel(const netlist::Netlist& nl,
                             const StatisticalCellLibrary& lib)
    : nl_(&nl), mean_cell_delay_(lib.mean_cell_delay()) {
  if (!nl.frozen()) throw std::logic_error("ArcDelayModel: netlist not frozen");
  rvs_.reserve(nl.arc_count());
  means_.reserve(nl.arc_count());
  for (netlist::ArcId a = 0; a < nl.arc_count(); ++a) {
    rvs_.push_back(lib.arc_delay(nl, a));
    means_.push_back(rvs_.back().mean());
  }
}

}  // namespace sddd::timing
