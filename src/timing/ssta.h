// ssta.h - Static statistical timing analysis (Definition D.5, static part).
//
// Computes the arrival-time random variables Ar(o) of every primary output
// and the circuit delay Delta(C) = max_o Ar(o) over *all* topological paths
// (no pattern, hence potentially including false paths - the classic
// pessimism the paper's dynamic simulation removes).  Quantities come back
// as SampleVectors over a DelayField, so sample k of Delta(C) is the true
// critical delay of chip k.
//
// Uses: choosing the cut-off period clk for an experiment (a quantile of
// Delta(C)), arc criticality statistics, and the statistical path-length
// comparisons in the Figure 1 reproduction.
#pragma once

#include <vector>

#include "netlist/levelize.h"
#include "paths/path.h"
#include "stats/sample_vector.h"
#include "timing/delay_field.h"

namespace sddd::timing {

/// Result of one static SSTA run over a delay field.
class StaticTiming {
 public:
  /// Runs the analysis (one topological max/plus sweep per sample set).
  StaticTiming(const DelayField& field, const netlist::Levelization& lev);

  /// Ar(g): latest arrival at gate g's output over all topological paths,
  /// per sample.  PIs arrive at 0.
  const stats::SampleVector& arrival(netlist::GateId g) const {
    return arrival_[g];
  }

  /// Delta(C) = max over primary outputs, per sample.
  const stats::SampleVector& circuit_delay() const { return delta_; }

  /// Suggested cut-off period: the q-quantile of Delta(C).  Definition D.6
  /// then gives Prob(Delta(C) > clk) ~ 1-q for a defect-free chip.
  double clk_at_quantile(double q) const { return delta_.quantile(q); }

 private:
  std::vector<stats::SampleVector> arrival_;
  stats::SampleVector delta_;
};

/// Timing length TL(p) of a structural path (Section D-1): per-sample sum
/// of the path's arc delays.
stats::SampleVector timing_length(const DelayField& field,
                                  const paths::Path& p);

}  // namespace sddd::timing
