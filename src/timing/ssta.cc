#include "timing/ssta.h"

#include <stdexcept>

namespace sddd::timing {

using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;
using stats::SampleVector;

StaticTiming::StaticTiming(const DelayField& field,
                           const netlist::Levelization& lev) {
  const Netlist& nl = field.model().netlist();
  const std::size_t n = field.sample_count();
  arrival_.assign(nl.gate_count(), SampleVector(n, 0.0));

  for (const GateId g : lev.topo_order()) {
    const Gate& gate = nl.gate(g);
    if (!is_combinational(gate.type)) continue;  // sources arrive at 0
    SampleVector& out = arrival_[g];
    for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
      const netlist::ArcId a = nl.arc_of(g, pin);
      const SampleVector& in = arrival_[gate.fanins[pin]];
      if (pin == 0) {
        for (std::size_t k = 0; k < n; ++k) out[k] = in[k] + field.delay(a, k);
      } else {
        for (std::size_t k = 0; k < n; ++k) {
          const double cand = in[k] + field.delay(a, k);
          if (cand > out[k]) out[k] = cand;
        }
      }
    }
  }

  delta_ = SampleVector(n, 0.0);
  for (const GateId o : nl.outputs()) delta_.max_with(arrival_[o]);
}

SampleVector timing_length(const DelayField& field, const paths::Path& p) {
  const std::size_t n = field.sample_count();
  SampleVector tl(n, 0.0);
  for (const netlist::ArcId a : p.arcs) {
    for (std::size_t k = 0; k < n; ++k) tl[k] += field.delay(a, k);
  }
  return tl;
}

}  // namespace sddd::timing
