#include "timing/slack.h"

#include <algorithm>
#include <limits>

namespace sddd::timing {

using netlist::ArcId;
using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;
using stats::SampleVector;

SlackAnalysis::SlackAnalysis(const DelayField& field,
                             const netlist::Levelization& lev, double clk)
    : field_(&field), lev_(&lev), clk_(clk) {
  const Netlist& nl = field.model().netlist();
  const std::size_t n = field.sample_count();

  // Forward: latest arrivals (as in StaticTiming; recomputed here so the
  // two sweeps share one delay field without cross-module coupling).
  arrival_.assign(nl.gate_count(), SampleVector(n, 0.0));
  for (const GateId g : lev.topo_order()) {
    const Gate& gate = nl.gate(g);
    if (!is_combinational(gate.type)) continue;
    SampleVector& out = arrival_[g];
    for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
      const ArcId a = nl.arc_of(g, pin);
      const SampleVector& in = arrival_[gate.fanins[pin]];
      for (std::size_t k = 0; k < n; ++k) {
        const double cand = in[k] + field.delay(a, k);
        if (pin == 0 || cand > out[k]) out[k] = cand;
      }
    }
  }

  // Backward: required times.  A primary output must settle by clk; an
  // internal net must settle early enough for every fanout arc.  Nets with
  // no combinational fanout and no output obligation keep +inf (they
  // cannot cause a violation).
  required_.assign(nl.gate_count(),
                   SampleVector(n, std::numeric_limits<double>::infinity()));
  for (const GateId o : nl.outputs()) {
    for (std::size_t k = 0; k < n; ++k) {
      required_[o][k] = std::min(required_[o][k], clk);
    }
  }
  const auto& order = lev.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const GateId g = *it;
    const Gate& gate = nl.gate(g);
    if (!is_combinational(gate.type)) continue;
    for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
      const ArcId a = nl.arc_of(g, pin);
      const GateId f = gate.fanins[pin];
      SampleVector& req = required_[f];
      const SampleVector& out_req = required_[g];
      for (std::size_t k = 0; k < n; ++k) {
        const double cand = out_req[k] - field.delay(a, k);
        if (cand < req[k]) req[k] = cand;
      }
    }
  }
}

SampleVector SlackAnalysis::arc_slack(ArcId a) const {
  const Netlist& nl = field_->model().netlist();
  const auto& arc = nl.arc(a);
  const GateId tail = nl.gate(arc.gate).fanins[arc.pin];
  const std::size_t n = field_->sample_count();
  SampleVector slack(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    slack[k] = required_[arc.gate][k] - arrival_[tail][k] -
               field_->delay(a, k);
  }
  return slack;
}

double SlackAnalysis::violation_probability(ArcId a) const {
  return slack_below_probability(a, 0.0);
}

double SlackAnalysis::slack_below_probability(ArcId a, double margin) const {
  const auto slack = arc_slack(a);
  std::size_t count = 0;
  for (std::size_t k = 0; k < slack.size(); ++k) {
    count += (slack[k] < margin) ? 1U : 0U;
  }
  return static_cast<double>(count) / static_cast<double>(slack.size());
}

}  // namespace sddd::timing
