#include "timing/dynamic_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/error.h"
#include "obs/faults.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/cancel.h"
#include "runtime/parallel_for.h"

namespace sddd::timing {

using netlist::ArcId;
using netlist::GateId;
using netlist::Netlist;
using paths::ArrivalRule;
using paths::TransitionGraph;

namespace {

// Monte-Carlo accounting: mc.samples counts circuit-instance evaluations
// (one per statistical sample actually propagated), mc.delay_rows counts
// memoized arc-delay rows.
obs::Counter& mc_samples_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("mc.samples");
  return c;
}

obs::Counter& mc_delay_rows_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("mc.delay_rows");
  return c;
}

}  // namespace

DynamicTimingSimulator::DynamicTimingSimulator(
    const DelayField& field, const netlist::Levelization& lev)
    : field_(&field), lev_(&lev) {
  delay_cache_.resize(field.model().netlist().arc_count());
}

void DynamicTimingSimulator::materialize_row(ArcId a) const {
  auto& row = delay_cache_[a];
  const std::size_t n = field_->sample_count();
  row.resize(n);
  for (std::size_t k = 0; k < n; ++k) row[k] = field_->delay(a, k);
  // Fault seam mc.nan_row (keyed by arc id): poisons one sample so the
  // validation below - and the quarantine layer above - can be tested.
  if (obs::fault_at("mc.nan_row", a)) {
    row[n / 2] = std::numeric_limits<double>::quiet_NaN();
  }
  // A non-finite delay sample would silently poison every arrival (and
  // therefore every dictionary column) downstream of this arc; surface it
  // here, once, as a typed numeric error the trial quarantine can record.
  for (std::size_t k = 0; k < n; ++k) {
    if (!std::isfinite(row[k])) {
      row.clear();
      throw NumericError("non-finite delay sample for arc " +
                         std::to_string(a) + " at sample " +
                         std::to_string(k));
    }
  }
  mc_delay_rows_counter().add(1);
}

const std::vector<double>& DynamicTimingSimulator::arc_delays(ArcId a) const {
  auto& row = delay_cache_[a];
  if (row.empty() && field_->sample_count() != 0) {
    if (runtime::in_parallel_region()) {
      throw std::logic_error(
          "DynamicTimingSimulator::arc_delays: lazy delay memoization is "
          "not thread-safe; call prewarm() before sharing the simulator "
          "across a parallel region");
    }
    materialize_row(a);
  }
  return row;
}

void DynamicTimingSimulator::prewarm() const {
  if (prewarmed()) return;
  SDDD_SPAN(span, "mc.prewarm");
  span.arg("arcs", static_cast<std::int64_t>(delay_cache_.size()))
      .arg("samples", static_cast<std::int64_t>(field_->sample_count()));
  // Each arc fills only its own row, so the fill itself parallelizes
  // safely (and degrades to the serial loop inside nested regions).
  runtime::parallel_for(delay_cache_.size(), [this](std::size_t a) {
    if (delay_cache_[a].empty()) {
      materialize_row(static_cast<ArcId>(a));
    }
  });
  prewarmed_.store(true, std::memory_order_release);
}

namespace {

/// Computes one gate's arrival row from its active fanins.  `lookup` maps a
/// gate id to its arrival row (baseline or scratch); `delays` maps an arc
/// id to its memoized delay samples.  A defect is (defect_arc, per-sample
/// extras); pass defect_extra == nullptr for the defect-free case.
template <typename Lookup, typename Delays>
void compute_row(const Netlist& nl, std::size_t n, const TransitionGraph& tg,
                 GateId g, const Lookup& lookup, const Delays& delays,
                 ArcId defect_arc, const double* defect_extra,
                 std::vector<double>& out) {
  const auto& act = tg.active_fanins(g);
  const bool use_min = tg.rule(g) == ArrivalRule::kMinOverActive;
  out.assign(n, use_min ? std::numeric_limits<double>::infinity() : 0.0);
  for (const ArcId a : act) {
    const auto& arc = nl.arc(a);
    const GateId f = nl.gate(arc.gate).fanins[arc.pin];
    const std::vector<double>& in = lookup(f);
    const std::vector<double>& d = delays(a);
    const bool defective = defect_extra != nullptr && defect_arc == a;
    if (use_min) {
      if (defective) {
        for (std::size_t k = 0; k < n; ++k) {
          const double cand = in[k] + d[k] + defect_extra[k];
          if (cand < out[k]) out[k] = cand;
        }
      } else {
        for (std::size_t k = 0; k < n; ++k) {
          const double cand = in[k] + d[k];
          if (cand < out[k]) out[k] = cand;
        }
      }
    } else {
      if (defective) {
        for (std::size_t k = 0; k < n; ++k) {
          const double cand = in[k] + d[k] + defect_extra[k];
          if (cand > out[k]) out[k] = cand;
        }
      } else {
        for (std::size_t k = 0; k < n; ++k) {
          const double cand = in[k] + d[k];
          if (cand > out[k]) out[k] = cand;
        }
      }
    }
  }
}

}  // namespace

ArrivalMatrix DynamicTimingSimulator::simulate(const TransitionGraph& tg) const {
  // Cooperative cancellation: one poll per pattern-level simulation keeps
  // deadline latency bounded by a single induced-circuit sweep without
  // touching the per-gate hot loop.
  runtime::poll_cancellation();
  const Netlist& nl = field_->model().netlist();
  const std::size_t n = field_->sample_count();
  mc_samples_counter().add(n);
  ArrivalMatrix m;
  m.rows.assign(nl.gate_count(), {});
  const auto lookup = [&](GateId f) -> const std::vector<double>& {
    return m.rows[f];
  };
  const auto delays = [&](ArcId a) -> const std::vector<double>& {
    return arc_delays(a);
  };
  for (const GateId g : lev_->topo_order()) {
    if (!tg.toggles(g)) continue;
    if (!is_combinational(nl.gate(g).type)) {
      // A toggling PI launches its transition at time 0.
      m.rows[g].assign(n, 0.0);
      continue;
    }
    compute_row(nl, n, tg, g, lookup, delays, netlist::kInvalidArc, nullptr,
                m.rows[g]);
  }
  return m;
}

std::vector<double> DynamicTimingSimulator::error_vector(
    const TransitionGraph& tg, const ArrivalMatrix& arrivals,
    double clk) const {
  std::vector<double> err;
  error_vector_into(tg, arrivals, clk, err);
  return err;
}

void DynamicTimingSimulator::error_vector_into(const TransitionGraph& tg,
                                               const ArrivalMatrix& arrivals,
                                               double clk,
                                               std::vector<double>& out) const {
  const Netlist& nl = field_->model().netlist();
  const std::size_t n = field_->sample_count();
  out.clear();
  out.reserve(nl.outputs().size());
  for (const GateId o : nl.outputs()) {
    if (!tg.toggles(o) || arrivals.rows[o].empty()) {
      out.push_back(0.0);
      continue;
    }
    std::size_t count = 0;
    for (const double x : arrivals.rows[o]) count += (x > clk) ? 1U : 0U;
    out.push_back(static_cast<double>(count) / static_cast<double>(n));
  }
}

DynamicTimingSimulator::ConeRows DynamicTimingSimulator::recompute_cone(
    const TransitionGraph& tg, const ArrivalMatrix& baseline, ArcId arc,
    std::span<const double> extra) const {
  const Netlist& nl = field_->model().netlist();
  const std::size_t n = field_->sample_count();
  if (extra.size() != n) {
    throw std::invalid_argument(
        "recompute_cone: defect extra-delay size mismatch");
  }
  // The per-(suspect, pattern) dictionary hot path: this is where a
  // mid-trial deadline is actually noticed.
  runtime::poll_cancellation();
  mc_samples_counter().add(n);
  const GateId defect_gate = nl.arc(arc).gate;
  const auto cone = tg.forward_cone(defect_gate);

  // Scratch rows for cone gates only; everything upstream/off-cone reads
  // from the baseline.
  ConeRows rows;
  rows.scratch.resize(cone.size());
  rows.cone_index.assign(nl.gate_count(), -1);
  for (std::size_t i = 0; i < cone.size(); ++i) {
    rows.cone_index[cone[i]] = static_cast<std::int32_t>(i);
  }
  const auto lookup = [&](GateId f) -> const std::vector<double>& {
    const std::int32_t idx = rows.cone_index[f];
    return idx >= 0 ? rows.scratch[static_cast<std::size_t>(idx)]
                    : baseline.rows[f];
  };
  const auto delays = [&](ArcId a) -> const std::vector<double>& {
    return arc_delays(a);
  };
  for (std::size_t i = 0; i < cone.size(); ++i) {
    compute_row(nl, n, tg, cone[i], lookup, delays, arc, extra.data(),
                rows.scratch[i]);
  }
  return rows;
}

std::vector<double> DynamicTimingSimulator::error_vector_with_defect(
    const TransitionGraph& tg, const ArrivalMatrix& baseline,
    const InjectedDefect& defect, double clk) const {
  std::vector<double> err;
  error_vector_with_defect_into(tg, baseline, defect.arc, defect.extra, clk,
                                err);
  return err;
}

void DynamicTimingSimulator::error_vector_with_defect_into(
    const TransitionGraph& tg, const ArrivalMatrix& baseline, ArcId arc,
    std::span<const double> extra, double clk, std::vector<double>& out) const {
  const Netlist& nl = field_->model().netlist();
  const std::size_t n = field_->sample_count();
  if (!tg.is_active(arc)) {
    // No transition flows through the defective pin under this pattern:
    // the induced circuit is unchanged (fixed-sensitization semantics).
    if (extra.size() != n) {
      throw std::invalid_argument(
          "error_vector_with_defect: defect extra-delay size mismatch");
    }
    error_vector_into(tg, baseline, clk, out);
    return;
  }
  const ConeRows rows = recompute_cone(tg, baseline, arc, extra);

  out.clear();
  out.reserve(nl.outputs().size());
  for (const GateId o : nl.outputs()) {
    const std::int32_t idx = rows.cone_index[o];
    const std::vector<double>* row =
        idx >= 0 ? &rows.scratch[static_cast<std::size_t>(idx)]
                 : &baseline.rows[o];
    if (!tg.toggles(o) || row->empty()) {
      out.push_back(0.0);
      continue;
    }
    std::size_t count = 0;
    for (const double x : *row) count += (x > clk) ? 1U : 0U;
    out.push_back(static_cast<double>(count) / static_cast<double>(n));
  }
}

std::vector<std::uint8_t> DynamicTimingSimulator::late_mask(
    const TransitionGraph& tg, const ArrivalMatrix& arrivals,
    double clk) const {
  const Netlist& nl = field_->model().netlist();
  std::vector<std::uint8_t> mask(field_->sample_count(), 0);
  for (const GateId o : nl.outputs()) {
    if (!tg.toggles(o) || arrivals.rows[o].empty()) continue;
    const auto& row = arrivals.rows[o];
    for (std::size_t k = 0; k < mask.size(); ++k) {
      mask[k] |= (row[k] > clk) ? 1U : 0U;
    }
  }
  return mask;
}

std::vector<std::uint8_t> DynamicTimingSimulator::late_mask_with_defect(
    const TransitionGraph& tg, const ArrivalMatrix& baseline,
    const InjectedDefect& defect, double clk) const {
  const Netlist& nl = field_->model().netlist();
  const std::size_t n = field_->sample_count();
  if (!tg.is_active(defect.arc)) {
    if (defect.extra.size() != n) {
      throw std::invalid_argument(
          "late_mask_with_defect: defect extra-delay size mismatch");
    }
    return late_mask(tg, baseline, clk);
  }
  const ConeRows rows = recompute_cone(tg, baseline, defect.arc, defect.extra);
  std::vector<std::uint8_t> mask(n, 0);
  for (const GateId o : nl.outputs()) {
    if (!tg.toggles(o)) continue;
    const std::int32_t idx = rows.cone_index[o];
    const std::vector<double>& row =
        idx >= 0 ? rows.scratch[static_cast<std::size_t>(idx)]
                 : baseline.rows[o];
    if (row.empty()) continue;
    for (std::size_t k = 0; k < n; ++k) {
      mask[k] |= (row[k] > clk) ? 1U : 0U;
    }
  }
  return mask;
}

std::vector<double> DynamicTimingSimulator::simulate_instance(
    const TransitionGraph& tg, std::size_t k,
    std::optional<std::pair<ArcId, double>> defect) const {
  if (defect) {
    const std::pair<ArcId, double> one[] = {*defect};
    return simulate_instance_multi(tg, k, one);
  }
  return simulate_instance_multi(tg, k, {});
}

std::vector<double> DynamicTimingSimulator::simulate_instance_multi(
    const TransitionGraph& tg, std::size_t k,
    std::span<const std::pair<ArcId, double>> defects) const {
  const Netlist& nl = field_->model().netlist();
  if (k >= field_->sample_count()) {
    throw std::invalid_argument("simulate_instance: sample index out of range");
  }
  mc_samples_counter().add(1);
  std::vector<double> arr(nl.gate_count(), -1.0);
  const auto extra_on = [&](ArcId a) {
    double extra = 0.0;
    for (const auto& [site, delta] : defects) {
      if (site == a) extra += delta;
    }
    return extra;
  };
  for (const GateId g : lev_->topo_order()) {
    if (!tg.toggles(g)) continue;
    if (!is_combinational(nl.gate(g).type)) {
      arr[g] = 0.0;
      continue;
    }
    const auto& act = tg.active_fanins(g);
    const bool use_min = tg.rule(g) == ArrivalRule::kMinOverActive;
    double best = use_min ? std::numeric_limits<double>::infinity() : 0.0;
    for (const ArcId a : act) {
      const auto& arc = nl.arc(a);
      const GateId f = nl.gate(arc.gate).fanins[arc.pin];
      double cand = arr[f] + field_->delay(a, k);
      if (!defects.empty()) cand += extra_on(a);
      if (use_min ? (cand < best) : (cand > best)) best = cand;
    }
    arr[g] = best;
  }
  return arr;
}

std::vector<double> nominal_arrivals(const TransitionGraph& tg,
                                     const ArcDelayModel& model,
                                     const netlist::Levelization& lev) {
  const Netlist& nl = model.netlist();
  std::vector<double> arr(nl.gate_count(), -1.0);
  for (const GateId g : lev.topo_order()) {
    if (!tg.toggles(g)) continue;
    if (!is_combinational(nl.gate(g).type)) {
      arr[g] = 0.0;
      continue;
    }
    const auto& act = tg.active_fanins(g);
    const bool use_min = tg.rule(g) == ArrivalRule::kMinOverActive;
    double best = use_min ? std::numeric_limits<double>::infinity() : 0.0;
    for (const ArcId a : act) {
      const auto& arc = nl.arc(a);
      const double cand = arr[nl.gate(arc.gate).fanins[arc.pin]] + model.mean(a);
      if (use_min ? (cand < best) : (cand > best)) best = cand;
    }
    arr[g] = best;
  }
  return arr;
}

stats::SampleVector DynamicTimingSimulator::induced_delay(
    const TransitionGraph& tg, const ArrivalMatrix& arrivals) const {
  const Netlist& nl = field_->model().netlist();
  stats::SampleVector delta(field_->sample_count(), 0.0);
  for (const GateId o : nl.outputs()) {
    if (!tg.toggles(o) || arrivals.rows[o].empty()) continue;
    for (std::size_t s = 0; s < delta.size(); ++s) {
      delta[s] = std::max(delta[s], arrivals.rows[o][s]);
    }
  }
  return delta;
}

}  // namespace sddd::timing
