// dynamic_sim.h - Statistical dynamic timing simulation (Definitions
// D.5-D.7) with incremental defect evaluation.
//
// Given a pattern's transition graph (the induced circuit Induced(Path_v)),
// the simulator propagates arrival-time samples along active arcs only:
//
//   Ar(g)[k] = rule_g over active fanin arcs a of (Ar(fanin)[k] + d(a, k))
//
// where rule_g is MIN or MAX per the transition-mode semantics documented
// in paths/transition_graph.h, and d(a, k) comes from a DelayField
// (optionally plus a defect's extra delay on one arc).
//
// Three query flavours serve the diagnosis flow:
//   - simulate():              defect-free arrivals -> the M_crt row of the
//                              probabilistic fault dictionary;
//   - error_vector_with_defect(): arrivals with a candidate defect,
//                              recomputed only inside the defect's active
//                              fan-out cone -> the E_crt row (this is what
//                              makes per-suspect dictionary construction
//                              tractable, the paper's feasibility question
//                              (3));
//   - simulate_instance():     one chip (one sample index) with a fixed
//                              defect size -> the observed behavior matrix
//                              B of a failing chip.
#pragma once

#include <atomic>
#include <optional>
#include <span>
#include <vector>

#include "netlist/levelize.h"
#include "paths/transition_graph.h"
#include "stats/sample_vector.h"
#include "timing/delay_field.h"

namespace sddd::timing {

/// Arrival samples for every toggling gate of one pattern.  Rows of
/// non-toggling gates are empty (those outputs are not in the induced
/// circuit; their critical probability is 0 by Definition D.7).
struct ArrivalMatrix {
  std::vector<std::vector<double>> rows;  ///< [gate][sample]

  bool has(netlist::GateId g) const { return !rows[g].empty(); }
};

/// A delay defect placed on one arc for simulation purposes: extra delay
/// per Monte-Carlo sample (dictionary use: samples of the defect-size RV)
/// or one scalar (instance use).
struct InjectedDefect {
  netlist::ArcId arc = netlist::kInvalidArc;
  std::vector<double> extra;  ///< per-sample extra delay; size = sample count
};

class DynamicTimingSimulator {
 public:
  DynamicTimingSimulator(const DelayField& field,
                         const netlist::Levelization& lev);

  const DelayField& field() const { return *field_; }

  /// Materializes the memoized delay rows of every arc.  REQUIRED before
  /// any concurrent use of this simulator: the lazy per-arc memoization in
  /// arc_delays() is written on first access and is therefore not safe for
  /// concurrent callers.  After prewarm() every query is read-only and any
  /// number of threads may share the simulator.  Idempotent; safe to call
  /// from serial code only.  Enforced: a lazy materialization attempted
  /// from inside a runtime parallel region throws std::logic_error instead
  /// of racing.
  void prewarm() const;

  /// True once prewarm() has completed.
  bool prewarmed() const {
    return prewarmed_.load(std::memory_order_acquire);
  }

  /// Defect-free arrivals of all toggling gates under `tg`.
  ArrivalMatrix simulate(const paths::TransitionGraph& tg) const;

  /// Err(C, v, clk) of Definition D.7: critical probability per primary
  /// output (0 for outputs outside the induced circuit).
  std::vector<double> error_vector(const paths::TransitionGraph& tg,
                                   const ArrivalMatrix& arrivals,
                                   double clk) const;

  /// Err(D(C), v, clk): like error_vector but with `defect` added to one
  /// arc.  Recomputes only the defect's active fan-out cone; reads
  /// everything else from `baseline`.  When the defect arc is not active
  /// under `tg` the result equals the baseline error vector.
  std::vector<double> error_vector_with_defect(
      const paths::TransitionGraph& tg, const ArrivalMatrix& baseline,
      const InjectedDefect& defect, double clk) const;

  /// Allocation-free variant: the defect is (arc, per-sample extra delays)
  /// and the error vector is written into `out` (resized to |O|).  The
  /// InjectedDefect overload delegates here; hot callers - the per-
  /// (pattern, suspect) dictionary column builds - reuse `out` and a
  /// precomputed size table across calls instead of rebuilding an
  /// InjectedDefect and a fresh result vector every time.
  void error_vector_with_defect_into(const paths::TransitionGraph& tg,
                                     const ArrivalMatrix& baseline,
                                     netlist::ArcId arc,
                                     std::span<const double> extra, double clk,
                                     std::vector<double>& out) const;

  /// One chip instance: arrival per gate for sample `k` with a fixed-size
  /// defect (pass std::nullopt for defect-free).  Returns arrivals indexed
  /// by gate; non-toggling gates carry -1.
  std::vector<double> simulate_instance(
      const paths::TransitionGraph& tg, std::size_t k,
      std::optional<std::pair<netlist::ArcId, double>> defect) const;

  /// Multi-defect chip instance (the relaxed single-defect assumption,
  /// paper future work #3): every (arc, extra delay) pair is applied
  /// simultaneously.
  std::vector<double> simulate_instance_multi(
      const paths::TransitionGraph& tg, std::size_t k,
      std::span<const std::pair<netlist::ArcId, double>> defects) const;

  /// Delta(Induced(Path_v)) (Definition D.5): per-sample max over toggling
  /// primary outputs of the arrival matrix.
  stats::SampleVector induced_delay(const paths::TransitionGraph& tg,
                                    const ArrivalMatrix& arrivals) const;

  /// Per-sample indicator (1/0) of "at least one primary output exceeds
  /// clk" - the equivalence-checking-model error of Section F-2, needed
  /// jointly per sample by the coverage analysis (a union across patterns
  /// cannot be recovered from per-output marginals).
  std::vector<std::uint8_t> late_mask(const paths::TransitionGraph& tg,
                                      const ArrivalMatrix& arrivals,
                                      double clk) const;

  /// Like late_mask but with `defect` applied (incremental cone
  /// re-simulation against `baseline`).
  std::vector<std::uint8_t> late_mask_with_defect(
      const paths::TransitionGraph& tg, const ArrivalMatrix& baseline,
      const InjectedDefect& defect, double clk) const;

 private:
  /// Delay samples of one arc, materialized on first use.  The counter-
  /// based field recomputes an inverse CDF per (arc, sample) access; the
  /// dictionary's cone re-simulations touch the same arcs thousands of
  /// times, so memoizing rows is the difference between seconds and
  /// minutes on the larger benchmarks.
  ///
  /// NOT safe for concurrent callers while a row is still empty - call
  /// prewarm() before sharing the simulator across threads (the empty-row
  /// path throws when reached inside a parallel region).
  const std::vector<double>& arc_delays(netlist::ArcId a) const;

  void materialize_row(netlist::ArcId a) const;

  /// Scratch arrival rows for the defect's active fan-out cone, plus the
  /// gate -> scratch-index map (-1 = read the baseline).  Shared by the
  /// error-vector and late-mask defect queries.
  struct ConeRows {
    std::vector<std::vector<double>> scratch;
    std::vector<std::int32_t> cone_index;
  };
  ConeRows recompute_cone(const paths::TransitionGraph& tg,
                          const ArrivalMatrix& baseline, netlist::ArcId arc,
                          std::span<const double> extra) const;

  void error_vector_into(const paths::TransitionGraph& tg,
                         const ArrivalMatrix& arrivals, double clk,
                         std::vector<double>& out) const;

  const DelayField* field_;
  const netlist::Levelization* lev_;
  mutable std::vector<std::vector<double>> delay_cache_;
  mutable std::atomic<bool> prewarmed_{false};
};

/// Nominal (mean-delay) arrival per gate under the transition-mode
/// semantics: the deterministic skeleton of the statistical simulation,
/// used by the GA fill fitness and the pattern-search heuristics.
/// Non-toggling gates carry -1.
std::vector<double> nominal_arrivals(const paths::TransitionGraph& tg,
                                     const ArcDelayModel& model,
                                     const netlist::Levelization& lev);

}  // namespace sddd::timing
