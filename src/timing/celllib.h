// celllib.h - Statistical cell library (Section H-1 substitute).
//
// The paper pre-characterizes a 0.25um / 2.5V CMOS standard-cell library
// with a Monte-Carlo SPICE (ELDO) run: each cell's pin-to-pin delay is a
// random variable indexed by input transition time and output load.  We
// substitute a parametric library with the same interface to the rest of
// the system: a pin-to-pin delay random variable per (cell type, fanin
// count, fanout load).  The diagnosis algorithms only ever consume samples
// of these variables, so the silicon provenance of the pdf is immaterial to
// algorithm behaviour (DESIGN.md, substitution table).
//
// The derating model is the classic linear one:
//     delay = base(type) * arity_factor^(fanins-2) * (1 + load_slope*(fanouts-1))
// with the result expressed as a Normal random variable whose 3-sigma
// spread is a configurable percentage of the nominal (process variation).
#pragma once

#include <cstdint>

#include "netlist/netlist.h"
#include "stats/rv.h"

namespace sddd::timing {

/// Parametric statistical cell library.  Values are in arbitrary time units
/// ("tu"); only ratios matter to the diagnosis flow.
struct CellLibraryConfig {
  double buf_delay = 60.0;
  double not_delay = 50.0;
  double nand_delay = 90.0;
  double nor_delay = 110.0;
  double and_delay = 120.0;   ///< NAND + internal inverter
  double or_delay = 140.0;
  double xor_delay = 160.0;
  double xnor_delay = 170.0;
  /// Multiplier per fanin beyond 2 (series-stack slowdown).
  double arity_factor = 1.25;
  /// Additional relative delay per fanout beyond the first (output load).
  double load_slope = 0.08;
  /// Process spread: 3-sigma as a fraction of the nominal delay.
  double three_sigma_pct = 0.15;
};

/// Maps (cell type, structural context) to pin-to-pin delay random
/// variables.  Stateless apart from its configuration; cheap to copy.
class StatisticalCellLibrary {
 public:
  StatisticalCellLibrary() : StatisticalCellLibrary(CellLibraryConfig{}) {}
  explicit StatisticalCellLibrary(const CellLibraryConfig& config);

  const CellLibraryConfig& config() const { return config_; }

  /// Nominal (mean) pin-to-pin delay for one arc of `nl`.
  double nominal_delay(const netlist::Netlist& nl, netlist::ArcId a) const;

  /// Full delay random variable for one arc of `nl`.
  stats::RandomVariable arc_delay(const netlist::Netlist& nl,
                                  netlist::ArcId a) const;

  /// Mean cell delay across the library's 2-input gates; the paper sizes
  /// defect magnitudes relative to "a cell delay" (Section I), and the
  /// defect model uses this as its unit.
  double mean_cell_delay() const;

 private:
  double base_delay(netlist::CellType type) const;

  CellLibraryConfig config_;
};

}  // namespace sddd::timing
