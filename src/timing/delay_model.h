// delay_model.h - Materialized per-arc delay random variables.
//
// Binds a netlist to a statistical cell library, producing the f function
// of Definition D.1: one delay random variable per timing arc.  Also keeps
// the vector of nominal (mean) delays that path selection and the GA fill
// use as arc weights.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "stats/rv.h"
#include "timing/celllib.h"

namespace sddd::timing {

/// The statistical circuit model C = (V, E, I, O, f): netlist + f.
class ArcDelayModel {
 public:
  ArcDelayModel(const netlist::Netlist& nl,
                const StatisticalCellLibrary& lib);

  const netlist::Netlist& netlist() const { return *nl_; }

  const stats::RandomVariable& arc_rv(netlist::ArcId a) const {
    return rvs_[a];
  }

  /// Nominal (mean) delay per arc; usable as path-selection weights.
  std::span<const double> means() const { return means_; }

  double mean(netlist::ArcId a) const { return means_[a]; }

  /// The library's mean 2-input cell delay (defect sizing unit).
  double mean_cell_delay() const { return mean_cell_delay_; }

 private:
  const netlist::Netlist* nl_;
  std::vector<stats::RandomVariable> rvs_;
  std::vector<double> means_;
  double mean_cell_delay_ = 0.0;
};

}  // namespace sddd::timing
