#include "timing/clark_ssta.h"

#include <cmath>

#include "stats/rv.h"

namespace sddd::timing {

using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;

namespace {

double normal_pdf(double z) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

}  // namespace

double GaussianArrival::sigma() const { return std::sqrt(std::max(var, 0.0)); }

double GaussianArrival::critical_probability(double clk) const {
  const double s = sigma();
  if (s <= 0.0) return mean > clk ? 1.0 : 0.0;
  return 1.0 - stats::normal_cdf((clk - mean) / s);
}

double GaussianArrival::quantile(double q) const {
  return mean + sigma() * stats::inverse_normal_cdf(q);
}

GaussianArrival clark_max(const GaussianArrival& x, const GaussianArrival& y,
                          double rho) {
  // Clark (1961), "The greatest of a finite set of random variables".
  const double a2 =
      std::max(x.var + y.var - 2.0 * rho * x.sigma() * y.sigma(), 0.0);
  const double a = std::sqrt(a2);
  if (a < 1e-12) {
    // (Nearly) perfectly tracking inputs: max is whichever mean is larger.
    return x.mean >= y.mean ? x : y;
  }
  const double alpha = (x.mean - y.mean) / a;
  const double cdf = stats::normal_cdf(alpha);
  const double cdf_n = stats::normal_cdf(-alpha);
  const double pdf = normal_pdf(alpha);

  GaussianArrival out;
  out.mean = x.mean * cdf + y.mean * cdf_n + a * pdf;
  const double second = (x.mean * x.mean + x.var) * cdf +
                        (y.mean * y.mean + y.var) * cdf_n +
                        (x.mean + y.mean) * a * pdf;
  out.var = std::max(second - out.mean * out.mean, 0.0);
  return out;
}

ClarkStaticTiming::ClarkStaticTiming(const ArcDelayModel& model,
                                     const netlist::Levelization& lev) {
  const Netlist& nl = model.netlist();
  arrival_.assign(nl.gate_count(), GaussianArrival{});

  for (const GateId g : lev.topo_order()) {
    const Gate& gate = nl.gate(g);
    if (!is_combinational(gate.type)) continue;  // sources arrive at 0
    bool first = true;
    GaussianArrival acc;
    for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
      const auto& rv = model.arc_rv(nl.arc_of(g, pin));
      GaussianArrival in = arrival_[gate.fanins[pin]];
      in.mean += rv.mean();
      in.var += rv.stddev() * rv.stddev();
      if (first) {
        acc = in;
        first = false;
      } else {
        acc = clark_max(acc, in);
      }
    }
    arrival_[g] = acc;
  }

  bool first = true;
  for (const GateId o : nl.outputs()) {
    if (first) {
      delta_ = arrival_[o];
      first = false;
    } else {
      delta_ = clark_max(delta_, arrival_[o]);
    }
  }
}

}  // namespace sddd::timing
