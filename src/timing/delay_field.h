// delay_field.h - Joint Monte-Carlo realization of all arc delays.
//
// A DelayField is the bridge between the circuit *model* (arc delay random
// variables, Definition D.1) and circuit *instances* (fixed delay
// configurations, Definition D.2): sample index k of the field is one
// manufactured chip; delay(a, k) is that chip's pin-to-pin delay on arc a.
//
// Storage is O(samples), not O(arcs x samples): delays are generated
// counter-based.  A SplitMix64 hash of (seed, arc, sample) produces the
// arc's local uniform, pushed through the arc RV's closed-form inverse CDF;
// a per-sample shared normal factor G_k adds inter-die correlation:
//
//     delay(a, k) = max(0, rv_a.quantile(u(a, k)) * (1 + w_g * G_k))
//
// Determinism: the same (model, seed, sample count, w_g) always yields the
// same field, with no sequential RNG state to keep in sync - the dictionary
// simulation can visit arcs in any order or subset (incremental cone
// updates) and still see the same chip.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/correlation.h"
#include "timing/delay_model.h"

namespace sddd::timing {

class DelayField {
 public:
  /// @param model          per-arc delay RVs
  /// @param n_samples      Monte-Carlo population size
  /// @param global_weight  w_g: relative sigma of the shared inter-die
  ///                       factor (0 = fully independent arc delays)
  /// @param seed           field seed; different seeds = independent chips
  DelayField(const ArcDelayModel& model, std::size_t n_samples,
             double global_weight, std::uint64_t seed);

  const ArcDelayModel& model() const { return *model_; }
  std::size_t sample_count() const { return global_factor_.size(); }
  double global_weight() const { return global_weight_; }
  std::uint64_t seed() const { return seed_; }

  /// Delay of arc `a` in chip (sample) `k`.  Pure function of
  /// (seed, a, k); thread-safe.
  double delay(netlist::ArcId a, std::size_t k) const {
    const double u = local_uniform(a, k);
    const double base = model_->arc_rv(a).quantile(u);
    const double mult = 1.0 + global_weight_ * global_factor_[k];
    const double d = base * (mult > 0.0 ? mult : 0.0);
    return d;
  }

  /// The shared inter-die factor of sample k (standard normal).
  double global_factor(std::size_t k) const { return global_factor_[k]; }

 private:
  double local_uniform(netlist::ArcId a, std::size_t k) const;

  const ArcDelayModel* model_;
  double global_weight_;
  std::uint64_t seed_;
  std::vector<double> global_factor_;
};

/// Counter-based uniform in (0,1): SplitMix64 finalizer over a combined
/// key.  Exposed for the defect-size sampler which needs the same
/// "deterministic stream addressed by (salt, k)" property.
double counter_uniform(std::uint64_t seed, std::uint64_t salt,
                       std::uint64_t index);

}  // namespace sddd::timing
