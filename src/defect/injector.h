// injector.h - Statistical defect injection (Section H-3 / I).
//
// Produces the failing-chip population of the experiments: each injected
// chip is (a) one joint delay-configuration draw of the circuit model - a
// sample index of an *instance* DelayField kept separate from the
// dictionary's field so the diagnosis cannot "recognize" the chip among
// its own Monte-Carlo samples - plus (b) one defect whose location and
// size are drawn from a SegmentDefectModel / DefectSizeModel.
#pragma once

#include <cstdint>
#include <optional>

#include "defect/defect_model.h"
#include "netlist/netlist.h"
#include "stats/rng.h"

namespace sddd::defect {

/// One injected chip: the ground truth of a diagnosis trial.
struct InjectedChip {
  std::size_t sample_index = 0;        ///< which chip of the instance field
  netlist::ArcId defect_arc = netlist::kInvalidArc;
  double defect_size = 0.0;            ///< fixed drawn size (time units)
  double size_mean = 0.0;              ///< mean of the drawn size RV
};

/// Draws injected chips.  Stateless apart from the RNG the caller owns.
class DefectInjector {
 public:
  DefectInjector(const SegmentDefectModel& location_model,
                 const DefectSizeModel& size_model)
      : location_(&location_model), size_(&size_model) {}

  /// Draws one chip: location from the segment model, size from the
  /// hierarchical size model, sample index uniform in [0, n_instances).
  InjectedChip draw(std::size_t n_instances, stats::Rng& rng) const;

 private:
  const SegmentDefectModel* location_;
  const DefectSizeModel* size_;
};

}  // namespace sddd::defect
