#include "defect/injector.h"

#include <stdexcept>

namespace sddd::defect {

InjectedChip DefectInjector::draw(std::size_t n_instances,
                                  stats::Rng& rng) const {
  if (n_instances == 0) {
    throw std::invalid_argument("DefectInjector: n_instances must be > 0");
  }
  InjectedChip chip;
  chip.sample_index = static_cast<std::size_t>(
      rng.below(static_cast<std::uint32_t>(n_instances)));
  chip.defect_arc = location_->draw_location(rng);
  const auto size_rv = size_->draw_instance_rv(rng);
  chip.size_mean = size_rv.mean();
  chip.defect_size = size_rv.sample(rng);
  return chip;
}

}  // namespace sddd::defect
