// defect_model.h - Delay defect distributions (Definitions D.9 / D.10).
//
// The segment-oriented defect function D assigns each arc e_i a pair
// (delta_i, rho_i): a defect-size random variable and an occurrence
// probability.  The single-defect specialization D_s puts all occurrence
// mass on one arc - the model under which both the paper's experiments and
// Algorithm E.1 operate.
//
// Defect sizing follows Section I: "the random variable corresponding to
// the injected defect size has a mean that is in the range of 50% to 100%
// of a cell delay and we assume 3-sigma is 50% of the mean."  The size
// model is hierarchical: mean ~ U(lo, hi) x unit, size | mean ~
// Normal(mean, mean/6).  The diagnosis dictionary knows the *distribution*
// but not the drawn size (the paper's "defect size is a random variable");
// the injected chip carries one fixed draw.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "stats/rng.h"
#include "stats/rv.h"

namespace sddd::defect {

/// Hierarchical defect-size distribution, shared by injection (one draw)
/// and dictionary construction (per-sample counter-based draws).
class DefectSizeModel {
 public:
  /// @param unit         the "cell delay" unit (library mean cell delay)
  /// @param mean_lo_frac lower bound of the size mean, as fraction of unit
  /// @param mean_hi_frac upper bound of the size mean, as fraction of unit
  /// @param three_sigma_frac  3-sigma of the size, as fraction of its mean
  /// @param seed         stream for the counter-based dictionary draws
  DefectSizeModel(double unit, double mean_lo_frac, double mean_hi_frac,
                  double three_sigma_frac, std::uint64_t seed);

  /// Paper defaults: mean in [0.5, 1.0] x unit, 3-sigma = 50% of mean.
  static DefectSizeModel paper_default(double unit, std::uint64_t seed);

  double unit() const { return unit_; }

  /// Marginal mean of the defect size (average over the mean's range).
  double marginal_mean() const;

  /// Counter-based sample of the marginal size distribution, addressed by
  /// (salt, k).  Used to build E_crt: sample k of the dictionary sees this
  /// defect size on the suspect arc.  Deterministic; always >= 0.
  double sample(std::uint64_t salt, std::size_t k) const;

  /// Draws the size RV of one *injected* defect: picks a mean uniformly,
  /// returns Normal(mean, mean/6) (so callers can also report the drawn
  /// distribution, not just the value).
  stats::RandomVariable draw_instance_rv(stats::Rng& rng) const;

 private:
  double unit_;
  double mean_lo_;
  double mean_hi_;
  double three_sigma_frac_;
  std::uint64_t seed_;
};

/// Segment-oriented defect function D (Definition D.9): one
/// (size RV, occurrence probability) pair per arc.
class SegmentDefectModel {
 public:
  SegmentDefectModel(const netlist::Netlist& nl,
                     std::vector<stats::RandomVariable> sizes,
                     std::vector<double> occurrence);

  /// Uniform single-defect prior: every arc equally likely, common size
  /// model (the experiment default).
  static SegmentDefectModel uniform_single(const netlist::Netlist& nl,
                                           const stats::RandomVariable& size);

  const netlist::Netlist& netlist() const { return *nl_; }
  const stats::RandomVariable& size_rv(netlist::ArcId a) const {
    return sizes_[a];
  }
  double occurrence(netlist::ArcId a) const { return occurrence_[a]; }

  /// True when occurrence probabilities select exactly one arc in every
  /// draw (sum = 1, interpreting them as a categorical distribution) -
  /// Definition D.10's single-defect constraint.
  bool is_single_defect() const;

  /// Draws a defect location from the occurrence distribution.
  netlist::ArcId draw_location(stats::Rng& rng) const;

 private:
  const netlist::Netlist* nl_;
  std::vector<stats::RandomVariable> sizes_;
  std::vector<double> occurrence_;
};

}  // namespace sddd::defect
