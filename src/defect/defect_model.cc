#include "defect/defect_model.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "timing/delay_field.h"  // counter_uniform

namespace sddd::defect {

using stats::RandomVariable;
using stats::Rng;

DefectSizeModel::DefectSizeModel(double unit, double mean_lo_frac,
                                 double mean_hi_frac, double three_sigma_frac,
                                 std::uint64_t seed)
    : unit_(unit),
      mean_lo_(mean_lo_frac * unit),
      mean_hi_(mean_hi_frac * unit),
      three_sigma_frac_(three_sigma_frac),
      seed_(seed) {
  if (unit <= 0.0 || mean_lo_frac < 0.0 || mean_hi_frac < mean_lo_frac ||
      three_sigma_frac < 0.0) {
    throw std::invalid_argument("DefectSizeModel: bad parameters");
  }
}

DefectSizeModel DefectSizeModel::paper_default(double unit,
                                               std::uint64_t seed) {
  return DefectSizeModel(unit, 0.5, 1.0, 0.5, seed);
}

double DefectSizeModel::marginal_mean() const {
  return 0.5 * (mean_lo_ + mean_hi_);
}

double DefectSizeModel::sample(std::uint64_t salt, std::size_t k) const {
  const double u_mean = timing::counter_uniform(seed_, salt * 2 + 1, k);
  const double mean = mean_lo_ + (mean_hi_ - mean_lo_) * u_mean;
  const double sigma = mean * three_sigma_frac_ / 3.0;
  const double u_size = timing::counter_uniform(seed_, salt * 2 + 2, k);
  const double size = mean + sigma * stats::inverse_normal_cdf(u_size);
  return size > 0.0 ? size : 0.0;
}

RandomVariable DefectSizeModel::draw_instance_rv(Rng& rng) const {
  const double mean = rng.uniform(mean_lo_, mean_hi_);
  return RandomVariable::NormalThreeSigmaPct(mean, three_sigma_frac_);
}

SegmentDefectModel::SegmentDefectModel(const netlist::Netlist& nl,
                                       std::vector<RandomVariable> sizes,
                                       std::vector<double> occurrence)
    : nl_(&nl), sizes_(std::move(sizes)), occurrence_(std::move(occurrence)) {
  if (sizes_.size() != nl.arc_count() || occurrence_.size() != nl.arc_count()) {
    throw std::invalid_argument("SegmentDefectModel: size mismatch");
  }
  for (const double p : occurrence_) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(
          "SegmentDefectModel: occurrence probabilities must be in [0, 1]");
    }
  }
}

SegmentDefectModel SegmentDefectModel::uniform_single(
    const netlist::Netlist& nl, const RandomVariable& size) {
  const std::size_t m = nl.arc_count();
  if (m == 0) {
    throw std::invalid_argument("SegmentDefectModel: netlist has no arcs");
  }
  std::vector<RandomVariable> sizes(m, size);
  std::vector<double> occ(m, 1.0 / static_cast<double>(m));
  return SegmentDefectModel(nl, std::move(sizes), std::move(occ));
}

bool SegmentDefectModel::is_single_defect() const {
  const double sum =
      std::accumulate(occurrence_.begin(), occurrence_.end(), 0.0);
  return std::abs(sum - 1.0) < 1e-9;
}

netlist::ArcId SegmentDefectModel::draw_location(Rng& rng) const {
  const double sum =
      std::accumulate(occurrence_.begin(), occurrence_.end(), 0.0);
  double u = rng.uniform01() * sum;
  for (netlist::ArcId a = 0; a < occurrence_.size(); ++a) {
    u -= occurrence_[a];
    if (u <= 0.0) return a;
  }
  return static_cast<netlist::ArcId>(occurrence_.size() - 1);
}

}  // namespace sddd::defect
