#include "store/store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>
#include <set>
#include <utility>

#include "atpg/diag_patterns.h"
#include "diagnosis/dictionary.h"
#include "eval/checkpoint.h"
#include "eval/experiment.h"
#include "introspect/manifest.h"
#include "netlist/levelize.h"
#include "obs/atomic_file.h"
#include "obs/error.h"
#include "obs/faults.h"
#include "obs/ledger.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "paths/transition_graph.h"
#include "runtime/cancel.h"
#include "runtime/parallel_for.h"
#include "stats/rng.h"
#include "stats/rv.h"
#include "stats/sample_vector.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"
#include "timing/dynamic_sim.h"

namespace sddd::store {

using netlist::ArcId;
using stats::Rng;

namespace {

// Ordinals behind the store.* fault seams: opens and section verifies
// happen serially (server startup, CLI, tests), so a process-wide counter
// is schedule-independent.
std::atomic<std::uint64_t> g_open_ordinal{0};
std::atomic<std::uint64_t> g_crc_ordinal{0};

obs::Counter& store_opens_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("store.opens");
  return c;
}

obs::Counter& store_open_failures_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("store.open_failures");
  return c;
}

// --- Explicit little-endian scalar serialization -------------------------

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_f64(std::string* out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader over the mapped header bytes.
struct Reader {
  const unsigned char* p;
  std::uint64_t n;
  std::uint64_t i = 0;
  const std::string& path;

  void need(std::uint64_t bytes) const {
    if (i + bytes > n) {
      throw StoreError("header", path + ": truncated header (need " +
                                      std::to_string(bytes) + " bytes at " +
                                      std::to_string(i) + ", file has " +
                                      std::to_string(n) + ")");
    }
  }
  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) {
      v |= static_cast<std::uint32_t>(p[i + static_cast<std::uint64_t>(b)])
           << (8 * b);
    }
    i += 4;
    return v;
  }
  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(p[i + static_cast<std::uint64_t>(b)])
           << (8 * b);
    }
    i += 8;
    return v;
  }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
};

std::uint64_t fnv1a(const unsigned char* p, std::uint64_t n) {
  return obs::ledger_fnv1a64(
      std::string_view(reinterpret_cast<const char*>(p), n));
}

std::uint64_t padded_to(std::uint64_t offset, std::uint64_t align) {
  return (offset + align - 1) / align * align;
}

/// The model/simulator stack a store build runs on.  Construction mirrors
/// eval::ExperimentSetup's derivations exactly where they overlap (seed
/// xors, calibration stream, size model), so a store built at the
/// experiment's defaults predicts the same probabilities the experiment's
/// dictionary would.
struct BuildStack {
  netlist::Levelization lev;
  timing::StatisticalCellLibrary lib;
  timing::ArcDelayModel model;
  logicsim::BitSimulator logic_sim;
  timing::DelayField dict_field;
  timing::DynamicTimingSimulator dict_sim;
  defect::DefectSizeModel size_model;
  double clk = 0.0;
  std::vector<logicsim::PatternPair> patterns;

  BuildStack(const netlist::Netlist& nl, const StoreBuildConfig& config)
      : lev(nl),
        lib(config.library),
        model(nl, lib),
        logic_sim(nl, lev),
        dict_field(model, config.mc_samples, config.global_weight,
                   config.seed ^ 0xd1c7ULL),
        dict_sim(dict_field, lev),
        size_model(model.mean_cell_delay(), config.defect_mean_lo,
                   config.defect_mean_hi, config.defect_three_sigma,
                   config.seed ^ 0x5e1fULL) {
    const atpg::DiagnosticPatternConfig pattern_config;
    if (config.clk_override > 0.0) {
      clk = config.clk_override;
    } else {
      // clk calibration: the experiment's per-site achievable-delay sweep.
      Rng cal_rng(config.seed, 0xca1bULL);
      std::vector<double> site_delays;
      for (std::size_t s = 0; s < config.calibration_sites; ++s) {
        const auto site = static_cast<ArcId>(
            cal_rng.below(static_cast<std::uint32_t>(nl.arc_count())));
        const auto cal_patterns = atpg::generate_diagnostic_patterns(
            model, lev, site, pattern_config, cal_rng);
        const double d =
            atpg::site_best_nominal_delay(model, lev, cal_patterns, site);
        if (d > 0.0) site_delays.push_back(d);
      }
      if (site_delays.empty()) {
        throw ModelError("dict build: no calibration site was testable");
      }
      clk = stats::SampleVector(std::move(site_delays))
                .quantile(config.clk_site_quantile);
    }

    // Pattern set: deduped union of diagnostic pattern sets for
    // pattern_sites randomly drawn fault sites, capped at max_patterns.
    // A dedicated stream keeps the set independent of the calibration.
    Rng pat_rng(config.seed, 0x9a77ULL);
    std::set<std::string> seen;
    for (std::size_t s = 0;
         s < config.pattern_sites && patterns.size() < config.max_patterns;
         ++s) {
      const auto site = static_cast<ArcId>(
          pat_rng.below(static_cast<std::uint32_t>(nl.arc_count())));
      for (auto& p : atpg::generate_diagnostic_patterns(model, lev, site,
                                                        pattern_config,
                                                        pat_rng)) {
        std::string key;
        key.reserve(p.v1.size() * 2);
        for (const bool b : p.v1) key.push_back(b ? '1' : '0');
        for (const bool b : p.v2) key.push_back(b ? '1' : '0');
        if (!seen.insert(std::move(key)).second) continue;
        patterns.push_back(std::move(p));
        if (patterns.size() >= config.max_patterns) break;
      }
    }
    if (patterns.empty()) {
      throw ModelError("dict build: pattern-site sweep produced no patterns");
    }
  }
};

std::uint64_t store_fingerprint(const netlist::Netlist& nl,
                                const StoreBuildConfig& config,
                                const BuildStack& stack) {
  // The checkpoint journal's experiment fingerprint over the knobs the
  // store shares with the experiment harness...
  eval::ExperimentConfig mirror;
  mirror.mc_samples = config.mc_samples;
  mirror.n_chips = 0;
  mirror.calibration_sites = config.calibration_sites;
  mirror.clk_site_quantile = config.clk_site_quantile;
  mirror.global_weight = config.global_weight;
  mirror.defect_mean_lo = config.defect_mean_lo;
  mirror.defect_mean_hi = config.defect_mean_hi;
  mirror.defect_three_sigma = config.defect_three_sigma;
  mirror.max_suspects = config.max_suspects;
  mirror.library = config.library;
  mirror.seed = config.seed;
  const std::uint64_t base = eval::experiment_fingerprint(nl.name(), mirror);

  // ...then fold in what makes this a *store*: format version, the
  // calibrated clk and the exact pattern set the matrices are indexed by.
  std::string tail = "sddd-store-v1|";
  put_u64(&tail, base);
  put_u32(&tail, kStoreFormatVersion);
  put_u64(&tail, std::bit_cast<std::uint64_t>(stack.clk));
  put_u64(&tail, config.pattern_sites);
  put_u64(&tail, config.max_patterns);
  put_u64(&tail, stack.patterns.size());
  for (const auto& p : stack.patterns) {
    for (const bool b : p.v1) tail.push_back(b ? '\1' : '\0');
    for (const bool b : p.v2) tail.push_back(b ? '\1' : '\0');
  }
  return obs::ledger_fnv1a64(tail);
}

void pack_pattern_bits(const logicsim::Pattern& v, std::size_t words,
                       std::string* out) {
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = 0;
    for (std::size_t b = 0; b < 64; ++b) {
      const std::size_t i = w * 64 + b;
      if (i < v.size() && v[i]) bits |= 1ULL << b;
    }
    put_u64(out, bits);
  }
}

}  // namespace

std::string serialize_dictionary_store(const netlist::Netlist& nl,
                                       const StoreBuildConfig& config,
                                       StoreBuildInfo* info) {
  const BuildStack stack(nl, config);
  const std::size_t n_inputs = nl.inputs().size();
  const std::size_t n_outputs = nl.outputs().size();
  const std::size_t n_patterns = stack.patterns.size();
  const std::size_t n_arcs = nl.arc_count();
  const std::size_t n_samples = config.mc_samples;
  const std::size_t input_words = (n_inputs + 63) / 64;
  const std::size_t arc_words = (n_arcs + 63) / 64;

  // Per-arc defect-size tables, shared by the "sizes" section and every
  // e/s column build (sizes[a][k] == size_model.sample(a, k), the
  // diagnoser's own precompute).
  std::vector<std::vector<double>> size_tables(n_arcs);
  runtime::parallel_for(n_arcs, [&](std::size_t a) {
    auto& table = size_tables[a];
    table.resize(n_samples);
    for (std::size_t k = 0; k < n_samples; ++k) {
      table[k] = stack.size_model.sample(static_cast<ArcId>(a), k);
    }
  });

  // One pass per pattern: the slice materializes the baseline arrivals
  // once; every arc's E and S columns evaluate against it in parallel
  // (each (pattern, arc) writes only its own rows - deterministic at any
  // thread count), and the pattern's per-output cone bitsets come from
  // the same transition graph.
  std::vector<double> m_data(n_patterns * n_outputs);
  std::vector<double> e_data(n_patterns * n_arcs * n_outputs);
  std::vector<double> s_data(n_patterns * n_arcs * n_outputs);
  std::vector<std::uint64_t> cone_data(n_patterns * n_outputs * arc_words, 0);
  for (std::size_t j = 0; j < n_patterns; ++j) {
    runtime::poll_cancellation();
    const diagnosis::PatternSlice slice(stack.dict_sim, stack.logic_sim,
                                        stack.lev, stack.patterns[j],
                                        stack.clk);
    std::copy(slice.m_column().begin(), slice.m_column().end(),
              m_data.begin() + static_cast<std::ptrdiff_t>(j * n_outputs));
    const paths::TransitionGraph& tg = slice.transition_graph();
    for (std::size_t i = 0; i < n_outputs; ++i) {
      const auto cone = tg.cone_to_output(nl.outputs()[i]);
      std::uint64_t* row =
          cone_data.data() + (j * n_outputs + i) * arc_words;
      for (std::size_t a = 0; a < n_arcs; ++a) {
        if (cone[a]) row[a >> 6] |= 1ULL << (a & 63);
      }
    }
    runtime::parallel_for_chunked(
        n_arcs, 16, [&](std::size_t lo, std::size_t hi) {
          std::vector<double> col;
          for (std::size_t a = lo; a < hi; ++a) {
            const std::size_t base = (j * n_arcs + a) * n_outputs;
            slice.e_column_into(static_cast<ArcId>(a), size_tables[a], col);
            std::copy(col.begin(), col.end(),
                      e_data.begin() + static_cast<std::ptrdiff_t>(base));
            slice.signature_column_into(static_cast<ArcId>(a), size_tables[a],
                                        col);
            std::copy(col.begin(), col.end(),
                      s_data.begin() + static_cast<std::ptrdiff_t>(base));
          }
        });
  }

  // Section payloads in file order.
  std::string payloads[kStoreSectionCount];
  {
    std::string& p = payloads[0];  // patterns
    p.reserve(n_patterns * 2 * input_words * 8);
    for (const auto& pat : stack.patterns) {
      pack_pattern_bits(pat.v1, input_words, &p);
      pack_pattern_bits(pat.v2, input_words, &p);
    }
  }
  {
    std::string& p = payloads[1];  // cones
    p.reserve(cone_data.size() * 8);
    for (const std::uint64_t w : cone_data) put_u64(&p, w);
  }
  const auto put_doubles = [](std::string& p, const std::vector<double>& d) {
    p.reserve(d.size() * 8);
    for (const double v : d) put_f64(&p, v);
  };
  put_doubles(payloads[2], m_data);
  put_doubles(payloads[3], e_data);
  put_doubles(payloads[4], s_data);
  {
    std::string& p = payloads[5];  // sizes
    p.reserve(n_arcs * n_samples * 8);
    for (const auto& table : size_tables) {
      for (const double v : table) put_f64(&p, v);
    }
  }

  const std::uint64_t fingerprint = store_fingerprint(nl, config, stack);

  // Layout: header size is fixed given the circuit name, so offsets are
  // computable before anything is written.
  const std::uint64_t header_bytes =
      8 + 4 + 4 + 8 + 8 + 8 + 8 +      // magic..clk_bits
      4 * 5 +                          // n_inputs..max_suspects
      8 * 5 +                          // model param bit fields
      4 + nl.name().size() +           // circuit
      8 +                              // total_bytes
      kStoreSectionCount * (kStoreSectionNameLen + 8 + 8 + 8) +
      8;                               // header_crc
  std::uint64_t offsets[kStoreSectionCount];
  std::uint64_t cursor = header_bytes;
  for (std::size_t s = 0; s < kStoreSectionCount; ++s) {
    cursor = padded_to(cursor, kStoreSectionAlign);
    offsets[s] = cursor;
    cursor += payloads[s].size();
  }
  const std::uint64_t total_bytes = cursor;

  std::string out;
  out.reserve(total_bytes);
  out.append(kStoreMagic, 8);
  put_u32(&out, kStoreFormatVersion);
  put_u32(&out, kStoreSectionCount);
  put_u64(&out, fingerprint);
  put_u64(&out, config.seed);
  put_u64(&out, n_samples);
  put_f64(&out, stack.clk);
  put_u32(&out, static_cast<std::uint32_t>(n_inputs));
  put_u32(&out, static_cast<std::uint32_t>(n_outputs));
  put_u32(&out, static_cast<std::uint32_t>(n_patterns));
  put_u32(&out, static_cast<std::uint32_t>(n_arcs));
  put_u32(&out, static_cast<std::uint32_t>(config.max_suspects));
  put_f64(&out, config.global_weight);
  put_f64(&out, stack.size_model.unit());
  put_f64(&out, config.defect_mean_lo);
  put_f64(&out, config.defect_mean_hi);
  put_f64(&out, config.defect_three_sigma);
  put_u32(&out, static_cast<std::uint32_t>(nl.name().size()));
  out.append(nl.name());
  put_u64(&out, total_bytes);
  for (std::size_t s = 0; s < kStoreSectionCount; ++s) {
    std::string name(kStoreSectionNames[s]);
    name.resize(kStoreSectionNameLen, '\0');
    out.append(name);
    put_u64(&out, offsets[s]);
    put_u64(&out, payloads[s].size());
    put_u64(&out, obs::ledger_fnv1a64(payloads[s]));
  }
  put_u64(&out, obs::ledger_fnv1a64(out));
  for (std::size_t s = 0; s < kStoreSectionCount; ++s) {
    out.resize(offsets[s], '\0');  // alignment padding
    out.append(payloads[s]);
  }

  if (info != nullptr) {
    info->fingerprint = fingerprint;
    info->run_id = introspect::to_hex64(fingerprint);
    info->clk = stack.clk;
    info->n_patterns = n_patterns;
    info->n_outputs = n_outputs;
    info->n_arcs = n_arcs;
    info->bytes = total_bytes;
  }
  return out;
}

StoreBuildInfo build_dictionary_store(const netlist::Netlist& nl,
                                      const StoreBuildConfig& config,
                                      const std::string& out_path) {
  StoreBuildInfo info;
  const std::string bytes = serialize_dictionary_store(nl, config, &info);
  obs::atomic_write_file_or_throw(out_path, bytes);
  SDDD_LOG_INFO("store: wrote %s (%llu bytes, run %s, %zu patterns)",
                out_path.c_str(), static_cast<unsigned long long>(info.bytes),
                info.run_id.c_str(), info.n_patterns);
  return info;
}

// ---------------------------------------------------------------------------
// DictionaryStore

DictionaryStore::DictionaryStore(const std::string& path,
                                 std::uint64_t expect_fingerprint)
    : path_(path) {
  const std::uint64_t open_k = g_open_ordinal.fetch_add(1);
  try {
    if (obs::fault_at("store.open", open_k)) {
      throw StoreError("file", path + ": injected store.open fault (k=" +
                                   std::to_string(open_k) + ")");
    }
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      throw StoreError("file",
                       path + ": open failed: " + std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const int e = errno;
      ::close(fd);
      throw StoreError("file", path + ": fstat failed: " + std::strerror(e));
    }
    map_bytes_ = static_cast<std::uint64_t>(st.st_size);
    if (map_bytes_ == 0) {
      ::close(fd);
      throw StoreError("file", path + ": empty file");
    }
    void* m = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (m == MAP_FAILED) {
      throw StoreError("file", path + ": mmap failed: " + std::strerror(errno));
    }
    map_ = static_cast<const unsigned char*>(m);

    try {
      parse_and_verify(expect_fingerprint);
    } catch (...) {
      ::munmap(const_cast<unsigned char*>(map_), map_bytes_);
      map_ = nullptr;
      throw;
    }
  } catch (...) {
    store_open_failures_counter().add(1);
    throw;
  }
  store_opens_counter().add(1);
}

void DictionaryStore::parse_and_verify(std::uint64_t expect_fingerprint) {
  Reader r{map_, map_bytes_, 0, path_};
  r.need(8);
  if (std::memcmp(map_, kStoreMagic, 8) != 0) {
    throw StoreError("header", path_ + ": bad magic (not a dictionary store)");
  }
  r.i = 8;
  const std::uint32_t version = r.get_u32();
  if (version != kStoreFormatVersion) {
    throw StoreError("header",
                     path_ + ": unsupported format version " +
                         std::to_string(version) + " (this build reads v" +
                         std::to_string(kStoreFormatVersion) + ")");
  }
  const std::uint32_t n_sections = r.get_u32();
  if (n_sections != kStoreSectionCount) {
    throw StoreError("header", path_ + ": expected " +
                                   std::to_string(kStoreSectionCount) +
                                   " sections, header says " +
                                   std::to_string(n_sections));
  }
  fingerprint_ = r.get_u64();
  build_seed_ = r.get_u64();
  mc_samples_ = r.get_u64();
  clk_ = r.get_f64();
  n_inputs_ = r.get_u32();
  n_outputs_ = r.get_u32();
  n_patterns_ = r.get_u32();
  n_arcs_ = r.get_u32();
  max_suspects_ = r.get_u32();
  global_weight_ = r.get_f64();
  size_unit_ = r.get_f64();
  mean_lo_ = r.get_f64();
  mean_hi_ = r.get_f64();
  three_sigma_ = r.get_f64();
  const std::uint32_t circuit_len = r.get_u32();
  if (circuit_len > 4096) {
    throw StoreError("header", path_ + ": implausible circuit name length " +
                                   std::to_string(circuit_len));
  }
  r.need(circuit_len);
  circuit_.assign(reinterpret_cast<const char*>(map_ + r.i), circuit_len);
  r.i += circuit_len;
  file_bytes_ = r.get_u64();

  sections_.clear();
  for (std::uint32_t s = 0; s < n_sections; ++s) {
    r.need(kStoreSectionNameLen);
    std::string name(reinterpret_cast<const char*>(map_ + r.i),
                     kStoreSectionNameLen);
    name.resize(name.find_first_of('\0') == std::string::npos
                    ? name.size()
                    : name.find_first_of('\0'));
    r.i += kStoreSectionNameLen;
    StoreSectionInfo sec;
    sec.name = std::move(name);
    sec.offset = r.get_u64();
    sec.bytes = r.get_u64();
    sec.crc = r.get_u64();
    sections_.push_back(std::move(sec));
  }
  const std::uint64_t crc_at = r.i;
  const std::uint64_t stored_header_crc = r.get_u64();
  {
    const std::uint64_t k = g_crc_ordinal.fetch_add(1);
    std::uint64_t crc = fnv1a(map_, crc_at);
    if (obs::fault_at("store.crc", k)) crc ^= 1;  // forged mismatch
    if (crc != stored_header_crc) {
      throw StoreError("header",
                       path_ + ": header checksum mismatch (stored " +
                           introspect::to_hex64(stored_header_crc) +
                           ", computed " + introspect::to_hex64(crc) + ")");
    }
  }

  if (file_bytes_ != map_bytes_) {
    // Name the first section the truncation eats into; a file *longer*
    // than the header claims is a framing error on the file itself.
    for (const StoreSectionInfo& sec : sections_) {
      if (sec.offset + sec.bytes > map_bytes_) {
        throw StoreError(
            sec.name, path_ + ": truncated: section '" + sec.name +
                          "' extends to byte " +
                          std::to_string(sec.offset + sec.bytes) +
                          " but the file has only " +
                          std::to_string(map_bytes_) +
                          " (header expects " + std::to_string(file_bytes_) +
                          ")");
      }
    }
    throw StoreError("file", path_ + ": file is " +
                                 std::to_string(map_bytes_) +
                                 " bytes, header expects " +
                                 std::to_string(file_bytes_));
  }

  for (std::size_t s = 0; s < sections_.size(); ++s) {
    const StoreSectionInfo& sec = sections_[s];
    if (sec.name != kStoreSectionNames[s]) {
      throw StoreError("header", path_ + ": section " + std::to_string(s) +
                                     " is '" + sec.name + "', expected '" +
                                     kStoreSectionNames[s] + "'");
    }
    if (sec.offset % kStoreSectionAlign != 0 ||
        sec.offset + sec.bytes > map_bytes_) {
      throw StoreError(sec.name, path_ + ": section '" + sec.name +
                                     "' has an invalid extent [" +
                                     std::to_string(sec.offset) + ", +" +
                                     std::to_string(sec.bytes) + ")");
    }
    const std::uint64_t k = g_crc_ordinal.fetch_add(1);
    std::uint64_t crc = fnv1a(map_ + sec.offset, sec.bytes);
    if (obs::fault_at("store.crc", k)) crc ^= 1;  // forged mismatch
    if (crc != sec.crc) {
      throw StoreError(sec.name,
                       path_ + ": checksum mismatch in section '" + sec.name +
                           "' (stored " + introspect::to_hex64(sec.crc) +
                           ", computed " + introspect::to_hex64(crc) + ")");
    }
  }

  // Geometry: every section must be exactly the size the header's
  // dimensions imply, or pointer arithmetic below would read junk.
  input_words_ = (n_inputs_ + 63) / 64;
  arc_words_ = (n_arcs_ + 63) / 64;
  const std::uint64_t expect[kStoreSectionCount] = {
      static_cast<std::uint64_t>(n_patterns_) * 2 * input_words_ * 8,
      static_cast<std::uint64_t>(n_patterns_) * n_outputs_ * arc_words_ * 8,
      static_cast<std::uint64_t>(n_patterns_) * n_outputs_ * 8,
      static_cast<std::uint64_t>(n_patterns_) * n_arcs_ * n_outputs_ * 8,
      static_cast<std::uint64_t>(n_patterns_) * n_arcs_ * n_outputs_ * 8,
      static_cast<std::uint64_t>(n_arcs_) * mc_samples_ * 8,
  };
  for (std::size_t s = 0; s < kStoreSectionCount; ++s) {
    if (sections_[s].bytes != expect[s]) {
      throw StoreError(sections_[s].name,
                       path_ + ": section '" + sections_[s].name + "' is " +
                           std::to_string(sections_[s].bytes) +
                           " bytes, dimensions imply " +
                           std::to_string(expect[s]));
    }
  }
  patterns_ =
      reinterpret_cast<const std::uint64_t*>(map_ + sections_[0].offset);
  cones_ = reinterpret_cast<const std::uint64_t*>(map_ + sections_[1].offset);
  m_ = reinterpret_cast<const double*>(map_ + sections_[2].offset);
  e_ = reinterpret_cast<const double*>(map_ + sections_[3].offset);
  s_ = reinterpret_cast<const double*>(map_ + sections_[4].offset);
  sizes_ = reinterpret_cast<const double*>(map_ + sections_[5].offset);

  if (expect_fingerprint != 0 && fingerprint_ != expect_fingerprint) {
    throw StoreError("header",
                     path_ + ": fingerprint mismatch: store is " +
                         introspect::to_hex64(fingerprint_) + ", expected " +
                         introspect::to_hex64(expect_fingerprint));
  }
}

DictionaryStore::~DictionaryStore() {
  if (map_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(map_), map_bytes_);
  }
}

std::string DictionaryStore::run_id() const {
  return introspect::to_hex64(fingerprint_);
}

const double* DictionaryStore::m_column(std::size_t j) const {
  return m_ + j * n_outputs_;
}

const double* DictionaryStore::e_column(std::size_t j, ArcId arc) const {
  return e_ + (j * n_arcs_ + static_cast<std::size_t>(arc)) * n_outputs_;
}

const double* DictionaryStore::s_column(std::size_t j, ArcId arc) const {
  return s_ + (j * n_arcs_ + static_cast<std::size_t>(arc)) * n_outputs_;
}

const double* DictionaryStore::size_table(ArcId arc) const {
  return sizes_ + static_cast<std::size_t>(arc) * mc_samples_;
}

const std::uint64_t* DictionaryStore::cone_row(std::size_t j,
                                               std::size_t output) const {
  return cones_ + (j * n_outputs_ + output) * arc_words_;
}

logicsim::PatternPair DictionaryStore::pattern(std::size_t j) const {
  logicsim::PatternPair out;
  const std::uint64_t* base = patterns_ + j * 2 * input_words_;
  out.v1.resize(n_inputs_);
  out.v2.resize(n_inputs_);
  for (std::size_t i = 0; i < n_inputs_; ++i) {
    out.v1[i] = ((base[i >> 6] >> (i & 63)) & 1U) != 0;
    out.v2[i] = ((base[input_words_ + (i >> 6)] >> (i & 63)) & 1U) != 0;
  }
  return out;
}

std::vector<logicsim::PatternPair> DictionaryStore::patterns() const {
  std::vector<logicsim::PatternPair> out;
  out.reserve(n_patterns_);
  for (std::size_t j = 0; j < n_patterns_; ++j) out.push_back(pattern(j));
  return out;
}

StoreVerifyReport verify_store_file(const std::string& path) {
  StoreVerifyReport report;
  try {
    const DictionaryStore store(path);
    report.ok = true;
  } catch (const StoreError& e) {
    report.bad_section = e.section();
    report.message = e.what();
  } catch (const Error& e) {
    report.bad_section = "file";
    report.message = e.what();
  }
  return report;
}

// ---------------------------------------------------------------------------
// Replay-corpus chips

std::vector<SampledChip> sample_failing_chips(const netlist::Netlist& nl,
                                              const DictionaryStore& store,
                                              std::size_t n_chips,
                                              std::size_t max_retries) {
  if (nl.name() != store.circuit() || nl.inputs().size() != store.n_inputs() ||
      nl.outputs().size() != store.n_outputs() ||
      nl.arc_count() != store.n_arcs()) {
    throw StoreError("header", store.path() + ": store was built for circuit '" +
                                   store.circuit() + "', not '" + nl.name() +
                                   "'");
  }
  const netlist::Levelization lev(nl);
  // The sampler assumes the default cell library, like `dict build`; the
  // store header does not carry library knobs.
  const timing::StatisticalCellLibrary lib{timing::CellLibraryConfig{}};
  const timing::ArcDelayModel model(nl, lib);
  const logicsim::BitSimulator logic_sim(nl, lev);
  const timing::DelayField inst_field(model, store.mc_samples(),
                                      store.global_weight(),
                                      store.build_seed() ^ 0xc41bULL);
  const timing::DynamicTimingSimulator inst_sim(inst_field, lev);
  const defect::DefectSizeModel size_model(
      model.mean_cell_delay(), store.defect_mean_lo(), store.defect_mean_hi(),
      store.defect_three_sigma(), store.build_seed() ^ 0x5e1fULL);
  const stats::RandomVariable size_rv = stats::RandomVariable::Normal(
      size_model.marginal_mean(), size_model.marginal_mean() / 6.0);
  const defect::SegmentDefectModel location_model =
      defect::SegmentDefectModel::uniform_single(nl, size_rv);
  const defect::DefectInjector injector(location_model, size_model);
  const std::vector<logicsim::PatternPair> patterns = store.patterns();

  std::vector<SampledChip> out;
  out.reserve(n_chips);
  for (std::size_t t = 0; t < n_chips; ++t) {
    Rng rng = Rng(store.build_seed(), 0xe4a1ULL).split(t + 1);
    SampledChip sample;
    bool failed = false;
    for (std::size_t attempt = 0; attempt < max_retries && !failed;
         ++attempt) {
      sample.chip = injector.draw(store.mc_samples(), rng);
      sample.B = diagnosis::observe_behavior(
          inst_sim, logic_sim, lev, patterns, sample.chip.sample_index,
          std::make_pair(sample.chip.defect_arc, sample.chip.defect_size),
          store.clk());
      failed = sample.B.any_failure();
    }
    if (!failed) {
      SDDD_LOG_WARN("store: chip %zu never failed within %zu draws; skipped",
                    t, max_retries);
      continue;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace sddd::store
