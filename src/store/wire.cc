#include "store/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/error.h"

namespace sddd::store {

// ---------------------------------------------------------------------------
// JSON

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* v = get(key);
  return (v != nullptr && v->is_string()) ? v->string : fallback;
}

double JsonValue::get_number(const std::string& key, double fallback) const {
  const JsonValue* v = get(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json", 0,
                     why + " at offset " + std::to_string(i_));
  }
  void skip_ws() {
    while (i_ < text_.size() &&
           (text_[i_] == ' ' || text_[i_] == '\t' || text_[i_] == '\n' ||
            text_[i_] == '\r')) {
      ++i_;
    }
  }
  char peek() {
    if (i_ >= text_.size()) fail("unexpected end of input");
    return text_[i_];
  }
  void expect(char c) {
    if (i_ >= text_.size() || text_[i_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++i_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return JsonValue{};
      default:
        return number();
    }
  }

  void literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.substr(i_, n) != word) fail(std::string("expected ") + word);
    i_ += n;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
      v.boolean = false;
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = i_;
    while (i_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[i_])) != 0 ||
            text_[i_] == '-' || text_[i_] == '+' || text_[i_] == '.' ||
            text_[i_] == 'e' || text_[i_] == 'E')) {
      ++i_;
    }
    if (i_ == start) fail("expected a value");
    const std::string token(text_.substr(start, i_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= text_.size()) fail("unterminated string");
      const char c = text_[i_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i_ >= text_.size()) fail("unterminated escape");
      const char e = text_[i_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (i_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("malformed \\u escape");
            }
          }
          // The renderer only emits \u00XX for control bytes; decode the
          // BMP code point as UTF-8 for completeness.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++i_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t i_ = 0;
};

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) return false;
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

// ---------------------------------------------------------------------------
// Trace envelope

namespace {
constexpr std::string_view kEnvelopePrefix = "{\"trace_id\":\"";
constexpr std::string_view kEnvelopePayload = "\",\"payload\":";
}  // namespace

std::string wrap_response_envelope(std::string_view trace_id,
                                   std::string_view payload) {
  std::string out;
  out.reserve(kEnvelopePrefix.size() + trace_id.size() +
              kEnvelopePayload.size() + payload.size() + 1);
  out.append(kEnvelopePrefix);
  out.append(trace_id);  // restricted charset: no escaping needed
  out.append(kEnvelopePayload);
  out.append(payload);
  out.push_back('}');
  return out;
}

bool split_response_envelope(const std::string& response,
                             std::string* trace_id, std::string* payload) {
  if (response.rfind(kEnvelopePrefix, 0) != 0) return false;
  const std::size_t id_begin = kEnvelopePrefix.size();
  const std::size_t id_end = response.find('"', id_begin);
  if (id_end == std::string::npos) return false;
  if (response.compare(id_end, kEnvelopePayload.size(), kEnvelopePayload) !=
      0) {
    return false;
  }
  const std::size_t body_begin = id_end + kEnvelopePayload.size();
  if (response.size() <= body_begin || response.back() != '}') return false;
  if (trace_id != nullptr) {
    *trace_id = response.substr(id_begin, id_end - id_begin);
  }
  if (payload != nullptr) {
    *payload = response.substr(body_begin,
                               response.size() - body_begin - 1);
  }
  return true;
}

std::string response_payload(const std::string& response) {
  std::string payload;
  if (split_response_envelope(response, nullptr, &payload)) return payload;
  return response;
}

// ---------------------------------------------------------------------------
// Frames

FrameStatus read_frame(int fd, std::size_t max_bytes, std::string* out) {
  unsigned char prefix[4];
  // Distinguish "closed between frames" (clean EOF) from "died mid-frame".
  {
    const ssize_t first = ::read(fd, prefix, 1);
    if (first == 0) return FrameStatus::kEof;
    if (first < 0) {
      if (errno == EINTR) return read_frame(fd, max_bytes, out);
      return FrameStatus::kError;
    }
  }
  if (!read_exact(fd, prefix + 1, 3)) return FrameStatus::kError;
  const std::uint32_t n = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                          (static_cast<std::uint32_t>(prefix[1]) << 16) |
                          (static_cast<std::uint32_t>(prefix[2]) << 8) |
                          static_cast<std::uint32_t>(prefix[3]);
  if (n > max_bytes) return FrameStatus::kTooBig;
  out->resize(n);
  if (n > 0 && !read_exact(fd, out->data(), n)) return FrameStatus::kError;
  return FrameStatus::kOk;
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > 0xFFFFFFFFu) return false;
  const auto n = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(n >> 24), static_cast<unsigned char>(n >> 16),
      static_cast<unsigned char>(n >> 8), static_cast<unsigned char>(n)};
  return write_exact(fd, prefix, 4) &&
         write_exact(fd, payload.data(), payload.size());
}

// ---------------------------------------------------------------------------
// Sockets

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() + 1 > sizeof addr.sun_path) {
    errno = ENAMETOOLONG;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    return -1;
  }
  return fd;
}

int listen_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    return -1;
  }
  return fd;
}

int listening_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return -1;
  }
  return ntohs(addr.sin_port);
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() + 1 > sizeof addr.sun_path) {
    errno = ENAMETOOLONG;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    return -1;
  }
  return fd;
}

}  // namespace sddd::store
