// client.h - Client side of the serve protocol: framing, request
// rendering, and the retry/backoff discipline the resilience contract
// asks load generators and replay tools to follow.
//
// A ServeClient is one connection; request() sends a frame and blocks for
// the response.  request_with_retry() adds the recommended policy: on a
// dead connection (server restarted, injected serve.accept/serve.write
// fault) it reconnects and replays, and on a typed "overloaded" response
// it backs off and retries - both up to the attempt budget.  Diagnosis is
// idempotent (same store + same B -> byte-identical response), so replay
// is always safe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/query.h"

namespace sddd::store {

class ServeClient {
 public:
  /// Connects over unix (`socket_path` non-empty) or TCP (`port` >= 0).
  /// Throws sddd::IoError when the connection cannot be established.
  static ServeClient connect(const std::string& socket_path, int port);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  bool connected() const { return fd_ >= 0; }

  /// One round trip: sends `payload` as a frame, receives one response
  /// frame.  Throws sddd::IoError when the connection dies mid-exchange
  /// (the caller's cue to reconnect).
  std::string request(const std::string& payload);

 private:
  explicit ServeClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

struct RetryPolicy {
  std::size_t max_attempts = 6;
  /// Backoff before attempt n is initial * 2^(n-1), capped.
  double initial_backoff_s = 0.02;
  double max_backoff_s = 0.5;
};

struct RetryStats {
  std::size_t attempts = 0;    ///< total send attempts (>= 1 on success)
  std::size_t reconnects = 0;  ///< connections re-established
  std::size_t sheds = 0;       ///< typed "overloaded" responses absorbed
  /// The trace id the request carried (client-minted when the payload had
  /// none) - constant across every retry, so server-side slow-request and
  /// flight-recorder entries show ONE identity for the whole exchange.
  std::string trace_id;
};

/// A fresh client-minted trace id (16 lowercase hex; hashed from pid,
/// time and a process counter, so concurrent load generators stay
/// distinct).
std::string mint_client_trace_id();

/// `payload` with a `"trace_id":"<id>"` member injected after the opening
/// brace; returned unchanged when it already carries one (or is not a
/// JSON object).
std::string payload_with_trace_id(const std::string& payload,
                                  const std::string& trace_id);

/// request() with the retry discipline above.  `client` is reconnected in
/// place as needed (using `socket_path`/`port`).  The payload is stamped
/// with a trace id (minted unless it already has one) that stays the same
/// across every reconnect/replay; the id used is reported via
/// `stats->trace_id`.  Returns the first response that is not a
/// connection failure or an "overloaded" shed; throws sddd::IoError when
/// the budget is exhausted.
std::string request_with_retry(ServeClient& client,
                               const std::string& socket_path, int port,
                               const std::string& payload,
                               const RetryPolicy& policy,
                               RetryStats* stats = nullptr);

/// Renders the canonical diagnose request for a batch of chips.
/// `store_selector` may be empty (single-store server), a circuit name, a
/// run_id prefix, or a store path; `deadline_ms` 0 omits the field;
/// `trace_id` empty omits the field (request_with_retry will mint one).
std::string make_diagnose_request(const std::string& store_selector,
                                  const std::string& match, std::size_t top_k,
                                  std::uint64_t deadline_ms,
                                  std::span<const ChipQuery> chips,
                                  const std::string& trace_id = "");

}  // namespace sddd::store
