// client.h - Client side of the serve protocol: framing, request
// rendering, and the retry/backoff discipline the resilience contract
// asks load generators and replay tools to follow.
//
// A ServeClient is one connection; request() sends a frame and blocks for
// the response.  request_with_retry() adds the recommended policy: on a
// dead connection (server restarted, injected serve.accept/serve.write
// fault) it reconnects and replays, and on a typed "overloaded" response
// it backs off and retries - both up to the attempt budget.  Diagnosis is
// idempotent (same store + same B -> byte-identical response), so replay
// is always safe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/query.h"

namespace sddd::store {

class ServeClient {
 public:
  /// Connects over unix (`socket_path` non-empty) or TCP (`port` >= 0).
  /// Throws sddd::IoError when the connection cannot be established.
  static ServeClient connect(const std::string& socket_path, int port);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  bool connected() const { return fd_ >= 0; }

  /// One round trip: sends `payload` as a frame, receives one response
  /// frame.  Throws sddd::IoError when the connection dies mid-exchange
  /// (the caller's cue to reconnect).
  std::string request(const std::string& payload);

 private:
  explicit ServeClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

struct RetryPolicy {
  std::size_t max_attempts = 6;
  /// Backoff before attempt n is initial * 2^(n-1), capped.
  double initial_backoff_s = 0.02;
  double max_backoff_s = 0.5;
};

struct RetryStats {
  std::size_t attempts = 0;    ///< total send attempts (>= 1 on success)
  std::size_t reconnects = 0;  ///< connections re-established
  std::size_t sheds = 0;       ///< typed "overloaded" responses absorbed
};

/// request() with the retry discipline above.  `client` is reconnected in
/// place as needed (using `socket_path`/`port`).  Returns the first
/// response that is not a connection failure or an "overloaded" shed;
/// throws sddd::IoError when the budget is exhausted.
std::string request_with_retry(ServeClient& client,
                               const std::string& socket_path, int port,
                               const std::string& payload,
                               const RetryPolicy& policy,
                               RetryStats* stats = nullptr);

/// Renders the canonical diagnose request for a batch of chips.
/// `store_selector` may be empty (single-store server), a circuit name, a
/// run_id prefix, or a store path; `deadline_ms` 0 omits the field.
std::string make_diagnose_request(const std::string& store_selector,
                                  const std::string& match, std::size_t top_k,
                                  std::uint64_t deadline_ms,
                                  std::span<const ChipQuery> chips);

}  // namespace sddd::store
