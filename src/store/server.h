// server.h - The resilient batch diagnosis server (`sddd_cli serve`).
//
// A long-running process that mmaps one or more dictionary stores ONCE at
// startup and answers batched diagnosis requests over length-prefixed
// JSON frames (wire.h) on a unix and/or TCP socket.  The design goal is
// the robustness ladder DESIGN.md section 15 spells out: the server never
// crashes and never wrong-answers - every failure mode downgrades to a
// TYPED error response or a smaller healthy surface:
//
//   corrupt store at open  -> that dictionary is QUARANTINED (state +
//                             reason in the health response); the rest
//                             keep serving.
//   request deadline hit   -> {"ok":false,"error":"deadline"} for that
//                             request; the connection lives on.
//   too many in flight     -> {"ok":false,"error":"overloaded"} shed
//                             immediately (bounded backpressure, never an
//                             unbounded queue).
//   malformed frame / JSON -> {"ok":false,"error":"parse"|"bad_request"}.
//   SIGTERM / SIGINT       -> drain: in-flight requests finish, sockets
//                             close, a ledger record + flight-recorder
//                             postmortem land, exit 0.
//
// Protocol ops: "diagnose" (chips -> diagnose_batch_json bytes, identical
// to `sddd_cli dict query`), "health", "stats", "shutdown".  See DESIGN.md
// sections 15 and 16 for the full request/response grammar.
//
// Live observability (DESIGN.md section 16): every response is wrapped in
// a trace envelope ({"trace_id":...,"payload":<bytes>}, wire.h) - the
// payload stays byte-identical to the offline path; requests may carry
// their own "trace_id", absent ones get a server-minted id.  Per-request
// phase latencies (parse / queue / score / render / write) land in a
// rolling 60-second window (obs/window.h) plus a slow-request ring, both
// exposed by the budget-free "stats" op (obs/expo.h) and dumped by
// SIGUSR1 without draining.
//
// Fault seams (obs/faults.h): `serve.accept` (k = accept ordinal) drops
// a just-accepted connection; `serve.write` (k = response ordinal) kills
// the connection instead of writing the response; `serve.deadline`
// (k = request ordinal) forces that request's deadline already expired;
// `serve.store` (k = request ordinal) throws a StoreError mid-diagnose,
// exercising the quarantine-on-serve path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/expo.h"
#include "obs/window.h"
#include "store/query.h"
#include "store/store.h"

namespace sddd::store {

struct ServerConfig {
  std::vector<std::string> store_paths;
  std::string unix_socket;  ///< empty = no unix listener
  int tcp_port = -1;        ///< -1 = no TCP listener; 0 = ephemeral port
  /// Diagnose requests processed concurrently before new ones are shed
  /// with "overloaded".  0 sheds everything (deterministic test mode).
  std::size_t max_inflight = 4;
  std::uint64_t default_deadline_ms = 0;  ///< 0 = no deadline unless asked
  std::size_t max_frame_bytes = 8u << 20;
  std::size_t default_top_k = 10;  ///< ranked suspects per method
  std::string git_sha;             ///< stamped into the session ledger row
  /// Test-only: hold every diagnose request this long before scoring so
  /// tests can force deterministic overlap (backpressure, deadlines).
  double test_hold_seconds = 0.0;
  /// Seconds clock for the rolling metrics window; null = wall time.
  /// Tests inject a fake so bucket rotation never sleeps.
  std::function<std::uint64_t()> window_clock;
  /// Slowest requests the `stats` op remembers.
  std::size_t slow_ring_capacity = 32;
};

/// One dictionary as the server sees it.
struct StoreState {
  std::string path;
  std::string run_id;   ///< "" when the header never parsed
  std::string circuit;  ///< "" when the header never parsed
  bool quarantined = false;
  std::string error;  ///< why (StoreError text), "" when serving
};

class DiagnosisServer {
 public:
  explicit DiagnosisServer(ServerConfig config);
  ~DiagnosisServer();

  DiagnosisServer(const DiagnosisServer&) = delete;
  DiagnosisServer& operator=(const DiagnosisServer&) = delete;

  /// Opens every store (quarantining failures), binds the sockets and
  /// spawns the accept loops.  Throws sddd::IoError when no listener
  /// could be bound.
  void start();

  /// Begins the drain: listeners stop accepting, idle connections close,
  /// in-flight requests run to completion.  Idempotent; callable from any
  /// thread (including a request handler serving the "shutdown" op).
  void request_drain();

  /// Blocks until a drain is requested, then joins every thread, appends
  /// the session ledger record (when SDDD_LEDGER is set) and dumps the
  /// flight-recorder postmortem.  Call exactly once, after start().
  void wait();

  /// The TCP port actually bound (ephemeral resolution); -1 without TCP.
  int tcp_port() const { return tcp_port_; }

  std::vector<StoreState> store_states() const;
  bool drain_requested() const { return drain_.load(); }

  /// The `stats` op's payload (also what SIGUSR1 prints): cumulative
  /// serve.* counters, the rolling-window merge, and the slow-request
  /// ring.  `format` "prom" wraps the Prometheus text exposition instead.
  std::string stats_json(const std::string& format = "") const;

 private:
  struct LoadedStore {
    StoreState state;
    std::unique_ptr<DictionaryStore> store;    ///< null when quarantined
    std::unique_ptr<StoreQueryEngine> engine;  ///< null when quarantined
  };

  /// Per-request observability context, threaded from the connection loop
  /// through dispatch so phases and identity survive the error ladder.
  struct RequestTrace {
    std::string trace_id;  ///< client-supplied or server-minted
    std::string op;
    std::string outcome;  ///< "ok", "shed", "deadline", "quarantine", ...
    std::string circuit;  ///< which store served a diagnose
    std::uint64_t batch = 0;  ///< chips in a diagnose request
    std::uint64_t parse_us = 0;
    std::uint64_t queue_us = 0;
    std::uint64_t score_us = 0;
    std::uint64_t render_us = 0;
    std::uint64_t write_us = 0;
  };

  void accept_loop(int listen_fd);
  void handle_connection(int fd);
  /// Routes + executes one request, returns the response payload (the
  /// caller wraps it in the trace envelope).
  std::string handle_request(const std::string& frame, RequestTrace* rt);
  std::string handle_diagnose(const class JsonValue& req, RequestTrace* rt);
  std::string health_json() const;
  LoadedStore* route_store(const std::string& selector, std::string* error);
  /// Lands one finished diagnose in the window histograms, the cumulative
  /// latency histogram, and the slow-request ring.
  void observe_request(const RequestTrace& rt, std::uint64_t total_us);

  ServerConfig config_;
  obs::WindowRegistry windows_;
  obs::SlowRequestRing slow_ring_;
  std::vector<LoadedStore> stores_;
  mutable std::mutex stores_mu_;  ///< guards quarantine transitions

  std::vector<int> listen_fds_;
  int tcp_port_ = -1;
  std::atomic<bool> drain_{false};
  std::atomic<std::size_t> inflight_{0};
  std::uint64_t start_ns_ = 0;

  std::mutex threads_mu_;
  std::vector<std::thread> accept_threads_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;  ///< open connections (guarded by threads_mu_)

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

/// The `sddd_cli serve` body: installs SIGTERM/SIGINT drain handlers and
/// a SIGUSR1 stats handler (prints the stats payload and dumps a
/// flight-recorder postmortem WITHOUT draining), starts the server,
/// prints one machine-readable ready line to stdout ("serve: ready
/// unix=... tcp_port=... stores=N quarantined=M"), and blocks until
/// drained.  Returns the process exit code (0 on a clean drain,
/// including under quarantined stores - degradation is not failure).
int serve_main(const ServerConfig& config);

}  // namespace sddd::store
