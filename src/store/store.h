// store.h - Building, writing and memory-mapping persistent dictionary
// stores (format.h).
//
// Build side: serialize_dictionary_store() derives the store's
// (patterns, clk) from (netlist, config) with the experiment's own seed
// discipline (dictionary field seed ^ 0xd1c7, size model seed ^ 0x5e1f,
// calibration stream Rng(seed, 0xca1b)), renders the full byte image,
// and build_dictionary_store() lands it through the
// obs/atomic_file temp+fsync+rename discipline - a crash mid-build never
// leaves a partial store behind.  The whole pipeline is a pure function of
// (netlist, config): building twice produces byte-identical files, which
// ci.sh cmp-checks.
//
// Read side: DictionaryStore mmaps the file read-only and verifies the
// header and every per-section FNV-1a checksum ON OPEN - a store that
// opens is a store whose every byte has been vouched for; afterwards all
// accessors are raw pointer arithmetic into the mapping.  Verification
// failures throw sddd::StoreError naming the offending section.
//
// Fault seams (obs/faults.h): `store.open` (k = process-wide open
// ordinal) fails the open(2)/mmap step; `store.crc` (k = process-wide
// section-verify ordinal; each open verifies header + 6 sections in file
// order, so open n covers k in [7n, 7n+6]) forges a checksum mismatch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "defect/injector.h"
#include "diagnosis/behavior.h"
#include "logicsim/bitsim.h"
#include "netlist/netlist.h"
#include "store/format.h"
#include "timing/celllib.h"

namespace sddd::store {

/// Everything that determines a store's content (and thus its
/// fingerprint).  Defaults mirror the experiment harness at CLI `dict
/// build` scale.
struct StoreBuildConfig {
  std::size_t mc_samples = 250;        ///< dictionary Monte-Carlo population
  std::size_t calibration_sites = 16;  ///< clk calibration sweep size
  double clk_site_quantile = 0.7;
  /// Sites whose diagnostic pattern sets are unioned into the store's TP.
  std::size_t pattern_sites = 6;
  std::size_t max_patterns = 24;       ///< |TP| cap after dedup
  std::size_t max_suspects = 300;      ///< DiagnoserConfig::max_suspects
  double global_weight = 0.03;
  double defect_mean_lo = 0.5;
  double defect_mean_hi = 1.0;
  double defect_three_sigma = 0.5;
  timing::CellLibraryConfig library;
  std::uint64_t seed = 2003;
  /// > 0 pins clk directly and skips the calibration sweep.
  double clk_override = 0.0;
};

/// What a build produced (also recoverable from the written header).
struct StoreBuildInfo {
  std::uint64_t fingerprint = 0;
  std::string run_id;  ///< 16-hex spelling of fingerprint
  double clk = 0.0;
  std::size_t n_patterns = 0;
  std::size_t n_outputs = 0;
  std::size_t n_arcs = 0;
  std::uint64_t bytes = 0;
};

/// Renders the complete store image in memory.  Exposed (next to the
/// writer) so tests can corrupt controlled bytes without round-tripping
/// through the filesystem.
std::string serialize_dictionary_store(const netlist::Netlist& nl,
                                       const StoreBuildConfig& config,
                                       StoreBuildInfo* info = nullptr);

/// serialize + atomic write to `out_path`.
StoreBuildInfo build_dictionary_store(const netlist::Netlist& nl,
                                      const StoreBuildConfig& config,
                                      const std::string& out_path);

struct StoreSectionInfo {
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t crc = 0;
};

/// A verified, memory-mapped store.  Open performs the full integrity
/// sweep; every accessor afterwards is bounds-checked pointer arithmetic
/// into the read-only mapping.
class DictionaryStore {
 public:
  /// Opens, maps and verifies.  Throws sddd::StoreError (section named)
  /// on any integrity failure; sddd::IoError never escapes - open/stat
  /// failures are StoreError with section "file".  A non-zero
  /// `expect_fingerprint` additionally rejects a store whose fingerprint
  /// differs (stale artifact / wrong experiment).
  explicit DictionaryStore(const std::string& path,
                           std::uint64_t expect_fingerprint = 0);
  ~DictionaryStore();

  DictionaryStore(const DictionaryStore&) = delete;
  DictionaryStore& operator=(const DictionaryStore&) = delete;

  const std::string& path() const { return path_; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  /// 16-hex run id (the store's identity in serve requests and ledgers).
  std::string run_id() const;
  const std::string& circuit() const { return circuit_; }
  double clk() const { return clk_; }
  std::uint64_t build_seed() const { return build_seed_; }
  std::size_t mc_samples() const { return mc_samples_; }
  std::size_t n_inputs() const { return n_inputs_; }
  std::size_t n_outputs() const { return n_outputs_; }
  std::size_t n_patterns() const { return n_patterns_; }
  std::size_t n_arcs() const { return n_arcs_; }
  std::size_t max_suspects() const { return max_suspects_; }
  double global_weight() const { return global_weight_; }
  double size_unit() const { return size_unit_; }
  double defect_mean_lo() const { return mean_lo_; }
  double defect_mean_hi() const { return mean_hi_; }
  double defect_three_sigma() const { return three_sigma_; }
  std::uint64_t file_bytes() const { return file_bytes_; }
  const std::vector<StoreSectionInfo>& sections() const { return sections_; }

  /// M_crt column of pattern j: n_outputs() doubles.
  const double* m_column(std::size_t j) const;
  /// E_crt column of (pattern j, suspect arc): n_outputs() doubles.
  const double* e_column(std::size_t j, netlist::ArcId arc) const;
  /// S column of (pattern j, suspect arc): n_outputs() doubles.
  const double* s_column(std::size_t j, netlist::ArcId arc) const;
  /// Defect-size table of an arc: mc_samples() doubles.
  const double* size_table(netlist::ArcId arc) const;
  /// Words per cone bitset row (= ceil(n_arcs / 64)).
  std::size_t arc_words() const { return arc_words_; }
  /// Cone bitset of (pattern j, output row i): arc_words() words, bit a =
  /// arc a lies on an active path to that output under pattern j.
  const std::uint64_t* cone_row(std::size_t j, std::size_t output) const;
  /// Pattern j unpacked back to the two-vector test it was built from.
  logicsim::PatternPair pattern(std::size_t j) const;
  /// All patterns (the order E/M/S columns are indexed by).
  std::vector<logicsim::PatternPair> patterns() const;

 private:
  void parse_and_verify(std::uint64_t expect_fingerprint);

  std::string path_;
  const unsigned char* map_ = nullptr;
  std::uint64_t map_bytes_ = 0;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t build_seed_ = 0;
  std::size_t mc_samples_ = 0;
  double clk_ = 0.0;
  std::size_t n_inputs_ = 0;
  std::size_t n_outputs_ = 0;
  std::size_t n_patterns_ = 0;
  std::size_t n_arcs_ = 0;
  std::size_t max_suspects_ = 0;
  double global_weight_ = 0.0;
  double size_unit_ = 0.0;
  double mean_lo_ = 0.0;
  double mean_hi_ = 0.0;
  double three_sigma_ = 0.0;
  std::string circuit_;
  std::uint64_t file_bytes_ = 0;
  std::vector<StoreSectionInfo> sections_;
  std::size_t arc_words_ = 0;
  std::size_t input_words_ = 0;
  // Resolved section base pointers (into map_).
  const std::uint64_t* patterns_ = nullptr;
  const std::uint64_t* cones_ = nullptr;
  const double* m_ = nullptr;
  const double* e_ = nullptr;
  const double* s_ = nullptr;
  const double* sizes_ = nullptr;
};

/// Non-throwing whole-file verification (the `dict verify` engine).
struct StoreVerifyReport {
  bool ok = false;
  std::string bad_section;  ///< "" when ok
  std::string message;      ///< human-readable failure, "" when ok
};
StoreVerifyReport verify_store_file(const std::string& path);

/// One synthetic failing chip tested against the store's pattern set.
struct SampledChip {
  defect::InjectedChip chip;
  diagnosis::BehaviorMatrix B{0, 0};
};

/// Draws `n_chips` failing chips from the *instance* Monte-Carlo world
/// (field seed = store seed ^ 0xc41b, chip t's randomness =
/// Rng(seed, 0xe4a1).split(t + 1) - the experiment's own discipline) and
/// observes their behavior against the store's patterns at the store's
/// clk.  Chips that never fail within the retry budget are redrawn.
/// Deterministic; the `dict chips` replay corpus generator.
std::vector<SampledChip> sample_failing_chips(const netlist::Netlist& nl,
                                              const DictionaryStore& store,
                                              std::size_t n_chips,
                                              std::size_t max_retries = 120);

}  // namespace sddd::store
