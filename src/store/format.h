// format.h - On-disk layout of the persistent dictionary store (v1).
//
// A store file freezes one probabilistic fault dictionary - the full
// M / E / S probability matrices for a fixed (circuit, clk, pattern set) -
// so the hot score-chip path never rebuilds what the slow build-dictionary
// path already computed (ROADMAP's build/query split; the paper's storage
// feasibility question made concrete).  The file is designed to be
// memory-mapped read-only and fed straight into the packed score kernel:
// every probability section is a 64-byte-aligned array of raw IEEE-754
// doubles in exactly the layout phi_block() wants to walk.
//
//   offset 0
//   +--------------------------------------------------------------+
//   | magic "SDDDICT1" (8 bytes)                                   |
//   | u32 format_version (= 1)    u32 n_sections (= 6)             |
//   | u64 fingerprint   <- experiment fingerprint / run_id         |
//   | u64 build_seed    u64 mc_samples                             |
//   | u64 clk_bits      <- bit-cast double                         |
//   | u32 n_inputs  u32 n_outputs  u32 n_patterns  u32 n_arcs      |
//   | u32 max_suspects                                             |
//   | u64 global_weight_bits  u64 size_unit_bits                   |
//   | u64 mean_lo_bits  u64 mean_hi_bits  u64 three_sigma_bits     |
//   | u32 circuit_len   char circuit[circuit_len]                  |
//   | u64 total_bytes   <- whole-file size (truncation check)      |
//   +--------------------------------------------------------------+
//   | section table: n_sections x                                  |
//   |   { char name[8] (NUL-padded), u64 offset, u64 bytes,        |
//   |     u64 crc (FNV-1a-64 of the section's bytes) }             |
//   +--------------------------------------------------------------+
//   | u64 header_crc    <- FNV-1a-64 of every byte before it       |
//   +--------------------------------------------------------------+
//   | sections, each padded to a 64-byte-aligned offset, in order: |
//   |   "patterns"  per pattern j: v1 then v2, each                |
//   |               ceil(n_inputs/64) u64 words (bit i = input i)  |
//   |   "cones"     per (pattern j, output row i):                 |
//   |               ceil(n_arcs/64) u64 words - the backward cone  |
//   |               over active arcs (suspect universe of that     |
//   |               failing cell, Algorithm E.1 step 1)            |
//   |   "m"         f64[n_patterns][n_outputs]    M_crt columns    |
//   |   "e"         f64[n_patterns][n_arcs][n_outputs] E_crt       |
//   |   "s"         same layout, S = max(E - M, 0)                 |
//   |   "sizes"     f64[n_arcs][mc_samples] defect-size tables     |
//   +--------------------------------------------------------------+
//
// Integrity: the header (including the section table) is covered by
// header_crc; every section is covered by its table entry's crc; the
// loader additionally requires the real file size to equal total_bytes.
// Any mismatch - truncated tail, flipped bit, wrong magic/version - is
// classified as sddd::StoreError naming the offending section ("header",
// "patterns", ..., or "file" for size/open problems), so the serve layer
// can quarantine precisely and tests can assert blame.
//
// Endianness: header scalars are serialized explicitly little-endian;
// section payloads are raw native arrays (mmapped in place), so the file
// is portable across little-endian hosts only - the repo's only targets.
//
// Both E and S are stored so either match mode (total probability E_crt,
// the default, or the paper-literal signature S_crt) serves without
// recomputation; DESIGN.md section 15 carries the full format table.
#pragma once

#include <cstdint>

namespace sddd::store {

inline constexpr char kStoreMagic[9] = "SDDDICT1";  // 8 bytes on disk
inline constexpr std::uint32_t kStoreFormatVersion = 1;
inline constexpr std::uint32_t kStoreSectionCount = 6;
inline constexpr std::uint64_t kStoreSectionAlign = 64;
inline constexpr std::uint64_t kStoreSectionNameLen = 8;

/// Section names in file order.
inline constexpr const char* kStoreSectionNames[kStoreSectionCount] = {
    "patterns", "cones", "m", "e", "s", "sizes"};

}  // namespace sddd::store
