#include "store/query.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "diagnosis/error_fn.h"
#include "diagnosis/score_kernel.h"
#include "obs/error.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "runtime/cancel.h"
#include "runtime/parallel_for.h"

namespace sddd::store {

using diagnosis::Method;
using netlist::ArcId;

namespace {

// The diagnoser's own suspect tally; store-served diagnoses account into
// the same counter so ledgers stay comparable across transports.
obs::Counter& diag_suspects_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("diag.suspects");
  return c;
}

std::string json_double(double d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

void append_escaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string json_quote(const std::string& s) {
  std::string out;
  append_escaped(&out, s);
  return out;
}

std::vector<ArcId> StoreQueryEngine::extract_suspects(
    const diagnosis::BehaviorMatrix& B) const {
  const DictionaryStore& st = *store_;
  const std::size_t n_arcs = st.n_arcs();
  std::vector<std::uint32_t> support(n_arcs, 0);
  for (const std::size_t j : B.failing_patterns()) {
    for (std::size_t i = 0; i < st.n_outputs(); ++i) {
      if (!B.at(i, j)) continue;
      const std::uint64_t* row = st.cone_row(j, i);
      for (ArcId a = 0; a < n_arcs; ++a) {
        if ((row[a >> 6] >> (a & 63)) & 1U) ++support[a];
      }
    }
  }
  std::vector<ArcId> suspects;
  for (ArcId a = 0; a < n_arcs; ++a) {
    if (support[a] > 0) suspects.push_back(a);
  }
  const std::size_t max_suspects = st.max_suspects();
  if (max_suspects > 0 && suspects.size() > max_suspects) {
    std::stable_sort(suspects.begin(), suspects.end(),
                     [&](ArcId a, ArcId b) { return support[a] > support[b]; });
    suspects.resize(max_suspects);
    std::sort(suspects.begin(), suspects.end());
  }
  diag_suspects_counter().add(suspects.size());
  return suspects;
}

diagnosis::DiagnosisResult StoreQueryEngine::diagnose(
    const diagnosis::BehaviorMatrix& B, std::span<const Method> methods,
    bool match_on_total_probability, bool capture_phi) const {
  const DictionaryStore& st = *store_;
  if (B.output_count() != st.n_outputs() ||
      B.pattern_count() != st.n_patterns()) {
    throw ParseError("store query", 0, "behavior matrix is " +
                     std::to_string(B.output_count()) + "x" +
                     std::to_string(B.pattern_count()) + ", store expects " +
                     std::to_string(st.n_outputs()) + "x" +
                     std::to_string(st.n_patterns()));
  }

  diagnosis::DiagnosisResult result;
  result.methods.assign(methods.begin(), methods.end());
  result.suspects = extract_suspects(B);
  result.mc_samples = st.mc_samples();

  const std::size_t n_suspects = result.suspects.size();
  const std::size_t n_patterns = st.n_patterns();
  const std::size_t n_outputs = st.n_outputs();
  if (capture_phi) {
    result.phi.assign(n_suspects, std::vector<double>(n_patterns, 0.0));
  }
  std::vector<std::vector<diagnosis::ScoreAccumulator>> acc;
  acc.reserve(methods.size());
  for (const Method m : methods) {
    acc.emplace_back(n_suspects, diagnosis::ScoreAccumulator(m));
  }

  // The diagnoser's kernel scoring loop verbatim, with the cache lookups
  // replaced by pointers into the mapping: per pattern, pack B's column,
  // gather the suspect columns, phi_block over chunks whose boundaries
  // depend only on (n, grain).  add_phi runs in pattern-major suspect
  // order - scores and keys are bit-identical at any thread count.
  std::vector<const double*> cols(n_suspects);
  std::vector<double> phi_row(n_suspects);
  diagnosis::PackedBColumn b;
  for (std::size_t j = 0; j < n_patterns; ++j) {
    for (std::size_t s = 0; s < n_suspects; ++s) {
      cols[s] = match_on_total_probability
                    ? st.e_column(j, result.suspects[s])
                    : st.s_column(j, result.suspects[s]);
    }
    b.pack(B, j);
    runtime::parallel_for_chunked(
        n_suspects, 64, [&](std::size_t lo, std::size_t hi) {
          diagnosis::phi_block(cols.data() + lo, hi - lo, n_outputs, b,
                               phi_row.data() + lo);
          for (std::size_t s = lo; s < hi; ++s) {
            if (capture_phi) result.phi[s][j] = phi_row[s];
            for (auto& method_acc : acc) method_acc[s].add_phi(phi_row[s]);
          }
        });
    diagnosis::note_phi_evals(n_suspects);
    diagnosis::note_kernel_pattern(n_suspects);
  }

  result.scores.resize(methods.size());
  result.keys.resize(methods.size());
  for (std::size_t m = 0; m < methods.size(); ++m) {
    result.scores[m].resize(n_suspects);
    result.keys[m].resize(n_suspects);
    for (std::size_t s = 0; s < n_suspects; ++s) {
      result.scores[m][s] = acc[m][s].finish(n_patterns);
      result.keys[m][s] = acc[m][s].ranking_key(n_patterns);
    }
  }
  obs::Recorder::instance().record(obs::EventKind::kDiagnose, "",
                                   B.failure_count(), n_suspects, n_patterns);
  return result;
}

diagnosis::BehaviorMatrix behavior_from_rows(
    const std::vector<std::string>& rows, std::size_t n_outputs,
    std::size_t n_patterns) {
  if (rows.size() != n_outputs) {
    throw ParseError("behavior", 0, std::to_string(rows.size()) +
                     " rows, store expects " + std::to_string(n_outputs) +
                     " outputs");
  }
  diagnosis::BehaviorMatrix B(n_outputs, n_patterns);
  for (std::size_t i = 0; i < n_outputs; ++i) {
    if (rows[i].size() != n_patterns) {
      throw ParseError("behavior", 0, "row " + std::to_string(i) + " has " +
                       std::to_string(rows[i].size()) +
                       " columns, store expects " +
                       std::to_string(n_patterns) + " patterns");
    }
    for (std::size_t j = 0; j < n_patterns; ++j) {
      const char c = rows[i][j];
      if (c != '0' && c != '1') {
        throw ParseError("behavior", 0, "row " + std::to_string(i) +
                         " column " + std::to_string(j) +
                         ": expected '0' or '1'");
      }
      B.set(i, j, c == '1');
    }
  }
  return B;
}

std::string diagnose_batch_json(const StoreQueryEngine& engine,
                                std::span<const ChipQuery> chips,
                                bool match_on_total_probability,
                                std::size_t top_k) {
  static constexpr Method kMethods[] = {Method::kSimI, Method::kSimII,
                                        Method::kSimIII, Method::kRev};
  const DictionaryStore& st = engine.store();
  std::string out;
  out.append("{\"ok\":true,\"op\":\"diagnose\",\"run_id\":");
  append_escaped(&out, st.run_id());
  out.append(",\"circuit\":");
  append_escaped(&out, st.circuit());
  out.append(",\"match\":\"").push_back(match_on_total_probability ? 'e' : 's');
  out.append("\",\"mc_samples\":").append(std::to_string(st.mc_samples()));
  out.append(",\"n_patterns\":").append(std::to_string(st.n_patterns()));
  out.append(",\"chips\":[");
  for (std::size_t c = 0; c < chips.size(); ++c) {
    runtime::poll_cancellation();
    if (c > 0) out.push_back(',');
    const diagnosis::DiagnosisResult result = engine.diagnose(
        chips[c].B, kMethods, match_on_total_probability,
        /*capture_phi=*/true);
    out.append("{\"id\":");
    append_escaped(&out, chips[c].id);
    out.append(",\"n_suspects\":")
        .append(std::to_string(result.suspects.size()));
    out.append(",\"methods\":{");
    std::set<ArcId> reported;
    for (std::size_t m = 0; m < std::size(kMethods); ++m) {
      if (m > 0) out.push_back(',');
      append_escaped(&out, std::string(diagnosis::method_name(kMethods[m])));
      out.append(":[");
      const auto ranked = result.ranked(kMethods[m]);
      const std::size_t limit =
          top_k == 0 ? ranked.size() : std::min(top_k, ranked.size());
      for (std::size_t r = 0; r < limit; ++r) {
        if (r > 0) out.push_back(',');
        reported.insert(ranked[r].arc);
        // The ranking key is reported next to the probability-domain
        // score so byte-compared responses also pin the sort surrogate.
        const auto s = static_cast<std::size_t>(
            std::find(result.suspects.begin(), result.suspects.end(),
                      ranked[r].arc) -
            result.suspects.begin());
        out.append("{\"arc\":").append(std::to_string(ranked[r].arc));
        out.append(",\"score\":").append(json_double(ranked[r].score));
        out.append(",\"key\":").append(json_double(result.keys[m][s]));
        out.push_back('}');
      }
      out.push_back(']');
    }
    out.append("},\"phi\":{");
    bool first_arc = true;
    for (const ArcId a : reported) {
      if (!first_arc) out.push_back(',');
      first_arc = false;
      const auto s = static_cast<std::size_t>(
          std::find(result.suspects.begin(), result.suspects.end(), a) -
          result.suspects.begin());
      append_escaped(&out, std::to_string(a));
      out.append(":[");
      for (std::size_t j = 0; j < result.phi[s].size(); ++j) {
        if (j > 0) out.push_back(',');
        out.append(json_double(result.phi[s][j]));
      }
      out.append("]");
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

}  // namespace sddd::store
