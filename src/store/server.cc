#include "store/server.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/error.h"
#include "obs/expo.h"
#include "obs/faults.h"
#include "obs/ledger.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "runtime/cancel.h"
#include "runtime/parallel_for.h"
#include "store/wire.h"

namespace sddd::store {

namespace {

// Seam ordinals (see server.h header comment): process-wide so a fault
// selector like serve.write@%3 targets a deterministic response sequence
// regardless of which connection carries it.
std::atomic<std::uint64_t> g_accept_ordinal{0};
std::atomic<std::uint64_t> g_request_ordinal{0};
std::atomic<std::uint64_t> g_response_ordinal{0};

// Server-minted trace ids: deterministic hex16 of a process-wide request
// counter, so a replayed request sequence mints the same identities.
std::atomic<std::uint64_t> g_trace_ordinal{0};

std::string mint_trace_id() {
  return obs::hex16(g_trace_ordinal.fetch_add(1) + 1);
}

// Phase/request latency bucket bounds, microseconds: 100us .. 5s.
constexpr double kLatencyBoundsUs[] = {
    100.0,    250.0,    500.0,    1000.0,    2500.0,    5000.0,
    10000.0,  25000.0,  50000.0,  100000.0,  250000.0,  500000.0,
    1000000.0, 2500000.0, 5000000.0};

std::uint64_t elapsed_us(std::uint64_t since_ns) {
  return (obs::now_ns() - since_ns) / 1000;
}

obs::Counter& serve_connections_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.connections");
  return c;
}
obs::Counter& serve_requests_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.requests");
  return c;
}
obs::Counter& serve_served_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.served");
  return c;
}
obs::Counter& serve_shed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.shed");
  return c;
}
obs::Counter& serve_deadline_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.deadline_hits");
  return c;
}
obs::Counter& serve_quarantined_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.quarantined");
  return c;
}
obs::Histogram& serve_request_us_histogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::instance().register_histogram("serve.request_us",
                                                          kLatencyBoundsUs);
  return h;
}

std::string error_json(const std::string& code, const std::string& message) {
  std::string out = "{\"ok\":false,\"error\":";
  out.append(json_quote(code));
  out.append(",\"message\":");
  out.append(json_quote(message));
  out.push_back('}');
  return out;
}

/// Decrements on scope exit (the in-flight guard's release half).
struct InflightRelease {
  std::atomic<std::size_t>* n;
  ~InflightRelease() { n->fetch_sub(1); }
};

}  // namespace

DiagnosisServer::DiagnosisServer(ServerConfig config)
    : config_(std::move(config)),
      windows_(config_.window_clock),
      slow_ring_(config_.slow_ring_capacity) {}

DiagnosisServer::~DiagnosisServer() {
  // A server destroyed without wait() (start() threw) has no threads.
  for (const int fd : listen_fds_) ::close(fd);
}

void DiagnosisServer::start() {
  start_ns_ = obs::now_ns();
  for (const std::string& path : config_.store_paths) {
    LoadedStore loaded;
    loaded.state.path = path;
    try {
      loaded.store = std::make_unique<DictionaryStore>(path);
      loaded.engine = std::make_unique<StoreQueryEngine>(*loaded.store);
      loaded.state.run_id = loaded.store->run_id();
      loaded.state.circuit = loaded.store->circuit();
    } catch (const Error& e) {
      // Quarantine, don't die: the health response carries the reason and
      // every other dictionary keeps serving.
      loaded.state.quarantined = true;
      loaded.state.error = e.what();
      serve_quarantined_counter().add(1);
      SDDD_LOG_WARN("serve: quarantined %s: %s", path.c_str(), e.what());
    }
    stores_.push_back(std::move(loaded));
  }

  if (!config_.unix_socket.empty()) {
    const int fd = listen_unix(config_.unix_socket);
    if (fd < 0) {
      throw IoError("serve: cannot listen on unix socket " +
                    config_.unix_socket + ": " + std::strerror(errno));
    }
    listen_fds_.push_back(fd);
  }
  if (config_.tcp_port >= 0) {
    const int fd = listen_tcp(config_.tcp_port);
    if (fd < 0) {
      throw IoError("serve: cannot listen on tcp port " +
                    std::to_string(config_.tcp_port) + ": " +
                    std::strerror(errno));
    }
    tcp_port_ = listening_port(fd);
    listen_fds_.push_back(fd);
  }
  if (listen_fds_.empty()) {
    throw IoError("serve: no listener configured (need --socket or --port)");
  }
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  }
}

void DiagnosisServer::accept_loop(int listen_fd) {
  while (!drain_.load()) {
    pollfd p{listen_fd, POLLIN, 0};
    const int r = ::poll(&p, 1, 200);
    if (r <= 0) continue;  // timeout or EINTR: re-check the drain flag
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    const std::uint64_t k = g_accept_ordinal.fetch_add(1);
    if (obs::fault_at("serve.accept", k)) {
      // Injected accept failure: the client sees a dropped connection and
      // must retry; the server just keeps accepting.
      ::close(fd);
      continue;
    }
    serve_connections_counter().add(1);
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (drain_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  ::close(listen_fd);
}

void DiagnosisServer::handle_connection(int fd) {
  std::string frame;
  while (true) {
    // Idle connections notice the drain between frames; a request already
    // being processed below always runs to completion first.
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, 200);
    if (drain_.load() && r <= 0) break;
    if (r <= 0) continue;
    const FrameStatus status =
        read_frame(fd, config_.max_frame_bytes, &frame);
    if (status == FrameStatus::kEof || status == FrameStatus::kError) break;
    RequestTrace rt;
    const std::uint64_t t_begin = obs::now_ns();
    std::string payload;
    if (status == FrameStatus::kTooBig) {
      rt.outcome = "bad_request";
      payload = error_json("bad_request",
                           "frame exceeds " +
                               std::to_string(config_.max_frame_bytes) +
                               " bytes");
    } else {
      payload = handle_request(frame, &rt);
    }
    // Unparseable or id-less requests still get an identity: mint one.
    if (rt.trace_id.empty()) rt.trace_id = mint_trace_id();
    const std::uint64_t t_render = obs::now_ns();
    const std::string response =
        wrap_response_envelope(rt.trace_id, payload);
    rt.render_us = elapsed_us(t_render);
    const std::uint64_t k = g_response_ordinal.fetch_add(1);
    if (obs::fault_at("serve.write", k)) {
      // Injected write failure: drop the connection without responding;
      // the client's retry path replays against a fresh connection.
      break;
    }
    const std::uint64_t t_write = obs::now_ns();
    const bool wrote = write_frame(fd, response);
    rt.write_us = elapsed_us(t_write);
    if (rt.op == "diagnose") observe_request(rt, elapsed_us(t_begin));
    if (!wrote) break;
    if (status == FrameStatus::kTooBig) break;  // framing is unrecoverable
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  std::lock_guard<std::mutex> lock(threads_mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

std::string DiagnosisServer::handle_request(const std::string& frame,
                                            RequestTrace* rt) {
  serve_requests_counter().add(1);
  windows_.counter("serve.requests").add(1);
  JsonValue req;
  const std::uint64_t t_parse = obs::now_ns();
  try {
    req = parse_json(frame);
  } catch (const Error& e) {
    rt->parse_us = elapsed_us(t_parse);
    rt->outcome = "parse";
    return error_json("parse", e.what());
  }
  rt->parse_us = elapsed_us(t_parse);
  if (!req.is_object()) {
    rt->outcome = "bad_request";
    return error_json("bad_request", "request must be a JSON object");
  }
  // Echo a well-formed client trace id; anything else (absent, too long,
  // characters the envelope cannot embed raw) gets a minted one.  Unknown
  // request fields are simply ignored - forward compatibility.
  const std::string client_id = req.get_string("trace_id");
  if (obs::valid_trace_id(client_id)) rt->trace_id = client_id;
  const std::string op = req.get_string("op");
  rt->op = op;
  // health and stats bypass the in-flight budget: an overloaded or
  // draining server must stay observable.
  if (op == "health") return health_json();
  if (op == "stats") return stats_json(req.get_string("format"));
  if (op == "shutdown") {
    request_drain();
    return "{\"ok\":true,\"op\":\"shutdown\"}";
  }
  if (op == "diagnose") {
    if (drain_.load()) {
      rt->outcome = "shutting_down";
      return error_json("shutting_down", "server is draining");
    }
    return handle_diagnose(req, rt);
  }
  rt->outcome = "bad_request";
  return error_json("bad_request", "unknown op '" + op + "'");
}

DiagnosisServer::LoadedStore* DiagnosisServer::route_store(
    const std::string& selector, std::string* error) {
  std::lock_guard<std::mutex> lock(stores_mu_);
  if (selector.empty()) {
    LoadedStore* only = nullptr;
    for (auto& s : stores_) {
      if (s.state.quarantined) continue;
      if (only != nullptr) {
        *error = error_json("bad_request",
                            "several stores are serving; pass \"store\"");
        return nullptr;
      }
      only = &s;
    }
    if (only == nullptr) {
      *error = error_json("store_quarantined", "no healthy store is serving");
    }
    return only;
  }
  LoadedStore* match = nullptr;
  for (auto& s : stores_) {
    const bool hit =
        s.state.circuit == selector || s.state.path == selector ||
        (selector.size() >= 4 && s.state.run_id.rfind(selector, 0) == 0);
    if (hit) {
      match = &s;
      break;
    }
  }
  if (match == nullptr) {
    *error = error_json("unknown_store", "no store matches '" + selector +
                                             "'");
    return nullptr;
  }
  if (match->state.quarantined) {
    *error = error_json("store_quarantined",
                        match->state.path + ": " + match->state.error);
    return nullptr;
  }
  return match;
}

std::string DiagnosisServer::handle_diagnose(const JsonValue& req,
                                             RequestTrace* rt) {
  const std::uint64_t trace_key = obs::trace_key(rt->trace_id);
  // Bounded backpressure: admission is a single fetch_add against the
  // budget - there is no queue to grow without bound, an overloaded
  // server answers instantly with a typed shed.
  if (inflight_.fetch_add(1) >= config_.max_inflight) {
    inflight_.fetch_sub(1);
    serve_shed_counter().add(1);
    windows_.counter("serve.shed").add(1);
    rt->outcome = "shed";
    obs::Recorder::instance().record(obs::EventKind::kServeRequest, "shed",
                                     trace_key);
    return error_json("overloaded",
                      "in-flight budget (" +
                          std::to_string(config_.max_inflight) +
                          ") exhausted; retry with backoff");
  }
  const InflightRelease release{&inflight_};

  std::string route_error;
  LoadedStore* loaded = route_store(req.get_string("store"), &route_error);
  if (loaded == nullptr) {
    rt->outcome = "unrouted";
    return route_error;
  }
  rt->circuit = loaded->state.circuit;
  windows_.counter("store." + loaded->state.circuit).add(1);

  const std::string match = req.get_string("match", "e");
  if (match != "e" && match != "s") {
    rt->outcome = "bad_request";
    return error_json("bad_request", "match must be \"e\" or \"s\"");
  }
  const auto top_k = static_cast<std::size_t>(std::max(
      0.0, req.get_number("top", static_cast<double>(config_.default_top_k))));
  const double deadline_ms = req.get_number(
      "deadline_ms", static_cast<double>(config_.default_deadline_ms));

  const std::uint64_t request_k = g_request_ordinal.fetch_add(1);
  runtime::CancelToken token;
  if (obs::fault_at("serve.deadline", request_k)) {
    token.set_deadline_ns(1);  // already expired: the deadline path, forced
  } else if (deadline_ms > 0.0) {
    token.set_deadline_after_seconds(deadline_ms / 1000.0);
  }

  try {
    const runtime::ScopedCancelToken ambient(&token);
    // "queue" is admission-to-scoring: the deliberate test hold plus any
    // deadline bookkeeping before real work starts.
    const std::uint64_t t_queue = obs::now_ns();
    if (config_.test_hold_seconds > 0.0) {
      const std::uint64_t until =
          obs::now_ns() +
          static_cast<std::uint64_t>(config_.test_hold_seconds * 1e9);
      while (obs::now_ns() < until) {
        token.poll();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    token.poll();
    rt->queue_us = elapsed_us(t_queue);

    const JsonValue* chips_json = req.get("chips");
    if (chips_json == nullptr || !chips_json->is_array()) {
      rt->outcome = "bad_request";
      return error_json("bad_request", "missing \"chips\" array");
    }
    const std::uint64_t t_chips = obs::now_ns();
    const DictionaryStore& st = *loaded->store;
    std::vector<ChipQuery> chips;
    chips.reserve(chips_json->array.size());
    for (std::size_t c = 0; c < chips_json->array.size(); ++c) {
      const JsonValue& chip = chips_json->array[c];
      ChipQuery q;
      q.id = chip.get_string("id", std::to_string(c));
      const JsonValue* rows_json = chip.get("b");
      if (rows_json == nullptr || !rows_json->is_array()) {
        rt->outcome = "bad_request";
        return error_json("bad_request",
                          "chip " + q.id + ": missing \"b\" rows");
      }
      std::vector<std::string> rows;
      rows.reserve(rows_json->array.size());
      for (const JsonValue& row : rows_json->array) {
        if (!row.is_string()) {
          rt->outcome = "bad_request";
          return error_json("bad_request",
                            "chip " + q.id + ": \"b\" rows must be strings");
        }
        rows.push_back(row.string);
      }
      q.B = behavior_from_rows(rows, st.n_outputs(), st.n_patterns());
      chips.push_back(std::move(q));
    }
    rt->parse_us += elapsed_us(t_chips);
    rt->batch = chips.size();

    if (obs::fault_at("serve.store", request_k)) {
      throw StoreError("serve",
                       "injected serve.store fault at request " +
                           std::to_string(request_k));
    }

    const std::uint64_t t_score = obs::now_ns();
    const std::string response =
        diagnose_batch_json(*loaded->engine, chips, match == "e", top_k);
    rt->score_us = elapsed_us(t_score);
    serve_served_counter().add(1);
    windows_.counter("serve.served").add(1);
    rt->outcome = "ok";
    obs::Recorder::instance().record(obs::EventKind::kServeRequest, "ok",
                                     trace_key, rt->batch, request_k);
    return response;
  } catch (const DeadlineError& e) {
    serve_deadline_counter().add(1);
    windows_.counter("serve.deadline").add(1);
    rt->outcome = "deadline";
    obs::Recorder::instance().record(obs::EventKind::kServeRequest,
                                     "deadline", trace_key, rt->batch,
                                     request_k);
    return error_json("deadline", e.what());
  } catch (const CancelledError& e) {
    rt->outcome = "shutting_down";
    return error_json("shutting_down", e.what());
  } catch (const ParseError& e) {
    rt->outcome = "bad_request";
    return error_json("bad_request", e.what());
  } catch (const StoreError& e) {
    // A store that turns bad mid-flight (should be impossible after the
    // open-time sweep, but classified anyway): quarantine it.  The
    // mapping stays alive - another thread may be mid-read - only the
    // routing state flips.
    {
      std::lock_guard<std::mutex> lock(stores_mu_);
      if (!loaded->state.quarantined) {
        loaded->state.quarantined = true;
        loaded->state.error = e.what();
        serve_quarantined_counter().add(1);
      }
    }
    windows_.counter("serve.quarantine").add(1);
    rt->outcome = "quarantine";
    // The postmortem bundle carries the offending request's identity:
    // key = trace key, so an operator can match it to the client's
    // echoed trace_id.
    obs::Recorder::instance().record(obs::EventKind::kServeRequest,
                                     "quarantine", trace_key, rt->batch,
                                     request_k);
    obs::dump_postmortem("serve.quarantine");
    return error_json("store_quarantined", e.what());
  } catch (const Error& e) {
    rt->outcome = "internal";
    return error_json("internal", e.what());
  } catch (const std::exception& e) {
    rt->outcome = "internal";
    return error_json("internal", e.what());
  }
}

void DiagnosisServer::observe_request(const RequestTrace& rt,
                                      std::uint64_t total_us) {
  windows_.histogram("serve.phase.parse_us", kLatencyBoundsUs)
      .record(rt.parse_us);
  windows_.histogram("serve.phase.queue_us", kLatencyBoundsUs)
      .record(rt.queue_us);
  windows_.histogram("serve.phase.score_us", kLatencyBoundsUs)
      .record(rt.score_us);
  windows_.histogram("serve.phase.render_us", kLatencyBoundsUs)
      .record(rt.render_us);
  windows_.histogram("serve.phase.write_us", kLatencyBoundsUs)
      .record(rt.write_us);
  windows_.histogram("serve.request_us", kLatencyBoundsUs).record(total_us);
  serve_request_us_histogram().record(static_cast<double>(total_us));

  obs::SlowRequest slow;
  slow.trace_id = rt.trace_id;
  slow.circuit = rt.circuit;
  slow.batch = rt.batch;
  slow.total_us = total_us;
  slow.phases_us = {{"parse_us", rt.parse_us}, {"queue_us", rt.queue_us},
                    {"score_us", rt.score_us}, {"render_us", rt.render_us},
                    {"write_us", rt.write_us}};
  slow_ring_.insert(std::move(slow));
}

std::string DiagnosisServer::stats_json(const std::string& format) const {
  obs::StatsSnapshot snap;
  snap.git_sha = config_.git_sha;
  snap.uptime_s = static_cast<double>(obs::now_ns() - start_ns_) * 1e-9;
  snap.draining = drain_.load();
  snap.inflight = inflight_.load();
  const obs::MetricsSnapshot cumulative =
      obs::MetricsRegistry::instance().snapshot();
  for (const auto& [name, v] : cumulative.counters) {
    if (name.rfind("serve.", 0) == 0) snap.counters.emplace(name, v);
  }
  snap.window = windows_.snapshot();
  snap.slow = slow_ring_.top();
  if (format == "prom") {
    std::string out =
        "{\"ok\":true,\"op\":\"stats\",\"format\":\"prom\",\"text\":";
    out.append(json_quote(obs::stats_to_prometheus(snap)));
    out.push_back('}');
    return out;
  }
  return obs::stats_to_json(snap);
}

std::string DiagnosisServer::health_json() const {
  std::lock_guard<std::mutex> lock(stores_mu_);
  bool degraded = false;
  std::string out = "{\"ok\":true,\"op\":\"health\",\"stores\":[";
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    const StoreState& s = stores_[i].state;
    if (s.quarantined) degraded = true;
    if (i > 0) out.push_back(',');
    out.append("{\"path\":").append(json_quote(s.path));
    out.append(",\"run_id\":").append(json_quote(s.run_id));
    out.append(",\"circuit\":").append(json_quote(s.circuit));
    out.append(",\"state\":")
        .append(s.quarantined ? "\"quarantined\"" : "\"serving\"");
    out.append(",\"error\":").append(json_quote(s.error));
    out.push_back('}');
  }
  out.append("],\"degraded\":").append(degraded ? "true" : "false");
  out.append(",\"draining\":").append(drain_.load() ? "true" : "false");
  out.append(",\"inflight\":").append(std::to_string(inflight_.load()));
  out.append(",\"counters\":{");
  out.append("\"serve.connections\":")
      .append(std::to_string(serve_connections_counter().value()));
  out.append(",\"serve.requests\":")
      .append(std::to_string(serve_requests_counter().value()));
  out.append(",\"serve.served\":")
      .append(std::to_string(serve_served_counter().value()));
  out.append(",\"serve.shed\":")
      .append(std::to_string(serve_shed_counter().value()));
  out.append(",\"serve.deadline_hits\":")
      .append(std::to_string(serve_deadline_counter().value()));
  out.append(",\"serve.quarantined\":")
      .append(std::to_string(serve_quarantined_counter().value()));
  out.append("}}");
  return out;
}

std::vector<StoreState> DiagnosisServer::store_states() const {
  std::lock_guard<std::mutex> lock(stores_mu_);
  std::vector<StoreState> out;
  out.reserve(stores_.size());
  for (const auto& s : stores_) out.push_back(s.state);
  return out;
}

void DiagnosisServer::request_drain() {
  bool expected = false;
  if (!drain_.compare_exchange_strong(expected, true)) return;
  {
    // Kick connections blocked mid-read; their loops then observe drain_.
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  drain_cv_.notify_all();
}

void DiagnosisServer::wait() {
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] { return drain_.load(); });
  }
  for (std::thread& t : accept_threads_) t.join();
  // Accept loops are gone, so conn_threads_ is stable now.
  for (std::thread& t : conn_threads_) t.join();
  listen_fds_.clear();
  if (!config_.unix_socket.empty()) ::unlink(config_.unix_socket.c_str());

  const double wall_seconds =
      static_cast<double>(obs::now_ns() - start_ns_) * 1e-9;
  if (!obs::ledger_out_path().empty()) {
    obs::LedgerRecord rec;
    rec.run_id = obs::new_invocation_run_id("serve", config_.git_sha);
    rec.tool = "serve";
    std::string circuits;
    for (const auto& s : stores_) {
      if (s.state.circuit.empty()) continue;
      if (!circuits.empty()) circuits.push_back(',');
      circuits.append(s.state.circuit);
    }
    rec.circuit = circuits;
    rec.git_sha = config_.git_sha;
    rec.threads = runtime::thread_count();
    rec.n_chips = serve_served_counter().value();
    rec.wall_seconds = wall_seconds;
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::instance().snapshot();
    rec.counters = snap.counters;
    // Session-level request latency, so run-diff reports see serving
    // regressions without re-deriving them from raw histograms.
    const auto hist = snap.histograms.find("serve.request_us");
    if (hist != snap.histograms.end() && hist->second.total() > 0) {
      rec.phases["latency_p50_ms"] = hist->second.quantile(0.50) / 1000.0;
      rec.phases["latency_p95_ms"] = hist->second.quantile(0.95) / 1000.0;
      rec.phases["latency_p99_ms"] = hist->second.quantile(0.99) / 1000.0;
    }
    rec.peak_rss_kb = obs::read_peak_rss_kb();
    obs::append_ledger_record(obs::ledger_out_path(), rec);
  }
  obs::dump_postmortem("serve.drain");
  // Flush metrics/trace through the SAME writer as the atexit handler, so
  // a drained server leaves a complete capture even if the process is
  // about to be torn down by a signal-initiated exit path.  The write-once
  // guard makes the later atexit call a no-op.
  obs::flush_observability_outputs();
  SDDD_LOG_INFO("serve: drained after %.1fs (%llu served, %llu shed)",
                wall_seconds,
                static_cast<unsigned long long>(serve_served_counter().value()),
                static_cast<unsigned long long>(serve_shed_counter().value()));
}

// ---------------------------------------------------------------------------
// serve_main

namespace {

int g_signal_pipe_wr = -1;

// Self-pipe bytes: 1 = drain (SIGTERM/SIGINT), 2 = stats dump (SIGUSR1).
void drain_signal_handler(int) {
  if (g_signal_pipe_wr >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t r = ::write(g_signal_pipe_wr, &byte, 1);
  }
}

void stats_signal_handler(int) {
  if (g_signal_pipe_wr >= 0) {
    const char byte = 2;
    [[maybe_unused]] const ssize_t r = ::write(g_signal_pipe_wr, &byte, 1);
  }
}

}  // namespace

int serve_main(const ServerConfig& config) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    SDDD_LOG_ERROR("serve: pipe failed: %s", std::strerror(errno));
    return 1;
  }
  g_signal_pipe_wr = pipe_fds[1];
  struct sigaction sa{};
  sa.sa_handler = drain_signal_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  struct sigaction sa_stats{};
  sa_stats.sa_handler = stats_signal_handler;
  ::sigaction(SIGUSR1, &sa_stats, nullptr);

  DiagnosisServer server(config);
  try {
    server.start();
  } catch (const Error& e) {
    SDDD_LOG_ERROR("%s", e.what());
    return 1;
  }
  std::size_t quarantined = 0;
  for (const StoreState& s : server.store_states()) {
    if (s.quarantined) ++quarantined;
  }
  std::printf("serve: ready unix=%s tcp_port=%d stores=%zu quarantined=%zu\n",
              config.unix_socket.empty() ? "-" : config.unix_socket.c_str(),
              server.tcp_port(), server.store_states().size(), quarantined);
  std::fflush(stdout);

  // Watch the self-pipe until someone requests a drain - SIGTERM/SIGINT,
  // or a "shutdown" op served by a worker thread.  SIGUSR1 (byte 2) is a
  // live stats dump: print the stats payload and land a postmortem, then
  // keep serving.
  std::thread signal_watcher([&server, read_fd = pipe_fds[0]] {
    while (!server.drain_requested()) {
      pollfd p{read_fd, POLLIN, 0};
      const int r = ::poll(&p, 1, 200);
      if (r <= 0) continue;
      char byte = 0;
      if (::read(read_fd, &byte, 1) != 1) continue;
      if (byte == 2) {
        std::printf("%s\n", server.stats_json().c_str());
        std::fflush(stdout);
        obs::dump_postmortem("serve.sigusr1");
        continue;
      }
      server.request_drain();
      break;
    }
  });
  server.wait();
  signal_watcher.join();
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
  g_signal_pipe_wr = -1;
  return 0;
}

}  // namespace sddd::store
