#include "store/server.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/error.h"
#include "obs/faults.h"
#include "obs/ledger.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "runtime/cancel.h"
#include "runtime/parallel_for.h"
#include "store/wire.h"

namespace sddd::store {

namespace {

// Seam ordinals (see server.h header comment): process-wide so a fault
// selector like serve.write@%3 targets a deterministic response sequence
// regardless of which connection carries it.
std::atomic<std::uint64_t> g_accept_ordinal{0};
std::atomic<std::uint64_t> g_request_ordinal{0};
std::atomic<std::uint64_t> g_response_ordinal{0};

obs::Counter& serve_connections_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.connections");
  return c;
}
obs::Counter& serve_requests_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.requests");
  return c;
}
obs::Counter& serve_served_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.served");
  return c;
}
obs::Counter& serve_shed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.shed");
  return c;
}
obs::Counter& serve_deadline_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.deadline_hits");
  return c;
}
obs::Counter& serve_quarantined_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("serve.quarantined");
  return c;
}

std::string error_json(const std::string& code, const std::string& message) {
  std::string out = "{\"ok\":false,\"error\":";
  out.append(json_quote(code));
  out.append(",\"message\":");
  out.append(json_quote(message));
  out.push_back('}');
  return out;
}

/// Decrements on scope exit (the in-flight guard's release half).
struct InflightRelease {
  std::atomic<std::size_t>* n;
  ~InflightRelease() { n->fetch_sub(1); }
};

}  // namespace

DiagnosisServer::DiagnosisServer(ServerConfig config)
    : config_(std::move(config)) {}

DiagnosisServer::~DiagnosisServer() {
  // A server destroyed without wait() (start() threw) has no threads.
  for (const int fd : listen_fds_) ::close(fd);
}

void DiagnosisServer::start() {
  start_ns_ = obs::now_ns();
  for (const std::string& path : config_.store_paths) {
    LoadedStore loaded;
    loaded.state.path = path;
    try {
      loaded.store = std::make_unique<DictionaryStore>(path);
      loaded.engine = std::make_unique<StoreQueryEngine>(*loaded.store);
      loaded.state.run_id = loaded.store->run_id();
      loaded.state.circuit = loaded.store->circuit();
    } catch (const Error& e) {
      // Quarantine, don't die: the health response carries the reason and
      // every other dictionary keeps serving.
      loaded.state.quarantined = true;
      loaded.state.error = e.what();
      serve_quarantined_counter().add(1);
      SDDD_LOG_WARN("serve: quarantined %s: %s", path.c_str(), e.what());
    }
    stores_.push_back(std::move(loaded));
  }

  if (!config_.unix_socket.empty()) {
    const int fd = listen_unix(config_.unix_socket);
    if (fd < 0) {
      throw IoError("serve: cannot listen on unix socket " +
                    config_.unix_socket + ": " + std::strerror(errno));
    }
    listen_fds_.push_back(fd);
  }
  if (config_.tcp_port >= 0) {
    const int fd = listen_tcp(config_.tcp_port);
    if (fd < 0) {
      throw IoError("serve: cannot listen on tcp port " +
                    std::to_string(config_.tcp_port) + ": " +
                    std::strerror(errno));
    }
    tcp_port_ = listening_port(fd);
    listen_fds_.push_back(fd);
  }
  if (listen_fds_.empty()) {
    throw IoError("serve: no listener configured (need --socket or --port)");
  }
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  }
}

void DiagnosisServer::accept_loop(int listen_fd) {
  while (!drain_.load()) {
    pollfd p{listen_fd, POLLIN, 0};
    const int r = ::poll(&p, 1, 200);
    if (r <= 0) continue;  // timeout or EINTR: re-check the drain flag
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    const std::uint64_t k = g_accept_ordinal.fetch_add(1);
    if (obs::fault_at("serve.accept", k)) {
      // Injected accept failure: the client sees a dropped connection and
      // must retry; the server just keeps accepting.
      ::close(fd);
      continue;
    }
    serve_connections_counter().add(1);
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (drain_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  ::close(listen_fd);
}

void DiagnosisServer::handle_connection(int fd) {
  std::string frame;
  while (true) {
    // Idle connections notice the drain between frames; a request already
    // being processed below always runs to completion first.
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, 200);
    if (drain_.load() && r <= 0) break;
    if (r <= 0) continue;
    const FrameStatus status =
        read_frame(fd, config_.max_frame_bytes, &frame);
    if (status == FrameStatus::kEof || status == FrameStatus::kError) break;
    std::string response;
    if (status == FrameStatus::kTooBig) {
      response = error_json("bad_request",
                            "frame exceeds " +
                                std::to_string(config_.max_frame_bytes) +
                                " bytes");
    } else {
      response = handle_request(frame);
    }
    const std::uint64_t k = g_response_ordinal.fetch_add(1);
    if (obs::fault_at("serve.write", k)) {
      // Injected write failure: drop the connection without responding;
      // the client's retry path replays against a fresh connection.
      break;
    }
    if (!write_frame(fd, response)) break;
    if (status == FrameStatus::kTooBig) break;  // framing is unrecoverable
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  std::lock_guard<std::mutex> lock(threads_mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

std::string DiagnosisServer::handle_request(const std::string& frame) {
  serve_requests_counter().add(1);
  JsonValue req;
  try {
    req = parse_json(frame);
  } catch (const Error& e) {
    return error_json("parse", e.what());
  }
  if (!req.is_object()) {
    return error_json("bad_request", "request must be a JSON object");
  }
  const std::string op = req.get_string("op");
  if (op == "health") return health_json();
  if (op == "shutdown") {
    request_drain();
    return "{\"ok\":true,\"op\":\"shutdown\"}";
  }
  if (op == "diagnose") {
    if (drain_.load()) {
      return error_json("shutting_down", "server is draining");
    }
    return handle_diagnose(req);
  }
  return error_json("bad_request", "unknown op '" + op + "'");
}

DiagnosisServer::LoadedStore* DiagnosisServer::route_store(
    const std::string& selector, std::string* error) {
  std::lock_guard<std::mutex> lock(stores_mu_);
  if (selector.empty()) {
    LoadedStore* only = nullptr;
    for (auto& s : stores_) {
      if (s.state.quarantined) continue;
      if (only != nullptr) {
        *error = error_json("bad_request",
                            "several stores are serving; pass \"store\"");
        return nullptr;
      }
      only = &s;
    }
    if (only == nullptr) {
      *error = error_json("store_quarantined", "no healthy store is serving");
    }
    return only;
  }
  LoadedStore* match = nullptr;
  for (auto& s : stores_) {
    const bool hit =
        s.state.circuit == selector || s.state.path == selector ||
        (selector.size() >= 4 && s.state.run_id.rfind(selector, 0) == 0);
    if (hit) {
      match = &s;
      break;
    }
  }
  if (match == nullptr) {
    *error = error_json("unknown_store", "no store matches '" + selector +
                                             "'");
    return nullptr;
  }
  if (match->state.quarantined) {
    *error = error_json("store_quarantined",
                        match->state.path + ": " + match->state.error);
    return nullptr;
  }
  return match;
}

std::string DiagnosisServer::handle_diagnose(const JsonValue& req) {
  // Bounded backpressure: admission is a single fetch_add against the
  // budget - there is no queue to grow without bound, an overloaded
  // server answers instantly with a typed shed.
  if (inflight_.fetch_add(1) >= config_.max_inflight) {
    inflight_.fetch_sub(1);
    serve_shed_counter().add(1);
    return error_json("overloaded",
                      "in-flight budget (" +
                          std::to_string(config_.max_inflight) +
                          ") exhausted; retry with backoff");
  }
  const InflightRelease release{&inflight_};

  std::string route_error;
  LoadedStore* loaded = route_store(req.get_string("store"), &route_error);
  if (loaded == nullptr) return route_error;

  const std::string match = req.get_string("match", "e");
  if (match != "e" && match != "s") {
    return error_json("bad_request", "match must be \"e\" or \"s\"");
  }
  const auto top_k = static_cast<std::size_t>(std::max(
      0.0, req.get_number("top", static_cast<double>(config_.default_top_k))));
  const double deadline_ms = req.get_number(
      "deadline_ms", static_cast<double>(config_.default_deadline_ms));

  const std::uint64_t request_k = g_request_ordinal.fetch_add(1);
  runtime::CancelToken token;
  if (obs::fault_at("serve.deadline", request_k)) {
    token.set_deadline_ns(1);  // already expired: the deadline path, forced
  } else if (deadline_ms > 0.0) {
    token.set_deadline_after_seconds(deadline_ms / 1000.0);
  }

  try {
    const runtime::ScopedCancelToken ambient(&token);
    if (config_.test_hold_seconds > 0.0) {
      const std::uint64_t until =
          obs::now_ns() +
          static_cast<std::uint64_t>(config_.test_hold_seconds * 1e9);
      while (obs::now_ns() < until) {
        token.poll();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    token.poll();

    const JsonValue* chips_json = req.get("chips");
    if (chips_json == nullptr || !chips_json->is_array()) {
      return error_json("bad_request", "missing \"chips\" array");
    }
    const DictionaryStore& st = *loaded->store;
    std::vector<ChipQuery> chips;
    chips.reserve(chips_json->array.size());
    for (std::size_t c = 0; c < chips_json->array.size(); ++c) {
      const JsonValue& chip = chips_json->array[c];
      ChipQuery q;
      q.id = chip.get_string("id", std::to_string(c));
      const JsonValue* rows_json = chip.get("b");
      if (rows_json == nullptr || !rows_json->is_array()) {
        return error_json("bad_request",
                          "chip " + q.id + ": missing \"b\" rows");
      }
      std::vector<std::string> rows;
      rows.reserve(rows_json->array.size());
      for (const JsonValue& row : rows_json->array) {
        if (!row.is_string()) {
          return error_json("bad_request",
                            "chip " + q.id + ": \"b\" rows must be strings");
        }
        rows.push_back(row.string);
      }
      q.B = behavior_from_rows(rows, st.n_outputs(), st.n_patterns());
      chips.push_back(std::move(q));
    }

    const std::string response =
        diagnose_batch_json(*loaded->engine, chips, match == "e", top_k);
    serve_served_counter().add(1);
    return response;
  } catch (const DeadlineError& e) {
    serve_deadline_counter().add(1);
    return error_json("deadline", e.what());
  } catch (const CancelledError& e) {
    return error_json("shutting_down", e.what());
  } catch (const ParseError& e) {
    return error_json("bad_request", e.what());
  } catch (const StoreError& e) {
    // A store that turns bad mid-flight (should be impossible after the
    // open-time sweep, but classified anyway): quarantine it.  The
    // mapping stays alive - another thread may be mid-read - only the
    // routing state flips.
    {
      std::lock_guard<std::mutex> lock(stores_mu_);
      if (!loaded->state.quarantined) {
        loaded->state.quarantined = true;
        loaded->state.error = e.what();
        serve_quarantined_counter().add(1);
      }
    }
    return error_json("store_quarantined", e.what());
  } catch (const Error& e) {
    return error_json("internal", e.what());
  } catch (const std::exception& e) {
    return error_json("internal", e.what());
  }
}

std::string DiagnosisServer::health_json() const {
  std::lock_guard<std::mutex> lock(stores_mu_);
  bool degraded = false;
  std::string out = "{\"ok\":true,\"op\":\"health\",\"stores\":[";
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    const StoreState& s = stores_[i].state;
    if (s.quarantined) degraded = true;
    if (i > 0) out.push_back(',');
    out.append("{\"path\":").append(json_quote(s.path));
    out.append(",\"run_id\":").append(json_quote(s.run_id));
    out.append(",\"circuit\":").append(json_quote(s.circuit));
    out.append(",\"state\":")
        .append(s.quarantined ? "\"quarantined\"" : "\"serving\"");
    out.append(",\"error\":").append(json_quote(s.error));
    out.push_back('}');
  }
  out.append("],\"degraded\":").append(degraded ? "true" : "false");
  out.append(",\"draining\":").append(drain_.load() ? "true" : "false");
  out.append(",\"inflight\":").append(std::to_string(inflight_.load()));
  out.append(",\"counters\":{");
  out.append("\"serve.connections\":")
      .append(std::to_string(serve_connections_counter().value()));
  out.append(",\"serve.requests\":")
      .append(std::to_string(serve_requests_counter().value()));
  out.append(",\"serve.served\":")
      .append(std::to_string(serve_served_counter().value()));
  out.append(",\"serve.shed\":")
      .append(std::to_string(serve_shed_counter().value()));
  out.append(",\"serve.deadline_hits\":")
      .append(std::to_string(serve_deadline_counter().value()));
  out.append(",\"serve.quarantined\":")
      .append(std::to_string(serve_quarantined_counter().value()));
  out.append("}}");
  return out;
}

std::vector<StoreState> DiagnosisServer::store_states() const {
  std::lock_guard<std::mutex> lock(stores_mu_);
  std::vector<StoreState> out;
  out.reserve(stores_.size());
  for (const auto& s : stores_) out.push_back(s.state);
  return out;
}

void DiagnosisServer::request_drain() {
  bool expected = false;
  if (!drain_.compare_exchange_strong(expected, true)) return;
  {
    // Kick connections blocked mid-read; their loops then observe drain_.
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  drain_cv_.notify_all();
}

void DiagnosisServer::wait() {
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] { return drain_.load(); });
  }
  for (std::thread& t : accept_threads_) t.join();
  // Accept loops are gone, so conn_threads_ is stable now.
  for (std::thread& t : conn_threads_) t.join();
  listen_fds_.clear();
  if (!config_.unix_socket.empty()) ::unlink(config_.unix_socket.c_str());

  const double wall_seconds =
      static_cast<double>(obs::now_ns() - start_ns_) * 1e-9;
  if (!obs::ledger_out_path().empty()) {
    obs::LedgerRecord rec;
    rec.run_id = obs::new_invocation_run_id("serve", config_.git_sha);
    rec.tool = "serve";
    std::string circuits;
    for (const auto& s : stores_) {
      if (s.state.circuit.empty()) continue;
      if (!circuits.empty()) circuits.push_back(',');
      circuits.append(s.state.circuit);
    }
    rec.circuit = circuits;
    rec.git_sha = config_.git_sha;
    rec.threads = runtime::thread_count();
    rec.n_chips = serve_served_counter().value();
    rec.wall_seconds = wall_seconds;
    rec.counters = obs::MetricsRegistry::instance().snapshot().counters;
    rec.peak_rss_kb = obs::read_peak_rss_kb();
    obs::append_ledger_record(obs::ledger_out_path(), rec);
  }
  obs::dump_postmortem("serve.drain");
  SDDD_LOG_INFO("serve: drained after %.1fs (%llu served, %llu shed)",
                wall_seconds,
                static_cast<unsigned long long>(serve_served_counter().value()),
                static_cast<unsigned long long>(serve_shed_counter().value()));
}

// ---------------------------------------------------------------------------
// serve_main

namespace {

int g_signal_pipe_wr = -1;

void drain_signal_handler(int) {
  if (g_signal_pipe_wr >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t r = ::write(g_signal_pipe_wr, &byte, 1);
  }
}

}  // namespace

int serve_main(const ServerConfig& config) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    SDDD_LOG_ERROR("serve: pipe failed: %s", std::strerror(errno));
    return 1;
  }
  g_signal_pipe_wr = pipe_fds[1];
  struct sigaction sa{};
  sa.sa_handler = drain_signal_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  DiagnosisServer server(config);
  try {
    server.start();
  } catch (const Error& e) {
    SDDD_LOG_ERROR("%s", e.what());
    return 1;
  }
  std::size_t quarantined = 0;
  for (const StoreState& s : server.store_states()) {
    if (s.quarantined) ++quarantined;
  }
  std::printf("serve: ready unix=%s tcp_port=%d stores=%zu quarantined=%zu\n",
              config.unix_socket.empty() ? "-" : config.unix_socket.c_str(),
              server.tcp_port(), server.store_states().size(), quarantined);
  std::fflush(stdout);

  // Watch for SIGTERM/SIGINT (self-pipe) until someone requests a drain -
  // the signal, or a "shutdown" op served by a worker thread.
  std::thread signal_watcher([&server, read_fd = pipe_fds[0]] {
    while (!server.drain_requested()) {
      pollfd p{read_fd, POLLIN, 0};
      const int r = ::poll(&p, 1, 200);
      if (r > 0) {
        server.request_drain();
        break;
      }
    }
  });
  server.wait();
  signal_watcher.join();
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
  g_signal_pipe_wr = -1;
  return 0;
}

}  // namespace sddd::store
