#include "store/client.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "obs/error.h"
#include "obs/expo.h"
#include "obs/metrics.h"
#include "store/wire.h"

namespace sddd::store {

ServeClient ServeClient::connect(const std::string& socket_path, int port) {
  int fd = -1;
  if (!socket_path.empty()) {
    fd = connect_unix(socket_path);
    if (fd < 0) {
      throw IoError("client: cannot connect to " + socket_path + ": " +
                    std::strerror(errno));
    }
  } else if (port >= 0) {
    fd = connect_tcp("127.0.0.1", port);
    if (fd < 0) {
      throw IoError("client: cannot connect to port " + std::to_string(port) +
                    ": " + std::strerror(errno));
    }
  } else {
    throw IoError("client: no endpoint (need a socket path or port)");
  }
  return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string ServeClient::request(const std::string& payload) {
  if (fd_ < 0) throw IoError("client: not connected");
  if (!write_frame(fd_, payload)) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("client: send failed: " + std::string(std::strerror(errno)));
  }
  std::string response;
  const FrameStatus status =
      read_frame(fd_, /*max_bytes=*/256u << 20, &response);
  if (status != FrameStatus::kOk) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("client: connection lost waiting for the response");
  }
  return response;
}

std::string mint_client_trace_id() {
  static std::atomic<std::uint64_t> counter{0};
  // FNV-1a over (pid, now, counter): unique enough across concurrent load
  // generators, and never needs coordination.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(::getpid()));
  mix(obs::now_ns());
  mix(counter.fetch_add(1));
  return obs::hex16(h);
}

std::string payload_with_trace_id(const std::string& payload,
                                  const std::string& trace_id) {
  if (payload.empty() || payload.front() != '{') return payload;
  if (payload.find("\"trace_id\"") != std::string::npos) return payload;
  std::string member = "\"trace_id\":\"" + trace_id + "\"";
  // "{}" needs no comma; "{...}" does.
  if (payload.size() > 2) member.push_back(',');
  std::string out = payload;
  out.insert(1, member);
  return out;
}

std::string request_with_retry(ServeClient& client,
                               const std::string& socket_path, int port,
                               const std::string& payload,
                               const RetryPolicy& policy, RetryStats* stats) {
  // One identity for the whole exchange: stamp the payload ONCE, before
  // the loop, so reconnect replays carry the same trace id and the server
  // sees a retried request as the same request.
  std::string trace_id;
  const std::size_t id_pos = payload.find("\"trace_id\":\"");
  if (id_pos != std::string::npos) {
    const std::size_t begin = id_pos + 12;
    const std::size_t end = payload.find('"', begin);
    if (end != std::string::npos) {
      trace_id = payload.substr(begin, end - begin);
    }
  }
  std::string stamped = payload;
  if (trace_id.empty()) {
    trace_id = mint_client_trace_id();
    stamped = payload_with_trace_id(payload, trace_id);
  }
  if (stats != nullptr) stats->trace_id = trace_id;

  double backoff_s = policy.initial_backoff_s;
  std::string last_error;
  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
      backoff_s = std::min(backoff_s * 2.0, policy.max_backoff_s);
    }
    try {
      if (!client.connected()) {
        client = ServeClient::connect(socket_path, port);
        if (stats != nullptr) ++stats->reconnects;
      }
      if (stats != nullptr) ++stats->attempts;
      std::string response = client.request(stamped);
      // A typed shed is the server asking for backoff; everything else
      // (success or a non-retryable error) is the caller's to interpret.
      if (response.find("\"error\":\"overloaded\"") != std::string::npos) {
        if (stats != nullptr) ++stats->sheds;
        last_error = "overloaded";
        continue;
      }
      return response;
    } catch (const IoError& e) {
      last_error = e.what();
    }
  }
  throw IoError("client: " + std::to_string(policy.max_attempts) +
                " attempts exhausted (last: " + last_error + ")");
}

std::string make_diagnose_request(const std::string& store_selector,
                                  const std::string& match, std::size_t top_k,
                                  std::uint64_t deadline_ms,
                                  std::span<const ChipQuery> chips,
                                  const std::string& trace_id) {
  std::string out = "{\"op\":\"diagnose\"";
  if (!trace_id.empty()) {
    out.append(",\"trace_id\":").append(json_quote(trace_id));
  }
  if (!store_selector.empty()) {
    out.append(",\"store\":").append(json_quote(store_selector));
  }
  out.append(",\"match\":").append(json_quote(match));
  out.append(",\"top\":").append(std::to_string(top_k));
  if (deadline_ms > 0) {
    out.append(",\"deadline_ms\":").append(std::to_string(deadline_ms));
  }
  out.append(",\"chips\":[");
  for (std::size_t c = 0; c < chips.size(); ++c) {
    if (c > 0) out.push_back(',');
    out.append("{\"id\":").append(json_quote(chips[c].id));
    out.append(",\"b\":[");
    const diagnosis::BehaviorMatrix& B = chips[c].B;
    for (std::size_t i = 0; i < B.output_count(); ++i) {
      if (i > 0) out.push_back(',');
      out.push_back('"');
      for (std::size_t j = 0; j < B.pattern_count(); ++j) {
        out.push_back(B.at(i, j) ? '1' : '0');
      }
      out.push_back('"');
    }
    out.append("]}");
  }
  out.append("]}");
  return out;
}

}  // namespace sddd::store
