// wire.h - The serve transport: length-prefixed JSON frames over a unix
// or TCP stream socket, plus the minimal JSON reader the server and
// clients share.
//
// Framing: every message is `u32 length (big-endian) | length bytes of
// UTF-8 JSON`.  The prefix makes request boundaries explicit (no
// sniffing for balanced braces on a hostile stream) and lets the server
// reject oversized frames BEFORE buffering them - the max_frame_bytes
// backstop in ServerConfig.
//
// The JSON reader is deliberately small: objects, arrays, strings (with
// the escapes diagnose_batch_json emits), doubles, bools, null.  It
// exists so the serve path has zero external dependencies; it is not a
// general-purpose validator (e.g. it accepts trailing garbage after the
// top-level value, which framing already excludes).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sddd::store {

// ---------------------------------------------------------------------------
// JSON

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const;
  /// String member with default.
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  /// Numeric member with default (also accepts integral-valued doubles).
  double get_number(const std::string& key, double fallback = 0.0) const;
};

/// Parses one JSON document.  Throws sddd::ParseError on malformed input.
JsonValue parse_json(std::string_view text);

// ---------------------------------------------------------------------------
// Trace envelope
//
// Every server response is wrapped as
//
//   {"trace_id":"<id>","payload":<payload>}
//
// with the payload bytes embedded VERBATIM (raw JSON nesting, not a
// quoted string).  That keeps the scored diagnose payload byte-identical
// to the offline `dict query` path - the determinism contract - while
// giving every response a request identity.  Trace ids are restricted to
// [A-Za-z0-9._-] (valid_trace_id in obs/expo.h), so the envelope prefix
// is unambiguous and splitting is exact textual surgery, no re-parse.

/// Renders the envelope around `payload`.
std::string wrap_response_envelope(std::string_view trace_id,
                                   std::string_view payload);

/// Splits an envelope; false when `response` is not one (old server).
/// On success `*trace_id` and `*payload` receive the parts.
bool split_response_envelope(const std::string& response,
                             std::string* trace_id, std::string* payload);

/// The payload inside an envelope, or `response` itself when it is not
/// enveloped - what byte-compare consumers feed to cmp.
std::string response_payload(const std::string& response);

// ---------------------------------------------------------------------------
// Frames

enum class FrameStatus {
  kOk,
  kEof,      ///< clean close before any prefix byte
  kTooBig,   ///< prefix exceeds the caller's limit (connection is dead)
  kError,    ///< short read / IO error mid-frame
};

/// Reads one frame into `out` (replaced).  Never throws.
FrameStatus read_frame(int fd, std::size_t max_bytes, std::string* out);

/// Writes one frame; false on any short write / error.  Never throws.
bool write_frame(int fd, std::string_view payload);

// ---------------------------------------------------------------------------
// Sockets (all return -1 and set errno on failure; never throw)

/// Bound + listening unix stream socket at `path` (unlinked first).
int listen_unix(const std::string& path);
/// Bound + listening TCP socket on 127.0.0.1:`port` (0 = ephemeral).
int listen_tcp(int port);
/// The local port a TCP listener actually bound (for port 0).
int listening_port(int fd);
int connect_unix(const std::string& path);
int connect_tcp(const std::string& host, int port);

}  // namespace sddd::store
