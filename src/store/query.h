// query.h - Diagnosing chips straight out of a memory-mapped store.
//
// StoreQueryEngine is the Diagnoser's scoring path re-rooted onto
// DictionaryStore: suspect extraction walks the stored per-(pattern,
// output) cone bitsets with the diagnoser's exact support/cap algorithm,
// and scoring feeds the stored E (or S) columns through the same packed
// phi_block() kernel into the same ScoreAccumulators in the same pattern
// order.  Because the store's columns were produced by the identical
// PatternSlice code paths and are raw doubles, the engine's scores, keys,
// ranks and captured phi are BIT-IDENTICAL to an in-process
// Diagnoser::diagnose() over a freshly built dictionary at the store's
// config - the byte-identity contract ci.sh enforces end to end through
// the serve path.
//
// diagnose_batch_json() is the single response renderer: `sddd_cli dict
// query` (in-process) and the serve loop both emit its bytes verbatim, so
// the two transports are cmp-comparable.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "diagnosis/behavior.h"
#include "diagnosis/diagnoser.h"
#include "store/store.h"

namespace sddd::store {

class StoreQueryEngine {
 public:
  /// The engine borrows `store`, which must outlive it.
  explicit StoreQueryEngine(const DictionaryStore& store) : store_(&store) {}

  const DictionaryStore& store() const { return *store_; }

  /// Algorithm E.1 step 1 from the stored cone bitsets; identical suspect
  /// sets (same support counts, same max_suspects cap policy) as
  /// Diagnoser::extract_suspects.
  std::vector<netlist::ArcId> extract_suspects(
      const diagnosis::BehaviorMatrix& B) const;

  /// Full diagnosis over the stored columns.  `match_on_total_probability`
  /// selects the E ("e", default) vs S ("s") section;
  /// `capture_phi` populates DiagnosisResult::phi.  B must be
  /// n_outputs() x n_patterns().
  diagnosis::DiagnosisResult diagnose(const diagnosis::BehaviorMatrix& B,
                                      std::span<const diagnosis::Method> methods,
                                      bool match_on_total_probability = true,
                                      bool capture_phi = false) const;

 private:
  const DictionaryStore* store_;
};

/// One chip of a batch request.
struct ChipQuery {
  std::string id;  ///< caller-chosen label, echoed back
  diagnosis::BehaviorMatrix B{0, 0};
};

/// JSON string literal (quotes + escapes) of `s`; shared by every serve
/// JSON renderer so equal strings always render byte-identically.
std::string json_quote(const std::string& s);

/// Parses behavior rows ("0101..." per output, column j = pattern j) into
/// a BehaviorMatrix; throws sddd::ParseError on any dimension or character
/// mismatch.
diagnosis::BehaviorMatrix behavior_from_rows(
    const std::vector<std::string>& rows, std::size_t n_outputs,
    std::size_t n_patterns);

/// Diagnoses every chip and renders the canonical response JSON (single
/// line, no trailing newline):
///
///   {"ok":true,"op":"diagnose","run_id":...,"circuit":...,"match":"e"|"s",
///    "mc_samples":N,"n_patterns":N,
///    "chips":[{"id":...,"n_suspects":N,
///              "methods":{"Alg_sim-I":[{"arc":A,"score":S,"key":K},...],...},
///              "phi":{"A":[phi_1..phi_TP],...}},...]}
///
/// `top_k` caps each method's ranked list (0 = all suspects); "phi" holds
/// the per-pattern consistency probabilities of the union of every
/// method's reported arcs, keyed by arc id in ascending order.  All
/// doubles are %.17g, so equal diagnoses render byte-identically.
std::string diagnose_batch_json(const StoreQueryEngine& engine,
                                std::span<const ChipQuery> chips,
                                bool match_on_total_probability,
                                std::size_t top_k);

}  // namespace sddd::store
