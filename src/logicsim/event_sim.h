// event_sim.h - Event-driven timed logic simulation (transport delays).
//
// The statistical dynamic timing engine (timing/dynamic_sim.h) uses the
// transition-mode min/max approximation: one arrival number per toggling
// net, hazards ignored.  This module provides the reference semantics it
// approximates: a full event-driven simulation of one two-vector test on
// one fixed-delay chip, with per-pin transport delays, multiple events per
// net (glitches) and exact settle times.
//
// It exists for validation (tests and the ablation bench compare settle
// times against the approximation and count where hazards make them
// diverge) and as the substrate a future hazard-aware diagnosis could
// build on (the paper's future work #1: "improve the dynamic statistical
// timing simulator for more accurate delay fault simulation").
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/netlist.h"

namespace sddd::logicsim {

/// Outcome of one timed simulation.
struct TimedSimResult {
  /// Time of the last value change per gate; 0 for nets whose final value
  /// was already settled at launch (including non-toggling nets).
  std::vector<double> settle_time;
  /// Final (settled) value per gate; must equal the v2 logic value.
  std::vector<bool> final_value;
  /// Number of output events per gate (>= 2 transitions = glitching).
  std::vector<std::uint32_t> event_count;
  /// Total events processed (simulation effort / hazard activity).
  std::size_t total_events = 0;
};

class TimedEventSimulator {
 public:
  TimedEventSimulator(const netlist::Netlist& nl,
                      const netlist::Levelization& lev);

  /// Simulates the launch of v2 after the circuit settled under v1.
  /// `arc_delay[a]` is the fixed transport delay of timing arc a (e.g. one
  /// sample of a DelayField).  `max_events` bounds hazard cascades (throws
  /// std::runtime_error when exceeded).
  TimedSimResult simulate(const PatternPair& pattern,
                          std::span<const double> arc_delay,
                          std::size_t max_events = 1U << 22U) const;

 private:
  const netlist::Netlist* nl_;
  const netlist::Levelization* lev_;
  BitSimulator logic_;
};

}  // namespace sddd::logicsim
