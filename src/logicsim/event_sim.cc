#include "logicsim/event_sim.h"

#include <queue>
#include <stdexcept>

namespace sddd::logicsim {

using netlist::ArcId;
using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;

TimedEventSimulator::TimedEventSimulator(const Netlist& nl,
                                         const netlist::Levelization& lev)
    : nl_(&nl), lev_(&lev), logic_(nl, lev) {}

namespace {

/// A value change arriving at one fanin pin (timing arc) of a gate.
struct PinEvent {
  double time = 0.0;
  ArcId arc = netlist::kInvalidArc;
  bool value = false;
  std::uint64_t seq = 0;  ///< FIFO tie-break for equal times

  bool operator>(const PinEvent& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

bool eval_bool(netlist::CellType type, const std::vector<bool>& fanins) {
  std::vector<std::uint64_t> words(fanins.size());
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    words[i] = fanins[i] ? ~0ULL : 0ULL;
  }
  return (eval_gate_words(type, words) & 1ULL) != 0;
}

}  // namespace

TimedSimResult TimedEventSimulator::simulate(
    const PatternPair& pattern, std::span<const double> arc_delay,
    std::size_t max_events) const {
  const Netlist& nl = *nl_;
  if (arc_delay.size() != nl.arc_count()) {
    throw std::invalid_argument("TimedEventSimulator: arc_delay size mismatch");
  }

  // Settled pre-launch state under v1.
  const auto v1_values = logic_.simulate_single(pattern.v1);

  TimedSimResult result;
  result.settle_time.assign(nl.gate_count(), 0.0);
  result.final_value = v1_values;
  result.event_count.assign(nl.gate_count(), 0);

  // State: the output waveform value of every net, and the *pin view* per
  // timing arc - what the receiving gate currently sees on that pin, i.e.
  // the driver value delayed by the pin's transport delay.  Evaluating a
  // gate on its pin views (not on instantaneous driver values) is what
  // keeps the final state exact under unequal pin delays.
  std::vector<bool> value = v1_values;
  std::vector<bool> pin_view(nl.arc_count());
  for (ArcId a = 0; a < nl.arc_count(); ++a) {
    const auto& arc = nl.arc(a);
    pin_view[a] = v1_values[nl.gate(arc.gate).fanins[arc.pin]];
  }

  std::priority_queue<PinEvent, std::vector<PinEvent>, std::greater<>> queue;
  std::uint64_t seq = 0;

  // Emits a net change at `time`: updates bookkeeping and schedules the
  // delayed pin events on every fanout arc.
  std::vector<bool> fanin_buf;
  const auto emit_output = [&](GateId g, bool v, double time) {
    value[g] = v;
    result.final_value[g] = v;
    result.settle_time[g] = time;
    ++result.event_count[g];
    for (const GateId fo : nl.gate(g).fanouts) {
      const Gate& gate = nl.gate(fo);
      if (!is_combinational(gate.type)) continue;
      for (std::uint32_t p = 0; p < gate.fanins.size(); ++p) {
        if (gate.fanins[p] != g) continue;
        const ArcId a = nl.arc_of(fo, p);
        queue.push(PinEvent{time + arc_delay[a], a, v, seq++});
      }
    }
  };

  // Launch: PI nets switch at t = 0.
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    const GateId pi = nl.inputs()[i];
    if (pattern.v2[i] != v1_values[pi]) {
      emit_output(pi, pattern.v2[i], 0.0);
    }
  }

  while (!queue.empty()) {
    const PinEvent ev = queue.top();
    queue.pop();
    if (pin_view[ev.arc] == ev.value) continue;  // redundant arrival
    if (++result.total_events > max_events) {
      throw std::runtime_error(
          "TimedEventSimulator: event budget exceeded (oscillation?)");
    }
    pin_view[ev.arc] = ev.value;
    const GateId g = nl.arc(ev.arc).gate;
    const Gate& gate = nl.gate(g);
    fanin_buf.assign(gate.fanins.size(), false);
    for (std::uint32_t p = 0; p < gate.fanins.size(); ++p) {
      fanin_buf[p] = pin_view[nl.arc_of(g, p)];
    }
    const bool out = eval_bool(gate.type, fanin_buf);
    if (out != value[g]) emit_output(g, out, ev.time);
  }

  return result;
}

}  // namespace sddd::logicsim
