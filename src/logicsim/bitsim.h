// bitsim.h - Bit-parallel (64 patterns/word) two-valued logic simulation.
//
// The diagnosis flow needs plain logic values in three places:
//   - computing which nets toggle under a two-vector delay test (the
//     transition graph that induces Induced(Path_v), Definition D.4/D.5);
//   - the cause-effect suspect pruning of Algorithm E.1 step 1;
//   - functional sanity checks in tests and the ATPG's pattern validation.
//
// One machine word carries the value of a net under 64 independent patterns,
// so a full-pattern-set simulation is a single topological sweep.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/levelize.h"
#include "netlist/netlist.h"

namespace sddd::logicsim {

/// One input assignment: value per primary input, indexed like
/// Netlist::inputs().
using Pattern = std::vector<bool>;

/// A two-vector delay test (launch vector v1, capture vector v2).
struct PatternPair {
  Pattern v1;
  Pattern v2;
};

/// Bit-parallel combinational simulator.  The netlist must be frozen,
/// combinational (full-scan transformed), and is borrowed for the
/// simulator's lifetime.
class BitSimulator {
 public:
  BitSimulator(const netlist::Netlist& nl, const netlist::Levelization& lev);

  /// Simulates up to 64 patterns at once.  `pi_words[i]` holds the values
  /// of primary input i (bit k = pattern k).  Returns one word per gate
  /// (indexed by GateId) with the simulated net values.
  std::vector<std::uint64_t> simulate(std::span<const std::uint64_t> pi_words) const;

  /// Packs bit `bit` of `words` from the single pattern and simulates it;
  /// returns one bool per gate.  Convenience for single-pattern callers.
  std::vector<bool> simulate_single(const Pattern& pattern) const;

  /// Packs up to 64 patterns into PI words (bit k = patterns[k]).
  std::vector<std::uint64_t> pack(std::span<const Pattern> patterns) const;

  /// Extracts the PO values of pattern `bit` from a simulate() result, in
  /// Netlist::outputs() order.
  std::vector<bool> output_values(std::span<const std::uint64_t> gate_words,
                                  unsigned bit) const;

  const netlist::Netlist& netlist() const { return *nl_; }

 private:
  const netlist::Netlist* nl_;
  const netlist::Levelization* lev_;
};

/// Evaluates a single gate function over packed words.  Exposed for reuse
/// by the ternary simulator's completeness checks and by tests.
std::uint64_t eval_gate_words(netlist::CellType type,
                              std::span<const std::uint64_t> fanin_words);

}  // namespace sddd::logicsim
