#include "logicsim/ternary.h"

#include <stdexcept>

namespace sddd::logicsim {

using netlist::CellType;
using netlist::Gate;
using netlist::GateId;

Tern tern_not(Tern a) {
  switch (a) {
    case Tern::k0:
      return Tern::k1;
    case Tern::k1:
      return Tern::k0;
    case Tern::kX:
      return Tern::kX;
  }
  return Tern::kX;
}

namespace {

Tern from_bool(bool b) { return b ? Tern::k1 : Tern::k0; }

/// AND/OR family with controlling-value shortcut.
Tern eval_controlled(bool ctrl, bool invert, std::span<const Tern> fanins) {
  const Tern ctrl_v = from_bool(ctrl);
  bool any_x = false;
  for (const Tern v : fanins) {
    if (v == ctrl_v) return from_bool(invert ? !ctrl : ctrl);
    if (v == Tern::kX) any_x = true;
  }
  if (any_x) return Tern::kX;
  // All inputs at the non-controlling value.
  return from_bool(invert ? ctrl : !ctrl);
}

}  // namespace

Tern eval_gate_tern(CellType type, std::span<const Tern> fanins) {
  switch (type) {
    case CellType::kBuf:
      return fanins[0];
    case CellType::kNot:
      return tern_not(fanins[0]);
    case CellType::kAnd:
      return eval_controlled(false, false, fanins);
    case CellType::kNand:
      return eval_controlled(false, true, fanins);
    case CellType::kOr:
      return eval_controlled(true, false, fanins);
    case CellType::kNor:
      return eval_controlled(true, true, fanins);
    case CellType::kXor:
    case CellType::kXnor: {
      bool acc = (type == CellType::kXnor);
      for (const Tern v : fanins) {
        if (v == Tern::kX) return Tern::kX;
        acc ^= (v == Tern::k1);
      }
      return from_bool(acc);
    }
    case CellType::kConst0:
      return Tern::k0;
    case CellType::kConst1:
      return Tern::k1;
    case CellType::kInput:
    case CellType::kDff:
      throw std::logic_error("eval_gate_tern: non-combinational gate");
  }
  return Tern::kX;
}

TernarySimulator::TernarySimulator(const netlist::Netlist& nl,
                                   const netlist::Levelization& lev)
    : nl_(&nl), lev_(&lev) {
  if (nl.dff_count() != 0) {
    throw std::invalid_argument(
        "TernarySimulator: sequential netlist - run full_scan_transform "
        "first");
  }
}

std::vector<Tern> TernarySimulator::simulate(
    std::span<const Tern> pi_values) const {
  std::vector<Tern> values;
  simulate_into(pi_values, values);
  return values;
}

void TernarySimulator::simulate_into(std::span<const Tern> pi_values,
                                     std::vector<Tern>& values) const {
  if (pi_values.size() != nl_->inputs().size()) {
    throw std::invalid_argument("TernarySimulator: pi_values size mismatch");
  }
  values.assign(nl_->gate_count(), Tern::kX);
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    values[nl_->inputs()[i]] = pi_values[i];
  }
  std::vector<Tern> fanin_buf;
  for (const GateId g : lev_->topo_order()) {
    const Gate& gate = nl_->gate(g);
    if (!is_combinational(gate.type)) continue;
    fanin_buf.clear();
    for (const GateId f : gate.fanins) fanin_buf.push_back(values[f]);
    values[g] = eval_gate_tern(gate.type, fanin_buf);
  }
}

}  // namespace sddd::logicsim
