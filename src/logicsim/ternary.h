// ternary.h - Three-valued (0/1/X) logic for test generation.
//
// The PODEM-style path-sensitizing ATPG (atpg/) works on partial input
// assignments; unassigned inputs carry X.  This module provides the value
// algebra and a forward-implication simulator over a frozen combinational
// netlist.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/levelize.h"
#include "netlist/netlist.h"

namespace sddd::logicsim {

/// Ternary logic value.
enum class Tern : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

/// Ternary negation (X stays X).
Tern tern_not(Tern a);

/// Evaluates a gate function over ternary fanin values with standard
/// controlled-gate shortcuts (a controlling input forces the output even if
/// other inputs are X).
Tern eval_gate_tern(netlist::CellType type, std::span<const Tern> fanins);

/// Forward-implication simulator: given PI values (possibly X), computes
/// every net's ternary value in one topological sweep.
class TernarySimulator {
 public:
  TernarySimulator(const netlist::Netlist& nl,
                   const netlist::Levelization& lev);

  /// `pi_values` indexed like Netlist::inputs().  Returns one value per
  /// gate (indexed by GateId).
  std::vector<Tern> simulate(std::span<const Tern> pi_values) const;

  /// In-place variant reusing a caller-owned buffer of size gate_count().
  void simulate_into(std::span<const Tern> pi_values,
                     std::vector<Tern>& values) const;

 private:
  const netlist::Netlist* nl_;
  const netlist::Levelization* lev_;
};

}  // namespace sddd::logicsim
