#include "logicsim/bitsim.h"

#include <stdexcept>

namespace sddd::logicsim {

using netlist::CellType;
using netlist::Gate;
using netlist::GateId;

std::uint64_t eval_gate_words(CellType type,
                              std::span<const std::uint64_t> fanin_words) {
  switch (type) {
    case CellType::kBuf:
      return fanin_words[0];
    case CellType::kNot:
      return ~fanin_words[0];
    case CellType::kAnd:
    case CellType::kNand: {
      std::uint64_t acc = ~0ULL;
      for (const std::uint64_t w : fanin_words) acc &= w;
      return type == CellType::kAnd ? acc : ~acc;
    }
    case CellType::kOr:
    case CellType::kNor: {
      std::uint64_t acc = 0ULL;
      for (const std::uint64_t w : fanin_words) acc |= w;
      return type == CellType::kOr ? acc : ~acc;
    }
    case CellType::kXor:
    case CellType::kXnor: {
      std::uint64_t acc = 0ULL;
      for (const std::uint64_t w : fanin_words) acc ^= w;
      return type == CellType::kXor ? acc : ~acc;
    }
    case CellType::kConst0:
      return 0ULL;
    case CellType::kConst1:
      return ~0ULL;
    case CellType::kInput:
    case CellType::kDff:
      throw std::logic_error("eval_gate_words: non-combinational gate");
  }
  return 0ULL;
}

BitSimulator::BitSimulator(const netlist::Netlist& nl,
                           const netlist::Levelization& lev)
    : nl_(&nl), lev_(&lev) {
  if (!nl.frozen()) throw std::logic_error("BitSimulator: netlist not frozen");
  if (nl.dff_count() != 0) {
    throw std::invalid_argument(
        "BitSimulator: sequential netlist - run full_scan_transform first");
  }
}

std::vector<std::uint64_t> BitSimulator::simulate(
    std::span<const std::uint64_t> pi_words) const {
  if (pi_words.size() != nl_->inputs().size()) {
    throw std::invalid_argument("BitSimulator: pi_words size mismatch");
  }
  std::vector<std::uint64_t> value(nl_->gate_count(), 0);
  for (std::size_t i = 0; i < pi_words.size(); ++i) {
    value[nl_->inputs()[i]] = pi_words[i];
  }
  std::vector<std::uint64_t> fanin_buf;
  for (const GateId g : lev_->topo_order()) {
    const Gate& gate = nl_->gate(g);
    if (!is_combinational(gate.type)) continue;
    fanin_buf.clear();
    for (const GateId f : gate.fanins) fanin_buf.push_back(value[f]);
    value[g] = eval_gate_words(gate.type, fanin_buf);
  }
  return value;
}

std::vector<bool> BitSimulator::simulate_single(const Pattern& pattern) const {
  std::vector<std::uint64_t> words(nl_->inputs().size(), 0);
  if (pattern.size() != words.size()) {
    throw std::invalid_argument("BitSimulator: pattern size mismatch");
  }
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    words[i] = pattern[i] ? 1ULL : 0ULL;
  }
  const auto gate_words = simulate(words);
  std::vector<bool> out(gate_words.size());
  for (std::size_t g = 0; g < gate_words.size(); ++g) {
    out[g] = (gate_words[g] & 1ULL) != 0;
  }
  return out;
}

std::vector<std::uint64_t> BitSimulator::pack(
    std::span<const Pattern> patterns) const {
  if (patterns.size() > 64) {
    throw std::invalid_argument("BitSimulator: more than 64 patterns");
  }
  std::vector<std::uint64_t> words(nl_->inputs().size(), 0);
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    if (patterns[k].size() != words.size()) {
      throw std::invalid_argument("BitSimulator: pattern size mismatch");
    }
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (patterns[k][i]) words[i] |= (1ULL << k);
    }
  }
  return words;
}

std::vector<bool> BitSimulator::output_values(
    std::span<const std::uint64_t> gate_words, unsigned bit) const {
  std::vector<bool> out;
  out.reserve(nl_->outputs().size());
  for (const GateId o : nl_->outputs()) {
    out.push_back((gate_words[o] >> bit) & 1ULL);
  }
  return out;
}

}  // namespace sddd::logicsim
