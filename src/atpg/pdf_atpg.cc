#include "atpg/pdf_atpg.h"

#include <algorithm>
#include <stdexcept>

#include "logicsim/ternary.h"
#include "paths/transition_graph.h"

namespace sddd::atpg {

using logicsim::Pattern;
using logicsim::PatternPair;
using logicsim::Tern;
using logicsim::TernarySimulator;
using netlist::ArcId;
using netlist::CellType;
using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;
using paths::Path;

PathDelayAtpg::PathDelayAtpg(const Netlist& nl,
                             const netlist::Levelization& lev)
    : nl_(&nl), lev_(&lev), sim_(nl, lev), podem_(nl, lev) {}

namespace {

/// Side pins of an on-path gate: every fanin pin except the on-path one.
std::vector<std::uint32_t> side_pins(const Gate& gate, std::uint32_t on_pin) {
  std::vector<std::uint32_t> pins;
  for (std::uint32_t p = 0; p < gate.fanins.size(); ++p) {
    if (p != on_pin) pins.push_back(p);
  }
  return pins;
}

Pattern fill_pattern(const std::vector<Tern>& tern, stats::Rng& rng) {
  Pattern p(tern.size());
  for (std::size_t i = 0; i < tern.size(); ++i) {
    p[i] = tern[i] == Tern::kX ? rng.bernoulli(0.5) : (tern[i] == Tern::k1);
  }
  return p;
}

}  // namespace

std::optional<SensitizedTemplates> PathDelayAtpg::sensitize(
    const Path& path, bool rising_at_origin, bool robust,
    std::size_t max_backtracks) const {
  const Netlist& nl = *nl_;
  if (!paths::is_valid_path(nl, path)) {
    throw std::invalid_argument("PathDelayAtpg: invalid path");
  }
  const GateId origin = paths::path_source(nl, path);
  if (nl.gate(origin).type != CellType::kInput) {
    return std::nullopt;  // paths must launch from a (pseudo) primary input
  }
  std::int32_t origin_pos = -1;
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    if (nl.inputs()[i] == origin) origin_pos = static_cast<std::int32_t>(i);
  }
  if (origin_pos < 0) return std::nullopt;

  // --- Final vector v2: static sensitization objectives. ---
  std::vector<Objective> v2_obj;
  for (const ArcId a : path.arcs) {
    const auto& arc = nl.arc(a);
    const Gate& gate = nl.gate(arc.gate);
    if (has_controlling_value(gate.type)) {
      const bool noncontrolling = !controlling_value(gate.type);
      for (const std::uint32_t p : side_pins(gate, arc.pin)) {
        v2_obj.push_back(Objective{gate.fanins[p], noncontrolling});
      }
    }
    // XOR-family side inputs are unconstrained for static sensitization.
  }
  std::vector<Tern> pre2(nl.inputs().size(), Tern::kX);
  pre2[static_cast<std::size_t>(origin_pos)] =
      rising_at_origin ? Tern::k1 : Tern::k0;
  const auto sol2 = podem_.solve(v2_obj, max_backtracks, pre2);
  if (!sol2) return std::nullopt;

  // Final on-path values under v2 (needed for the robust launch
  // conditions): one ternary sweep of the solved assignment.
  const TernarySimulator tsim(nl, *lev_);
  const auto val2 = tsim.simulate(sol2->pi_values);

  // --- Launch vector v1. ---
  std::vector<Objective> v1_obj;
  if (robust) {
    for (const ArcId a : path.arcs) {
      const auto& arc = nl.arc(a);
      const Gate& gate = nl.gate(arc.gate);
      const GateId on_input = gate.fanins[arc.pin];
      if (has_controlling_value(gate.type)) {
        const bool ctrl = controlling_value(gate.type);
        // When the on-path input settles at non-controlling, a side glitch
        // through the controlling value could retrigger the output: side
        // inputs must be steady non-controlling.
        const bool settles_noncontrolling = val2[on_input] == (ctrl ? Tern::k0 : Tern::k1);
        if (settles_noncontrolling || val2[on_input] == Tern::kX) {
          for (const std::uint32_t p : side_pins(gate, arc.pin)) {
            v1_obj.push_back(Objective{gate.fanins[p], !ctrl});
          }
        }
      } else if (gate.type == CellType::kXor || gate.type == CellType::kXnor) {
        // Robust XOR propagation needs steady side inputs: pin them in v1
        // to their (definite) v2 values.
        for (const std::uint32_t p : side_pins(gate, arc.pin)) {
          const GateId f = gate.fanins[p];
          if (val2[f] != Tern::kX) {
            v1_obj.push_back(Objective{f, val2[f] == Tern::k1});
          }
        }
      }
    }
  }
  std::vector<Tern> pre1(nl.inputs().size(), Tern::kX);
  pre1[static_cast<std::size_t>(origin_pos)] =
      rising_at_origin ? Tern::k0 : Tern::k1;
  const auto sol1 = podem_.solve(v1_obj, max_backtracks, pre1);
  if (!sol1) return std::nullopt;

  return SensitizedTemplates{sol1->pi_values, sol2->pi_values};
}

std::optional<PathDelayTest> PathDelayAtpg::generate(
    const Path& path, bool rising_at_origin, bool robust,
    stats::Rng& fill_rng, std::size_t fill_retries,
    std::size_t max_backtracks) const {
  const auto templates =
      sensitize(path, rising_at_origin, robust, max_backtracks);
  if (!templates) return std::nullopt;

  // --- Fill unconstrained PIs; prefer fills that truly activate the path.
  PathDelayTest best;
  best.path = path;
  best.rising_at_origin = rising_at_origin;
  best.robust = robust;
  for (std::size_t attempt = 0; attempt < std::max<std::size_t>(fill_retries, 1);
       ++attempt) {
    Pattern v2 = fill_pattern(templates->v2, fill_rng);
    Pattern v1(v2.size());
    for (std::size_t i = 0; i < v1.size(); ++i) {
      const Tern t = templates->v1[i];
      if (t != Tern::kX) {
        v1[i] = (t == Tern::k1);
      } else if (robust) {
        v1[i] = v2[i];  // quiet side inputs: minimize launch-side activity
      } else {
        v1[i] = fill_rng.bernoulli(0.5);
      }
    }
    PatternPair pattern{std::move(v1), std::move(v2)};
    const bool ok = activates(path, pattern);
    if (attempt == 0 || ok) best.pattern = std::move(pattern);
    if (ok) return best;
  }
  // No fill activated the whole path (multi-path sensitization effects);
  // return the last candidate anyway - the dynamic simulator downstream
  // will see whatever it truly induces, mirroring the paper's use of
  // logic-only ATPG.
  return best;
}

bool PathDelayAtpg::activates(const Path& path,
                              const PatternPair& pattern) const {
  const paths::TransitionGraph tg(sim_, *lev_, pattern);
  return std::all_of(path.arcs.begin(), path.arcs.end(),
                     [&](ArcId a) { return tg.is_active(a); });
}

PatternPair random_pattern_pair(std::size_t n_inputs, stats::Rng& rng) {
  PatternPair p;
  p.v1.resize(n_inputs);
  p.v2.resize(n_inputs);
  for (std::size_t i = 0; i < n_inputs; ++i) {
    p.v1[i] = rng.bernoulli(0.5);
    p.v2[i] = rng.bernoulli(0.5);
  }
  return p;
}

}  // namespace sddd::atpg
