// pdf_atpg.h - Path-delay-fault test generation (Section G / H-4).
//
// Given a structural PI-to-PO path and a transition polarity at its origin,
// generates a two-vector test (v1, v2) that sensitizes the path:
//
//   - non-robust: every side input of every on-path gate holds its
//     non-controlling value under the final vector v2 (static
//     sensitization); the launch vector v1 only toggles the path origin;
//   - robust: additionally, wherever the on-path input transitions TO its
//     non-controlling value, the side inputs must be steady non-controlling
//     across both vectors (so no side glitch can mask or launch early);
//     XOR-family side inputs must be steady in both vectors.
//
// As in the paper, no timing information is used during generation ("tests
// ... derived without considering timing"); the statistical dynamic timing
// simulation downstream decides what the test really exercises.  Leftover
// unspecified PIs are random-filled (seeded), with optional re-tries until
// the produced pattern really activates the target path under the
// transition-mode sensitization semantics, and an optional GA fill (see
// ga_fill.h) that maximizes the launched path length instead.
#pragma once

#include <optional>

#include "atpg/podem.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "paths/path.h"
#include "stats/rng.h"

namespace sddd::atpg {

/// One generated delay test and its provenance.
struct PathDelayTest {
  logicsim::PatternPair pattern;
  paths::Path path;
  bool rising_at_origin = false;
  bool robust = false;
};

/// Ternary launch/capture templates for a sensitized path: X positions are
/// free for fill (random or GA).
struct SensitizedTemplates {
  std::vector<logicsim::Tern> v1;
  std::vector<logicsim::Tern> v2;
};

class PathDelayAtpg {
 public:
  PathDelayAtpg(const netlist::Netlist& nl, const netlist::Levelization& lev);

  /// Solves the sensitization objectives only (no fill): the PODEM half of
  /// generate().  Exposed so alternative fill strategies (ga_fill.h) can
  /// start from the same templates.
  std::optional<SensitizedTemplates> sensitize(
      const paths::Path& path, bool rising_at_origin, bool robust,
      std::size_t max_backtracks = 2000) const;

  /// Generates a test for `path` with the given origin transition, or
  /// nullopt when the sensitization objectives are unsatisfiable within
  /// the backtrack budget.  `fill_rng` fills unconstrained PIs; up to
  /// `fill_retries` fills are tried, preferring one under which the whole
  /// path is active in the transition graph.
  std::optional<PathDelayTest> generate(const paths::Path& path,
                                        bool rising_at_origin, bool robust,
                                        stats::Rng& fill_rng,
                                        std::size_t fill_retries = 8,
                                        std::size_t max_backtracks = 2000) const;

  /// True when every arc of `path` is active under `pattern` (the test
  /// launches a transition down the entire path).
  bool activates(const paths::Path& path,
                 const logicsim::PatternPair& pattern) const;

 private:
  const netlist::Netlist* nl_;
  const netlist::Levelization* lev_;
  logicsim::BitSimulator sim_;
  Podem podem_;
};

/// Uniformly random two-vector pattern (every PI random in both vectors).
logicsim::PatternPair random_pattern_pair(std::size_t n_inputs,
                                          stats::Rng& rng);

}  // namespace sddd::atpg
