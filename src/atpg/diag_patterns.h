// diag_patterns.h - Diagnostic pattern-set construction (Section H-4).
//
// "For the injected fault and circuit instance, we find a set of 'longest'
// paths through the fault site and generate path delay tests for them.  The
// longest paths are derived using false-path aware static statistical
// timing analysis.  Paths are tested with robust or non-robust patterns
// derived without considering timing."
//
// The produced set mirrors that recipe: per fault site, tests for the K
// statistically longest structural paths through the site (robust when
// attainable, falling back to non-robust), both transition polarities,
// topped up with random two-vector patterns for breadth.  The paper's
// experiments use |TP| < 20.
#pragma once

#include <vector>

#include "atpg/pdf_atpg.h"
#include "netlist/levelize.h"
#include "stats/rng.h"
#include "timing/delay_model.h"

namespace sddd::atpg {

struct DiagnosticPatternConfig {
  std::size_t paths_per_site = 4;   ///< sensitizable longest paths to test
  /// Structurally heaviest candidate paths examined before giving up on
  /// finding paths_per_site sensitizable ones.  The heaviest structural
  /// paths are frequently false (reconvergence); this is the
  /// "false-path-aware ... efficient path selection" role of [17].
  std::size_t candidate_paths = 32;
  bool try_robust = true;           ///< prefer robust tests, fall back
  /// Random-search site tests: random two-vector patterns filtered for
  /// "site arc active", ranked by the nominal delay they launch through
  /// the site.  Complements PODEM when the structural long paths through a
  /// site are false (common under heavy reconvergence).
  std::size_t site_search_patterns = 4;
  std::size_t site_search_tries = 160;
  std::size_t random_patterns = 4;  ///< breadth top-up
  std::size_t max_patterns = 20;    ///< |TP| cap (paper: < 20)
};

/// Generates the diagnostic pattern set for a fault site.  Deterministic
/// given `rng`'s state.  Duplicate patterns are removed.
std::vector<logicsim::PatternPair> generate_diagnostic_patterns(
    const timing::ArcDelayModel& model, const netlist::Levelization& lev,
    netlist::ArcId site, const DiagnosticPatternConfig& config,
    stats::Rng& rng);

/// Random-search component only: up to `count` patterns under which `site`
/// is active, chosen among `tries` random two-vector patterns as the ones
/// launching the longest nominal delay through the site's gate.  Exposed
/// for tests and the ablation bench.
std::vector<logicsim::PatternPair> site_activating_patterns(
    const timing::ArcDelayModel& model, const netlist::Levelization& lev,
    netlist::ArcId site, std::size_t count, std::size_t tries,
    stats::Rng& rng);

/// Best nominal (mean-delay) output arrival the pattern set launches
/// *through* `site`: max over patterns that activate the site of the
/// latest toggling output in the site's active fan-out cone.  0 when no
/// pattern exercises the site.  This is the detectability yardstick: a
/// delay defect at the site can only be observed if this delay plus the
/// defect reaches the cut-off period.
double site_best_nominal_delay(
    const timing::ArcDelayModel& model, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> patterns, netlist::ArcId site);

}  // namespace sddd::atpg
