#include "atpg/diag_patterns.h"

#include <algorithm>
#include <span>

#include "paths/path_enum.h"
#include "paths/transition_graph.h"
#include "timing/dynamic_sim.h"

namespace sddd::atpg {

using logicsim::PatternPair;
using netlist::ArcId;

namespace {

/// Sensitization is typically easy or impossible; a small backtrack budget
/// keeps the UNSAT (false path) proofs from dominating pattern generation.
constexpr std::size_t kSensitizeBacktracks = 300;

bool same_pattern(const PatternPair& a, const PatternPair& b) {
  return a.v1 == b.v1 && a.v2 == b.v2;
}

void push_unique(std::vector<PatternPair>& set, PatternPair p,
                 std::size_t cap) {
  if (set.size() >= cap) return;
  for (const auto& q : set) {
    if (same_pattern(p, q)) return;
  }
  set.push_back(std::move(p));
}

}  // namespace

std::vector<PatternPair> generate_diagnostic_patterns(
    const timing::ArcDelayModel& model, const netlist::Levelization& lev,
    ArcId site, const DiagnosticPatternConfig& config, stats::Rng& rng) {
  const auto& nl = model.netlist();
  std::vector<PatternPair> set;

  // Heaviest-first candidate scan with a sensitizability filter: many of
  // the structurally heaviest paths are false, so keep pulling candidates
  // until paths_per_site *testable* ones produced patterns.
  const auto candidates = paths::k_heaviest_paths_through(
      nl, lev, model.means(), site,
      std::max(config.candidate_paths, config.paths_per_site));

  const PathDelayAtpg atpg(nl, lev);
  std::size_t tested_paths = 0;
  for (const auto& path : candidates) {
    if (tested_paths >= config.paths_per_site) break;
    bool any_polarity = false;
    for (const bool rising : {true, false}) {
      // Non-robust (static sensitization) first: its objectives are a
      // subset of the robust ones, so a non-robust UNSAT proves the path
      // false for this polarity and the (costlier) robust attempt can be
      // skipped entirely.  Most of the structurally heaviest candidates
      // are false paths; this ordering is what keeps ATPG cheap.
      std::optional<PathDelayTest> test =
          atpg.generate(path, rising, /*robust=*/false, rng, 8,
                        kSensitizeBacktracks);
      if (test && !atpg.activates(path, test->pattern)) test.reset();
      if (test && config.try_robust) {
        auto robust = atpg.generate(path, rising, /*robust=*/true, rng, 8,
                                    kSensitizeBacktracks);
        if (robust && atpg.activates(path, robust->pattern)) {
          test = std::move(robust);
        }
      }
      if (test) {
        any_polarity = true;
        push_unique(set, std::move(test->pattern), config.max_patterns);
      }
      if (set.size() >= config.max_patterns) return set;
    }
    tested_paths += any_polarity ? 1U : 0U;
  }

  // Random-search fallback/complement: patterns that provably exercise the
  // site, ranked by launched nominal delay.
  if (config.site_search_patterns > 0 && set.size() < config.max_patterns) {
    for (auto& p : site_activating_patterns(model, lev, site,
                                            config.site_search_patterns,
                                            config.site_search_tries, rng)) {
      push_unique(set, std::move(p), config.max_patterns);
    }
  }

  for (std::size_t i = 0;
       i < config.random_patterns && set.size() < config.max_patterns; ++i) {
    push_unique(set, random_pattern_pair(nl.inputs().size(), rng),
                config.max_patterns);
  }
  return set;
}

std::vector<PatternPair> site_activating_patterns(
    const timing::ArcDelayModel& model, const netlist::Levelization& lev,
    netlist::ArcId site, std::size_t count, std::size_t tries,
    stats::Rng& rng) {
  const auto& nl = model.netlist();
  const logicsim::BitSimulator sim(nl, lev);
  const netlist::GateId site_gate = nl.arc(site).gate;
  const netlist::GateId site_src = nl.gate(site_gate).fanins[nl.arc(site).pin];
  const std::size_t n_pi = nl.inputs().size();

  struct Scored {
    PatternPair pattern;
    double score;
  };
  std::vector<Scored> kept;

  // Bit-parallel pre-screen: simulate 64 candidate pairs per sweep and
  // discard those where the site's source or sink net does not even
  // toggle (a necessary condition for the arc being active).  Only the
  // survivors pay for a TransitionGraph and nominal timing.
  std::vector<PatternPair> batch(std::min<std::size_t>(64, tries));
  for (std::size_t done = 0; done < tries; done += batch.size()) {
    const std::size_t width = std::min(batch.size(), tries - done);
    std::vector<std::uint64_t> w1(n_pi, 0);
    std::vector<std::uint64_t> w2(n_pi, 0);
    for (std::size_t b = 0; b < width; ++b) {
      batch[b] = random_pattern_pair(n_pi, rng);
      for (std::size_t i = 0; i < n_pi; ++i) {
        if (batch[b].v1[i]) w1[i] |= (1ULL << b);
        if (batch[b].v2[i]) w2[i] |= (1ULL << b);
      }
    }
    const auto g1 = sim.simulate(w1);
    const auto g2 = sim.simulate(w2);
    const std::uint64_t src_toggle = g1[site_src] ^ g2[site_src];
    const std::uint64_t gate_toggle = g1[site_gate] ^ g2[site_gate];
    std::uint64_t survivors = src_toggle & gate_toggle;
    if (width < 64) survivors &= (1ULL << width) - 1;
    while (survivors != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctzll(survivors));
      survivors &= survivors - 1;
      PatternPair& p = batch[b];
      const paths::TransitionGraph tg(sim, lev, p);
      if (!tg.is_active(site)) continue;
      // Score: the nominal delay launched through the site plus the
      // deepest arrival it can still influence downstream - prefer tests
      // where the site sits on a long exercised path reaching an output.
      const auto arr = timing::nominal_arrivals(tg, model, lev);
      double down = 0.0;
      for (const netlist::GateId o : nl.outputs()) {
        if (tg.toggles(o)) down = std::max(down, arr[o]);
      }
      kept.push_back(Scored{p, arr[site_gate] + down});
    }
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });
  std::vector<PatternPair> out;
  for (auto& s : kept) {
    if (out.size() >= count) break;
    bool dup = false;
    for (const auto& q : out) dup |= same_pattern(s.pattern, q);
    if (!dup) out.push_back(std::move(s.pattern));
  }
  return out;
}

double site_best_nominal_delay(
    const timing::ArcDelayModel& model, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> patterns, netlist::ArcId site) {
  const auto& nl = model.netlist();
  const logicsim::BitSimulator sim(nl, lev);
  const netlist::GateId site_gate = nl.arc(site).gate;
  double best = 0.0;
  for (const auto& p : patterns) {
    const paths::TransitionGraph tg(sim, lev, p);
    if (!tg.is_active(site)) continue;
    const auto arr = timing::nominal_arrivals(tg, model, lev);
    for (const netlist::GateId g : tg.forward_cone(site_gate)) {
      if (nl.output_index(g) >= 0 && tg.toggles(g)) {
        best = std::max(best, arr[g]);
      }
    }
  }
  return best;
}

}  // namespace sddd::atpg
