#include "atpg/scan_modes.h"

#include <stdexcept>

namespace sddd::atpg {

using logicsim::Pattern;
using logicsim::PatternPair;
using netlist::GateId;
using netlist::Netlist;

ScanChain chain_from_transform(const Netlist& core,
                               std::size_t original_pi_count) {
  if (original_pi_count > core.inputs().size()) {
    throw std::invalid_argument("chain_from_transform: PI count too large");
  }
  // In a .bench netlist the INPUT() declarations precede every gate, so
  // full_scan_transform (which preserves gate-id order) lists all original
  // PIs before any DFF pseudo-PI: the chain is simply the tail of
  // inputs().  For netlists built differently, construct the struct by
  // hand from the flop names.
  ScanChain chain;
  for (std::size_t i = original_pi_count; i < core.inputs().size(); ++i) {
    chain.chain_positions.push_back(i);
  }
  return chain;
}

std::vector<GateId> capture_map_from_transform(const Netlist& core,
                                               std::size_t original_po_count,
                                               std::size_t n_flops) {
  if (original_po_count + n_flops > core.outputs().size()) {
    throw std::invalid_argument("capture_map_from_transform: count mismatch");
  }
  std::vector<GateId> map;
  for (std::size_t i = 0; i < n_flops; ++i) {
    map.push_back(core.outputs()[original_po_count + i]);
  }
  return map;
}

PatternPair constrained_pattern_pair(const Netlist& core,
                                     const netlist::Levelization& lev,
                                     const ScanChain& chain, ScanMode mode,
                                     stats::Rng& rng,
                                     std::span<const GateId> capture_map) {
  const std::size_t n = core.inputs().size();
  PatternPair pair;
  pair.v1.resize(n);
  pair.v2.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    pair.v1[i] = rng.bernoulli(0.5);
    pair.v2[i] = rng.bernoulli(0.5);
  }
  switch (mode) {
    case ScanMode::kEnhancedScan:
      break;
    case ScanMode::kLaunchOnShift: {
      // v2's chain = v1's chain shifted one position toward scan-out;
      // the freed scan-in position takes a fresh random bit.
      for (std::size_t i = chain.chain_positions.size(); i-- > 1;) {
        pair.v2[chain.chain_positions[i]] =
            pair.v1[chain.chain_positions[i - 1]];
      }
      if (!chain.chain_positions.empty()) {
        pair.v2[chain.chain_positions.front()] = rng.bernoulli(0.5);
      }
      break;
    }
    case ScanMode::kLaunchOnCapture: {
      if (capture_map.size() != chain.chain_positions.size()) {
        throw std::invalid_argument(
            "constrained_pattern_pair: capture_map size mismatch");
      }
      const logicsim::BitSimulator sim(core, lev);
      const auto values = sim.simulate_single(pair.v1);
      for (std::size_t i = 0; i < chain.chain_positions.size(); ++i) {
        pair.v2[chain.chain_positions[i]] = values[capture_map[i]];
      }
      break;
    }
  }
  return pair;
}

bool pair_obeys_mode(const PatternPair& pair, const Netlist& core,
                     const netlist::Levelization& lev, const ScanChain& chain,
                     ScanMode mode, std::span<const GateId> capture_map) {
  switch (mode) {
    case ScanMode::kEnhancedScan:
      return true;
    case ScanMode::kLaunchOnShift: {
      for (std::size_t i = 1; i < chain.chain_positions.size(); ++i) {
        if (pair.v2[chain.chain_positions[i]] !=
            pair.v1[chain.chain_positions[i - 1]]) {
          return false;
        }
      }
      return true;
    }
    case ScanMode::kLaunchOnCapture: {
      if (capture_map.size() != chain.chain_positions.size()) return false;
      const logicsim::BitSimulator sim(core, lev);
      const auto values = sim.simulate_single(pair.v1);
      for (std::size_t i = 0; i < chain.chain_positions.size(); ++i) {
        if (pair.v2[chain.chain_positions[i]] !=
            static_cast<bool>(values[capture_map[i]])) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace sddd::atpg
