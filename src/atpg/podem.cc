#include "atpg/podem.h"

#include <stdexcept>

namespace sddd::atpg {

using logicsim::Tern;
using netlist::CellType;
using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;

Podem::Podem(const Netlist& nl, const netlist::Levelization& lev)
    : nl_(&nl), lev_(&lev), sim_(nl, lev) {
  input_index_.assign(nl.gate_count(), -1);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    input_index_[nl.inputs()[i]] = static_cast<std::int32_t>(i);
  }
}

namespace {

Tern from_bool(bool b) { return b ? Tern::k1 : Tern::k0; }

/// Status of an objective set under the current simulation values.
enum class Status { kSatisfied, kConflict, kOpen };

Status check(std::span<const Objective> objectives,
             const std::vector<Tern>& values, const Objective** first_open) {
  Status st = Status::kSatisfied;
  *first_open = nullptr;
  for (const Objective& obj : objectives) {
    const Tern v = values[obj.gate];
    if (v == Tern::kX) {
      if (*first_open == nullptr) *first_open = &obj;
      st = Status::kOpen;
    } else if ((v == Tern::k1) != obj.value) {
      return Status::kConflict;
    }
  }
  return st;
}

/// Event-driven incremental implication: assigning one PI re-evaluates only
/// its affected fan-out cone, in level order, recording every changed gate
/// on a trail so the assignment can be undone in O(changes).  This is what
/// makes PODEM affordable on the multi-thousand-gate circuits: the naive
/// alternative (full resimulation per decision) costs O(|V|) per backtrack.
class EventSim {
 public:
  EventSim(const Netlist& nl, const netlist::Levelization& lev)
      : nl_(&nl),
        lev_(&lev),
        values_(nl.gate_count(), Tern::kX),
        queued_(nl.gate_count(), false),
        buckets_(lev.depth() + 1) {}

  const std::vector<Tern>& values() const { return values_; }

  /// Re-initializes all values from a full PI assignment (one full sweep;
  /// used once per solve call).
  void reset(const std::vector<Tern>& pi_values) {
    const Netlist& nl = *nl_;
    std::fill(values_.begin(), values_.end(), Tern::kX);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      values_[nl.inputs()[i]] = pi_values[i];
    }
    std::vector<Tern> fanin_buf;
    for (const GateId g : lev_->topo_order()) {
      const Gate& gate = nl.gate(g);
      if (!is_combinational(gate.type)) continue;
      fanin_buf.clear();
      for (const GateId f : gate.fanins) fanin_buf.push_back(values_[f]);
      values_[g] = eval_gate_tern(gate.type, fanin_buf);
    }
  }

  /// One (gate, previous value) undo record.
  using Trail = std::vector<std::pair<GateId, Tern>>;

  /// Sets PI `pi` to `v` and propagates.  Changed gates (including the PI)
  /// are appended to `trail`.
  void assign(GateId pi, Tern v, Trail& trail) {
    if (values_[pi] == v) return;
    trail.emplace_back(pi, values_[pi]);
    values_[pi] = v;
    schedule_fanouts(pi);
    propagate(trail);
  }

  /// Reverts the values recorded after `mark` (in reverse order).
  void undo(Trail& trail, std::size_t mark) {
    while (trail.size() > mark) {
      values_[trail.back().first] = trail.back().second;
      trail.pop_back();
    }
  }

 private:
  void schedule_fanouts(GateId g) {
    for (const GateId fo : nl_->gate(g).fanouts) {
      if (!queued_[fo] && is_combinational(nl_->gate(fo).type)) {
        queued_[fo] = true;
        buckets_[lev_->level(fo)].push_back(fo);
      }
    }
  }

  void propagate(Trail& trail) {
    std::vector<Tern> fanin_buf;
    for (std::uint32_t lvl = 1; lvl < buckets_.size(); ++lvl) {
      auto& bucket = buckets_[lvl];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const GateId g = bucket[i];
        queued_[g] = false;
        const Gate& gate = nl_->gate(g);
        fanin_buf.clear();
        for (const GateId f : gate.fanins) fanin_buf.push_back(values_[f]);
        const Tern next = eval_gate_tern(gate.type, fanin_buf);
        if (next != values_[g]) {
          trail.emplace_back(g, values_[g]);
          values_[g] = next;
          schedule_fanouts(g);
        }
      }
      bucket.clear();
    }
  }

  const Netlist* nl_;
  const netlist::Levelization* lev_;
  std::vector<Tern> values_;
  std::vector<bool> queued_;
  std::vector<std::vector<GateId>> buckets_;
};

}  // namespace

std::optional<PodemResult> Podem::solve(
    std::span<const Objective> objectives, std::size_t max_backtracks,
    std::span<const Tern> pre_assigned) const {
  const Netlist& nl = *nl_;
  for (const Objective& obj : objectives) {
    if (obj.gate >= nl.gate_count()) {
      throw std::invalid_argument("Podem: objective gate out of range");
    }
  }
  std::vector<Tern> pi(nl.inputs().size(), Tern::kX);
  if (!pre_assigned.empty()) {
    if (pre_assigned.size() != pi.size()) {
      throw std::invalid_argument("Podem: pre_assigned size mismatch");
    }
    pi.assign(pre_assigned.begin(), pre_assigned.end());
  }

  EventSim esim(nl, *lev_);
  esim.reset(pi);
  EventSim::Trail trail;
  std::size_t backtracks = 0;

  // Backtrace an open objective through X-valued gates to an unassigned PI,
  // returning (pi position, value to try).
  const auto backtrace = [&](const Objective& obj)
      -> std::optional<std::pair<std::size_t, bool>> {
    const auto& values = esim.values();
    GateId g = obj.gate;
    bool v = obj.value;
    for (std::size_t guard = 0; guard <= nl.gate_count(); ++guard) {
      if (input_index_[g] >= 0) {
        if (pi[static_cast<std::size_t>(input_index_[g])] != Tern::kX) {
          return std::nullopt;  // objective hinges on an already-pinned PI
        }
        return std::make_pair(static_cast<std::size_t>(input_index_[g]), v);
      }
      const Gate& gate = nl.gate(g);
      if (!is_combinational(gate.type) || gate.fanins.empty()) {
        return std::nullopt;  // constant or undriven: cannot influence
      }
      // Map the required output value to a required input value and pick
      // an X input to pursue.
      GateId next = netlist::kInvalidGate;
      bool next_v = v;
      switch (gate.type) {
        case CellType::kBuf:
          next = gate.fanins[0];
          next_v = v;
          break;
        case CellType::kNot:
          next = gate.fanins[0];
          next_v = !v;
          break;
        case CellType::kAnd:
        case CellType::kNand:
        case CellType::kOr:
        case CellType::kNor: {
          const bool ctrl = controlling_value(gate.type);
          const bool inv = is_inverting(gate.type);
          // Output value when a controlling input is present:
          //   AND -> 0, NAND -> 1, OR -> 1, NOR -> 0.
          const bool out_if_ctrl = inv ? !ctrl : ctrl;
          const bool need_some_ctrl = (v == out_if_ctrl);
          const bool want = need_some_ctrl ? ctrl : !ctrl;
          for (const GateId f : gate.fanins) {
            if (values[f] == Tern::kX) {
              next = f;
              next_v = want;
              break;
            }
          }
          break;
        }
        case CellType::kXor:
        case CellType::kXnor: {
          // Choose any X input; aim for the parity completion when all
          // other inputs are definite, else default to 0.
          bool parity = (gate.type == CellType::kXnor);
          bool all_definite = true;
          GateId x_input = netlist::kInvalidGate;
          for (const GateId f : gate.fanins) {
            if (values[f] == Tern::kX) {
              if (x_input == netlist::kInvalidGate) {
                x_input = f;
              } else {
                all_definite = false;
              }
            } else {
              parity ^= (values[f] == Tern::k1);
            }
          }
          next = x_input;
          next_v = (all_definite && x_input != netlist::kInvalidGate)
                       ? (parity ^ v)
                       : false;
          break;
        }
        default:
          return std::nullopt;
      }
      if (next == netlist::kInvalidGate) return std::nullopt;
      g = next;
      v = next_v;
    }
    return std::nullopt;
  };

  // Depth-first decision search on PIs with event-driven implication.
  const auto search = [&](auto&& self) -> bool {
    const Objective* open = nullptr;
    switch (check(objectives, esim.values(), &open)) {
      case Status::kConflict:
        return false;
      case Status::kSatisfied:
        return true;
      case Status::kOpen:
        break;
    }
    const auto decision = backtrace(*open);
    if (!decision) return false;
    const auto [pos, first_try] = *decision;
    const GateId pi_gate = nl.inputs()[pos];
    for (const bool val : {first_try, !first_try}) {
      const std::size_t mark = trail.size();
      pi[pos] = from_bool(val);
      esim.assign(pi_gate, from_bool(val), trail);
      if (self(self)) return true;
      esim.undo(trail, mark);
      pi[pos] = Tern::kX;
      if (++backtracks > max_backtracks) return false;
    }
    return false;
  };

  if (!search(search)) return std::nullopt;
  PodemResult result;
  result.pi_values = std::move(pi);
  result.backtracks = backtracks;
  return result;
}

}  // namespace sddd::atpg
