// ga_fill.h - Genetic-algorithm pattern fill (Section G, second option).
//
// "Another possibility could be to use Genetic Algorithm based ATPG
// techniques that can generate tests resulting in longer path delays based
// on a fitness function.  After assigning the mandatory values to sensitize
// a given path, usually there are still many unspecified values at the
// primary inputs.  Different assignments of these unspecified values can
// result in different path delays."
//
// This module implements exactly that: starting from the ternary templates
// of PathDelayAtpg::sensitize(), a GA searches over the unspecified PI bits
// of both vectors.  Fitness of a candidate fill is the nominal (mean-delay)
// arrival time at the target path's sink under the transition-mode
// semantics, plus a dominant bonus for actually activating every arc of the
// target path - so the GA first fights for activation, then stretches the
// launched delay.
#pragma once

#include <cstdint>

#include "atpg/pdf_atpg.h"
#include "netlist/levelize.h"
#include "stats/rng.h"
#include "timing/delay_model.h"

namespace sddd::atpg {

struct GaFillConfig {
  std::size_t population = 24;
  std::size_t generations = 30;
  double mutation_rate = 0.04;
  std::size_t elite = 2;
  std::size_t tournament = 3;
};

class GaFill {
 public:
  GaFill(const timing::ArcDelayModel& model, const netlist::Levelization& lev);

  /// Fills the templates' X bits to maximize the fitness described above.
  /// Deterministic given `rng`'s state.  Returns the best pattern found and
  /// its fitness.
  struct Result {
    logicsim::PatternPair pattern;
    double fitness = 0.0;
    bool path_activated = false;
  };
  Result fill(const paths::Path& target, const SensitizedTemplates& templates,
              stats::Rng& rng, const GaFillConfig& config = {}) const;

  /// Fitness of one concrete pattern for `target` (exposed for tests and
  /// the ablation bench): nominal sink arrival + activation bonus.
  double fitness(const paths::Path& target,
                 const logicsim::PatternPair& pattern) const;

 private:
  const timing::ArcDelayModel* model_;
  const netlist::Levelization* lev_;
  logicsim::BitSimulator sim_;
};

}  // namespace sddd::atpg
