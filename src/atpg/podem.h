// podem.h - PODEM-style single-vector objective satisfaction.
//
// The path-delay-fault ATPG (Section G: tests "generated based purely on
// logic path sensitization conditions") reduces each vector of a two-vector
// test to a set of (gate, value) objectives - e.g. "every side input of the
// targeted path holds its non-controlling value".  This module solves such
// objective sets with the classic PODEM search: decisions are made only on
// primary inputs, objectives are backtraced through X-paths, and
// contradictions backtrack with a bounded budget.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "logicsim/ternary.h"
#include "netlist/levelize.h"
#include "netlist/netlist.h"

namespace sddd::atpg {

/// A required logic value on a gate's output.
struct Objective {
  netlist::GateId gate = netlist::kInvalidGate;
  bool value = false;
};

/// Result of a PODEM run: PI values (kX = unconstrained, free for fill).
struct PodemResult {
  std::vector<logicsim::Tern> pi_values;  ///< indexed like Netlist::inputs()
  std::size_t backtracks = 0;
};

class Podem {
 public:
  Podem(const netlist::Netlist& nl, const netlist::Levelization& lev);

  /// Finds PI values satisfying every objective simultaneously, or
  /// std::nullopt when the budget is exhausted / the objectives are
  /// unsatisfiable within it.  `pre_assigned` (optional, indexed like
  /// inputs()) pins some PIs before the search - used to couple the two
  /// vectors of a delay test.
  std::optional<PodemResult> solve(
      std::span<const Objective> objectives, std::size_t max_backtracks = 2000,
      std::span<const logicsim::Tern> pre_assigned = {}) const;

 private:
  const netlist::Netlist* nl_;
  const netlist::Levelization* lev_;
  logicsim::TernarySimulator sim_;
  std::vector<std::int32_t> input_index_;  ///< gate id -> PI position or -1
};

}  // namespace sddd::atpg
