// scan_modes.h - Scan-chain application constraints for two-vector tests.
//
// The library's PatternPair abstraction assumes both vectors are freely
// controllable (enhanced scan), which is what the paper's formulation
// needs.  Real scan chains constrain the launch vector:
//
//   - kEnhancedScan: v1 and v2 independent (the default everywhere);
//   - kLaunchOnShift (LOS): v2 is v1 shifted by one position along the
//     scan chain with a fresh scan-in bit - so v1 determines all but one
//     bit of v2;
//   - kLaunchOnCapture (LOC / broadside): v2's pseudo-PI part is the
//     circuit's functional response to v1 (v2_ff = comb(v1)); true PIs
//     remain free.
//
// These utilities generate constrained random pairs and check whether an
// arbitrary pair is applicable under a mode, so experiments can measure
// how much diagnostic power the cheaper scan styles give up.
#pragma once

#include <cstdint>
#include <span>

#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "stats/rng.h"

namespace sddd::atpg {

enum class ScanMode : std::uint8_t {
  kEnhancedScan,
  kLaunchOnShift,
  kLaunchOnCapture,
};

/// Describes which inputs of the (full-scan transformed) netlist are
/// pseudo-PIs fed by the scan chain, in chain order.  Positions index
/// Netlist::inputs().
struct ScanChain {
  std::vector<std::size_t> chain_positions;  ///< scan flops, scan-in first
};

/// Derives the chain from a full-scan transform done by this library:
/// pseudo-PIs are the inputs whose gate name matches a DFF of the original
/// netlist; here we approximate "every input after the original PI count"
/// which holds for full_scan_transform's construction order.  For custom
/// netlists, build the struct by hand.
ScanChain chain_from_transform(const netlist::Netlist& core,
                               std::size_t original_pi_count);

/// Generates a random pattern pair obeying `mode`.
/// kEnhancedScan: both vectors random.
/// kLaunchOnShift: v1 random; v2 = v1 with the chain shifted one position
///   (scan-in bit random); non-chain PIs may still change.
/// kLaunchOnCapture: v1 random; v2's chain bits = the functional values
///   captured from v1 (the D-input values, i.e. the pseudo-PO driving each
///   flop); requires `capture_map` pairing each chain position with its
///   pseudo-PO gate - pass the map built by capture_map_from_transform.
logicsim::PatternPair constrained_pattern_pair(
    const netlist::Netlist& core, const netlist::Levelization& lev,
    const ScanChain& chain, ScanMode mode, stats::Rng& rng,
    std::span<const netlist::GateId> capture_map = {});

/// Pairs chain positions with the pseudo-PO gates that feed the original
/// flops' D pins, using the same construction-order convention as
/// chain_from_transform.  `original_po_count` = PO count before the scan
/// transform.
std::vector<netlist::GateId> capture_map_from_transform(
    const netlist::Netlist& core, std::size_t original_po_count,
    std::size_t n_flops);

/// True when `pair` is applicable under `mode` for the given chain.
bool pair_obeys_mode(const logicsim::PatternPair& pair,
                     const netlist::Netlist& core,
                     const netlist::Levelization& lev, const ScanChain& chain,
                     ScanMode mode,
                     std::span<const netlist::GateId> capture_map = {});

}  // namespace sddd::atpg
