#include "atpg/ga_fill.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "paths/transition_graph.h"
#include "timing/dynamic_sim.h"

namespace sddd::atpg {

using logicsim::Pattern;
using logicsim::PatternPair;
using logicsim::Tern;
using netlist::ArcId;
using netlist::GateId;
using netlist::Netlist;
using paths::Path;
using stats::Rng;

GaFill::GaFill(const timing::ArcDelayModel& model,
               const netlist::Levelization& lev)
    : model_(&model), lev_(&lev), sim_(model.netlist(), lev) {}

namespace {

struct Genome {
  std::vector<bool> bits;  // concatenated fills: v1 X's then v2 X's
  double fitness = -1.0;
};

}  // namespace

double GaFill::fitness(const Path& target, const PatternPair& pattern) const {
  const paths::TransitionGraph tg(sim_, *lev_, pattern);
  std::size_t active = 0;
  for (const ArcId a : target.arcs) active += tg.is_active(a) ? 1U : 0U;
  const bool full = active == target.arcs.size();
  const GateId sink = paths::path_sink(model_->netlist(), target);
  const double arrival =
      std::max(timing::nominal_arrivals(tg, *model_, *lev_)[sink], 0.0);
  // Activation dominates: each active arc is worth more than any arrival
  // difference; a fully active path additionally earns the sink arrival.
  const double arc_unit = model_->mean_cell_delay() *
                          static_cast<double>(target.arcs.size() + 1) * 10.0;
  return static_cast<double>(active) * arc_unit + (full ? arrival : 0.0);
}

GaFill::Result GaFill::fill(const Path& target,
                            const SensitizedTemplates& templates, Rng& rng,
                            const GaFillConfig& config) const {
  const std::size_t n_pi = templates.v1.size();
  if (templates.v2.size() != n_pi) {
    throw std::invalid_argument("GaFill: template size mismatch");
  }
  // Free positions.
  std::vector<std::size_t> free1;
  std::vector<std::size_t> free2;
  for (std::size_t i = 0; i < n_pi; ++i) {
    if (templates.v1[i] == Tern::kX) free1.push_back(i);
    if (templates.v2[i] == Tern::kX) free2.push_back(i);
  }
  const std::size_t n_bits = free1.size() + free2.size();

  const auto express = [&](const Genome& g) {
    PatternPair p;
    p.v1.resize(n_pi);
    p.v2.resize(n_pi);
    for (std::size_t i = 0; i < n_pi; ++i) {
      p.v1[i] = templates.v1[i] == Tern::k1;
      p.v2[i] = templates.v2[i] == Tern::k1;
    }
    for (std::size_t j = 0; j < free1.size(); ++j) p.v1[free1[j]] = g.bits[j];
    for (std::size_t j = 0; j < free2.size(); ++j) {
      p.v2[free2[j]] = g.bits[free1.size() + j];
    }
    return p;
  };

  std::vector<Genome> pop(std::max<std::size_t>(config.population, 2));
  for (auto& g : pop) {
    g.bits.resize(n_bits);
    for (std::size_t b = 0; b < n_bits; ++b) g.bits[b] = rng.bernoulli(0.5);
    g.fitness = fitness(target, express(g));
  }

  const auto by_fitness = [](const Genome& a, const Genome& b) {
    return a.fitness > b.fitness;
  };
  std::sort(pop.begin(), pop.end(), by_fitness);

  const std::size_t gens = n_bits == 0 ? 0 : config.generations;
  for (std::size_t gen = 0; gen < gens; ++gen) {
    std::vector<Genome> next(pop.begin(),
                             pop.begin() + std::min(config.elite, pop.size()));
    const auto tournament_pick = [&]() -> const Genome& {
      const Genome* best = nullptr;
      for (std::size_t t = 0; t < std::max<std::size_t>(config.tournament, 1);
           ++t) {
        const Genome& cand =
            pop[rng.below(static_cast<std::uint32_t>(pop.size()))];
        if (best == nullptr || cand.fitness > best->fitness) best = &cand;
      }
      return *best;
    };
    while (next.size() < pop.size()) {
      const Genome& pa = tournament_pick();
      const Genome& pb = tournament_pick();
      Genome child;
      child.bits.resize(n_bits);
      const std::size_t cut =
          n_bits == 0 ? 0 : rng.below(static_cast<std::uint32_t>(n_bits));
      for (std::size_t b = 0; b < n_bits; ++b) {
        child.bits[b] = (b < cut ? pa.bits[b] : pb.bits[b]);
        if (rng.bernoulli(config.mutation_rate)) {
          child.bits[b] = !child.bits[b];
        }
      }
      child.fitness = fitness(target, express(child));
      next.push_back(std::move(child));
    }
    pop = std::move(next);
    std::sort(pop.begin(), pop.end(), by_fitness);
  }

  Result result;
  result.pattern = express(pop.front());
  result.fitness = pop.front().fitness;
  const paths::TransitionGraph tg(sim_, *lev_, result.pattern);
  result.path_activated =
      std::all_of(target.arcs.begin(), target.arcs.end(),
                  [&](ArcId a) { return tg.is_active(a); });
  return result;
}

}  // namespace sddd::atpg
