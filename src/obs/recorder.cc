#include "obs/recorder.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"

namespace sddd::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kTrialBegin:
      return "trial.begin";
    case EventKind::kTrialEnd:
      return "trial.end";
    case EventKind::kTrialError:
      return "trial.error";
    case EventKind::kFaultInjected:
      return "fault.injected";
    case EventKind::kCacheMiss:
      return "cache.miss";
    case EventKind::kDeadline:
      return "deadline";
    case EventKind::kDiagnose:
      return "diagnose";
    case EventKind::kServeRequest:
      return "serve.request";
  }
  return "unknown";
}

struct Recorder::Ring {
  mutable std::mutex mu;
  std::array<RecorderEvent, kRingCapacity> slots;
  std::uint64_t next = 0;  ///< total events ever written to this ring
};

Recorder& Recorder::instance() {
  static Recorder recorder;
  return recorder;
}

Recorder::Ring& Recorder::local_ring() {
  thread_local std::shared_ptr<Ring> ring = [this] {
    auto r = std::make_shared<Ring>();
    const std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(r);
    return r;
  }();
  return *ring;
}

void Recorder::record(EventKind kind, std::string_view detail,
                      std::uint64_t key, std::uint64_t a,
                      std::uint64_t b) noexcept {
  Ring& ring = local_ring();
  const std::lock_guard<std::mutex> lock(ring.mu);
  RecorderEvent& slot = ring.slots[ring.next % kRingCapacity];
  slot.kind = kind;
  slot.key = key;
  slot.a = a;
  slot.b = b;
  const std::size_t n = std::min(detail.size(), sizeof(slot.detail) - 1);
  std::memcpy(slot.detail, detail.data(), n);
  slot.detail[n] = '\0';
  ++ring.next;
}

void Recorder::set_run_id(std::string run_id) {
  const std::lock_guard<std::mutex> lock(run_id_mu_);
  run_id_ = std::move(run_id);
}

std::string Recorder::run_id() const {
  const std::lock_guard<std::mutex> lock(run_id_mu_);
  return run_id_;
}

std::vector<RecorderEvent> Recorder::merged_events() const {
  std::vector<RecorderEvent> all;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      const std::lock_guard<std::mutex> ring_lock(ring->mu);
      const std::uint64_t live = std::min<std::uint64_t>(ring->next,
                                                         kRingCapacity);
      for (std::uint64_t i = 0; i < live; ++i) {
        all.push_back(ring->slots[i]);
      }
    }
  }
  // Canonical order: no timestamps, no thread ids -- the same multiset of
  // events sorts identically at any thread count.
  std::sort(all.begin(), all.end(),
            [](const RecorderEvent& x, const RecorderEvent& y) {
              if (x.kind != y.kind) return x.kind < y.kind;
              const int c = std::strcmp(x.detail, y.detail);
              if (c != 0) return c < 0;
              if (x.key != y.key) return x.key < y.key;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return all;
}

namespace {

void append_event_json(std::ostream& os, const RecorderEvent& e) {
  os << "{\"kind\":\"" << event_kind_name(e.kind) << "\"";
  if (e.detail[0] != '\0') {
    os << ",\"detail\":\"";
    for (const char* p = e.detail; *p != '\0'; ++p) {
      const char c = *p;
      if (c == '"' || c == '\\') os << '\\';
      os << (static_cast<unsigned char>(c) < 0x20 ? '?' : c);
    }
    os << '"';
  }
  os << ",\"key\":" << e.key;
  if (e.a != 0) os << ",\"a\":" << e.a;
  if (e.b != 0) os << ",\"b\":" << e.b;
  os << '}';
}

}  // namespace

std::string Recorder::merged_events_json() const {
  const std::vector<RecorderEvent> events = merged_events();
  const std::size_t keep = std::min(events.size(), kMaxPostmortemEvents);
  const std::size_t first = events.size() - keep;
  std::ostringstream os;
  os << '[';
  for (std::size_t i = first; i < events.size(); ++i) {
    if (i != first) os << ",\n  ";
    append_event_json(os, events[i]);
  }
  os << ']';
  return os.str();
}

std::string Recorder::postmortem_json(std::string_view reason) const {
  const std::vector<RecorderEvent> events = merged_events();
  const std::size_t keep = std::min(events.size(), kMaxPostmortemEvents);
  std::ostringstream os;
  os << "{\n  \"postmortem_version\": 1,\n  \"run_id\": \"" << run_id()
     << "\",\n  \"reason\": \"" << reason << "\",\n  \"unix_ms\": "
     << std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count()
     << ",\n  \"events_recorded\": " << recorded_count()
     << ",\n  \"events_dropped\": " << dropped_count()
     << ",\n  \"events_elided\": " << events.size() - keep
     << ",\n  \"events\": " << merged_events_json()
     << ",\n  \"metrics\": ";
  MetricsRegistry::instance().snapshot().write_json(os);
  os << "\n}\n";
  return os.str();
}

std::uint64_t Recorder::recorded_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& ring : rings_) {
    const std::lock_guard<std::mutex> ring_lock(ring->mu);
    n += ring->next;
  }
  return n;
}

std::uint64_t Recorder::dropped_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& ring : rings_) {
    const std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->next > kRingCapacity) n += ring->next - kRingCapacity;
  }
  return n;
}

void Recorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    const std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->next = 0;
  }
}

}  // namespace sddd::obs
