#include "obs/faults.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/error.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace sddd::obs {

namespace {

struct Selector {
  enum class Kind { kAlways, kModulo, kBelow, kList } kind = Kind::kAlways;
  std::uint64_t operand = 0;            ///< m for kModulo, n for kBelow
  std::vector<std::uint64_t> indices;   ///< sorted, for kList

  bool matches(std::uint64_t k) const {
    switch (kind) {
      case Kind::kAlways:
        return true;
      case Kind::kModulo:
        return operand != 0 && k % operand == 0;
      case Kind::kBelow:
        return k < operand;
      case Kind::kList:
        for (const std::uint64_t i : indices) {
          if (i == k) return true;
        }
        return false;
    }
    return false;
  }
};

struct Spec {
  std::vector<std::pair<std::string, Selector>> sites;

  const Selector* find(std::string_view site) const {
    for (const auto& [name, sel] : sites) {
      if (name == site) return &sel;
    }
    return nullptr;
  }
};

/// Double-checked: g_enabled gates the hot path, g_spec holds the parsed
/// entries.  Spec replacement is rare (process start, tests), so a mutex
/// plus shared_ptr swap is plenty.
std::atomic<bool> g_enabled{false};
std::mutex g_spec_mu;
std::shared_ptr<const Spec> g_spec;
std::once_flag g_env_once;

obs::Counter& fault_injected_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("fault.injected");
  return c;
}

std::uint64_t parse_u64(std::string_view text, std::string_view spec) {
  if (text.empty()) {
    throw Error(ErrorCode::kParse,
                "SDDD_FAULTS: empty number in spec '" + std::string(spec) +
                    "'");
  }
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw Error(ErrorCode::kParse, "SDDD_FAULTS: bad number '" +
                                         std::string(text) + "' in spec '" +
                                         std::string(spec) + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

Selector parse_selector(std::string_view text, std::string_view spec) {
  Selector sel;
  if (text == "*") {
    sel.kind = Selector::Kind::kAlways;
  } else if (!text.empty() && text.front() == '%') {
    sel.kind = Selector::Kind::kModulo;
    sel.operand = parse_u64(text.substr(1), spec);
    if (sel.operand == 0) {
      throw Error(ErrorCode::kParse,
                  "SDDD_FAULTS: modulo selector needs m > 0 in spec '" +
                      std::string(spec) + "'");
    }
  } else if (!text.empty() && text.front() == '<') {
    sel.kind = Selector::Kind::kBelow;
    sel.operand = parse_u64(text.substr(1), spec);
  } else {
    sel.kind = Selector::Kind::kList;
    std::size_t start = 0;
    while (start <= text.size()) {
      const auto comma = text.find(',', start);
      const auto end = comma == std::string_view::npos ? text.size() : comma;
      sel.indices.push_back(parse_u64(text.substr(start, end - start), spec));
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
  }
  return sel;
}

std::shared_ptr<const Spec> parse_spec(std::string_view text) {
  auto spec = std::make_shared<Spec>();
  std::size_t start = 0;
  while (start < text.size()) {
    const auto semi = text.find(';', start);
    const auto end = semi == std::string_view::npos ? text.size() : semi;
    const std::string_view entry = text.substr(start, end - start);
    if (!entry.empty()) {
      const auto at = entry.find('@');
      if (at == std::string_view::npos || at == 0) {
        throw Error(ErrorCode::kParse,
                    "SDDD_FAULTS: entry '" + std::string(entry) +
                        "' is not site@selector");
      }
      spec->sites.emplace_back(std::string(entry.substr(0, at)),
                               parse_selector(entry.substr(at + 1), entry));
    }
    if (semi == std::string_view::npos) break;
    start = semi + 1;
  }
  return spec;
}

void install(std::shared_ptr<const Spec> spec) {
  const bool enabled = spec != nullptr && !spec->sites.empty();
  const std::lock_guard<std::mutex> lock(g_spec_mu);
  g_spec = std::move(spec);
  g_enabled.store(enabled, std::memory_order_release);
}

void resolve_env_once() {
  std::call_once(g_env_once, [] {
    // set_fault_spec() may already have installed a spec before the first
    // query; the explicit call wins over the environment.
    const std::lock_guard<std::mutex> lock(g_spec_mu);
    if (g_spec != nullptr) return;
    const char* env = std::getenv("SDDD_FAULTS");
    if (env == nullptr || *env == '\0') return;
    auto spec = parse_spec(env);
    const bool enabled = !spec->sites.empty();
    g_spec = std::move(spec);
    g_enabled.store(enabled, std::memory_order_release);
  });
}

std::shared_ptr<const Spec> current_spec() {
  const std::lock_guard<std::mutex> lock(g_spec_mu);
  return g_spec;
}

}  // namespace

bool faults_enabled() {
  resolve_env_once();
  return g_enabled.load(std::memory_order_acquire);
}

void set_fault_spec(std::string_view spec) {
  // Parse before installing so a malformed spec leaves the old one active.
  install(spec.empty() ? std::make_shared<Spec>() : parse_spec(spec));
}

bool fault_at(std::string_view site, std::uint64_t k) {
  if (!faults_enabled()) return false;
  const auto spec = current_spec();
  if (spec == nullptr) return false;
  const Selector* sel = spec->find(site);
  if (sel == nullptr || !sel->matches(k)) return false;
  fault_injected_counter().add(1);
  // Leave a breadcrumb in the flight recorder: the site and occurrence
  // index are exactly the (schedule-independent) coordinates a postmortem
  // needs to replay the failure.
  Recorder::instance().record(EventKind::kFaultInjected, site, k);
  return true;
}

void fault_point(std::string_view site, std::uint64_t k) {
  if (fault_at(site, k)) {
    throw FaultInjectedError("injected fault at " + std::string(site) + "[" +
                             std::to_string(k) + "] (SDDD_FAULTS)");
  }
}

}  // namespace sddd::obs
