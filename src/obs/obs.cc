#include "obs/obs.h"

#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <utility>

#include "obs/atomic_file.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace sddd::obs {

namespace {

std::string g_trace_out;
std::string g_metrics_out;
std::string g_ledger_out;
std::string g_postmortem_out;
bool g_flushed = false;
std::terminate_handler g_prev_terminate = nullptr;

/// std::terminate with a postmortem path configured: leave a bundle behind
/// before dying, so aborts are debuggable after the fact.
[[noreturn]] void terminate_with_postmortem() {
  dump_postmortem("terminate");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

/// "0"/"" -> off (empty), "1" -> `fallback`, anything else is a path.
std::string resolve_env_output(const char* var, const char* fallback) {
  const char* v = std::getenv(var);
  if (v == nullptr || v[0] == '\0' || std::strcmp(v, "0") == 0) return {};
  if (std::strcmp(v, "1") == 0) return fallback;
  return v;
}

void flush_at_exit() { flush_observability_outputs(); }

/// Removes argv[i] (and optionally argv[i+1]) in place; returns the value
/// argument or nullptr when the flag had none.
const char* take_flag_value(int* argc, char** argv, int i) {
  const char* value = (i + 1 < *argc) ? argv[i + 1] : nullptr;
  const int removed = value != nullptr ? 2 : 1;
  for (int j = i; j + removed <= *argc; ++j) argv[j] = argv[j + removed];
  *argc -= removed;
  return value;
}

}  // namespace

void configure_observability_from_args(int* argc, char** argv) {
  std::string trace_out = resolve_env_output("SDDD_TRACE", "sddd_trace.json");
  std::string metrics_out =
      resolve_env_output("SDDD_METRICS", "sddd_metrics.json");
  std::string ledger_out =
      resolve_env_output("SDDD_LEDGER", "sddd_ledger.jsonl");
  std::string postmortem_out =
      resolve_env_output("SDDD_POSTMORTEM", "sddd_postmortem.json");

  for (int i = 1; i < *argc;) {
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      if (const char* v = take_flag_value(argc, argv, i)) trace_out = v;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      if (const char* v = take_flag_value(argc, argv, i)) metrics_out = v;
    } else if (std::strcmp(argv[i], "--ledger") == 0) {
      if (const char* v = take_flag_value(argc, argv, i)) ledger_out = v;
    } else if (std::strcmp(argv[i], "--postmortem-out") == 0) {
      if (const char* v = take_flag_value(argc, argv, i)) postmortem_out = v;
    } else if (std::strcmp(argv[i], "--log-level") == 0) {
      const char* v = take_flag_value(argc, argv, i);
      LogLevel level = LogLevel::kInfo;
      if (v != nullptr && parse_log_level(v, &level)) {
        set_log_level(level);
      } else {
        SDDD_LOG_WARN("--log-level %s ignored (want error|warn|info|debug)",
                      v != nullptr ? v : "(missing)");
      }
    } else {
      ++i;
    }
  }

  g_trace_out = std::move(trace_out);
  g_metrics_out = std::move(metrics_out);
  g_ledger_out = std::move(ledger_out);
  set_postmortem_out_path(std::move(postmortem_out));
  g_flushed = false;

  if (!g_trace_out.empty()) {
    if (kTraceCompiledIn) {
      Tracer::instance().enable();
    } else {
      SDDD_LOG_WARN(
          "tracing requested (%s) but this binary was built with "
          "-DSDDD_TRACE=OFF; no spans will be captured",
          g_trace_out.c_str());
    }
  }

  static bool atexit_registered = false;
  if (!atexit_registered && (!g_trace_out.empty() || !g_metrics_out.empty())) {
    // Construct both singletons NOW so they are destroyed after the atexit
    // handler runs (reverse construction order); otherwise a registry first
    // touched mid-run would be dead by the time the flush reads it.
    MetricsRegistry::instance();
    if (kTraceCompiledIn) Tracer::instance();
    std::atexit(flush_at_exit);
    atexit_registered = true;
  }
}

void flush_observability_outputs() {
  if (g_flushed) return;
  g_flushed = true;
  if (!g_trace_out.empty() && kTraceCompiledIn) {
    Tracer& tracer = Tracer::instance();
    tracer.disable();
    if (tracer.write_file(g_trace_out)) {
      SDDD_LOG_INFO("wrote trace (%zu spans%s) to %s", tracer.event_count(),
                    tracer.dropped_count() > 0 ? ", some dropped" : "",
                    g_trace_out.c_str());
    } else {
      SDDD_LOG_ERROR("failed to write trace to %s", g_trace_out.c_str());
    }
  }
  if (!g_metrics_out.empty()) {
    if (MetricsRegistry::instance().write_file(g_metrics_out)) {
      SDDD_LOG_INFO("wrote metrics to %s", g_metrics_out.c_str());
    } else {
      SDDD_LOG_ERROR("failed to write metrics to %s", g_metrics_out.c_str());
    }
  }
}

const std::string& trace_out_path() { return g_trace_out; }
const std::string& metrics_out_path() { return g_metrics_out; }
const std::string& ledger_out_path() { return g_ledger_out; }
const std::string& postmortem_out_path() { return g_postmortem_out; }

void set_ledger_out_path(std::string path) { g_ledger_out = std::move(path); }

void set_metrics_out_path(std::string path) {
  g_metrics_out = std::move(path);
  g_flushed = false;  // a fresh configuration gets a fresh flush
}

void set_postmortem_out_path(std::string path) {
  g_postmortem_out = std::move(path);
  if (!g_postmortem_out.empty() && g_prev_terminate == nullptr) {
    // Touch the singletons the handler needs so they outlive static
    // destruction ordering (same trick as the atexit flush below).
    Recorder::instance();
    MetricsRegistry::instance();
    g_prev_terminate = std::set_terminate(terminate_with_postmortem);
  }
}

bool dump_postmortem(std::string_view reason) {
  if (g_postmortem_out.empty()) return false;
  const std::string bundle = Recorder::instance().postmortem_json(reason);
  if (!atomic_write_file(g_postmortem_out, bundle)) {
    SDDD_LOG_ERROR("failed to write postmortem to %s",
                   g_postmortem_out.c_str());
    return false;
  }
  SDDD_LOG_INFO("wrote postmortem (%s) to %s", std::string(reason).c_str(),
                g_postmortem_out.c_str());
  return true;
}

const char* observability_usage() {
  return "  --trace-out FILE    capture a Chrome trace (open in Perfetto)\n"
         "  --metrics-out FILE  write the metrics snapshot JSON at exit\n"
         "  --log-level LEVEL   error | warn | info | debug (default info)\n"
         "  --ledger FILE       append a run-ledger record (see sddd_cli "
         "report)\n"
         "  --postmortem-out FILE  write flight-recorder postmortems on "
         "quarantine/abort\n"
         "  (env fallbacks: SDDD_TRACE, SDDD_METRICS, SDDD_LOG, SDDD_LEDGER, "
         "SDDD_POSTMORTEM)\n";
}

}  // namespace sddd::obs
