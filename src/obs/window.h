// window.h - Rolling-window metrics: what happened in the last minute.
//
// The cumulative registry (metrics.h) answers "how much work has this
// process done since it started"; a live server also needs "what is the
// request rate / p95 latency RIGHT NOW".  This layer provides that as
// time-windowed counters and histograms over a fixed ring of 1-second
// buckets spanning a 60-second horizon:
//
//   RollingCounter    add() lands in the bucket for the current second;
//                     total() sums the buckets still inside the horizon.
//   RollingHistogram  record(value_us) increments the (second, latency
//                     bucket) cell and a per-second sum, so a window
//                     snapshot yields bucket counts, a Prometheus-style
//                     _sum, and interpolated quantiles.
//
// Design rules (shared with metrics.h and the flight recorder):
//   * Lock-cheap writers: 16 cache-line-independent shards, one
//     uncontended per-shard mutex acquire per event, no allocation after
//     registration.  Parallel request handlers never contend on one line.
//   * Deterministic merge: buckets are keyed by the ABSOLUTE second stamp,
//     and a snapshot sums integer cells across shards - so for a given
//     set of (second, value) events the merged snapshot is byte-identical
//     at any thread count.
//   * Injectable clock: a WindowRegistry takes a seconds clock at
//     construction (like the `serve.deadline` fault seam makes deadline
//     tests wall-clock-free); tests drive bucket rotation by stepping a
//     fake clock, never by sleeping.
//
// A WindowRegistry is an instance, not a process singleton: each
// DiagnosisServer owns one, so a test can run two servers with two fake
// clocks in one process.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace sddd::obs {

/// Absolute seconds (monotonic).  The registry's time base; tests inject
/// a fake, production defaults to now_ns() / 1e9.
using WindowClock = std::function<std::uint64_t()>;

/// Ring slots per shard.  Must exceed the horizon so a slot is never
/// reused while still inside the window.
inline constexpr std::size_t kWindowSlots = 64;
/// Seconds a bucket stays visible in snapshots.
inline constexpr std::uint64_t kWindowHorizonSeconds = 60;

class WindowRegistry;

class RollingCounter {
 public:
  RollingCounter(const RollingCounter&) = delete;
  RollingCounter& operator=(const RollingCounter&) = delete;

  /// Adds `delta` to the current second's bucket (one shard mutex).
  void add(std::uint64_t delta = 1) noexcept;

  /// Sum over every bucket still inside the horizon.
  std::uint64_t total_in_window() const noexcept;

  const std::string& name() const { return name_; }

 private:
  friend class WindowRegistry;
  RollingCounter(std::string name, const WindowRegistry* owner)
      : name_(std::move(name)), owner_(owner) {}

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::array<std::uint64_t, kWindowSlots> stamp{};  ///< second + 1; 0 = empty
    std::array<std::uint64_t, kWindowSlots> count{};
  };

  std::string name_;
  const WindowRegistry* owner_;
  std::array<Shard, kMetricShards> shards_{};
};

class RollingHistogram {
 public:
  RollingHistogram(const RollingHistogram&) = delete;
  RollingHistogram& operator=(const RollingHistogram&) = delete;

  /// Records one value (the serve path records integer microseconds) in
  /// the current second's bucket row.
  void record(std::uint64_t value) noexcept;

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class WindowRegistry;
  RollingHistogram(std::string name, std::span<const double> upper_bounds,
                   const WindowRegistry* owner);

  struct Shard {
    mutable std::mutex mu;
    std::array<std::uint64_t, kWindowSlots> stamp{};  ///< second + 1; 0 = empty
    std::array<std::uint64_t, kWindowSlots> sum{};    ///< per-second value sum
    std::vector<std::uint64_t> counts;  ///< kWindowSlots x (bounds + overflow)
  };

  std::size_t bucket_for(std::uint64_t value) const noexcept;

  std::string name_;
  std::vector<double> bounds_;
  const WindowRegistry* owner_;
  std::array<Shard, kMetricShards> shards_;
};

/// One windowed histogram as a snapshot sees it: merged bucket counts plus
/// the value sum (the Prometheus `_sum` companion).
struct WindowHistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  std::uint64_t sum = 0;

  std::uint64_t total() const;
  /// Bucket-interpolated quantile (same algorithm as the cumulative
  /// histograms - see MetricsSnapshot::HistogramData::quantile).
  double quantile(double q) const;
};

/// Point-in-time merge of a registry, keyed (therefore ordered) by name.
/// For a fixed set of recorded (second, value) events the rendered JSON is
/// byte-identical regardless of how many threads produced them.
struct WindowSnapshot {
  std::uint64_t now_s = 0;
  std::uint64_t horizon_s = kWindowHorizonSeconds;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, WindowHistogramData> histograms;

  std::string to_json() const;
};

class WindowRegistry {
 public:
  /// `clock` returns absolute seconds; a null clock means wall time.
  explicit WindowRegistry(WindowClock clock = nullptr);

  WindowRegistry(const WindowRegistry&) = delete;
  WindowRegistry& operator=(const WindowRegistry&) = delete;

  std::uint64_t now_seconds() const;

  /// Get-or-create (unlike the strict cumulative registry: windowed names
  /// include runtime labels like "store.<circuit>", so late registration
  /// is the normal case).  References stay valid for the registry's life.
  RollingCounter& counter(std::string_view name);
  RollingHistogram& histogram(std::string_view name,
                              std::span<const double> upper_bounds);

  WindowSnapshot snapshot() const;

 private:
  WindowClock clock_;
  mutable std::mutex mu_;  ///< guards the metric maps, not the hot paths
  std::map<std::string, std::unique_ptr<RollingCounter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<RollingHistogram>, std::less<>>
      histograms_;
};

}  // namespace sddd::obs
