// ledger.h - The run ledger: one checksummed JSONL record per run.
//
// Every `sddd_cli diagnose` / `bench_*` invocation can append ONE record
// describing what ran and what it cost: the 16-hex run_id (the same
// experiment fingerprint stamped into the result JSON, checkpoint journal
// and manifest), git SHA, thread count, per-phase wall seconds, a full
// counter snapshot and the peak RSS.  The ledger is the durable,
// append-only index that `sddd_cli report` diffs and that the perf
// regression sentry reads.
//
// Line format (one record per line, no trailing spaces):
//
//   {"crc":"<16 hex>","v":1,"run_id":...,...}
//
// The crc is the FNV-1a-64 of every byte AFTER the `"crc":"....",` prefix
// (i.e. of the payload `"v":1,...}`), so a reader can verify integrity
// with plain string operations before parsing.  Torn or corrupt lines --
// e.g. the tail of a file cut by a crash mid-append -- fail the checksum
// and are skipped with a warning rather than poisoning the whole ledger,
// mirroring the checkpoint journal's longest-valid-prefix policy.
//
// Determinism note: `unix_ms` and every *_seconds / rss field are
// wall-clock measurements and are deliberately excluded from any
// byte-identity contract; the schedule-independent identity of a run is
// its run_id + counters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sddd::obs {

/// One run, as remembered by the ledger.  Absent string fields stay empty;
/// absent numeric fields stay 0.
struct LedgerRecord {
  int version = 1;
  std::string run_id;    ///< 16-hex fingerprint (experiment or invocation).
  std::string tool;      ///< "diagnose", "bench_table1", "bench_score", ...
  std::string circuit;   ///< circuit name ("s1196") or comma list for benches
  std::string git_sha;   ///< from SDDD_GIT_SHA / --git-sha; may be empty
  std::uint64_t seed = 0;
  std::uint64_t threads = 0;
  std::uint64_t mc_samples = 0;
  std::uint64_t n_chips = 0;
  /// Bench shape tag ("serve", ...).  Empty for diagnose / table1-style
  /// records; when empty the three serve fields below are omitted from the
  /// encoded line entirely, so pre-serve ledgers re-encode byte-identically.
  std::string bench;
  std::uint64_t clients = 0;  ///< peak concurrent load-gen clients (serve)
  std::uint64_t batch = 0;    ///< chips per request frame (serve)
  double wall_seconds = 0.0;
  /// Per-phase wall seconds ("setup_s", "calibration_s", "trials_s", ...).
  std::map<std::string, double> phases;
  /// Counter snapshot (deterministic names; values like *_ns are wall
  /// measurements and only meaningful as run-to-run deltas).
  std::map<std::string, std::uint64_t> counters;
  std::uint64_t peak_rss_kb = 0;  ///< VmHWM at append time; 0 off-Linux.
  std::string manifest_fnv;       ///< hex64 of manifest.json bytes, or "".
  std::string result_fnv;         ///< hex64 of the result JSON bytes, or "".
  std::string result_path;        ///< where the result JSON landed, or "".
  std::uint64_t unix_ms = 0;      ///< wall clock at append; NOT compared.
};

/// FNV-1a 64-bit over `bytes` (same parameters as the checkpoint journal).
std::uint64_t ledger_fnv1a64(std::string_view bytes);

/// Lower-case 16-hex rendering of `v`.
std::string ledger_hex64(std::uint64_t v);

/// Renders `rec` as one ledger line (no trailing newline), checksum filled.
std::string encode_ledger_record(const LedgerRecord& rec);

/// Parses and checksum-verifies one line.  Returns false (and leaves `out`
/// untouched) on any malformed or corrupt input.
bool decode_ledger_record(std::string_view line, LedgerRecord* out);

/// Appends `rec` as one line with O_APPEND + fsync so concurrent runs
/// interleave whole lines and a crash can tear at most the final line.
/// Returns false on I/O failure (logged, never throws).
bool append_ledger_record(const std::string& path, const LedgerRecord& rec);

struct LedgerFile {
  std::vector<LedgerRecord> records;  ///< valid records, file order
  std::size_t skipped_lines = 0;      ///< malformed / checksum-failed lines
};

/// Loads every valid record; malformed lines are counted and warned about,
/// never fatal.  A missing file is an empty ledger.
LedgerFile load_ledger(const std::string& path);

/// The last valid record, or nullopt for an empty/missing ledger.
std::optional<LedgerRecord> ledger_tail(const std::string& path);

/// Peak resident set (VmHWM) in kB from /proc/self/status; 0 when the
/// field is unavailable (non-Linux).
std::uint64_t read_peak_rss_kb();

/// A fresh 16-hex id for one tool INVOCATION (hashes tool, git sha, pid
/// and the wall clock).  Benchmarks use this instead of the experiment
/// fingerprint: two bench runs with equal configs are distinct
/// measurements that must both enter the history, while re-appending the
/// SAME stale artifact (equal run_id) is refused by the tooling.
std::string new_invocation_run_id(std::string_view tool,
                                  std::string_view git_sha);

// ---------------------------------------------------------------------------
// Run-to-run diff (the engine behind `sddd_cli report`).

struct LedgerDiff {
  struct PhaseRow {
    std::string name;
    double a = 0.0, b = 0.0;  ///< seconds in run A / run B
  };
  struct CounterRow {
    std::string name;
    std::uint64_t a = 0, b = 0;
  };
  std::string run_a, run_b;  ///< run_ids
  std::string tool_a, tool_b;
  std::string circuit_a, circuit_b;
  std::string sha_a, sha_b;
  std::string bench_a, bench_b;  ///< bench shape tags; "" = non-bench run
  std::uint64_t clients_a = 0, clients_b = 0;
  std::uint64_t batch_a = 0, batch_b = 0;
  std::uint64_t threads_a = 0, threads_b = 0;
  double wall_a = 0.0, wall_b = 0.0;
  std::uint64_t rss_a = 0, rss_b = 0;
  std::vector<PhaseRow> phases;      ///< union of phase keys, sorted
  std::vector<CounterRow> counters;  ///< union of counter names, sorted
  /// "identical" when both runs carry a result hash for the same run_id
  /// and the hashes match (deterministic result JSON => identical ranks);
  /// "DIFFERS" when they do not; "n/a (different run_ids)" across
  /// experiments; "unknown" when either run has no result hash.
  std::string rank_stability;
};

LedgerDiff diff_ledger_records(const LedgerRecord& a, const LedgerRecord& b);

/// Human-readable comparison: wall/phase deltas with % change, counters
/// that moved, rank-stability verdict.
std::string ledger_diff_to_text(const LedgerDiff& d);

/// The same comparison as machine-readable JSON.
std::string ledger_diff_to_json(const LedgerDiff& d);

}  // namespace sddd::obs
