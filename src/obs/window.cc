#include "obs/window.h"

#include <algorithm>
#include <cstdio>

namespace sddd::obs {

namespace {

/// Shortest round-trip double rendering, matching the serve payloads
/// (query.cc) so windowed quantiles diff cleanly against scored output.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// True when a slot stamped `stamp_plus_one` is visible at `now_s`.
bool slot_in_window(std::uint64_t stamp_plus_one, std::uint64_t now_s) {
  if (stamp_plus_one == 0) return false;
  const std::uint64_t stamp = stamp_plus_one - 1;
  return stamp <= now_s && now_s - stamp < kWindowHorizonSeconds;
}

}  // namespace

// ---------------------------------------------------------------------------
// RollingCounter

void RollingCounter::add(std::uint64_t delta) noexcept {
  const std::uint64_t now_s = owner_->now_seconds();
  Shard& shard = shards_[this_thread_shard()];
  const std::size_t slot = now_s % kWindowSlots;
  const std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.stamp[slot] != now_s + 1) {
    shard.stamp[slot] = now_s + 1;
    shard.count[slot] = 0;
  }
  shard.count[slot] += delta;
}

std::uint64_t RollingCounter::total_in_window() const noexcept {
  const std::uint64_t now_s = owner_->now_seconds();
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (std::size_t slot = 0; slot < kWindowSlots; ++slot) {
      if (slot_in_window(shard.stamp[slot], now_s)) {
        total += shard.count[slot];
      }
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// RollingHistogram

RollingHistogram::RollingHistogram(std::string name,
                                   std::span<const double> upper_bounds,
                                   const WindowRegistry* owner)
    : name_(std::move(name)),
      bounds_(upper_bounds.begin(), upper_bounds.end()),
      owner_(owner) {
  for (Shard& shard : shards_) {
    shard.counts.assign(kWindowSlots * (bounds_.size() + 1), 0);
  }
}

std::size_t RollingHistogram::bucket_for(std::uint64_t value) const noexcept {
  const double v = static_cast<double>(value);
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) return i;
  }
  return bounds_.size();  // overflow bucket
}

void RollingHistogram::record(std::uint64_t value) noexcept {
  const std::uint64_t now_s = owner_->now_seconds();
  const std::size_t bucket = bucket_for(value);
  const std::size_t n_buckets = bounds_.size() + 1;
  Shard& shard = shards_[this_thread_shard()];
  const std::size_t slot = now_s % kWindowSlots;
  const std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.stamp[slot] != now_s + 1) {
    shard.stamp[slot] = now_s + 1;
    shard.sum[slot] = 0;
    std::fill_n(shard.counts.begin() +
                    static_cast<std::ptrdiff_t>(slot * n_buckets),
                static_cast<std::ptrdiff_t>(n_buckets), std::uint64_t{0});
  }
  shard.counts[slot * n_buckets + bucket] += 1;
  shard.sum[slot] += value;
}

// ---------------------------------------------------------------------------
// WindowHistogramData / WindowSnapshot

std::uint64_t WindowHistogramData::total() const {
  std::uint64_t n = 0;
  for (const std::uint64_t c : counts) n += c;
  return n;
}

double WindowHistogramData::quantile(double q) const {
  MetricsSnapshot::HistogramData data;
  data.bounds = bounds;
  data.counts = counts;
  return data.quantile(q);
}

std::string WindowSnapshot::to_json() const {
  std::string out = "{\"now_s\":" + std::to_string(now_s);
  out.append(",\"horizon_s\":").append(std::to_string(horizon_s));
  out.append(",\"counters\":{");
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(name);  // metric names never need JSON escaping
    out.append("\":").append(std::to_string(v));
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(name);
    out.append("\":{\"bounds\":[");
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append(format_double(h.bounds[i]));
    }
    out.append("],\"counts\":[");
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append(std::to_string(h.counts[i]));
    }
    out.append("],\"sum\":").append(std::to_string(h.sum));
    out.append(",\"total\":").append(std::to_string(h.total()));
    out.append(",\"p50\":").append(format_double(h.quantile(0.50)));
    out.append(",\"p95\":").append(format_double(h.quantile(0.95)));
    out.append(",\"p99\":").append(format_double(h.quantile(0.99)));
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

// ---------------------------------------------------------------------------
// WindowRegistry

WindowRegistry::WindowRegistry(WindowClock clock)
    : clock_(std::move(clock)) {}

std::uint64_t WindowRegistry::now_seconds() const {
  if (clock_) return clock_();
  return now_ns() / 1'000'000'000ULL;
}

RollingCounter& WindowRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  auto metric = std::unique_ptr<RollingCounter>(
      new RollingCounter(std::string(name), this));
  return *counters_.emplace(std::string(name), std::move(metric))
              .first->second;
}

RollingHistogram& WindowRegistry::histogram(
    std::string_view name, std::span<const double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  auto metric = std::unique_ptr<RollingHistogram>(
      new RollingHistogram(std::string(name), upper_bounds, this));
  return *histograms_.emplace(std::string(name), std::move(metric))
              .first->second;
}

WindowSnapshot WindowRegistry::snapshot() const {
  WindowSnapshot snap;
  snap.now_s = now_seconds();
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, metric] : counters_) {
    snap.counters.emplace(name, metric->total_in_window());
  }
  for (const auto& [name, metric] : histograms_) {
    WindowHistogramData data;
    data.bounds = metric->bounds_;
    data.counts.assign(data.bounds.size() + 1, 0);
    const std::size_t n_buckets = data.bounds.size() + 1;
    for (const auto& shard : metric->shards_) {
      const std::lock_guard<std::mutex> shard_lock(shard.mu);
      for (std::size_t slot = 0; slot < kWindowSlots; ++slot) {
        if (!slot_in_window(shard.stamp[slot], snap.now_s)) continue;
        data.sum += shard.sum[slot];
        for (std::size_t b = 0; b < n_buckets; ++b) {
          data.counts[b] += shard.counts[slot * n_buckets + b];
        }
      }
    }
    snap.histograms.emplace(name, std::move(data));
  }
  return snap;
}

}  // namespace sddd::obs
