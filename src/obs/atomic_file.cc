#include "obs/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/error.h"
#include "obs/faults.h"
#include "obs/log.h"

namespace sddd::obs {

namespace {

/// Per-process ordinal of atomic writes; the k the io.* fault seams key on.
/// Artifact writes are rare and serial, so the ordinal is stable for a
/// given program flow.
std::atomic<std::uint64_t> g_write_ordinal{0};

bool write_all(int fd, std::string_view content) {
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool atomic_write_impl(const std::string& path, std::string_view content,
                       std::string* error) {
  const std::uint64_t ordinal =
      g_write_ordinal.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = -1;
  if (fault_at("io.open", ordinal)) {
    errno = EACCES;
  } else {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }
  if (fd < 0) {
    *error = "cannot open " + tmp + ": " + std::strerror(errno);
    return false;
  }
  // The short-write seam truncates the payload, which must surface as a
  // failed (and cleaned-up) write, never as a silently shorter artifact.
  const std::string_view payload =
      fault_at("io.short_write", ordinal) ? content.substr(0, content.size() / 2)
                                          : content;
  bool ok = write_all(fd, payload) && payload.size() == content.size();
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) {
    *error = "atomic write of " + path + " failed: " + std::strerror(errno);
    ::unlink(tmp.c_str());
  }
  return ok;
}

}  // namespace

bool atomic_write_file(const std::string& path, std::string_view content) {
  std::string error;
  if (atomic_write_impl(path, content, &error)) return true;
  SDDD_LOG_WARN("%s", error.c_str());
  return false;
}

void atomic_write_file_or_throw(const std::string& path,
                                std::string_view content) {
  std::string error;
  if (!atomic_write_impl(path, content, &error)) throw IoError(error);
}

}  // namespace sddd::obs
