// expo.h - The stats exposition surface: everything a live server knows
// about itself, rendered for humans and scrapers.
//
// A StatsSnapshot bundles the cumulative counters (metrics.h), the
// rolling-window merge (window.h), and a top-N slow-request ring into one
// value that renders two ways:
//
//   stats_to_json(s)        the `stats` wire op's payload - deterministic
//                           key order, %.17g doubles, one line.
//   stats_to_prometheus(s)  Prometheus text exposition (# TYPE lines,
//                           _bucket{le="..."} / _sum / _count per
//                           histogram), names sanitized to the
//                           [a-zA-Z0-9_] charset with an `sddd_` prefix.
//                           Deterministic ordering so scrapes diff.
//
// The SlowRequestRing keeps the N slowest requests seen (by total
// latency), each carrying its trace_id, circuit, batch size and per-phase
// breakdown - the "which request hurt" half of the dashboard.  Eviction
// is deterministic: ties on total latency keep the EARLIER insertion.
//
// Trace-id helpers live here too: ids are canonically 16 lowercase hex
// characters (hex16 of a 64-bit value); trace_key() inverts that for the
// flight recorder's integer event keys, hashing non-canonical ids so any
// client-supplied tag still lands a stable key.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/window.h"

namespace sddd::obs {

// ---------------------------------------------------------------------------
// Trace ids

/// `v` as exactly 16 lowercase hex characters (the canonical trace id and
/// run_id spelling).
std::string hex16(std::uint64_t v);

/// True when `id` is non-empty, at most 64 chars, and drawn from
/// [A-Za-z0-9._-] - safe to embed unescaped in a response envelope.
bool valid_trace_id(std::string_view id);

/// The 64-bit key a trace id contributes to flight-recorder events: the
/// parsed value for canonical (<= 16 hex chars) ids, an FNV-1a-64 hash
/// otherwise.  hex16(trace_key(hex16(v))) == hex16(v).
std::uint64_t trace_key(std::string_view id);

// ---------------------------------------------------------------------------
// Slow-request ring

struct SlowRequest {
  std::string trace_id;
  std::string circuit;  ///< which store served it ("" for non-diagnose)
  std::uint64_t batch = 0;  ///< chips in the request
  std::uint64_t total_us = 0;
  /// Phase breakdown, keyed by phase name ("parse_us", "queue_us", ...).
  std::map<std::string, std::uint64_t> phases_us;
};

/// Bounded, mutex-guarded top-N by total_us.  insert() is O(capacity) -
/// fine at capacity ~32 against requests that each cost milliseconds.
class SlowRequestRing {
 public:
  explicit SlowRequestRing(std::size_t capacity = 32)
      : capacity_(capacity) {}

  SlowRequestRing(const SlowRequestRing&) = delete;
  SlowRequestRing& operator=(const SlowRequestRing&) = delete;

  void insert(SlowRequest request);

  /// Snapshot sorted slowest-first; ties keep insertion order.
  std::vector<SlowRequest> top() const;

  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t seq = 0;
    SlowRequest request;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> entries_;
};

// ---------------------------------------------------------------------------
// Stats snapshot + renderers

struct StatsSnapshot {
  std::string service = "sddd.serve";
  std::string git_sha;
  double uptime_s = 0.0;
  bool draining = false;
  std::uint64_t inflight = 0;
  /// Cumulative since process start (the serve.* counter family).
  std::map<std::string, std::uint64_t> counters;
  /// The last-60-seconds merge.
  WindowSnapshot window;
  /// Slowest requests, slowest first.
  std::vector<SlowRequest> slow;
};

/// The `stats` op's JSON payload: {"ok":true,"op":"stats",...}.
std::string stats_to_json(const StatsSnapshot& s);

/// Prometheus text exposition of the same snapshot.
std::string stats_to_prometheus(const StatsSnapshot& s);

}  // namespace sddd::obs
