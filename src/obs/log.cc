#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sddd::obs {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("SDDD_LOG");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr && !parse_log_level(env, &level)) {
    std::fprintf(stderr,
                 "[sddd warn] SDDD_LOG=\"%s\" is not one of "
                 "error|warn|info|debug; defaulting to info\n",
                 env);
  }
  return level;
}

std::atomic<int>& level_slot() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_slot().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_slot().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

bool parse_log_level(std::string_view name, LogLevel* out) {
  if (name == "error") {
    *out = LogLevel::kError;
  } else if (name == "warn" || name == "warning") {
    *out = LogLevel::kWarn;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "debug") {
    *out = LogLevel::kDebug;
  } else {
    return false;
  }
  return true;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "info";
}

void logf(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  // One vsnprintf into a local buffer, then a single fputs, so concurrent
  // threads cannot interleave mid-line.
  char buf[1024];
  int prefix = std::snprintf(buf, sizeof(buf), "[sddd %s] ",
                             log_level_name(level));
  if (prefix < 0) return;
  std::va_list args;
  va_start(args, fmt);
  int body = std::vsnprintf(buf + prefix, sizeof(buf) - prefix - 1, fmt, args);
  va_end(args);
  if (body < 0) return;
  std::size_t len = static_cast<std::size_t>(prefix) +
                    (static_cast<std::size_t>(body) <
                             sizeof(buf) - static_cast<std::size_t>(prefix) - 1
                         ? static_cast<std::size_t>(body)
                         : sizeof(buf) - static_cast<std::size_t>(prefix) - 1);
  buf[len] = '\n';
  std::fwrite(buf, 1, len + 1, stderr);
}

}  // namespace sddd::obs
