#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/atomic_file.h"
#include "obs/metrics.h"

namespace sddd::obs {

namespace {

/// Hard cap per thread buffer; a Table-1 run at default span granularity
/// stays far below this, so hitting it means a span was placed inside a
/// per-sample loop by mistake.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

struct Tracer::ThreadBuffer {
  std::uint32_t tid = 0;
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(mu_);
    b->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(b);
    return b;
  }();
  return *buffer;
}

void Tracer::enable() {
  if (epoch_ns_ == 0) epoch_ns_ = now_ns();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : buffers_) {
    const std::lock_guard<std::mutex> b_lock(b->mu);
    b->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& b : buffers_) {
    const std::lock_guard<std::mutex> b_lock(b->mu);
    n += b->events.size();
  }
  return n;
}

std::uint64_t Tracer::dropped_count() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::uint32_t Tracer::this_thread_tid() { return local_buffer().tid; }

void Tracer::record(TraceEvent&& event) {
  ThreadBuffer& buffer = local_buffer();
  event.tid = buffer.tid;
  const std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back(std::move(event));
}

void Tracer::write_json(std::ostream& os) const {
  std::vector<TraceEvent> all;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& b : buffers_) {
      const std::lock_guard<std::mutex> b_lock(b->mu);
      all.insert(all.end(), b->events.begin(), b->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns
                                               : a.tid < b.tid;
                   });
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
        "\"process_name\", \"args\": {\"name\": \"sddd\"}}";
  char num[64];
  for (const TraceEvent& e : all) {
    os << ",\n{\"name\": ";
    write_escaped(os, e.name);
    os << ", \"cat\": \"sddd\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << e.tid;
    // Chrome trace timestamps are microseconds; keep ns resolution via the
    // fractional part.
    std::snprintf(num, sizeof(num), "%.3f",
                  static_cast<double>(e.ts_ns) / 1000.0);
    os << ", \"ts\": " << num;
    std::snprintf(num, sizeof(num), "%.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    os << ", \"dur\": " << num;
    if (e.n_args > 0) {
      os << ", \"args\": {";
      for (std::uint8_t a = 0; a < e.n_args; ++a) {
        const TraceArg& arg = e.args[a];
        if (a > 0) os << ", ";
        write_escaped(os, arg.key);
        os << ": ";
        switch (arg.kind) {
          case TraceArg::Kind::kInt:
            os << arg.i;
            break;
          case TraceArg::Kind::kDouble:
            std::snprintf(num, sizeof(num), "%.6g", arg.d);
            os << num;
            break;
          case TraceArg::Kind::kString:
            write_escaped(os, arg.s);
            break;
          case TraceArg::Kind::kNone:
            os << "null";
            break;
        }
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

bool Tracer::write_file(const std::string& path) const {
  // Atomic (temp + rename): a killed run keeps the previous complete
  // trace instead of a half-written JSON that no viewer can open.
  std::ostringstream os;
  write_json(os);
  return atomic_write_file(path, os.str());
}

std::uint64_t ScopedSpan::now_ns_() { return now_ns(); }

TraceArg* ScopedSpan::next_arg(const char* key) noexcept {
  if (name_ == nullptr || n_args_ >= kMaxSpanArgs) return nullptr;
  TraceArg& slot = args_[n_args_++];
  slot.key = key;
  return &slot;
}

ScopedSpan& ScopedSpan::arg(const char* key, std::int64_t v) noexcept {
  if (TraceArg* slot = next_arg(key)) {
    slot->kind = TraceArg::Kind::kInt;
    slot->i = v;
  }
  return *this;
}

ScopedSpan& ScopedSpan::arg(const char* key, std::uint64_t v) noexcept {
  return arg(key, static_cast<std::int64_t>(v));
}

ScopedSpan& ScopedSpan::arg(const char* key, double v) noexcept {
  if (TraceArg* slot = next_arg(key)) {
    slot->kind = TraceArg::Kind::kDouble;
    slot->d = v;
  }
  return *this;
}

ScopedSpan& ScopedSpan::arg(const char* key, std::string_view v) {
  if (TraceArg* slot = next_arg(key)) {
    slot->kind = TraceArg::Kind::kString;
    slot->s.assign(v);
  }
  return *this;
}

void ScopedSpan::finish() noexcept {
  Tracer& tracer = Tracer::instance();
  // A span that straddles disable() still records: its start was paid for,
  // and a truncated tail is worse than one extra event.
  TraceEvent event;
  event.name = name_;
  const std::uint64_t end = now_ns_();
  const std::uint64_t epoch = tracer.epoch_ns();
  event.ts_ns = start_ns_ > epoch ? start_ns_ - epoch : 0;
  event.dur_ns = end > start_ns_ ? end - start_ns_ : 0;
  event.args = std::move(args_);
  event.n_args = n_args_;
  tracer.record(std::move(event));
}

}  // namespace sddd::obs
