#include "obs/check.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace sddd::obs {

namespace {

constexpr double kTol = 1e-9;

std::atomic<int> g_mode{-1};  // -1 = environment not resolved yet

int resolve_from_env() {
  const char* env = std::getenv("SDDD_CHECK");
  if (env == nullptr || std::strcmp(env, "off") == 0 || env[0] == '\0') {
    return static_cast<int>(CheckMode::kOff);
  }
  if (std::strcmp(env, "warn") == 0) return static_cast<int>(CheckMode::kWarn);
  if (std::strcmp(env, "throw") == 0) {
    return static_cast<int>(CheckMode::kThrow);
  }
  std::fprintf(stderr,
               "SDDD_CHECK: unknown mode \"%s\" (want off|warn|throw); "
               "checks stay off\n",
               env);
  return static_cast<int>(CheckMode::kOff);
}

}  // namespace

CheckMode check_mode() {
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode < 0) {
    mode = resolve_from_env();
    int expected = -1;
    // Another thread may have resolved concurrently; both compute the same
    // value, so losing the race is harmless.
    g_mode.compare_exchange_strong(expected, mode, std::memory_order_relaxed);
  }
  return static_cast<CheckMode>(mode);
}

void set_check_mode(CheckMode m) {
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

ContractViolation::ContractViolation(std::string_view rule_id,
                                     const std::string& message)
    : std::runtime_error(std::string(rule_id) + ": " + message),
      rule_id_(rule_id) {}

namespace detail {

void report_violation(std::string_view rule_id, const std::string& message) {
  if (check_mode() == CheckMode::kThrow) {
    throw ContractViolation(rule_id, message);
  }
  // warn mode: one line per process, to keep a violating hot loop from
  // flooding stderr.
  static std::once_flag warned;
  std::call_once(warned, [&] {
    std::fprintf(stderr,
                 "SDDD_CHECK violation [%.*s]: %s (further warnings "
                 "suppressed; set SDDD_CHECK=throw to fail fast)\n",
                 static_cast<int>(rule_id.size()), rule_id.data(),
                 message.c_str());
  });
}

}  // namespace detail

namespace {

void check_column_range(std::span<const double> column, double lo, double hi,
                        std::string_view rule_id, std::string_view where) {
  if (!checks_enabled()) return;
  for (std::size_t k = 0; k < column.size(); ++k) {
    const double v = column[k];
    if (std::isfinite(v) && v >= lo - kTol && v <= hi + kTol) continue;
    detail::report_violation(
        rule_id, std::string(where) + ": entry " + std::to_string(k) + " = " +
                     std::to_string(v) + " outside [" + std::to_string(lo) +
                     ", " + std::to_string(hi) + "]");
    return;  // in warn mode one violation per column suffices
  }
}

}  // namespace

void check_probability_column(std::span<const double> column,
                              std::string_view where) {
  check_column_range(column, 0.0, 1.0, "DICT001", where);
}

void check_signature_column(std::span<const double> column,
                            std::string_view where) {
  check_column_range(column, -1.0, 1.0, "DICT002", where);
}

}  // namespace sddd::obs
