#include "obs/ledger.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/log.h"

namespace sddd::obs {

namespace {

void append_escaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Minimal JSON cursor: just enough to read the flat-ish records the ledger
// writes (strings, numbers, one level of nested {string: number} maps).
// Unknown keys are skipped so old readers tolerate newer records.

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  bool done() const { return i >= s.size(); }
  char peek() const { return done() ? '\0' : s[i]; }
  void skip_ws() {
    while (!done() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }
  bool expect(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++i;
    return true;
  }
};

bool parse_string(Cursor* c, std::string* out) {
  if (!c->expect('"')) return false;
  out->clear();
  while (!c->done()) {
    const char ch = c->s[c->i++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c->done()) return false;
      const char esc = c->s[c->i++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'u': {
          if (c->i + 4 > c->s.size()) return false;
          char hex[5] = {c->s[c->i], c->s[c->i + 1], c->s[c->i + 2],
                         c->s[c->i + 3], '\0'};
          c->i += 4;
          out->push_back(static_cast<char>(
              std::strtoul(hex, nullptr, 16) & 0xFFu));
          break;
        }
        default:
          return false;
      }
    } else {
      out->push_back(ch);
    }
  }
  return false;  // unterminated
}

/// Parses a JSON number; reports both renderings so callers can keep full
/// 64-bit precision for integer counters.
bool parse_number(Cursor* c, double* as_double, std::uint64_t* as_u64) {
  c->skip_ws();
  const std::size_t start = c->i;
  bool integral = true;
  if (c->peek() == '-') ++c->i;
  while (!c->done()) {
    const char ch = c->peek();
    if (std::isdigit(static_cast<unsigned char>(ch)) != 0) {
      ++c->i;
    } else if (ch == '.' || ch == 'e' || ch == 'E' || ch == '+' || ch == '-') {
      integral = false;
      ++c->i;
    } else {
      break;
    }
  }
  if (c->i == start) return false;
  const std::string text(c->s.substr(start, c->i - start));
  *as_double = std::strtod(text.c_str(), nullptr);
  *as_u64 = integral ? std::strtoull(text.c_str(), nullptr, 10)
                     : static_cast<std::uint64_t>(std::llround(*as_double));
  return true;
}

/// Skips any JSON value (used for unknown keys).
bool skip_value(Cursor* c) {
  c->skip_ws();
  const char ch = c->peek();
  if (ch == '"') {
    std::string dummy;
    return parse_string(c, &dummy);
  }
  if (ch == '{' || ch == '[') {
    const char close = ch == '{' ? '}' : ']';
    ++c->i;
    int depth = 1;
    bool in_string = false;
    while (!c->done() && depth > 0) {
      const char k = c->s[c->i++];
      if (in_string) {
        if (k == '\\') {
          if (!c->done()) ++c->i;
        } else if (k == '"') {
          in_string = false;
        }
      } else if (k == '"') {
        in_string = true;
      } else if (k == ch) {
        ++depth;
      } else if (k == close) {
        --depth;
      }
    }
    return depth == 0;
  }
  if (ch == 't') {
    if (c->s.substr(c->i, 4) != "true") return false;
    c->i += 4;
    return true;
  }
  if (ch == 'f') {
    if (c->s.substr(c->i, 5) != "false") return false;
    c->i += 5;
    return true;
  }
  if (ch == 'n') {
    if (c->s.substr(c->i, 4) != "null") return false;
    c->i += 4;
    return true;
  }
  double d = 0.0;
  std::uint64_t u = 0;
  return parse_number(c, &d, &u);
}

/// Parses `{ "key": number, ... }` into either map (one may be null).
bool parse_number_map(Cursor* c, std::map<std::string, double>* doubles,
                      std::map<std::string, std::uint64_t>* u64s) {
  if (!c->expect('{')) return false;
  c->skip_ws();
  if (c->peek() == '}') {
    ++c->i;
    return true;
  }
  while (true) {
    std::string key;
    if (!parse_string(c, &key)) return false;
    if (!c->expect(':')) return false;
    double d = 0.0;
    std::uint64_t u = 0;
    if (!parse_number(c, &d, &u)) return false;
    if (doubles != nullptr) (*doubles)[key] = d;
    if (u64s != nullptr) (*u64s)[key] = u;
    c->skip_ws();
    if (c->peek() == ',') {
      ++c->i;
      continue;
    }
    return c->expect('}');
  }
}

constexpr std::string_view kCrcPrefix = "{\"crc\":\"";
constexpr std::size_t kCrcHexLen = 16;

}  // namespace

std::uint64_t ledger_fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string ledger_hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string encode_ledger_record(const LedgerRecord& rec) {
  // Payload first (everything the checksum covers), then the framing.
  std::string p;
  p.reserve(512);
  p.append("\"v\":").append(std::to_string(rec.version));
  const auto field = [&p](const char* name, std::string_view value) {
    p.append(",\"").append(name).append("\":");
    append_escaped(&p, value);
  };
  const auto u64_field = [&p](const char* name, std::uint64_t value) {
    p.append(",\"").append(name).append("\":").append(std::to_string(value));
  };
  field("run_id", rec.run_id);
  field("tool", rec.tool);
  field("circuit", rec.circuit);
  field("git_sha", rec.git_sha);
  u64_field("seed", rec.seed);
  u64_field("threads", rec.threads);
  u64_field("mc_samples", rec.mc_samples);
  u64_field("n_chips", rec.n_chips);
  if (!rec.bench.empty()) {
    field("bench", rec.bench);
    u64_field("clients", rec.clients);
    u64_field("batch", rec.batch);
  }
  p.append(",\"wall_seconds\":").append(format_double(rec.wall_seconds));
  p.append(",\"phases\":{");
  bool first = true;
  for (const auto& [name, seconds] : rec.phases) {
    if (!first) p.push_back(',');
    first = false;
    append_escaped(&p, name);
    p.push_back(':');
    p.append(format_double(seconds));
  }
  p.append("},\"counters\":{");
  first = true;
  for (const auto& [name, value] : rec.counters) {
    if (!first) p.push_back(',');
    first = false;
    append_escaped(&p, name);
    p.push_back(':');
    p.append(std::to_string(value));
  }
  p.push_back('}');
  u64_field("peak_rss_kb", rec.peak_rss_kb);
  field("manifest_fnv", rec.manifest_fnv);
  field("result_fnv", rec.result_fnv);
  field("result_path", rec.result_path);
  u64_field("unix_ms", rec.unix_ms);
  p.push_back('}');

  std::string line;
  line.reserve(p.size() + 32);
  line.append(kCrcPrefix);
  line.append(ledger_hex64(ledger_fnv1a64(p)));
  line.append("\",");
  line.append(p);
  return line;
}

bool decode_ledger_record(std::string_view line, LedgerRecord* out) {
  // Frame check + checksum verification by pure string ops.
  const std::size_t payload_at = kCrcPrefix.size() + kCrcHexLen + 2;
  if (line.size() < payload_at + 2) return false;
  if (line.substr(0, kCrcPrefix.size()) != kCrcPrefix) return false;
  const std::string_view crc_hex = line.substr(kCrcPrefix.size(), kCrcHexLen);
  if (line.substr(kCrcPrefix.size() + kCrcHexLen, 2) != "\",") return false;
  const std::string_view payload = line.substr(payload_at);
  if (ledger_hex64(ledger_fnv1a64(payload)) != crc_hex) return false;

  // Parse the payload as an (opening-brace-less) JSON object body.
  LedgerRecord rec;
  Cursor c{payload, 0};
  while (true) {
    std::string key;
    if (!parse_string(&c, &key)) return false;
    if (!c.expect(':')) return false;
    bool ok = true;
    double d = 0.0;
    std::uint64_t u = 0;
    if (key == "v") {
      ok = parse_number(&c, &d, &u);
      rec.version = static_cast<int>(u);
    } else if (key == "run_id") {
      ok = parse_string(&c, &rec.run_id);
    } else if (key == "tool") {
      ok = parse_string(&c, &rec.tool);
    } else if (key == "circuit") {
      ok = parse_string(&c, &rec.circuit);
    } else if (key == "git_sha") {
      ok = parse_string(&c, &rec.git_sha);
    } else if (key == "seed") {
      ok = parse_number(&c, &d, &rec.seed);
    } else if (key == "threads") {
      ok = parse_number(&c, &d, &rec.threads);
    } else if (key == "mc_samples") {
      ok = parse_number(&c, &d, &rec.mc_samples);
    } else if (key == "n_chips") {
      ok = parse_number(&c, &d, &rec.n_chips);
    } else if (key == "bench") {
      ok = parse_string(&c, &rec.bench);
    } else if (key == "clients") {
      ok = parse_number(&c, &d, &rec.clients);
    } else if (key == "batch") {
      ok = parse_number(&c, &d, &rec.batch);
    } else if (key == "wall_seconds") {
      ok = parse_number(&c, &rec.wall_seconds, &u);
    } else if (key == "phases") {
      ok = parse_number_map(&c, &rec.phases, nullptr);
    } else if (key == "counters") {
      ok = parse_number_map(&c, nullptr, &rec.counters);
    } else if (key == "peak_rss_kb") {
      ok = parse_number(&c, &d, &rec.peak_rss_kb);
    } else if (key == "manifest_fnv") {
      ok = parse_string(&c, &rec.manifest_fnv);
    } else if (key == "result_fnv") {
      ok = parse_string(&c, &rec.result_fnv);
    } else if (key == "result_path") {
      ok = parse_string(&c, &rec.result_path);
    } else if (key == "unix_ms") {
      ok = parse_number(&c, &d, &rec.unix_ms);
    } else {
      ok = skip_value(&c);  // forward compatibility
    }
    if (!ok) return false;
    c.skip_ws();
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (!c.expect('}')) return false;
    break;
  }
  *out = std::move(rec);
  return true;
}

bool append_ledger_record(const std::string& path, const LedgerRecord& rec) {
  std::string line = encode_ledger_record(rec);
  line.push_back('\n');
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    SDDD_LOG_ERROR("ledger: cannot open %s for append: %s", path.c_str(),
                   std::strerror(errno));
    return false;
  }
  bool ok = true;
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      SDDD_LOG_ERROR("ledger: write to %s failed: %s", path.c_str(),
                     std::strerror(errno));
      ok = false;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) {
    SDDD_LOG_WARN("ledger: fsync %s failed: %s", path.c_str(),
                  std::strerror(errno));
  }
  ::close(fd);
  return ok;
}

LedgerFile load_ledger(const std::string& path) {
  LedgerFile out;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    LedgerRecord rec;
    if (decode_ledger_record(line, &rec)) {
      out.records.push_back(std::move(rec));
    } else {
      ++out.skipped_lines;
      SDDD_LOG_WARN("ledger: %s line %zu is malformed or corrupt; skipped",
                    path.c_str(), line_no);
    }
  }
  return out;
}

std::optional<LedgerRecord> ledger_tail(const std::string& path) {
  LedgerFile file = load_ledger(path);
  if (file.records.empty()) return std::nullopt;
  return std::move(file.records.back());
}

std::string new_invocation_run_id(std::string_view tool,
                                  std::string_view git_sha) {
  std::string seed;
  seed.append(tool).push_back('|');
  seed.append(git_sha).push_back('|');
  seed.append(std::to_string(::getpid())).push_back('|');
  seed.append(std::to_string(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count()));
  return ledger_hex64(ledger_fnv1a64(seed));
}

std::uint64_t read_peak_rss_kb() {
  std::ifstream in("/proc/self/status");
  if (!in.is_open()) return 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Diff

LedgerDiff diff_ledger_records(const LedgerRecord& a, const LedgerRecord& b) {
  LedgerDiff d;
  d.run_a = a.run_id;
  d.run_b = b.run_id;
  d.tool_a = a.tool;
  d.tool_b = b.tool;
  d.circuit_a = a.circuit;
  d.circuit_b = b.circuit;
  d.sha_a = a.git_sha;
  d.sha_b = b.git_sha;
  d.bench_a = a.bench;
  d.bench_b = b.bench;
  d.clients_a = a.clients;
  d.clients_b = b.clients;
  d.batch_a = a.batch;
  d.batch_b = b.batch;
  d.threads_a = a.threads;
  d.threads_b = b.threads;
  d.wall_a = a.wall_seconds;
  d.wall_b = b.wall_seconds;
  d.rss_a = a.peak_rss_kb;
  d.rss_b = b.peak_rss_kb;

  for (const auto& [name, seconds] : a.phases) {
    d.phases.push_back({name, seconds, 0.0});
  }
  for (const auto& [name, seconds] : b.phases) {
    auto it = std::find_if(d.phases.begin(), d.phases.end(),
                           [&](const auto& row) { return row.name == name; });
    if (it == d.phases.end()) {
      d.phases.push_back({name, 0.0, seconds});
    } else {
      it->b = seconds;
    }
  }
  std::sort(d.phases.begin(), d.phases.end(),
            [](const auto& x, const auto& y) { return x.name < y.name; });

  for (const auto& [name, value] : a.counters) {
    d.counters.push_back({name, value, 0});
  }
  for (const auto& [name, value] : b.counters) {
    auto it = std::find_if(d.counters.begin(), d.counters.end(),
                           [&](const auto& row) { return row.name == name; });
    if (it == d.counters.end()) {
      d.counters.push_back({name, 0, value});
    } else {
      it->b = value;
    }
  }
  std::sort(d.counters.begin(), d.counters.end(),
            [](const auto& x, const auto& y) { return x.name < y.name; });

  if (a.result_fnv.empty() || b.result_fnv.empty()) {
    d.rank_stability = "unknown";
  } else if (a.run_id != b.run_id) {
    d.rank_stability = "n/a (different run_ids)";
  } else if (a.result_fnv == b.result_fnv) {
    d.rank_stability = "identical";
  } else {
    d.rank_stability = "DIFFERS";
  }
  return d;
}

namespace {

std::string pct_change(double a, double b) {
  if (a == 0.0) return b == 0.0 ? "+0.0%" : "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (b - a) / a * 100.0);
  return buf;
}

}  // namespace

std::string ledger_diff_to_text(const LedgerDiff& d) {
  std::ostringstream os;
  const auto serve_suffix = [](const std::string& bench, std::uint64_t clients,
                               std::uint64_t batch) {
    if (bench.empty()) return std::string();
    std::string s = ", bench " + bench;
    if (clients != 0 || batch != 0) {
      s += ", clients " + std::to_string(clients) + ", batch " +
           std::to_string(batch);
    }
    return s;
  };
  os << "run A: " << d.run_a << "  (" << d.tool_a << " " << d.circuit_a
     << ", git " << (d.sha_a.empty() ? "?" : d.sha_a) << ", threads "
     << d.threads_a << serve_suffix(d.bench_a, d.clients_a, d.batch_a)
     << ")\n";
  os << "run B: " << d.run_b << "  (" << d.tool_b << " " << d.circuit_b
     << ", git " << (d.sha_b.empty() ? "?" : d.sha_b) << ", threads "
     << d.threads_b << serve_suffix(d.bench_b, d.clients_b, d.batch_b)
     << ")\n\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-22s %12.4f %12.4f %12.4f %10s\n", "wall_s",
                d.wall_a, d.wall_b, d.wall_b - d.wall_a,
                pct_change(d.wall_a, d.wall_b).c_str());
  os << "phase                            run A        run B        delta"
     << "   % change\n"
     << buf;
  for (const auto& row : d.phases) {
    std::snprintf(buf, sizeof(buf), "%-22s %12.4f %12.4f %12.4f %10s\n",
                  row.name.c_str(), row.a, row.b, row.b - row.a,
                  pct_change(row.a, row.b).c_str());
    os << buf;
  }
  if (d.rss_a != 0 || d.rss_b != 0) {
    std::snprintf(buf, sizeof(buf), "%-22s %12llu %12llu %+12lld\n",
                  "peak_rss_kb", static_cast<unsigned long long>(d.rss_a),
                  static_cast<unsigned long long>(d.rss_b),
                  static_cast<long long>(d.rss_b) -
                      static_cast<long long>(d.rss_a));
    os << buf;
  }
  os << "\ncounters (changed only):\n";
  std::size_t changed = 0;
  for (const auto& row : d.counters) {
    if (row.a == row.b) continue;
    ++changed;
    std::snprintf(buf, sizeof(buf), "  %-28s %14llu %14llu %+14lld %9s\n",
                  row.name.c_str(), static_cast<unsigned long long>(row.a),
                  static_cast<unsigned long long>(row.b),
                  static_cast<long long>(row.b) - static_cast<long long>(row.a),
                  pct_change(static_cast<double>(row.a),
                             static_cast<double>(row.b))
                      .c_str());
    os << buf;
  }
  if (changed == 0) os << "  (none)\n";
  os << "\nrank stability: " << d.rank_stability << "\n";
  return os.str();
}

std::string ledger_diff_to_json(const LedgerDiff& d) {
  std::string j;
  j.reserve(1024);
  j.append("{\n  \"run_a\": ");
  append_escaped(&j, d.run_a);
  j.append(",\n  \"run_b\": ");
  append_escaped(&j, d.run_b);
  j.append(",\n  \"tool_a\": ");
  append_escaped(&j, d.tool_a);
  j.append(",\n  \"tool_b\": ");
  append_escaped(&j, d.tool_b);
  j.append(",\n  \"circuit_a\": ");
  append_escaped(&j, d.circuit_a);
  j.append(",\n  \"circuit_b\": ");
  append_escaped(&j, d.circuit_b);
  j.append(",\n  \"git_sha_a\": ");
  append_escaped(&j, d.sha_a);
  j.append(",\n  \"git_sha_b\": ");
  append_escaped(&j, d.sha_b);
  j.append(",\n  \"bench_a\": ");
  append_escaped(&j, d.bench_a);
  j.append(",\n  \"bench_b\": ");
  append_escaped(&j, d.bench_b);
  j.append(",\n  \"clients_a\": ").append(std::to_string(d.clients_a));
  j.append(",\n  \"clients_b\": ").append(std::to_string(d.clients_b));
  j.append(",\n  \"batch_a\": ").append(std::to_string(d.batch_a));
  j.append(",\n  \"batch_b\": ").append(std::to_string(d.batch_b));
  j.append(",\n  \"threads_a\": ").append(std::to_string(d.threads_a));
  j.append(",\n  \"threads_b\": ").append(std::to_string(d.threads_b));
  j.append(",\n  \"wall_a\": ").append(format_double(d.wall_a));
  j.append(",\n  \"wall_b\": ").append(format_double(d.wall_b));
  j.append(",\n  \"peak_rss_kb_a\": ").append(std::to_string(d.rss_a));
  j.append(",\n  \"peak_rss_kb_b\": ").append(std::to_string(d.rss_b));
  j.append(",\n  \"phases\": {");
  bool first = true;
  for (const auto& row : d.phases) {
    if (!first) j.push_back(',');
    first = false;
    j.append("\n    ");
    append_escaped(&j, row.name);
    j.append(": {\"a\": ").append(format_double(row.a));
    j.append(", \"b\": ").append(format_double(row.b));
    j.append(", \"delta\": ").append(format_double(row.b - row.a));
    j.push_back('}');
  }
  j.append(first ? "}" : "\n  }");
  j.append(",\n  \"counters\": {");
  first = true;
  for (const auto& row : d.counters) {
    if (row.a == row.b) continue;
    if (!first) j.push_back(',');
    first = false;
    j.append("\n    ");
    append_escaped(&j, row.name);
    j.append(": {\"a\": ").append(std::to_string(row.a));
    j.append(", \"b\": ").append(std::to_string(row.b));
    j.append(", \"delta\": ")
        .append(std::to_string(static_cast<long long>(row.b) -
                               static_cast<long long>(row.a)));
    j.push_back('}');
  }
  j.append(first ? "}" : "\n  }");
  j.append(",\n  \"rank_stability\": ");
  append_escaped(&j, d.rank_stability);
  j.append("\n}\n");
  return j;
}

}  // namespace sddd::obs
