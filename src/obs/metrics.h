// metrics.h - Lock-cheap process-wide metrics registry.
//
// Three metric kinds, all safe for concurrent writers on hot paths:
//
//   Counter    monotonic uint64; add() is one relaxed fetch_add on a
//              per-thread shard (16 cache-line-padded slots), so parallel
//              loops never contend on one line.  value() sums the shards -
//              integer addition is exact and order-independent, so the
//              merged value is deterministic for a given amount of work no
//              matter how threads were scheduled.
//   Gauge      last-write-wins double (configuration-style values: thread
//              width, sample count).
//   Histogram  fixed upper-bound buckets plus one overflow bucket; counts
//              are sharded uint64 like counters, so merged bucket counts
//              are deterministic too.  Value v lands in the first bucket
//              with v <= bound.
//
// Registration is strict: every metric name is registered exactly once
// (contract OBS001 - duplicate registration, or re-registration under a
// different kind, reports a ContractViolation per the SDDD_CHECK mode and
// returns the existing metric).  Hot paths therefore cache the reference:
//
//   obs::Counter& c = obs::MetricsRegistry::instance()
//                         .register_counter("mc.samples");   // once
//   c.add(n);                                                // per event
//
// snapshot() captures every metric by name (std::map, so iteration order
// is the name order - stable across runs); counter deltas between two
// snapshots attribute work to a program phase (see eval/experiment.h).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sddd::obs {

/// Monotonic nanoseconds (steady clock); the time base shared by the
/// metrics timers and the tracer.
std::uint64_t now_ns();

inline constexpr std::size_t kMetricShards = 16;

/// Stable per-thread shard index in [0, kMetricShards).
std::size_t this_thread_shard();

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) noexcept {
    shards_[this_thread_shard()].v.fetch_add(delta,
                                             std::memory_order_relaxed);
  }

  /// Exact sum over shards.  Deterministic at quiescence; while writers
  /// run it is a consistent lower bound.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard (tests and per-run baselines).
  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::string name_;
  std::array<Shard, kMetricShards> shards_{};
};

class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; bucket i counts values
  /// v <= upper_bounds[i] (first match), the last bucket counts overflow.
  Histogram(std::string name, std::span<const double> upper_bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double v) noexcept;

  /// bounds().size() + 1 (the trailing overflow bucket).
  std::size_t bucket_count() const { return bounds_.size() + 1; }
  std::uint64_t count_in_bucket(std::size_t bucket) const;
  std::uint64_t total_count() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void reset() noexcept;

  const std::string& name() const { return name_; }

 private:
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
  };
  std::string name_;
  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Point-in-time copy of every registered metric, keyed (and therefore
/// ordered) by name.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries

    std::uint64_t total() const;  ///< sum of all bucket counts

    /// Bucket-interpolated quantile estimate for q in [0, 1]: walks the
    /// cumulative counts to the target rank and interpolates linearly
    /// inside the bucket (the first bucket spans [0, bounds[0]]).  Values
    /// in the overflow bucket clamp to the last bound, so p99 of a
    /// histogram whose tail escaped the bounds reads as ">= last bound".
    /// Returns 0 for an empty histogram.
    double quantile(double q) const;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  std::uint64_t counter_or(std::string_view name,
                           std::uint64_t fallback = 0) const;

  /// (after - before) of one counter, clamped at 0.
  static std::uint64_t counter_delta(const MetricsSnapshot& before,
                                     const MetricsSnapshot& after,
                                     std::string_view name);

  /// Same delta, interpreted as nanoseconds and returned in seconds.
  static double delta_ns_to_seconds(const MetricsSnapshot& before,
                                    const MetricsSnapshot& after,
                                    std::string_view name);

  void write_json(std::ostream& os) const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem records into.
  static MetricsRegistry& instance();

  /// Strict registration: the first call for a name creates the metric;
  /// any further registration (same or different kind) is contract OBS001
  /// and returns the already-registered metric so warn-mode execution can
  /// continue.  Registering a histogram again checks bound compatibility
  /// the same way.
  Counter& register_counter(std::string_view name);
  Gauge& register_gauge(std::string_view name);
  Histogram& register_histogram(std::string_view name,
                                std::span<const double> upper_bounds);

  /// Lookup without registration; nullptr when the name is unknown.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  MetricsSnapshot snapshot() const;

  /// Snapshot serialized as one JSON object (see DESIGN.md section 9).
  void write_json(std::ostream& os) const;
  bool write_file(const std::string& path) const;

  /// Zeroes every metric value; registrations (and the references held by
  /// call sites) stay valid.
  void reset_values();

 private:
  MetricsRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  /// Reports OBS001 and returns false when `name` is already registered.
  bool claim_name(std::string_view name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Kind, std::less<>> kinds_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Adds the scope's elapsed nanoseconds to a counter on destruction; the
/// building block of the per-phase CPU attribution (counters sum across
/// threads, so a parallel phase reports thread-seconds).
class ScopedNsTimer {
 public:
  explicit ScopedNsTimer(Counter& c) noexcept : c_(&c), t0_(now_ns()) {}
  ScopedNsTimer(const ScopedNsTimer&) = delete;
  ScopedNsTimer& operator=(const ScopedNsTimer&) = delete;
  ~ScopedNsTimer() { c_->add(now_ns() - t0_); }

 private:
  Counter* c_;
  std::uint64_t t0_;
};

}  // namespace sddd::obs
