#include "obs/expo.h"

#include <algorithm>
#include <cstdio>

namespace sddd::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal JSON string quoting (circuit names may carry anything).
std::string json_escape(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      case '\r':
        out.append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Prometheus metric-name charset: [a-zA-Z0-9_], everything else folds
/// to '_'.  Prefixed "sddd_" (plus "win_" for windowed series).
std::string prom_name(std::string_view prefix, std::string_view name) {
  std::string out(prefix);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// Trace ids

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool valid_trace_id(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::uint64_t trace_key(std::string_view id) {
  if (id.empty() || id.size() > 16) return fnv1a64(id);
  std::uint64_t v = 0;
  for (const char c : id) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return fnv1a64(id);  // not canonical hex: hash it
    }
    v = (v << 4) | digit;
  }
  return v;
}

// ---------------------------------------------------------------------------
// SlowRequestRing

void SlowRequestRing::insert(SlowRequest request) {
  if (capacity_ == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.seq = next_seq_++;
  entry.request = std::move(request);
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
    return;
  }
  // Evict the fastest entry; on a total_us tie the LATER insertion goes,
  // so long-lived slow requests are stable under churn.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const Entry& v = entries_[victim];
    if (e.request.total_us < v.request.total_us ||
        (e.request.total_us == v.request.total_us && e.seq > v.seq)) {
      victim = i;
    }
  }
  if (entry.request.total_us <= entries_[victim].request.total_us) {
    return;  // the newcomer is the victim (ties keep the earlier entry)
  }
  entries_[victim] = std::move(entry);
}

std::vector<SlowRequest> SlowRequestRing::top() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.request.total_us != b.request.total_us) {
      return a.request.total_us > b.request.total_us;
    }
    return a.seq < b.seq;
  });
  std::vector<SlowRequest> out;
  out.reserve(sorted.size());
  for (Entry& e : sorted) out.push_back(std::move(e.request));
  return out;
}

// ---------------------------------------------------------------------------
// Renderers

std::string stats_to_json(const StatsSnapshot& s) {
  std::string out = "{\"ok\":true,\"op\":\"stats\"";
  out.append(",\"service\":").append(json_escape(s.service));
  out.append(",\"git_sha\":").append(json_escape(s.git_sha));
  out.append(",\"uptime_s\":").append(format_double(s.uptime_s));
  out.append(",\"draining\":").append(s.draining ? "true" : "false");
  out.append(",\"inflight\":").append(std::to_string(s.inflight));
  out.append(",\"counters\":{");
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    if (!first) out.push_back(',');
    first = false;
    out.append(json_escape(name)).append(":").append(std::to_string(v));
  }
  out.append("},\"window\":").append(s.window.to_json());
  out.append(",\"slow\":[");
  for (std::size_t i = 0; i < s.slow.size(); ++i) {
    const SlowRequest& r = s.slow[i];
    if (i > 0) out.push_back(',');
    out.append("{\"trace_id\":").append(json_escape(r.trace_id));
    out.append(",\"circuit\":").append(json_escape(r.circuit));
    out.append(",\"batch\":").append(std::to_string(r.batch));
    out.append(",\"total_us\":").append(std::to_string(r.total_us));
    out.append(",\"phases\":{");
    bool p_first = true;
    for (const auto& [phase, us] : r.phases_us) {
      if (!p_first) out.push_back(',');
      p_first = false;
      out.append(json_escape(phase)).append(":").append(std::to_string(us));
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

std::string stats_to_prometheus(const StatsSnapshot& s) {
  std::string out;
  const auto gauge = [&out](const std::string& name, const std::string& v) {
    out.append("# TYPE ").append(name).append(" gauge\n");
    out.append(name).append(" ").append(v).append("\n");
  };
  gauge(prom_name("sddd_", "uptime_seconds"), format_double(s.uptime_s));
  gauge(prom_name("sddd_", "draining"), s.draining ? "1" : "0");
  gauge(prom_name("sddd_", "inflight"), std::to_string(s.inflight));
  for (const auto& [name, v] : s.counters) {
    const std::string p = prom_name("sddd_", name) + "_total";
    out.append("# TYPE ").append(p).append(" counter\n");
    out.append(p).append(" ").append(std::to_string(v)).append("\n");
  }
  // Windowed series: counters become gauges (a rate over the horizon),
  // histograms the standard cumulative-bucket exposition.
  for (const auto& [name, v] : s.window.counters) {
    gauge(prom_name("sddd_win_", name), std::to_string(v));
  }
  for (const auto& [name, h] : s.window.histograms) {
    const std::string p = prom_name("sddd_win_", name);
    out.append("# TYPE ").append(p).append(" histogram\n");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      out.append(p).append("_bucket{le=\"");
      out.append(i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf");
      out.append("\"} ").append(std::to_string(cumulative)).append("\n");
    }
    out.append(p).append("_sum ").append(std::to_string(h.sum)).append("\n");
    out.append(p).append("_count ")
        .append(std::to_string(h.total()))
        .append("\n");
  }
  return out;
}

}  // namespace sddd::obs
