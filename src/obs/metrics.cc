#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/atomic_file.h"
#include "obs/check.h"

namespace sddd::obs {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

Histogram::Histogram(std::string name, std::span<const double> upper_bounds)
    : name_(std::move(name)),
      bounds_(upper_bounds.begin(), upper_bounds.end()) {
  SDDD_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "OBS002",
             "histogram \"" + name_ +
                 "\": bucket bounds must be strictly increasing");
  const std::size_t n = bucket_count();
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.counts[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::record(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  shards_[this_thread_shard()].counts[bucket].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count_in_bucket(std::size_t bucket) const {
  if (bucket >= bucket_count()) return 0;
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.counts[bucket].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::total_count() const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < bucket_count(); ++b) {
    total += count_in_bucket(b);
  }
  return total;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (std::size_t b = 0; b < bucket_count(); ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? fallback : it->second;
}

std::uint64_t MetricsSnapshot::counter_delta(const MetricsSnapshot& before,
                                             const MetricsSnapshot& after,
                                             std::string_view name) {
  const std::uint64_t a = after.counter_or(name);
  const std::uint64_t b = before.counter_or(name);
  return a > b ? a - b : 0;
}

double MetricsSnapshot::delta_ns_to_seconds(const MetricsSnapshot& before,
                                            const MetricsSnapshot& after,
                                            std::string_view name) {
  return static_cast<double>(counter_delta(before, after, name)) * 1e-9;
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::uint64_t MetricsSnapshot::HistogramData::total() const {
  std::uint64_t n = 0;
  for (const std::uint64_t c : counts) n += c;
  return n;
}

double MetricsSnapshot::HistogramData::quantile(double q) const {
  const std::uint64_t n = total();
  if (n == 0 || counts.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const double reached = static_cast<double>(cumulative + in_bucket);
    if (reached >= target) {
      if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + fraction * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": " << v;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": " << v;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(os, name);
    os << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      os << (i ? ", " : "") << h.bounds[i];
    }
    os << "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << (i ? ", " : "") << h.counts[i];
    }
    os << "], \"total\": " << h.total() << ", \"p50\": " << h.quantile(0.50)
       << ", \"p95\": " << h.quantile(0.95) << ", \"p99\": " << h.quantile(0.99)
       << "}";
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

bool MetricsRegistry::claim_name(std::string_view name, Kind kind) {
  // Caller holds mu_.
  const auto [it, inserted] = kinds_.emplace(std::string(name), kind);
  if (inserted) return true;
  detail::report_violation(
      "OBS001", "metric \"" + std::string(name) +
                    "\" registered more than once; every metric name must "
                    "be registered exactly once");
  return false;
}

Counter& MetricsRegistry::register_counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (claim_name(name, Kind::kCounter)) {
    return *counters_
                .emplace(std::string(name),
                         std::make_unique<Counter>(std::string(name)))
                .first->second;
  }
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  // The name belongs to another kind; return a quarantined counter so
  // warn-mode callers still have something safe to write into.
  return *counters_
              .emplace(std::string(name),
                       std::make_unique<Counter>(std::string(name)))
              .first->second;
}

Gauge& MetricsRegistry::register_gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (claim_name(name, Kind::kGauge)) {
    return *gauges_
                .emplace(std::string(name),
                         std::make_unique<Gauge>(std::string(name)))
                .first->second;
  }
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_
              .emplace(std::string(name),
                       std::make_unique<Gauge>(std::string(name)))
              .first->second;
}

Histogram& MetricsRegistry::register_histogram(
    std::string_view name, std::span<const double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (claim_name(name, Kind::kHistogram)) {
    return *histograms_
                .emplace(std::string(name),
                         std::make_unique<Histogram>(std::string(name),
                                                     upper_bounds))
                .first->second;
  }
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>(
                                              std::string(name), upper_bounds))
              .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.counts.resize(h->bucket_count());
    for (std::size_t b = 0; b < h->bucket_count(); ++b) {
      data.counts[b] = h->count_in_bucket(b);
    }
    snap.histograms.emplace(name, std::move(data));
  }
  return snap;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  snapshot().write_json(os);
}

bool MetricsRegistry::write_file(const std::string& path) const {
  // Atomic (temp + rename): a run killed mid-flush must never leave a
  // truncated metrics JSON for a CI parse step to choke on.
  std::ostringstream os;
  write_json(os);
  return atomic_write_file(path, os.str());
}

void MetricsRegistry::reset_values() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace sddd::obs
