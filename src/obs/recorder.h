// recorder.h - The flight recorder: always-on, lock-cheap per-thread ring
// buffers of small structured events, dumped as a postmortem bundle when
// something goes wrong (a trial is quarantined, a deadline fires, the
// process aborts via std::terminate).
//
// Design rules:
//   * Recording must be cheap enough to leave on in benchmarks: one
//     uncontended per-thread mutex acquire and a 40-byte POD store into a
//     fixed 512-slot ring (the oldest event is overwritten, never
//     allocated).  No strings, no formatting on the hot path.
//   * Events carry only SCHEDULE-INDEPENDENT payloads (trial index, error
//     code, fault occurrence index, suspect arc id) so the merged event
//     list is a deterministic function of the run, not of thread count --
//     as long as no ring overflowed (at >512 events/thread, which ring
//     kept which events depends on how work was partitioned).
//   * The merge sorts by (kind, detail, key, a, b): a canonical order that
//     needs no cross-thread timestamps, keeping the bit-identical-at-any-
//     thread-count invariant for the bundles the tests compare.
//
// The postmortem bundle (see dump_postmortem in obs.h) pairs the merged
// events with the run_id (cross-linking the run's manifest / result JSON /
// checkpoint journal) and a full metrics snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sddd::obs {

enum class EventKind : std::uint8_t {
  kTrialBegin = 0,   ///< key = trial index
  kTrialEnd = 1,     ///< key = trial index, a = TrialStatus
  kTrialError = 2,   ///< key = trial index, detail = error-taxonomy code
  kFaultInjected = 3,  ///< detail = fault site, key = occurrence index
  kCacheMiss = 4,    ///< key = columns built in a signature-cache miss
  kDeadline = 5,     ///< key = trial index the deadline cut off
  kDiagnose = 6,     ///< key = failing patterns, a = suspects, b = patterns
  kServeRequest = 7,  ///< key = trace key, a = batch, b = request ordinal;
                      ///< detail = outcome ("ok", "deadline", ...)
};

/// Stable lower-case dotted name ("trial.begin", "fault.injected", ...).
const char* event_kind_name(EventKind kind);

struct RecorderEvent {
  std::uint64_t key = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  char detail[15] = {};  ///< short NUL-terminated tag; truncated to fit
  EventKind kind = EventKind::kTrialBegin;
};

class Recorder {
 public:
  /// Slots per thread; older events are overwritten ("last N wins").
  static constexpr std::size_t kRingCapacity = 512;
  /// Cap on events embedded in one postmortem bundle (tail of the sorted
  /// merge; the bundle reports how many were elided).
  static constexpr std::size_t kMaxPostmortemEvents = 2048;

  static Recorder& instance();

  /// Records one event into the calling thread's ring.  Never throws,
  /// never allocates after the ring exists.
  void record(EventKind kind, std::string_view detail, std::uint64_t key,
              std::uint64_t a = 0, std::uint64_t b = 0) noexcept;

  /// The run_id stamped into postmortem bundles; set by
  /// run_diagnosis_experiment (and the bench mains) as soon as the
  /// fingerprint is known.
  void set_run_id(std::string run_id);
  std::string run_id() const;

  /// Every live ring's contents in the canonical deterministic order.
  std::vector<RecorderEvent> merged_events() const;

  /// The merged events rendered as a JSON array (exactly the "events"
  /// value inside a postmortem bundle) -- handy for byte-equality tests.
  std::string merged_events_json() const;

  /// The full postmortem bundle: run_id, reason, merged events, drop
  /// accounting and a metrics snapshot.
  std::string postmortem_json(std::string_view reason) const;

  std::uint64_t recorded_count() const;  ///< total record() calls
  std::uint64_t dropped_count() const;   ///< ring slots overwritten

  /// Empties every ring and the counts (tests only; rings stay registered).
  void clear();

 private:
  Recorder() = default;
  struct Ring;
  Ring& local_ring();

  mutable std::mutex mu_;  ///< guards rings_ registration and iteration
  std::vector<std::shared_ptr<Ring>> rings_;
  mutable std::mutex run_id_mu_;
  std::string run_id_;
};

}  // namespace sddd::obs
