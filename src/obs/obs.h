// obs.h - One-call observability wiring for binaries.
//
// Every executable (sddd_cli, the bench_* mains) calls
// configure_observability_from_args(&argc, argv) right after argument
// intake.  It consumes the shared observability flags, falls back to
// environment variables, and registers an atexit flush so a run that
// returns from main (or std::exit()s) still lands its capture files:
//
//   --trace-out FILE      enable the tracer, write Chrome trace JSON to FILE
//   --metrics-out FILE    write the metrics snapshot JSON to FILE at exit
//   --log-level LEVEL     error | warn | info | debug
//   --ledger FILE         append one run-ledger record (obs/ledger.h) to FILE
//   --postmortem-out FILE write flight-recorder postmortem bundles to FILE
//
//   SDDD_TRACE           "0"/"" off; "1" -> sddd_trace.json; else a path
//   SDDD_METRICS         "0"/"" off; "1" -> sddd_metrics.json; else a path
//   SDDD_LOG             log threshold (see obs/log.h)
//   SDDD_LEDGER          "0"/"" off; "1" -> sddd_ledger.jsonl; else a path
//   SDDD_POSTMORTEM      "0"/"" off; "1" -> sddd_postmortem.json; else a path
//
// When a postmortem path is configured, a std::terminate handler is also
// installed so an uncaught exception or abort still leaves a bundle of the
// flight recorder's last events behind.
//
// Flags win over environment variables.  Asking for a trace in a build
// compiled with -DSDDD_TRACE=OFF logs a warning instead of silently
// writing an empty capture.
#pragma once

#include <string>
#include <string_view>

namespace sddd::obs {

/// Parses and REMOVES the observability flags from argv (so downstream
/// argument parsing never sees them), applies environment fallbacks, and
/// registers the atexit flush.  Safe to call once per process.
void configure_observability_from_args(int* argc, char** argv);

/// Writes the pending capture files immediately (the atexit hook calls
/// this; call it manually to flush before a long tail of work).  Each file
/// is written at most once per configuration.
void flush_observability_outputs();

/// Paths chosen by the configuration step; empty when the corresponding
/// output is off.  Mainly for tests and for binaries that want to mention
/// the file in their own output.
const std::string& trace_out_path();
const std::string& metrics_out_path();
const std::string& ledger_out_path();
const std::string& postmortem_out_path();

/// Overrides for tests and for binaries that pick the paths themselves
/// (the bench mains).  An empty string disables the output.
/// set_metrics_out_path re-arms the write-once flush guard, so a test can
/// point metrics at a fresh file and flush again (the server's drain path
/// relies on the same re-arm to land a complete snapshot at SIGTERM).
void set_ledger_out_path(std::string path);
void set_postmortem_out_path(std::string path);
void set_metrics_out_path(std::string path);

/// Atomically writes Recorder::instance().postmortem_json(reason) to the
/// configured postmortem path.  Returns false (quietly) when no path is
/// configured, false (with a log line) when the write fails.  Safe to call
/// repeatedly -- each call overwrites the bundle with a fresher one.
bool dump_postmortem(std::string_view reason);

/// The usage text block describing the shared flags, for --help printers.
const char* observability_usage();

}  // namespace sddd::obs
