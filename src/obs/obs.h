// obs.h - One-call observability wiring for binaries.
//
// Every executable (sddd_cli, the bench_* mains) calls
// configure_observability_from_args(&argc, argv) right after argument
// intake.  It consumes the shared observability flags, falls back to
// environment variables, and registers an atexit flush so a run that
// returns from main (or std::exit()s) still lands its capture files:
//
//   --trace-out FILE     enable the tracer, write Chrome trace JSON to FILE
//   --metrics-out FILE   write the metrics snapshot JSON to FILE at exit
//   --log-level LEVEL    error | warn | info | debug
//
//   SDDD_TRACE           "0"/"" off; "1" -> sddd_trace.json; else a path
//   SDDD_METRICS         "0"/"" off; "1" -> sddd_metrics.json; else a path
//   SDDD_LOG             log threshold (see obs/log.h)
//
// Flags win over environment variables.  Asking for a trace in a build
// compiled with -DSDDD_TRACE=OFF logs a warning instead of silently
// writing an empty capture.
#pragma once

#include <string>

namespace sddd::obs {

/// Parses and REMOVES the observability flags from argv (so downstream
/// argument parsing never sees them), applies environment fallbacks, and
/// registers the atexit flush.  Safe to call once per process.
void configure_observability_from_args(int* argc, char** argv);

/// Writes the pending capture files immediately (the atexit hook calls
/// this; call it manually to flush before a long tail of work).  Each file
/// is written at most once per configuration.
void flush_observability_outputs();

/// Paths chosen by the configuration step; empty when the corresponding
/// output is off.  Mainly for tests and for binaries that want to mention
/// the file in their own output.
const std::string& trace_out_path();
const std::string& metrics_out_path();

/// The usage text block describing the shared flags, for --help printers.
const char* observability_usage();

}  // namespace sddd::obs
