// check.h - SDDD_CHECK: configurable runtime contracts on hot paths.
//
// Lives in src/obs/ (the observability layer) so every layer above it -
// including the runtime thread pool and the metrics registry - can report
// contract violations without depending on the static-analysis rule packs.
// The static rules (analysis/rule.h) audit inputs before a run; this layer
// guards the same invariants while the pipeline executes, where a
// violation means the computation is already producing garbage.  Contracts
// share rule ids with the lint rules (DICT001, DICT002, ...) so a thrown
// violation, a warning line and a lint finding all point at the same
// documentation row; observability-owned contracts use the OBS0xx range.
//
// Modes (default off, so release hot paths pay a single relaxed atomic
// load per guarded column):
//   off    contracts compile in but do nothing;
//   warn   first violation per process prints to stderr, execution goes on;
//   throw  violation raises ContractViolation naming the rule id.
// Selected programmatically via set_check_mode() or by the SDDD_CHECK
// environment variable ("off" | "warn" | "throw").
#pragma once

#include <atomic>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sddd::obs {

enum class CheckMode : int {
  kOff = 0,
  kWarn = 1,
  kThrow = 2,
};

/// Current mode; first call resolves the SDDD_CHECK environment variable.
CheckMode check_mode();

/// Overrides the mode (tests, CLI flags).  Takes effect immediately on all
/// threads.
void set_check_mode(CheckMode m);

/// Thrown in kThrow mode; what() starts with the violated rule id.
class ContractViolation : public std::runtime_error {
 public:
  ContractViolation(std::string_view rule_id, const std::string& message);

  const std::string& rule_id() const { return rule_id_; }

 private:
  std::string rule_id_;
};

namespace detail {
/// Warns or throws per the current mode (never called in kOff).
void report_violation(std::string_view rule_id, const std::string& message);
}  // namespace detail

inline bool checks_enabled() { return check_mode() != CheckMode::kOff; }

/// Contract DICT001: every entry of a critical-probability column (M_crt /
/// E_crt, and the phi match input) lies in [0, 1].  `where` names the call
/// site for the violation message.  No-op when checks are off.
void check_probability_column(std::span<const double> column,
                              std::string_view where);

/// Contract DICT002: every entry of a signature column S_crt lies in
/// [-1, 1].  No-op when checks are off.
void check_signature_column(std::span<const double> column,
                            std::string_view where);

/// Generic guard for one-off conditions: evaluates `cond` only when checks
/// are enabled, builds `message` only on failure.
#define SDDD_CHECK(cond, rule_id, message)                         \
  do {                                                             \
    if (::sddd::obs::checks_enabled() && !(cond)) {                \
      ::sddd::obs::detail::report_violation((rule_id), (message)); \
    }                                                              \
  } while (0)

}  // namespace sddd::obs
