// log.h - Leveled logging facade.
//
// Replaces the scattered fprintf(stderr, ...) progress and warning prints
// with one gate: messages carry a level, the process carries a threshold,
// and anything above the threshold costs a relaxed atomic load plus one
// branch (the format arguments are never evaluated).
//
// The threshold resolves once from the SDDD_LOG environment variable
// ("error" | "warn" | "info" | "debug"; default "info") and can be
// overridden programmatically (set_log_level) or by --log-level on
// binaries that call obs::configure_observability_from_args.
//
// Output goes to stderr as one line per message,
//   [sddd <level>] <message>
// so stdout stays clean for machine-readable results (JSON tables).
#pragma once

#include <cstdarg>
#include <string_view>

namespace sddd::obs {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Current threshold; first call resolves SDDD_LOG.
LogLevel log_level();

/// Overrides the threshold for the rest of the process.
void set_log_level(LogLevel level);

/// True when a message at `level` would be emitted.
bool log_enabled(LogLevel level);

/// "error"/"warn"/"info"/"debug" -> level; returns false (and leaves `out`
/// untouched) on unknown names.
bool parse_log_level(std::string_view name, LogLevel* out);

const char* log_level_name(LogLevel level);

/// printf-style; emits one "[sddd <level>] ..." line to stderr when the
/// level passes the threshold.  Prefer the SDDD_LOG_* macros, which skip
/// argument evaluation entirely below the threshold.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

#define SDDD_LOG_AT(level, ...)                       \
  do {                                                \
    if (::sddd::obs::log_enabled((level))) {          \
      ::sddd::obs::logf((level), __VA_ARGS__);        \
    }                                                 \
  } while (0)

#define SDDD_LOG_ERROR(...) \
  SDDD_LOG_AT(::sddd::obs::LogLevel::kError, __VA_ARGS__)
#define SDDD_LOG_WARN(...) \
  SDDD_LOG_AT(::sddd::obs::LogLevel::kWarn, __VA_ARGS__)
#define SDDD_LOG_INFO(...) \
  SDDD_LOG_AT(::sddd::obs::LogLevel::kInfo, __VA_ARGS__)
#define SDDD_LOG_DEBUG(...) \
  SDDD_LOG_AT(::sddd::obs::LogLevel::kDebug, __VA_ARGS__)

}  // namespace sddd::obs
