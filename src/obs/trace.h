// trace.h - Scoped-span tracer emitting Chrome trace_event JSON.
//
// Spans mark where time goes inside a run: Monte-Carlo simulation,
// dictionary construction, diagnosis scoring, pool jobs.  The output is
// the Chrome trace format ("X" complete events with microsecond ts/dur),
// so a capture opens directly in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.
//
// Cost model, from cheapest to free:
//   - compiled out:   build with -DSDDD_TRACE=OFF (cmake option) and the
//                     SDDD_SPAN macros expand to a no-op NullSpan - zero
//                     overhead in the hot loop, args are never evaluated
//                     into events;
//   - compiled in, disabled (the default at runtime): constructing a span
//     is one relaxed atomic load and a branch; no allocation, no clock
//     read, no event;
//   - enabled: two clock reads per span plus one buffered event; events go
//     to per-thread buffers (no lock on the hot path beyond an uncontended
//     per-buffer mutex) and merge sorted by timestamp at write time.
//
// Runtime enablement: obs::configure_observability_from_args (--trace-out
// FILE or the SDDD_TRACE environment variable; see obs/obs.h) or
// Tracer::instance().enable() directly.
//
// Span names are static strings, dot-namespaced by subsystem
// ("dict.slice", "diag.pattern", "pool.run", "exp.trial", ...; catalog in
// DESIGN.md section 9).  Up to 4 args per span carry identifying context
// (circuit, suspect id, pattern index).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef SDDD_TRACE
#define SDDD_TRACE 1
#endif

namespace sddd::obs {

/// True in builds where the SDDD_SPAN macros emit real spans.
inline constexpr bool kTraceCompiledIn = SDDD_TRACE != 0;

struct TraceArg {
  enum class Kind : std::uint8_t { kNone, kInt, kDouble, kString };
  const char* key = nullptr;  ///< static-storage string
  Kind kind = Kind::kNone;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
};

inline constexpr std::size_t kMaxSpanArgs = 4;

struct TraceEvent {
  const char* name = nullptr;  ///< static-storage string
  std::uint64_t ts_ns = 0;     ///< since the tracer epoch (enable() time)
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::array<TraceArg, kMaxSpanArgs> args;
  std::uint8_t n_args = 0;
};

class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts capturing; the epoch (ts = 0) is the first enable() call so
  /// timestamps stay small and Perfetto-friendly.
  void enable();
  void disable();

  /// Drops every buffered event (tests; the capture files of separate runs).
  void clear();

  std::size_t event_count() const;
  std::uint64_t dropped_count() const;

  /// Appends one complete event to the calling thread's buffer.  Buffers
  /// are capped (1M events per thread); overflow increments the dropped
  /// counter instead of growing without bound.
  void record(TraceEvent&& event);

  /// Stable per-thread id used in the "tid" field (assigned in first-use
  /// order, starting at 0).
  std::uint32_t this_thread_tid();

  /// Chrome trace JSON of everything captured so far, events sorted by
  /// timestamp.  Safe to call while disabled; concurrent recording threads
  /// only block on their own buffer's mutex.
  void write_json(std::ostream& os) const;
  bool write_file(const std::string& path) const;
  std::uint64_t epoch_ns() const { return epoch_ns_; }

 private:
  Tracer() = default;
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::uint64_t epoch_ns_ = 0;
  std::atomic<std::uint64_t> dropped_{0};

  mutable std::mutex mu_;  ///< guards buffers_ (the list, not the events)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: records one "X" event covering its lifetime.  When the
/// tracer is disabled the constructor is a relaxed load + branch and every
/// other member is a no-op (no allocation - the determinism and overhead
/// contract tests rely on this).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    if (Tracer::instance().enabled()) {
      name_ = name;
      start_ns_ = now_ns_();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (name_ != nullptr) finish();
  }

  ScopedSpan& arg(const char* key, std::int64_t v) noexcept;
  ScopedSpan& arg(const char* key, std::uint64_t v) noexcept;
  ScopedSpan& arg(const char* key, int v) noexcept {
    return arg(key, static_cast<std::int64_t>(v));
  }
  ScopedSpan& arg(const char* key, double v) noexcept;
  ScopedSpan& arg(const char* key, std::string_view v);

 private:
  static std::uint64_t now_ns_();
  TraceArg* next_arg(const char* key) noexcept;
  void finish() noexcept;

  const char* name_ = nullptr;  ///< nullptr = span inactive
  std::uint64_t start_ns_ = 0;
  std::array<TraceArg, kMaxSpanArgs> args_;
  std::uint8_t n_args_ = 0;
};

/// Compiled-out stand-in: every member is an inline no-op.
struct NullSpan {
  template <typename T>
  NullSpan& arg(const char*, T&&) noexcept {
    return *this;
  }
};

}  // namespace sddd::obs

// SDDD_SPAN(var, "name") declares a scoped span named `var`; annotate it
// with var.arg("key", value).  With -DSDDD_TRACE=OFF the span (and every
// arg expression's side effects on the trace) compiles away.
#if SDDD_TRACE
#define SDDD_SPAN(var, name) ::sddd::obs::ScopedSpan var((name))
#else
#define SDDD_SPAN(var, name) \
  ::sddd::obs::NullSpan var; \
  (void)var
#endif
