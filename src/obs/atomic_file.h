// atomic_file.h - Crash-safe artifact writes (temp file + fsync + rename).
//
// Every tracked artifact (BENCH_*.json, metrics/trace captures, the
// checkpoint sidecar files) goes through atomic_write_file so a run killed
// mid-write never leaves a truncated or interleaved file behind: readers
// see either the previous complete content or the new complete content,
// never a prefix.  The sequence is the POSIX idiom
//
//   open(path.tmp.<pid>) -> write all -> fsync -> close -> rename(tmp, path)
//
// rename(2) is atomic within a filesystem; the temp file lives next to the
// target so the rename never crosses devices.  Fault seams `io.open` and
// `io.short_write` (see obs/faults.h) make both failure paths testable.
#pragma once

#include <string>
#include <string_view>

namespace sddd::obs {

/// Atomically replaces `path` with `content`.  Returns false (and cleans
/// up the temp file) on any failure - open, short write, fsync, rename.
/// Never leaves a partial `path`.
bool atomic_write_file(const std::string& path, std::string_view content);

/// atomic_write_file that throws sddd::IoError (with errno text) instead
/// of returning false, for call sites where a lost artifact is fatal.
void atomic_write_file_or_throw(const std::string& path,
                                std::string_view content);

}  // namespace sddd::obs
