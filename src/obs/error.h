// error.h - The sddd::Error taxonomy: typed exceptions with stable codes.
//
// Every module seam that can fail at runtime throws an Error (or a
// subclass) instead of a bare std::runtime_error, so callers that need to
// *dispatch* on the failure - the trial quarantine in
// eval::run_diagnosis_experiment, the CLI exit paths, the checkpoint
// loader - match on a small closed enum instead of parsing what() strings.
// The codes are stable identifiers: they appear in checkpoint journals,
// in the quarantine fields of experiment results / BENCH JSON, and in the
// DESIGN.md section 10 error-code table, so renaming one is a format
// change, not a refactor.
//
// Every Error still derives from std::runtime_error, so pre-taxonomy
// call sites (and tests) that catch std::runtime_error keep working.
//
//   code       meaning                                   typical thrower
//   ---------  ----------------------------------------  -----------------
//   parse      malformed input text (netlist, CSV)       bench_io, dictionary_io
//   model      invalid model/config for the requested op experiment setup
//   numeric    non-finite or out-of-domain value          delay materialization
//   io         file open/write/rename/fsync failure       atomic_file, checkpoint
//   cancelled  cooperative cancellation was requested     CancelToken::poll
//   deadline   a time budget expired                      CancelToken::poll
//   fault      deterministically injected test failure    obs::fault_point
//   internal   anything else caught at a quarantine seam  (foreign exceptions)
//   store      persistent dictionary store is unusable    store::DictionaryStore
//              (bad magic/version, checksum mismatch,
//              truncation, fingerprint mismatch)
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sddd {

enum class ErrorCode : int {
  kParse = 0,
  kModel = 1,
  kNumeric = 2,
  kIo = 3,
  kCancelled = 4,
  kDeadline = 5,
  kFault = 6,
  kInternal = 7,
  kStore = 8,
};

/// Stable lower-case name of a code ("parse", "model", ...).
std::string_view error_code_name(ErrorCode code);

/// Inverse of error_code_name; false when `name` is not a known code.
bool parse_error_code(std::string_view name, ErrorCode* out);

/// Base of the taxonomy.  what() is "[<code>] <message>" so untyped log
/// lines still carry the code.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message);

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Malformed input text.  Carries the source label (file path or stream
/// name) and 1-based line so every parse diagnostic names its location;
/// line 0 = whole-input failure (e.g. a graph check after reading).
class ParseError : public Error {
 public:
  ParseError(std::string source, std::size_t line, const std::string& message);

  const std::string& source() const noexcept { return source_; }
  std::size_t line() const noexcept { return line_; }

 private:
  std::string source_;
  std::size_t line_;
};

class ModelError : public Error {
 public:
  explicit ModelError(const std::string& message)
      : Error(ErrorCode::kModel, message) {}
};

class NumericError : public Error {
 public:
  explicit NumericError(const std::string& message)
      : Error(ErrorCode::kNumeric, message) {}
};

class IoError : public Error {
 public:
  explicit IoError(const std::string& message)
      : Error(ErrorCode::kIo, message) {}
};

class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& message)
      : Error(ErrorCode::kCancelled, message) {}
};

class DeadlineError : public Error {
 public:
  explicit DeadlineError(const std::string& message)
      : Error(ErrorCode::kDeadline, message) {}
};

/// Thrown only by the fault-injection harness (obs/faults.h).
class FaultInjectedError : public Error {
 public:
  explicit FaultInjectedError(const std::string& message)
      : Error(ErrorCode::kFault, message) {}
};

/// A persistent dictionary store failed open-time verification (bad magic,
/// unsupported format version, per-section checksum mismatch, truncation,
/// or an experiment-fingerprint mismatch against the caller's stack).
/// Carries the offending section name ("header", "m", "e", ...) so the
/// serve path can quarantine precisely and tests can assert blame; empty
/// when the failure precedes section identification (e.g. open(2) failed).
class StoreError : public Error {
 public:
  StoreError(std::string section, const std::string& message)
      : Error(ErrorCode::kStore, message), section_(std::move(section)) {}

  const std::string& section() const noexcept { return section_; }

 private:
  std::string section_;
};

}  // namespace sddd
