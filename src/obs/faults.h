// faults.h - Deterministic fault injection at named seams (SDDD_FAULTS).
//
// The resilience layer (trial quarantine, checkpoint/resume, atomic
// artifact writes) only earns its keep if its failure paths are testable.
// This harness lets a test or a CI step inject failures at production call
// sites without rebuilding: each seam is a named call
//
//   obs::fault_point("exp.trial", trial_index);   // throws when selected
//   if (obs::fault_at("io.open", occurrence)) ... // branch when selected
//
// keyed by (site, k).  k is chosen by the seam to be schedule-independent
// (a trial index, an arc id, a record ordinal), so with a fixed spec the
// same failures fire no matter the thread count - injected runs are as
// reproducible as clean ones.
//
// Spec grammar (SDDD_FAULTS environment variable, or set_fault_spec()):
//
//   spec     := entry (';' entry)*
//   entry    := site '@' selector
//   selector := '*'            every occurrence
//             | '%' m          k % m == 0
//             | '<' n          k < n
//             | k (',' k)*     exactly these k values
//
//   SDDD_FAULTS="exp.trial@1,3"        fail trials 1 and 3
//   SDDD_FAULTS="ckpt.write@%2"        fail every other journal append
//   SDDD_FAULTS="io.open@*"            every atomic artifact write fails
//
// Seam catalog (DESIGN.md section 10 keeps the authoritative table):
//   exp.trial    task throw inside an experiment trial   k = trial index
//   mc.nan_row   NaN delay sample in a memoized arc row  k = arc id
//   ckpt.open    checkpoint journal open failure         k = 0
//   ckpt.write   checkpoint journal append failure       k = trial index
//   io.open      atomic artifact write: open fails       k = call ordinal
//   io.short_write  atomic artifact write: short write   k = call ordinal
//   store.open   dictionary store open(2)/mmap fails     k = open ordinal
//   store.crc    store section checksum verify fails     k = section verify
//                                                            ordinal (file
//                                                            open order x
//                                                            section order)
//   serve.accept server drops a connection at accept     k = accept ordinal
//   serve.write  server response write fails (conn cut)  k = response ordinal
//   serve.deadline  request treated as deadline-expired  k = request ordinal
//   serve.store  diagnose throws StoreError mid-flight   k = request ordinal
//                (exercises the quarantine-on-serve path)
//
// Every selected injection increments the `fault.injected` counter, so a
// run can assert exactly how many faults fired.  With no spec configured
// fault_at() is one relaxed atomic load - safe on hot paths.
#pragma once

#include <cstdint>
#include <string_view>

namespace sddd::obs {

/// True when a non-empty fault spec is active.
bool faults_enabled();

/// Installs `spec` (the SDDD_FAULTS grammar above), replacing any previous
/// spec; an empty string disables injection.  Throws sddd::Error(parse) on
/// a malformed spec.  The SDDD_FAULTS environment variable is read once,
/// at the first query; set_fault_spec() overrides it (tests, tools).
void set_fault_spec(std::string_view spec);

/// True when the active spec selects occurrence `k` of seam `site`.
/// Increments `fault.injected` on a hit.
bool fault_at(std::string_view site, std::uint64_t k);

/// Throws sddd::FaultInjectedError naming (site, k) when selected; no-op
/// otherwise.  The one-line form production seams use.
void fault_point(std::string_view site, std::uint64_t k);

}  // namespace sddd::obs
