#include "obs/error.h"

namespace sddd {

namespace {

constexpr std::string_view kCodeNames[] = {
    "parse", "model", "numeric", "io", "cancelled", "deadline", "fault",
    "internal", "store"};

std::string with_code_prefix(ErrorCode code, const std::string& message) {
  std::string s = "[";
  s += error_code_name(code);
  s += "] ";
  s += message;
  return s;
}

std::string with_location(const std::string& source, std::size_t line,
                          const std::string& message) {
  std::string s = source;
  if (line != 0) {
    s += " line ";
    s += std::to_string(line);
  }
  s += ": ";
  s += message;
  return s;
}

}  // namespace

std::string_view error_code_name(ErrorCode code) {
  const auto i = static_cast<std::size_t>(code);
  return i < std::size(kCodeNames) ? kCodeNames[i] : "internal";
}

bool parse_error_code(std::string_view name, ErrorCode* out) {
  for (std::size_t i = 0; i < std::size(kCodeNames); ++i) {
    if (kCodeNames[i] == name) {
      *out = static_cast<ErrorCode>(i);
      return true;
    }
  }
  return false;
}

Error::Error(ErrorCode code, const std::string& message)
    : std::runtime_error(with_code_prefix(code, message)), code_(code) {}

ParseError::ParseError(std::string source, std::size_t line,
                       const std::string& message)
    : Error(ErrorCode::kParse, with_location(source, line, message)),
      source_(std::move(source)),
      line_(line) {}

}  // namespace sddd
