// netlist_rules.h - Structural well-formedness rules (NET001..NET007).
//
// Levelization and freeze() reject some malformed netlists with a bare
// throw; these rules diagnose the same defects (and several that the core
// silently tolerates) with actionable, per-location findings:
//
//   NET001  error    combinational cycle (not cut by a DFF)
//   NET002  error    undriven net: combinational gate with no fanins
//                    (declared-but-undefined signal) or dangling fanin id
//   NET003  error    floating net: gate output drives nothing and is not a
//                    primary output (unused primary inputs are warnings)
//   NET004  error    multiply-driven primary output (same net listed twice)
//   NET005  warning  unreachable gate: fanin cone holds no PI/DFF, so the
//                    gate can never launch a transition (dead for delay test)
//   NET006  warning  dead primary output: observes no PI/DFF transition
//   NET007  error    broken scan chain: DFF arity != 1 or DFF data input
//                    tied to its own output (unscannable feedback)
//
// See analyzer.h for registration; rules run on frozen or unfrozen netlists
// (all topology is derived from the fanin lists).
#pragma once

#include "analysis/analyzer.h"

namespace sddd::analysis {

inline constexpr std::string_view kRuleCombinationalCycle = "NET001";
inline constexpr std::string_view kRuleUndrivenNet = "NET002";
inline constexpr std::string_view kRuleFloatingNet = "NET003";
inline constexpr std::string_view kRuleMultiplyDriven = "NET004";
inline constexpr std::string_view kRuleUnreachableGate = "NET005";
inline constexpr std::string_view kRuleDeadOutput = "NET006";
inline constexpr std::string_view kRuleScanChain = "NET007";

}  // namespace sddd::analysis
