// rule.h - The diagnostic pass interface and the subjects rules inspect.
//
// A Rule examines one aspect of an AnalysisInput and appends Findings to a
// Report.  Rules are independent of each other (the Analyzer fans them out
// over the runtime thread pool), stateless, and skip silently when their
// subject is absent from the input - so one rule registry serves netlist-
// only preflights and full dictionary audits alike.
//
// Rules receive a PassContext (pass.h), not the raw AnalysisInput: shared
// facts (fanouts, reachability, cycles, per-pattern sensitization) are
// computed once per run by the pass framework and served to every rule
// that asks, instead of each rule re-deriving its own topology.
//
// Subjects are deliberately plain data (or const pointers to existing
// library types): the analysis layer depends only on netlist/timing/stats
// and the sensitization stack (logicsim/paths), never on diagnosis, so the
// diagnosis libraries can in turn depend on the runtime-contract half of
// this module (check.h) without a cycle.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/finding.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/netlist.h"
#include "timing/delay_model.h"

namespace sddd::analysis {

class PassContext;

/// A correlation matrix to validate (row-major, dim x dim), e.g. the input
/// of stats::cholesky_lower or a pairwise arc-delay correlation model.
struct CorrelationSubject {
  std::vector<double> matrix;
  std::size_t dim = 0;
};

/// A probabilistic fault dictionary (or a slice of one) to validate.
/// Matrices are output-major: m_crt[i][j] is output i under pattern j,
/// matching FaultDictionary::m_matrix().  Empty members are skipped.
struct DictionarySubject {
  std::size_t n_outputs = 0;   ///< |O|: declared output count
  std::size_t n_patterns = 0;  ///< |TP|: declared pattern count
  /// Defect-free critical probabilities M_crt (entries must be in [0,1]).
  std::vector<std::vector<double>> m_crt;
  /// One suspect's signature matrix S_crt = E_crt - M_crt (entries must be
  /// in [-1,1]); label identifies the suspect (e.g. "arc 42").
  struct Signature {
    std::string label;
    std::vector<std::vector<double>> s_crt;
  };
  std::vector<Signature> signatures;
  /// Monte-Carlo samples behind every probability entry; 0 = unknown
  /// (disables the DICT006 sample-budget check).
  std::size_t mc_samples = 0;
  /// Worst-case 95% confidence halfwidth the dictionary user wants its
  /// entries resolved to (DICT006 warns when mc_samples cannot deliver it).
  double target_ci_halfwidth = 0.1;
};

/// A (netlist, pattern set) pair whose static diagnosability the DIAG
/// rules assess before anyone pays for a dictionary build.  The netlist
/// must be frozen, combinational (full-scan transformed) and levelizable;
/// `lev` and `logic_sim` must wrap that same netlist.  The delay model is
/// optional and enables the analytic rank-separability rule (DIAG005).
struct DiagnosabilitySubject {
  const netlist::Netlist* netlist = nullptr;
  const netlist::Levelization* lev = nullptr;
  const logicsim::BitSimulator* logic_sim = nullptr;
  std::vector<logicsim::PatternPair> patterns;
  /// Optional: per-arc delay random variables for the Clark-SSTA analytic
  /// criticality sweep behind DIAG005.  Null disables that rule.
  const timing::ArcDelayModel* delay_model = nullptr;
  /// Rated period for the analytic criticality probabilities.  0 = derive
  /// from the analytic circuit delay (its 0.9 quantile).
  double clk = 0.0;
  /// Analytic defect slowdown used for the DIAG005 signatures.  0 = derive
  /// as 0.75x the library's mean cell delay (the paper's 0.5-1.0 range).
  double defect_delta = 0.0;
  /// DIAG006 warns when the pattern-set coverage ratio is below this.
  double coverage_threshold = 0.9;
  /// DIAG005 warns when a group's nearest-neighbour analytic signature L1
  /// distance is below this.
  double separability_threshold = 0.05;
  /// Cap on the ambiguity groups entered into the O(groups^2) analytic
  /// separability comparison.
  std::size_t max_separability_groups = 64;
};

/// Everything one analysis run may inspect.  Null/absent members disable
/// the rules that need them.
struct AnalysisInput {
  /// Netlist under test.  May be unfrozen: rules derive fanouts and cycles
  /// from the fanin lists alone, which is exactly what lets them diagnose
  /// netlists that freeze()/Levelization would reject with a bare throw.
  const netlist::Netlist* netlist = nullptr;
  /// Statistical timing model (per-arc delay random variables).
  const timing::ArcDelayModel* delay_model = nullptr;
  const CorrelationSubject* correlation = nullptr;
  const DictionarySubject* dictionary = nullptr;
  const DiagnosabilitySubject* diagnosability = nullptr;
};

/// One diagnostic pass.  Implementations must be stateless and thread-safe:
/// run() may execute concurrently with other rules on the same context.
class Rule {
 public:
  virtual ~Rule() = default;

  /// Stable rule id ("NET001", "MOD003", "DICT002", "DIAG001", ...).
  virtual std::string_view id() const = 0;

  /// Default severity of this rule's findings.
  virtual Severity severity() const = 0;

  /// One-line description of what the rule catches (for --list / docs).
  virtual std::string_view summary() const = 0;

  /// Appends findings for the context's input to `out`; no-op when the
  /// subject is absent.  Shared facts come from `ctx` (computed at most
  /// once per run, however many rules ask).
  virtual void run(const PassContext& ctx, Report& out) const = 0;
};

}  // namespace sddd::analysis
