// rule.h - The diagnostic pass interface and the subjects rules inspect.
//
// A Rule examines one aspect of an AnalysisInput and appends Findings to a
// Report.  Rules are independent of each other (the Analyzer fans them out
// over the runtime thread pool), stateless, and skip silently when their
// subject is absent from the input - so one rule registry serves netlist-
// only preflights and full dictionary audits alike.
//
// Subjects are deliberately plain data (or const pointers to existing
// library types): the analysis layer depends only on netlist/timing/stats,
// never on diagnosis, so the diagnosis libraries can in turn depend on the
// runtime-contract half of this module (check.h) without a cycle.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/finding.h"
#include "netlist/netlist.h"
#include "timing/delay_model.h"

namespace sddd::analysis {

/// A correlation matrix to validate (row-major, dim x dim), e.g. the input
/// of stats::cholesky_lower or a pairwise arc-delay correlation model.
struct CorrelationSubject {
  std::vector<double> matrix;
  std::size_t dim = 0;
};

/// A probabilistic fault dictionary (or a slice of one) to validate.
/// Matrices are output-major: m_crt[i][j] is output i under pattern j,
/// matching FaultDictionary::m_matrix().  Empty members are skipped.
struct DictionarySubject {
  std::size_t n_outputs = 0;   ///< |O|: declared output count
  std::size_t n_patterns = 0;  ///< |TP|: declared pattern count
  /// Defect-free critical probabilities M_crt (entries must be in [0,1]).
  std::vector<std::vector<double>> m_crt;
  /// One suspect's signature matrix S_crt = E_crt - M_crt (entries must be
  /// in [-1,1]); label identifies the suspect (e.g. "arc 42").
  struct Signature {
    std::string label;
    std::vector<std::vector<double>> s_crt;
  };
  std::vector<Signature> signatures;
  /// Monte-Carlo samples behind every probability entry; 0 = unknown
  /// (disables the DICT006 sample-budget check).
  std::size_t mc_samples = 0;
  /// Worst-case 95% confidence halfwidth the dictionary user wants its
  /// entries resolved to (DICT006 warns when mc_samples cannot deliver it).
  double target_ci_halfwidth = 0.1;
};

/// Everything one analysis run may inspect.  Null/absent members disable
/// the rules that need them.
struct AnalysisInput {
  /// Netlist under test.  May be unfrozen: rules derive fanouts and cycles
  /// from the fanin lists alone, which is exactly what lets them diagnose
  /// netlists that freeze()/Levelization would reject with a bare throw.
  const netlist::Netlist* netlist = nullptr;
  /// Statistical timing model (per-arc delay random variables).
  const timing::ArcDelayModel* delay_model = nullptr;
  const CorrelationSubject* correlation = nullptr;
  const DictionarySubject* dictionary = nullptr;
};

/// One diagnostic pass.  Implementations must be stateless and thread-safe:
/// run() may execute concurrently with other rules on the same input.
class Rule {
 public:
  virtual ~Rule() = default;

  /// Stable rule id ("NET001", "MOD003", "DICT002", ...).
  virtual std::string_view id() const = 0;

  /// Default severity of this rule's findings.
  virtual Severity severity() const = 0;

  /// One-line description of what the rule catches (for --list / docs).
  virtual std::string_view summary() const = 0;

  /// Appends findings for `in` to `out`; no-op when the subject is absent.
  virtual void run(const AnalysisInput& in, Report& out) const = 0;
};

}  // namespace sddd::analysis
