// model_rules.h - Statistical timing-model rules (MOD001..MOD004).
//
//   MOD001  error    negative mean or sigma pin-to-pin delay
//   MOD002  warning  degenerate delay distribution (zero spread) on a
//                    combinational arc
//   MOD003  error    correlation matrix asymmetric, off-unit diagonal, or
//                    entry outside [-1, 1]
//   MOD004  error    correlation matrix not positive semi-definite
//                    (Cholesky probe with an epsilon ridge)
//
// MOD001/MOD002 inspect AnalysisInput::delay_model; MOD003/MOD004 inspect
// AnalysisInput::correlation.
#pragma once

#include "analysis/analyzer.h"

namespace sddd::analysis {

inline constexpr std::string_view kRuleNegativeDelay = "MOD001";
inline constexpr std::string_view kRuleDegenerateDelay = "MOD002";
inline constexpr std::string_view kRuleCorrelationShape = "MOD003";
inline constexpr std::string_view kRuleCorrelationNotPsd = "MOD004";

}  // namespace sddd::analysis
