#include "analysis/analysis_graph.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "analysis/rule.h"
#include "netlist/cell.h"
#include "paths/transition_graph.h"
#include "timing/clark_ssta.h"

namespace sddd::analysis {

using netlist::ArcId;
using netlist::CellType;
using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;

namespace {

bool valid_id(GateId f, std::size_t n) { return f < n; }

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a_words(const std::uint64_t* words, std::size_t n) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t w = words[i];
    for (int b = 0; b < 8; ++b) {
      h ^= w & 0xff;
      h *= kFnvPrime;
      w >>= 8;
    }
  }
  return h;
}

}  // namespace

NetlistFacts compute_netlist_facts(const Netlist& nl) {
  NetlistFacts facts;
  const std::size_t n = nl.gate_count();

  // Fanout counts from the fanin lists (dangling ids are NET002's report).
  facts.fanout.assign(n, 0);
  for (const Gate& g : nl.gates()) {
    for (const GateId f : g.fanins) {
      if (valid_id(f, n)) ++facts.fanout[f];
    }
  }

  // Source reachability: fixpoint along fanout edges; tolerates cycles.
  // DFF data inputs do not propagate a same-cycle transition.
  facts.reachable.assign(n, 0);
  {
    std::vector<std::vector<GateId>> fanouts(n);
    std::vector<GateId> queue;
    for (GateId g = 0; g < n; ++g) {
      const Gate& gate = nl.gate(g);
      const bool source =
          gate.type == CellType::kInput || gate.type == CellType::kDff;
      if (source) {
        facts.reachable[g] = 1;
        queue.push_back(g);
      }
      if (gate.type == CellType::kDff) continue;
      for (const GateId f : gate.fanins) {
        if (valid_id(f, n)) fanouts[f].push_back(g);
      }
    }
    while (!queue.empty()) {
      const GateId g = queue.back();
      queue.pop_back();
      for (const GateId s : fanouts[g]) {
        if (!facts.reachable[s]) {
          facts.reachable[s] = 1;
          queue.push_back(s);
        }
      }
    }
  }

  // Combinational-cycle back edges via iterative coloring DFS (DFF data
  // edges are cut, matching Levelization's ordering contract).  Control
  // flow - including when the root loop stops exploring - replicates the
  // pre-framework NET001 exactly, so its findings are byte-identical.
  {
    constexpr std::size_t kMaxFindings = 8;
    std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 gray, 2 black
    std::size_t reported = 0;
    for (GateId root = 0; root < n && reported < kMaxFindings; ++root) {
      if (color[root] != 0) continue;
      // Stack of (gate, next fanin index to visit).
      std::vector<std::pair<GateId, std::size_t>> stack;
      stack.emplace_back(root, 0);
      color[root] = 1;
      while (!stack.empty()) {
        auto& [g, next] = stack.back();
        const Gate& gate = nl.gate(g);
        const bool cut = gate.type == CellType::kDff;
        if (cut || next >= gate.fanins.size()) {
          color[g] = 2;
          stack.pop_back();
          continue;
        }
        const GateId f = gate.fanins[next++];
        if (!valid_id(f, n) || color[f] == 2) continue;
        if (color[f] == 1) {
          if (reported++ < kMaxFindings) {
            facts.cycle_back_edges.push_back(NetlistFacts::BackEdge{f, g});
          }
          continue;
        }
        color[f] = 1;
        stack.emplace_back(f, 0);
      }
    }
  }
  return facts;
}

ObsMatrix::ObsMatrix(std::size_t n_arcs, std::size_t n_outputs,
                     std::size_t n_patterns)
    : n_arcs_(n_arcs),
      n_outputs_(n_outputs),
      n_patterns_(n_patterns),
      n_cells_(n_outputs * n_patterns),
      words_per_row_((n_cells_ + 63) / 64),
      words_(n_arcs * words_per_row_, 0) {}

void ObsMatrix::set(ArcId a, std::size_t output, std::size_t pattern) {
  const std::size_t cell = output * n_patterns_ + pattern;
  words_[a * words_per_row_ + (cell >> 6)] |= 1ULL << (cell & 63);
}

bool ObsMatrix::test(ArcId a, std::size_t output, std::size_t pattern) const {
  const std::size_t cell = output * n_patterns_ + pattern;
  return (words_[a * words_per_row_ + (cell >> 6)] >> (cell & 63)) & 1ULL;
}

std::size_t ObsMatrix::row_popcount(ArcId a) const {
  std::size_t count = 0;
  const std::uint64_t* row = words_.data() + a * words_per_row_;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    count += static_cast<std::size_t>(std::popcount(row[w]));
  }
  return count;
}

std::uint64_t ObsMatrix::row_hash(ArcId a) const {
  return fnv1a_words(words_.data() + a * words_per_row_, words_per_row_);
}

bool ObsMatrix::row_equal(ArcId a, ArcId b) const {
  const std::uint64_t* ra = words_.data() + a * words_per_row_;
  const std::uint64_t* rb = words_.data() + b * words_per_row_;
  return std::equal(ra, ra + words_per_row_, rb);
}

bool ObsMatrix::row_subset(ArcId a, ArcId b) const {
  const std::uint64_t* ra = words_.data() + a * words_per_row_;
  const std::uint64_t* rb = words_.data() + b * words_per_row_;
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    if ((ra[w] & ~rb[w]) != 0) return false;
  }
  return true;
}

namespace {

/// One analytic Clark-SSTA arrival sweep over the pattern's active
/// subgraph, with `defect_arc`'s delay shifted by `delta` (kInvalidArc =
/// baseline).  Transition-mode semantics: a toggling gate combines its
/// active fanin arrivals with Clark max (final value non-controlled) or
/// Clark min (controlled; min(X, Y) = -max(-X, -Y)).
std::vector<timing::GaussianArrival> analytic_sweep(
    const DiagnosabilitySubject& subject, const paths::TransitionGraph& tg,
    ArcId defect_arc, double delta) {
  const Netlist& nl = *subject.netlist;
  const timing::ArcDelayModel& model = *subject.delay_model;
  std::vector<timing::GaussianArrival> arrival(nl.gate_count());
  for (const GateId g : subject.lev->topo_order()) {
    const auto& fanins = tg.active_fanins(g);
    if (fanins.empty()) continue;  // source / non-toggling: arrives at 0
    const bool take_min = tg.rule(g) == paths::ArrivalRule::kMinOverActive;
    bool first = true;
    timing::GaussianArrival acc;
    for (const ArcId a : fanins) {
      const auto& rv = model.arc_rv(a);
      const netlist::Arc& arc = nl.arc(a);
      timing::GaussianArrival in = arrival[nl.gate(arc.gate).fanins[arc.pin]];
      in.mean += rv.mean() + (a == defect_arc ? delta : 0.0);
      const double sigma = rv.stddev();
      in.var += sigma * sigma;
      if (take_min) in.mean = -in.mean;
      if (first) {
        acc = in;
        first = false;
      } else {
        acc = timing::clark_max(acc, in);
      }
    }
    if (take_min) acc.mean = -acc.mean;
    arrival[g] = acc;
  }
  return arrival;
}

/// Flattened per-(output, pattern) analytic criticality increase when
/// `arc` is slowed by `delta`: the DIAG005 signature of its ambiguity
/// group.  `base` holds the per-pattern baseline sweeps.
std::vector<double> analytic_signature(
    const DiagnosabilitySubject& subject,
    const std::vector<paths::TransitionGraph>& tgs,
    const std::vector<std::vector<timing::GaussianArrival>>& base, double clk,
    ArcId arc, double delta) {
  const Netlist& nl = *subject.netlist;
  const std::size_t n_outputs = nl.outputs().size();
  std::vector<double> sig(n_outputs * tgs.size(), 0.0);
  for (std::size_t j = 0; j < tgs.size(); ++j) {
    if (!tgs[j].is_active(arc)) continue;  // defect invisible: E == M
    const auto shifted = analytic_sweep(subject, tgs[j], arc, delta);
    for (std::size_t o = 0; o < n_outputs; ++o) {
      const GateId og = nl.outputs()[o];
      if (!tgs[j].toggles(og)) continue;
      const double p_def = shifted[og].critical_probability(clk);
      const double p_base = base[j][og].critical_probability(clk);
      sig[o * tgs.size() + j] = std::max(p_def - p_base, 0.0);
    }
  }
  return sig;
}

double l1_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

}  // namespace

SensitizationFacts compute_sensitization_facts(
    const DiagnosabilitySubject& subject) {
  const Netlist& nl = *subject.netlist;
  if (!nl.frozen()) {
    throw std::invalid_argument(
        "compute_sensitization_facts: netlist must be frozen");
  }
  SensitizationFacts facts;
  facts.n_arcs = nl.arc_count();
  facts.n_outputs = nl.outputs().size();
  facts.n_patterns = subject.patterns.size();
  facts.obs = ObsMatrix(facts.n_arcs, facts.n_outputs, facts.n_patterns);

  // One ternary-sensitization pass per pattern: the backward cone over
  // active arcs of every output fills the observability matrix.  The
  // TransitionGraphs are kept for the analytic separability sweep below.
  std::vector<paths::TransitionGraph> tgs;
  tgs.reserve(facts.n_patterns);
  for (std::size_t j = 0; j < facts.n_patterns; ++j) {
    tgs.emplace_back(*subject.logic_sim, *subject.lev, subject.patterns[j]);
    for (std::size_t o = 0; o < facts.n_outputs; ++o) {
      const GateId og = nl.outputs()[o];
      if (!tgs[j].toggles(og)) continue;
      const auto cone = tgs[j].cone_to_output(og);
      for (ArcId a = 0; a < facts.n_arcs; ++a) {
        if (cone[a]) facts.obs.set(a, o, j);
      }
    }
  }

  // Per-arc pattern coverage and the dead set.
  facts.pattern_coverage.assign(facts.n_arcs, 0);
  std::size_t covered = 0;
  for (ArcId a = 0; a < facts.n_arcs; ++a) {
    std::uint32_t cov = 0;
    for (std::size_t j = 0; j < facts.n_patterns; ++j) {
      for (std::size_t o = 0; o < facts.n_outputs; ++o) {
        if (facts.obs.test(a, o, j)) {
          ++cov;
          break;
        }
      }
    }
    facts.pattern_coverage[a] = cov;
    if (cov == 0) {
      facts.dead_arcs.push_back(a);
    } else {
      ++covered;
    }
  }
  facts.coverage_ratio =
      facts.n_arcs == 0
          ? 1.0
          : static_cast<double>(covered) / static_cast<double>(facts.n_arcs);

  // Equivalence classes of identical nonempty observability rows: hash
  // buckets with full row verification, one pass, no O(n^2) pairing.
  facts.group_of.assign(facts.n_arcs, -1);
  {
    // hash -> list of (representative arc, class index)
    std::unordered_map<std::uint64_t, std::vector<std::pair<ArcId, int>>>
        buckets;
    std::vector<std::vector<ArcId>> classes;
    for (ArcId a = 0; a < facts.n_arcs; ++a) {
      if (facts.pattern_coverage[a] == 0) continue;
      auto& bucket = buckets[facts.obs.row_hash(a)];
      bool placed = false;
      for (auto& [rep, cls] : bucket) {
        if (facts.obs.row_equal(rep, a)) {
          classes[static_cast<std::size_t>(cls)].push_back(a);
          placed = true;
          break;
        }
      }
      if (!placed) {
        bucket.emplace_back(a, static_cast<int>(classes.size()));
        classes.push_back({a});
      }
    }
    // Keep classes with >= 2 members, ordered by first member.
    std::vector<std::size_t> keep;
    for (std::size_t c = 0; c < classes.size(); ++c) {
      if (classes[c].size() >= 2) keep.push_back(c);
    }
    std::sort(keep.begin(), keep.end(), [&](std::size_t x, std::size_t y) {
      return classes[x].front() < classes[y].front();
    });
    for (const std::size_t c : keep) {
      const int gid = static_cast<int>(facts.groups.size());
      for (const ArcId a : classes[c]) facts.group_of[a] = gid;
      SensitizationFacts::AmbiguityGroup group;
      group.coverage = facts.pattern_coverage[classes[c].front()];
      group.arcs = std::move(classes[c]);
      facts.groups.push_back(std::move(group));
    }
  }

  // Structural dominance among class representatives (every observable arc
  // represents its class; singletons represent themselves).  Sorting by
  // popcount means only popcount(u) < popcount(v) pairs can be strict
  // subsets, halving the scan.
  {
    constexpr std::size_t kMaxReps = 768;
    std::vector<ArcId> reps;
    for (ArcId a = 0; a < facts.n_arcs; ++a) {
      if (facts.pattern_coverage[a] == 0) continue;
      const int gid = facts.group_of[a];
      if (gid < 0 ||
          facts.groups[static_cast<std::size_t>(gid)].arcs.front() == a) {
        reps.push_back(a);
      }
    }
    if (reps.size() > kMaxReps) reps.resize(kMaxReps);
    std::vector<std::size_t> pop(reps.size());
    for (std::size_t i = 0; i < reps.size(); ++i) {
      pop[i] = facts.obs.row_popcount(reps[i]);
    }
    for (std::size_t i = 0; i < reps.size(); ++i) {
      for (std::size_t k = 0; k < reps.size(); ++k) {
        if (pop[i] >= pop[k]) continue;
        if (!facts.obs.row_subset(reps[i], reps[k])) continue;
        if (facts.dominance_found++ <
            SensitizationFacts::kMaxDominancePairs) {
          facts.dominance.push_back(
              SensitizationFacts::DominancePair{reps[i], reps[k]});
        }
      }
    }
  }

  // Redundant patterns: identical static observability columns (the set of
  // (arc, output) pairs the pattern observes), hash-bucketed like the arc
  // classes.
  {
    ObsMatrix cols(static_cast<ArcId>(facts.n_patterns), facts.n_arcs,
                   facts.n_outputs);
    for (ArcId a = 0; a < facts.n_arcs; ++a) {
      for (std::size_t o = 0; o < facts.n_outputs; ++o) {
        for (std::size_t j = 0; j < facts.n_patterns; ++j) {
          if (facts.obs.test(a, o, j)) {
            cols.set(static_cast<ArcId>(j), a, o);
          }
        }
      }
    }
    std::unordered_map<std::uint64_t, std::vector<std::pair<ArcId, int>>>
        buckets;
    std::vector<std::vector<std::size_t>> classes;
    for (std::size_t j = 0; j < facts.n_patterns; ++j) {
      const auto ja = static_cast<ArcId>(j);
      auto& bucket = buckets[cols.row_hash(ja)];
      bool placed = false;
      for (auto& [rep, cls] : bucket) {
        if (cols.row_equal(rep, ja)) {
          classes[static_cast<std::size_t>(cls)].push_back(j);
          placed = true;
          break;
        }
      }
      if (!placed) {
        bucket.emplace_back(ja, static_cast<int>(classes.size()));
        classes.push_back({j});
      }
    }
    std::vector<std::size_t> keep;
    for (std::size_t c = 0; c < classes.size(); ++c) {
      if (classes[c].size() >= 2) keep.push_back(c);
    }
    std::sort(keep.begin(), keep.end(), [&](std::size_t x, std::size_t y) {
      return classes[x].front() < classes[y].front();
    });
    for (const std::size_t c : keep) {
      facts.redundant_patterns.push_back(std::move(classes[c]));
    }
  }

  // Analytic rank-separability per ambiguity group (DIAG005): Gaussian
  // arrival sweeps with Clark's max at merges, one baseline per pattern
  // plus one delta-shifted re-sweep per (group, pattern) - closed-form,
  // no Monte-Carlo.
  if (subject.delay_model != nullptr && !facts.groups.empty()) {
    std::vector<std::vector<timing::GaussianArrival>> base;
    base.reserve(facts.n_patterns);
    for (std::size_t j = 0; j < facts.n_patterns; ++j) {
      base.push_back(
          analytic_sweep(subject, tgs[j], netlist::kInvalidArc, 0.0));
    }
    double clk = subject.clk;
    if (clk <= 0.0) {
      // Default: the slowest analytic mean arrival any pattern launches to
      // any output - the median of the critical observed path, where the
      // criticality probabilities are most informative.
      for (std::size_t j = 0; j < facts.n_patterns; ++j) {
        for (const GateId og : nl.outputs()) {
          if (tgs[j].toggles(og)) clk = std::max(clk, base[j][og].mean);
        }
      }
    }
    double delta = subject.defect_delta;
    if (delta <= 0.0) delta = 0.75 * subject.delay_model->mean_cell_delay();

    const std::size_t n_groups =
        std::min(facts.groups.size(), subject.max_separability_groups);
    std::vector<std::vector<double>> signatures(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g) {
      signatures[g] = analytic_signature(subject, tgs, base, clk,
                                         facts.groups[g].arcs.front(), delta);
    }
    facts.group_min_separation.assign(facts.groups.size(), -1.0);
    for (std::size_t g = 0; g < n_groups; ++g) {
      double best = -1.0;
      for (std::size_t h = 0; h < n_groups; ++h) {
        if (h == g) continue;
        const double d = l1_distance(signatures[g], signatures[h]);
        if (best < 0.0 || d < best) best = d;
      }
      facts.group_min_separation[g] = best;
    }
  }
  return facts;
}

namespace {

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string diagnosability_report_json(const DiagnosabilitySubject& subject,
                                       const SensitizationFacts& facts) {
  std::ostringstream os;
  os << "{\n";
  os << "      \"n_arcs\": " << facts.n_arcs << ",\n";
  os << "      \"n_outputs\": " << facts.n_outputs << ",\n";
  os << "      \"n_patterns\": " << facts.n_patterns << ",\n";
  os << "      \"coverage_ratio\": " << json_double(facts.coverage_ratio)
     << ",\n";
  os << "      \"coverage_threshold\": "
     << json_double(subject.coverage_threshold) << ",\n";
  os << "      \"ambiguity_groups\": [";
  for (std::size_t g = 0; g < facts.groups.size(); ++g) {
    const auto& group = facts.groups[g];
    os << (g == 0 ? "\n" : ",\n") << "        {\"id\": " << g
       << ", \"arcs\": [";
    for (std::size_t i = 0; i < group.arcs.size(); ++i) {
      os << (i == 0 ? "" : ", ") << group.arcs[i];
    }
    os << "], \"coverage\": " << group.coverage << ", \"min_separation\": ";
    const double sep = g < facts.group_min_separation.size()
                           ? facts.group_min_separation[g]
                           : -1.0;
    os << (sep < 0.0 ? "null" : json_double(sep)) << "}";
  }
  os << (facts.groups.empty() ? "],\n" : "\n      ],\n");
  os << "      \"dead_arcs\": [";
  for (std::size_t i = 0; i < facts.dead_arcs.size(); ++i) {
    os << (i == 0 ? "" : ", ") << facts.dead_arcs[i];
  }
  os << "],\n";
  os << "      \"dominance\": [";
  for (std::size_t i = 0; i < facts.dominance.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "        {\"dominated\": "
       << facts.dominance[i].dominated
       << ", \"dominator\": " << facts.dominance[i].dominator << "}";
  }
  os << (facts.dominance.empty() ? "],\n" : "\n      ],\n");
  os << "      \"redundant_patterns\": [";
  for (std::size_t c = 0; c < facts.redundant_patterns.size(); ++c) {
    os << (c == 0 ? "" : ", ") << "[";
    for (std::size_t i = 0; i < facts.redundant_patterns[c].size(); ++i) {
      os << (i == 0 ? "" : ", ") << facts.redundant_patterns[c][i];
    }
    os << "]";
  }
  os << "],\n";
  os << "      \"arc_coverage\": [";
  for (std::size_t a = 0; a < facts.pattern_coverage.size(); ++a) {
    os << (a == 0 ? "" : ", ") << facts.pattern_coverage[a];
  }
  os << "]\n";
  os << "    }";
  return os.str();
}

}  // namespace sddd::analysis
