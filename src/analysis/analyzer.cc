#include "analysis/analyzer.h"

#include "analysis/pass.h"
#include "netlist/netlist.h"
#include "netlist/scan.h"
#include "runtime/parallel_for.h"
#include "timing/celllib.h"
#include "timing/delay_model.h"

namespace sddd::analysis {

void Analyzer::add_rule(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

Report Analyzer::run(const AnalysisInput& in) const {
  // One pass context for the whole run: shared facts are computed at most
  // once (std::call_once), whichever rule asks first.
  const PassContext ctx(in);
  return run(ctx);
}

Report Analyzer::run(const PassContext& ctx) const {
  // One private Report per rule; merged serially in registration order so
  // the finding order never depends on the schedule.
  std::vector<Report> parts(rules_.size());
  runtime::parallel_for(rules_.size(), [&](std::size_t i) {
    rules_[i]->run(ctx, parts[i]);
  });
  Report merged;
  for (const Report& part : parts) merged.merge(part);
  return merged;
}

Analyzer Analyzer::with_default_rules() {
  Analyzer a;
  register_netlist_rules(a);
  register_model_rules(a);
  register_dictionary_rules(a);
  register_diagnosability_rules(a);
  return a;
}

Report lint_netlist(const Analyzer& analyzer, const netlist::Netlist& nl) {
  AnalysisInput in;
  in.netlist = &nl;
  Report report = analyzer.run(in);
  // The delay model is only constructible over combinational cells of a
  // frozen netlist, and is meaningless once structural errors are present.
  if (!nl.frozen() || report.error_count() > 0) return report;
  const netlist::Netlist* core = &nl;
  netlist::Netlist scan_core;
  if (nl.dff_count() > 0) {
    scan_core = netlist::full_scan_transform(nl);
    core = &scan_core;
  }
  const timing::StatisticalCellLibrary lib;
  const timing::ArcDelayModel model(*core, lib);
  AnalysisInput model_in;
  model_in.delay_model = &model;
  report.merge(analyzer.run(model_in));
  return report;
}

}  // namespace sddd::analysis
