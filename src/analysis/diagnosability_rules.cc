#include "analysis/diagnosability_rules.h"

#include <algorithm>
#include <sstream>
#include <string>

#include "analysis/analysis_graph.h"
#include "analysis/pass.h"

namespace sddd::analysis {
namespace {

using netlist::ArcId;
using netlist::Netlist;

std::string arc_loc(const Netlist& nl, ArcId a) {
  const netlist::Arc& arc = nl.arc(a);
  return "arc " + std::to_string(a) + " (pin " + std::to_string(arc.pin) +
         " of " + nl.gate(arc.gate).name + ")";
}

bool has_subject(const PassContext& ctx) {
  const DiagnosabilitySubject* s = ctx.input().diagnosability;
  return s != nullptr && s->netlist != nullptr && s->lev != nullptr &&
         s->logic_sim != nullptr;
}

std::string arc_list(const Netlist& nl, const std::vector<ArcId>& arcs,
                     std::size_t max_named = 6) {
  std::ostringstream os;
  for (std::size_t i = 0; i < arcs.size() && i < max_named; ++i) {
    os << (i == 0 ? "" : ", ") << arc_loc(nl, arcs[i]);
  }
  if (arcs.size() > max_named) {
    os << ", ... (" << arcs.size() - max_named << " more)";
  }
  return os.str();
}

/// DIAG001: identical observable cones => provable ambiguity group.
class AmbiguityGroupRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleAmbiguityGroup; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "ambiguity group: arcs with identical observability under every "
           "pattern are provably indistinguishable";
  }
  void run(const PassContext& ctx, Report& out) const override {
    if (!has_subject(ctx)) return;
    const SensitizationFacts& facts = ctx.sensitization_facts();
    const Netlist& nl = *ctx.input().diagnosability->netlist;
    for (std::size_t g = 0; g < facts.groups.size(); ++g) {
      const auto& group = facts.groups[g];
      std::ostringstream msg;
      msg << "ambiguity group #" << g << ": " << group.arcs.size()
          << " arcs share one observable cone across all " << facts.n_patterns
          << " pattern(s) (" << arc_list(nl, group.arcs)
          << "); no dictionary built from this pattern set can separate "
             "them - diagnose to the group or add patterns";
      out.add(std::string(id()), severity(),
              "group #" + std::to_string(g) + " (" + arc_loc(nl, group.arcs[0]) +
                  ")",
              msg.str());
    }
  }
};

/// DIAG002: strict-subset observability => dominated suspect.
class DominatedSuspectRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleDominatedSuspect; }
  Severity severity() const override { return Severity::kInfo; }
  std::string_view summary() const override {
    return "dominated suspect: observability is a strict subset of another "
           "arc's, so its evidence never separates the two";
  }
  void run(const PassContext& ctx, Report& out) const override {
    if (!has_subject(ctx)) return;
    const SensitizationFacts& facts = ctx.sensitization_facts();
    const Netlist& nl = *ctx.input().diagnosability->netlist;
    for (const auto& pair : facts.dominance) {
      out.add(std::string(id()), severity(), arc_loc(nl, pair.dominated),
              "every (output, pattern) cell observing this arc also observes " +
                  arc_loc(nl, pair.dominator) +
                  "; any error evidence here is consistent with the "
                  "dominator too");
    }
    if (facts.dominance_found > facts.dominance.size()) {
      out.add(std::string(id()), severity(), "dominance",
              std::to_string(facts.dominance_found - facts.dominance.size()) +
                  " further dominated pair(s) suppressed (cap " +
                  std::to_string(SensitizationFacts::kMaxDominancePairs) + ")");
    }
  }
};

/// DIAG003: unsensitized by every pattern => statically dead suspect.
class DeadSuspectRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleDeadSuspect; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "dead suspect: no pattern sensitizes the arc to any output, so a "
           "defect there is invisible";
  }
  void run(const PassContext& ctx, Report& out) const override {
    if (!has_subject(ctx)) return;
    const SensitizationFacts& facts = ctx.sensitization_facts();
    const Netlist& nl = *ctx.input().diagnosability->netlist;
    constexpr std::size_t kMaxFindings = 16;
    std::size_t reported = 0;
    for (const ArcId a : facts.dead_arcs) {
      if (reported++ < kMaxFindings) {
        out.add(std::string(id()), severity(), arc_loc(nl, a),
                "no pattern propagates a transition through this arc to any "
                "output; a delay defect here cannot be detected or diagnosed "
                "by this pattern set");
      }
    }
    if (reported > kMaxFindings) {
      out.add(std::string(id()), severity(), "pattern set",
              std::to_string(reported - kMaxFindings) +
                  " further dead arc(s) suppressed");
    }
  }
};

/// DIAG004: identical static observability columns => redundant pattern.
class RedundantPatternRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleRedundantPattern; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "redundant pattern: identical static observability column to an "
           "earlier pattern (adds dictionary cost, no information)";
  }
  void run(const PassContext& ctx, Report& out) const override {
    if (!has_subject(ctx)) return;
    const SensitizationFacts& facts = ctx.sensitization_facts();
    for (const auto& cls : facts.redundant_patterns) {
      std::ostringstream members;
      for (std::size_t i = 0; i < cls.size(); ++i) {
        members << (i == 0 ? "" : ", ") << cls[i];
      }
      out.add(std::string(id()), severity(),
              "pattern " + std::to_string(cls.front()),
              "patterns {" + members.str() +
                  "} observe exactly the same (arc, output) cells; all but "
                  "one add dictionary build cost without diagnostic "
                  "information");
    }
  }
};

/// DIAG005: analytic Clark-SSTA signature too close to another group's.
class RankSeparabilityRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleRankSeparability; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "low analytic rank-separability: ambiguity groups whose "
           "Clark-SSTA criticality signatures nearly coincide";
  }
  void run(const PassContext& ctx, Report& out) const override {
    if (!has_subject(ctx)) return;
    const DiagnosabilitySubject& subject = *ctx.input().diagnosability;
    if (subject.delay_model == nullptr) return;
    const SensitizationFacts& facts = ctx.sensitization_facts();
    const Netlist& nl = *subject.netlist;
    for (std::size_t g = 0; g < facts.group_min_separation.size(); ++g) {
      const double sep = facts.group_min_separation[g];
      if (sep < 0.0 || sep >= subject.separability_threshold) continue;
      std::ostringstream msg;
      msg.precision(4);
      msg << "ambiguity group #" << g << " (" << arc_loc(nl, facts.groups[g].arcs[0])
          << "): nearest other group's analytic criticality signature is L1 "
          << sep << " away (threshold " << subject.separability_threshold
          << "); expect the ranked diagnosis to confuse these groups";
      out.add(std::string(id()), severity(), "group #" + std::to_string(g),
              msg.str());
    }
  }
};

/// DIAG006: coverage ratio below the subject's threshold.
class CoverageRatioRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleCoverageRatio; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "pattern-set coverage: fraction of arcs sensitized at least once "
           "is below threshold";
  }
  void run(const PassContext& ctx, Report& out) const override {
    if (!has_subject(ctx)) return;
    const DiagnosabilitySubject& subject = *ctx.input().diagnosability;
    const SensitizationFacts& facts = ctx.sensitization_facts();
    if (facts.coverage_ratio >= subject.coverage_threshold) return;
    std::ostringstream msg;
    msg.precision(4);
    msg << "pattern set sensitizes " << facts.coverage_ratio * 100.0
        << "% of the " << facts.n_arcs << " arcs (threshold "
        << subject.coverage_threshold * 100.0 << "%); " << facts.dead_arcs.size()
        << " arc(s) are statically dead - add patterns before building a "
           "dictionary";
    out.add(std::string(id()), severity(), "pattern set", msg.str());
  }
};

}  // namespace

void register_diagnosability_rules(Analyzer& a) {
  a.add_rule(std::make_unique<AmbiguityGroupRule>());
  a.add_rule(std::make_unique<DominatedSuspectRule>());
  a.add_rule(std::make_unique<DeadSuspectRule>());
  a.add_rule(std::make_unique<RedundantPatternRule>());
  a.add_rule(std::make_unique<RankSeparabilityRule>());
  a.add_rule(std::make_unique<CoverageRatioRule>());
}

}  // namespace sddd::analysis
