#include "analysis/netlist_rules.h"

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analysis_graph.h"
#include "analysis/pass.h"
#include "netlist/cell.h"

namespace sddd::analysis {

namespace {

using netlist::CellType;
using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;

std::string gate_loc(const Netlist& nl, GateId g) {
  const std::string& name = nl.gate(g).name;
  std::string loc = "gate ";
  if (name.empty()) {
    loc += '#';
    loc += std::to_string(g);
  } else {
    loc += name;
  }
  return loc;
}

bool valid_id(GateId f, std::size_t n) { return f < n; }

class CombinationalCycleRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleCombinationalCycle; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "combinational cycle not cut by a DFF";
  }

  void run(const PassContext& ctx, Report& out) const override {
    if (ctx.input().netlist == nullptr) return;
    const Netlist& nl = *ctx.input().netlist;
    // The DFS (and its discovery order / enumeration cap) lives in the
    // shared netlist facts; this rule only words the findings.
    for (const auto& edge : ctx.netlist_facts().cycle_back_edges) {
      out.add(std::string(id()), severity(), gate_loc(nl, edge.from),
              "combinational cycle through " + gate_loc(nl, edge.to) +
                  "; levelization and every topological analysis "
                  "are undefined on this netlist");
    }
  }
};

class UndrivenNetRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleUndrivenNet; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "undriven net (undefined signal or dangling fanin id)";
  }

  void run(const PassContext& ctx, Report& out) const override {
    if (ctx.input().netlist == nullptr) return;
    const Netlist& nl = *ctx.input().netlist;
    const std::size_t n = nl.gate_count();
    for (GateId g = 0; g < n; ++g) {
      const Gate& gate = nl.gate(g);
      if (netlist::is_combinational(gate.type) && gate.fanins.empty()) {
        out.add(std::string(id()), severity(), gate_loc(nl, g),
                "combinational gate has no fanins: the net is undriven "
                "(declared but never defined, or its driver was removed)");
      }
      for (std::size_t pin = 0; pin < gate.fanins.size(); ++pin) {
        if (!valid_id(gate.fanins[pin], n)) {
          out.add(std::string(id()), severity(), gate_loc(nl, g),
                  "fanin pin " + std::to_string(pin) +
                      " references gate id " +
                      std::to_string(gate.fanins[pin]) +
                      " outside the netlist");
        }
      }
    }
  }
};

class FloatingNetRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleFloatingNet; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "gate output drives nothing and is not a primary output";
  }

  void run(const PassContext& ctx, Report& out) const override {
    if (ctx.input().netlist == nullptr) return;
    const Netlist& nl = *ctx.input().netlist;
    const auto& fanout = ctx.netlist_facts().fanout;
    for (GateId g = 0; g < nl.gate_count(); ++g) {
      if (fanout[g] > 0 || nl.output_index(g) >= 0) continue;
      const CellType type = nl.gate(g).type;
      if (type == CellType::kInput) {
        out.add(std::string(id()), Severity::kWarning, gate_loc(nl, g),
                "primary input drives no gate and no output");
      } else if (type == CellType::kConst0 || type == CellType::kConst1) {
        out.add(std::string(id()), Severity::kWarning, gate_loc(nl, g),
                "constant drives no gate and no output");
      } else {
        out.add(std::string(id()), severity(), gate_loc(nl, g),
                "floating net: output is neither a primary output nor a "
                "fanin of any gate, so defects on its arcs are "
                "unobservable and silently undiagnosable");
      }
    }
  }
};

class MultiplyDrivenRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleMultiplyDriven; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "net listed as a primary output more than once";
  }

  void run(const PassContext& ctx, Report& out) const override {
    if (ctx.input().netlist == nullptr) return;
    const Netlist& nl = *ctx.input().netlist;
    std::vector<GateId> sorted(nl.outputs());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i] == sorted[i - 1] && (i < 2 || sorted[i] != sorted[i - 2])) {
        out.add(std::string(id()), severity(), gate_loc(nl, sorted[i]),
                "net drives more than one primary-output slot: the "
                "behavior matrix would double-count its failures");
      }
    }
  }
};

class UnreachableGateRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleUnreachableGate; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "gate launches no PI/DFF transition (constant-only cone)";
  }

  void run(const PassContext& ctx, Report& out) const override {
    if (ctx.input().netlist == nullptr) return;
    const Netlist& nl = *ctx.input().netlist;
    const auto& reach = ctx.netlist_facts().reachable;
    for (GateId g = 0; g < nl.gate_count(); ++g) {
      const Gate& gate = nl.gate(g);
      // Fanin-less combinational gates are NET002 (undriven), not merely
      // unreachable.
      if (!netlist::is_combinational(gate.type) || gate.fanins.empty()) {
        continue;
      }
      if (!reach[g]) {
        out.add(std::string(id()), severity(), gate_loc(nl, g),
                "no primary input or DFF output reaches this gate; it can "
                "never launch a transition and is dead for delay test");
      }
    }
  }
};

class DeadOutputRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleDeadOutput; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "primary output observes no PI/DFF transition";
  }

  void run(const PassContext& ctx, Report& out) const override {
    if (ctx.input().netlist == nullptr) return;
    const Netlist& nl = *ctx.input().netlist;
    const auto& reach = ctx.netlist_facts().reachable;
    for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
      const GateId driver = nl.outputs()[i];
      if (!valid_id(driver, nl.gate_count()) || reach[driver]) continue;
      out.add(std::string(id()), severity(),
              "output " + std::to_string(i) + " (" +
                  nl.gate(driver).name + ")",
              "primary output can never observe a transition; its row of "
              "the behavior matrix is constant and carries no diagnostic "
              "information");
    }
  }
};

class ScanChainRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleScanChain; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "broken scan chain: DFF arity != 1 or self-feedback DFF";
  }

  void run(const PassContext& ctx, Report& out) const override {
    if (ctx.input().netlist == nullptr) return;
    const Netlist& nl = *ctx.input().netlist;
    for (GateId g = 0; g < nl.gate_count(); ++g) {
      const Gate& gate = nl.gate(g);
      if (gate.type != CellType::kDff) continue;
      if (gate.fanins.size() != 1) {
        out.add(std::string(id()), severity(), gate_loc(nl, g),
                "DFF has " + std::to_string(gate.fanins.size()) +
                    " data inputs (expected 1); the full-scan transform "
                    "cannot form its pseudo-PI/pseudo-PO pair");
      } else if (gate.fanins[0] == g) {
        out.add(std::string(id()), severity(), gate_loc(nl, g),
                "DFF data input is tied to its own output: the scan chain "
                "cannot shift a value through this element");
      }
    }
  }
};

}  // namespace

void register_netlist_rules(Analyzer& a) {
  a.add_rule(std::make_unique<CombinationalCycleRule>());
  a.add_rule(std::make_unique<UndrivenNetRule>());
  a.add_rule(std::make_unique<FloatingNetRule>());
  a.add_rule(std::make_unique<MultiplyDrivenRule>());
  a.add_rule(std::make_unique<UnreachableGateRule>());
  a.add_rule(std::make_unique<DeadOutputRule>());
  a.add_rule(std::make_unique<ScanChainRule>());
}

}  // namespace sddd::analysis
