#include "analysis/pass.h"

#include <stdexcept>

namespace sddd::analysis {

const NetlistFacts& PassContext::netlist_facts() const {
  if (in_->netlist == nullptr) {
    throw std::logic_error(
        "PassContext::netlist_facts: no netlist subject in the input");
  }
  std::call_once(netlist_once_, [this] {
    netlist_facts_ =
        std::make_unique<NetlistFacts>(compute_netlist_facts(*in_->netlist));
  });
  return *netlist_facts_;
}

const SensitizationFacts& PassContext::sensitization_facts() const {
  if (in_->diagnosability == nullptr ||
      in_->diagnosability->netlist == nullptr) {
    throw std::logic_error(
        "PassContext::sensitization_facts: no diagnosability subject in the "
        "input");
  }
  std::call_once(sensitization_once_, [this] {
    sensitization_facts_ = std::make_unique<SensitizationFacts>(
        compute_sensitization_facts(*in_->diagnosability));
  });
  return *sensitization_facts_;
}

}  // namespace sddd::analysis
