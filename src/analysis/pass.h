// pass.h - The analysis-pass framework: one context per Analyzer::run
// that computes shared facts lazily, at most once, and serves them to
// every rule.
//
// Rules run concurrently over the thread pool, so fact construction is
// guarded by std::call_once: the first rule to ask for a fact family pays
// for it, every later rule reads the same immutable result.  Facts are
// pure functions of the AnalysisInput, so sharing them changes no rule's
// findings - it only deletes the per-rule recomputation (NET003's fanout
// scan, NET005/NET006's duplicate reachability fixpoints, NET001's DFS)
// the pre-framework rules each carried privately.
#pragma once

#include <memory>
#include <mutex>

#include "analysis/analysis_graph.h"
#include "analysis/rule.h"

namespace sddd::analysis {

/// Per-run fact store handed to every Rule::run.  Thread-safe; getters may
/// be called concurrently.  The referenced AnalysisInput must outlive the
/// context.
class PassContext {
 public:
  explicit PassContext(const AnalysisInput& in) : in_(&in) {}

  PassContext(const PassContext&) = delete;
  PassContext& operator=(const PassContext&) = delete;

  const AnalysisInput& input() const { return *in_; }

  /// Structural topology facts.  Requires input().netlist != nullptr
  /// (throws std::logic_error otherwise - rules must gate on the subject
  /// before asking).
  const NetlistFacts& netlist_facts() const;

  /// Static sensitization facts.  Requires input().diagnosability with a
  /// non-null netlist (throws std::logic_error otherwise).
  const SensitizationFacts& sensitization_facts() const;

 private:
  const AnalysisInput* in_;
  mutable std::once_flag netlist_once_;
  mutable std::once_flag sensitization_once_;
  mutable std::unique_ptr<NetlistFacts> netlist_facts_;
  mutable std::unique_ptr<SensitizationFacts> sensitization_facts_;
};

}  // namespace sddd::analysis
