// diagnosability_rules.h - Static diagnosability rules (DIAG001..DIAG006).
//
// These rules assess a (netlist, pattern set) pair *before* anyone pays for
// a dictionary build or a diagnosis run, using only the ternary static
// sensitization analysis and (for DIAG005) closed-form Clark-SSTA sweeps:
//
//   DIAG001  warning  ambiguity group: arcs with identical observable cones
//                     under every pattern - provably indistinguishable by
//                     any statistical dictionary built from this pattern set
//   DIAG002  info     dominated suspect: an arc whose observability is a
//                     strict subset of another's (its evidence never
//                     separates it from its dominator)
//   DIAG003  warning  dead suspect: arc unsensitized by every pattern - a
//                     defect there is invisible to this pattern set
//   DIAG004  warning  redundant pattern: identical static observability
//                     column to an earlier pattern (pure dictionary cost)
//   DIAG005  warning  low analytic rank-separability: an ambiguity group
//                     whose predicted criticality signature is within
//                     epsilon of another group's (Clark-SSTA, no MC)
//   DIAG006  warning  pattern-set coverage ratio below threshold
//
// All facts come from PassContext::sensitization_facts(), computed once per
// run however many rules fire.  DICT005 cross-links its duplicate-signature
// classes to DIAG001 groups when both subjects are present.
#pragma once

#include "analysis/analyzer.h"

namespace sddd::analysis {

inline constexpr std::string_view kRuleAmbiguityGroup = "DIAG001";
inline constexpr std::string_view kRuleDominatedSuspect = "DIAG002";
inline constexpr std::string_view kRuleDeadSuspect = "DIAG003";
inline constexpr std::string_view kRuleRedundantPattern = "DIAG004";
inline constexpr std::string_view kRuleRankSeparability = "DIAG005";
inline constexpr std::string_view kRuleCoverageRatio = "DIAG006";

}  // namespace sddd::analysis
