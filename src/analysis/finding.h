// finding.h - Structured diagnostics produced by the static-analysis rules.
//
// Every rule violation is a Finding: a stable rule id (the contract between
// the lint pass, the runtime SDDD_CHECK layer and the documentation table in
// DESIGN.md), a severity, a location string ("gate G10", "arc 42", "R[3][1]")
// and a human-readable message.  A Report is an ordered collection of
// findings with text and JSON emitters; error-severity findings are what
// gate the sddd_lint exit code and tools/ci.sh.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sddd::analysis {

enum class Severity : std::uint8_t {
  kInfo,
  kWarning,
  kError,
};

std::string_view severity_name(Severity s);

/// One rule violation at one location.
struct Finding {
  std::string rule_id;   ///< stable id, e.g. "NET001"
  Severity severity = Severity::kWarning;
  std::string location;  ///< subject-relative, e.g. "gate w" or "S[2][0]"
  std::string message;   ///< what is wrong and why it matters
};

/// Ordered findings plus counting and emission.  Rules append via add();
/// the Analyzer merges per-rule reports in rule-registration order, so the
/// report is deterministic for any thread count.
class Report {
 public:
  void add(std::string rule_id, Severity severity, std::string location,
           std::string message);

  const std::vector<Finding>& findings() const { return findings_; }
  bool empty() const { return findings_.empty(); }
  std::size_t count(Severity s) const;
  std::size_t error_count() const { return count(Severity::kError); }
  std::size_t warning_count() const { return count(Severity::kWarning); }

  /// True when any finding carries the given rule id.
  bool has_rule(std::string_view rule_id) const;

  /// Appends every finding of `other` (used by the parallel rule runner).
  void merge(const Report& other);

  /// Human-readable listing, one "severity rule_id location: message" line
  /// per finding plus a summary line.
  std::string to_text() const;

  /// JSON document: {"findings": [...], "errors": N, "warnings": N}.
  std::string to_json() const;

 private:
  std::vector<Finding> findings_;
};

}  // namespace sddd::analysis
