#include "analysis/model_rules.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/pass.h"
#include "stats/correlation.h"

namespace sddd::analysis {

namespace {

std::string arc_loc(const timing::ArcDelayModel& model, netlist::ArcId a) {
  const auto& nl = model.netlist();
  const auto& arc = nl.arc(a);
  return "arc " + std::to_string(a) + " (pin " + std::to_string(arc.pin) +
         " of " + nl.gate(arc.gate).name + ")";
}

class NegativeDelayRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleNegativeDelay; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "negative or non-finite mean/sigma pin-to-pin delay";
  }

  void run(const PassContext& ctx, Report& out) const override {
    const AnalysisInput& in = ctx.input();
    if (in.delay_model == nullptr) return;
    const auto& model = *in.delay_model;
    const std::size_t n = model.netlist().arc_count();
    for (netlist::ArcId a = 0; a < n; ++a) {
      const auto& rv = model.arc_rv(a);
      const double mean = rv.mean();
      const double sigma = rv.stddev();
      if (!std::isfinite(mean) || !std::isfinite(sigma)) {
        out.add(std::string(id()), severity(), arc_loc(model, a),
                "delay distribution has non-finite moments (" +
                    rv.to_string() + ")");
      } else if (mean < 0.0 || sigma < 0.0) {
        out.add(std::string(id()), severity(), arc_loc(model, a),
                "delay distribution violates the [0, +inf) support of "
                "Definition D.1 (" + rv.to_string() + ")");
      }
    }
  }
};

class DegenerateDelayRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleDegenerateDelay; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "zero-spread delay distribution on a combinational arc";
  }

  void run(const PassContext& ctx, Report& out) const override {
    const AnalysisInput& in = ctx.input();
    if (in.delay_model == nullptr) return;
    const auto& model = *in.delay_model;
    const auto& nl = model.netlist();
    constexpr std::size_t kMaxFindings = 16;
    std::size_t found = 0;
    for (netlist::ArcId a = 0; a < nl.arc_count(); ++a) {
      const auto& gate = nl.gate(nl.arc(a).gate);
      if (!netlist::is_combinational(gate.type)) continue;
      const auto& rv = model.arc_rv(a);
      if (rv.stddev() != 0.0 || !std::isfinite(rv.mean())) continue;
      if (found++ < kMaxFindings) {
        out.add(std::string(id()), severity(), arc_loc(model, a),
                "degenerate (zero-spread) delay: the statistical model "
                "collapses to a deterministic one on this arc");
      }
    }
    if (found > kMaxFindings) {
      out.add(std::string(id()), severity(), "model",
              std::to_string(found - kMaxFindings) +
                  " further arcs with degenerate delay distributions "
                  "suppressed");
    }
  }
};

class CorrelationShapeRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleCorrelationShape; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "correlation matrix asymmetric, off-unit diagonal, or |r| > 1";
  }

  void run(const PassContext& ctx, Report& out) const override {
    const AnalysisInput& in = ctx.input();
    if (in.correlation == nullptr) return;
    const auto& c = *in.correlation;
    const std::size_t d = c.dim;
    if (c.matrix.size() != d * d) {
      out.add(std::string(id()), severity(), "R",
              "matrix has " + std::to_string(c.matrix.size()) +
                  " entries, expected dim*dim = " + std::to_string(d * d));
      return;
    }
    constexpr double kTol = 1e-9;
    for (std::size_t i = 0; i < d; ++i) {
      const double diag = c.matrix[i * d + i];
      if (!(std::abs(diag - 1.0) <= kTol)) {
        out.add(std::string(id()), severity(),
                "R[" + std::to_string(i) + "][" + std::to_string(i) + "]",
                "diagonal entry " + std::to_string(diag) +
                    " is not 1 (not a correlation matrix)");
      }
      for (std::size_t j = 0; j < i; ++j) {
        const double rij = c.matrix[i * d + j];
        const double rji = c.matrix[j * d + i];
        if (!std::isfinite(rij) || std::abs(rij) > 1.0 + kTol) {
          out.add(std::string(id()), severity(),
                  "R[" + std::to_string(i) + "][" + std::to_string(j) + "]",
                  "correlation " + std::to_string(rij) +
                      " lies outside [-1, 1]");
        }
        if (!(std::abs(rij - rji) <= kTol)) {
          out.add(std::string(id()), severity(),
                  "R[" + std::to_string(i) + "][" + std::to_string(j) + "]",
                  "asymmetric: R[i][j] = " + std::to_string(rij) +
                      " but R[j][i] = " + std::to_string(rji));
        }
      }
    }
  }
};

class CorrelationPsdRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleCorrelationNotPsd; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "correlation matrix not positive semi-definite";
  }

  void run(const PassContext& ctx, Report& out) const override {
    const AnalysisInput& in = ctx.input();
    if (in.correlation == nullptr) return;
    const auto& c = *in.correlation;
    if (c.dim == 0 || c.matrix.size() != c.dim * c.dim) return;  // MOD003
    // Cholesky probe on R + eps*I: the ridge admits genuinely PSD-but-
    // singular matrices (e.g. perfectly correlated pairs) while still
    // rejecting any matrix with a materially negative eigenvalue.
    constexpr double kRidge = 1e-9;
    std::vector<double> ridged = c.matrix;
    for (std::size_t i = 0; i < c.dim; ++i) ridged[i * c.dim + i] += kRidge;
    try {
      (void)stats::cholesky_lower(ridged, c.dim);
    } catch (const std::invalid_argument&) {
      out.add(std::string(id()), severity(), "R",
              "Cholesky factorization failed: the matrix has a negative "
              "eigenvalue, so no joint normal distribution realizes these "
              "correlations and sampling from it is meaningless");
    }
  }
};

}  // namespace

void register_model_rules(Analyzer& a) {
  a.add_rule(std::make_unique<NegativeDelayRule>());
  a.add_rule(std::make_unique<DegenerateDelayRule>());
  a.add_rule(std::make_unique<CorrelationShapeRule>());
  a.add_rule(std::make_unique<CorrelationPsdRule>());
}

}  // namespace sddd::analysis
