#include "analysis/dictionary_rules.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <string>
#include <vector>

#include "analysis/analysis_graph.h"
#include "analysis/pass.h"
#include "introspect/confidence.h"

namespace sddd::analysis {

namespace {

constexpr double kTol = 1e-9;
constexpr std::size_t kMaxFindings = 16;

std::string cell_loc(const std::string& what, std::size_t i, std::size_t j) {
  return what + "[" + std::to_string(i) + "][" + std::to_string(j) + "]";
}

/// Checks every entry of an output-major matrix against [lo, hi]; returns
/// the number of violations (reporting at most kMaxFindings of them).
std::size_t check_range(const std::vector<std::vector<double>>& m,
                        const std::string& what, double lo, double hi,
                        std::string_view rule, Report& out) {
  std::size_t found = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m[i].size(); ++j) {
      const double v = m[i][j];
      if (std::isfinite(v) && v >= lo - kTol && v <= hi + kTol) continue;
      if (found++ < kMaxFindings) {
        out.add(std::string(rule), Severity::kError, cell_loc(what, i, j),
                "entry " + std::to_string(v) + " lies outside [" +
                    std::to_string(lo) + ", " + std::to_string(hi) + "]");
      }
    }
  }
  if (found > kMaxFindings) {
    out.add(std::string(rule), Severity::kError, what,
            std::to_string(found - kMaxFindings) +
                " further out-of-range entries suppressed");
  }
  return found;
}

class ProbabilityRangeRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleProbabilityRange; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "critical probability (M_crt/E_crt) outside [0, 1]";
  }

  void run(const PassContext& ctx, Report& out) const override {
    const AnalysisInput& in = ctx.input();
    if (in.dictionary == nullptr) return;
    check_range(in.dictionary->m_crt, "M", 0.0, 1.0, id(), out);
  }
};

class SignatureRangeRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleSignatureRange; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "signature probability (S_crt) outside [-1, 1]";
  }

  void run(const PassContext& ctx, Report& out) const override {
    const AnalysisInput& in = ctx.input();
    if (in.dictionary == nullptr) return;
    for (const auto& sig : in.dictionary->signatures) {
      check_range(sig.s_crt, "S(" + sig.label + ")", -1.0, 1.0, id(), out);
    }
  }
};

class DictionaryShapeRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleDictionaryShape; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "dictionary matrix dimensions inconsistent with |O| x |TP|";
  }

  void run(const PassContext& ctx, Report& out) const override {
    const AnalysisInput& in = ctx.input();
    if (in.dictionary == nullptr) return;
    const auto& d = *in.dictionary;
    check_shape(d.m_crt, "M", d, out);
    for (const auto& sig : d.signatures) {
      check_shape(sig.s_crt, "S(" + sig.label + ")", d, out);
    }
  }

 private:
  void check_shape(const std::vector<std::vector<double>>& m,
                   const std::string& what, const DictionarySubject& d,
                   Report& out) const {
    if (m.empty()) return;  // subject member not supplied
    if (m.size() != d.n_outputs) {
      out.add(std::string(id()), severity(), what,
              "matrix has " + std::to_string(m.size()) +
                  " output rows, expected |O| = " +
                  std::to_string(d.n_outputs));
    }
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i].size() != d.n_patterns) {
        out.add(std::string(id()), severity(),
                what + " row " + std::to_string(i),
                "row has " + std::to_string(m[i].size()) +
                    " pattern columns, expected |TP| = " +
                    std::to_string(d.n_patterns));
        return;  // one ragged row implies more; avoid flooding
      }
    }
  }
};

class ZeroSignatureRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleZeroSignature; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "all-zero signature: suspect predicts no failure, undiagnosable";
  }

  void run(const PassContext& ctx, Report& out) const override {
    const AnalysisInput& in = ctx.input();
    if (in.dictionary == nullptr) return;
    for (const auto& sig : in.dictionary->signatures) {
      if (sig.s_crt.empty()) continue;
      bool all_zero = true;
      for (const auto& row : sig.s_crt) {
        for (const double v : row) {
          if (std::abs(v) > kTol) {
            all_zero = false;
            break;
          }
        }
        if (!all_zero) break;
      }
      if (all_zero) {
        out.add(std::string(id()), severity(), sig.label,
                "signature is identically zero over every (output, "
                "pattern) cell: the pattern set cannot distinguish this "
                "suspect from a defect-free chip");
      }
    }
  }
};

class DuplicateSignatureRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleDuplicateSignature; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "identical signatures cap diagnosability (equivalence class)";
  }

  // Signatures are hash-bucketed by their bit pattern and verified with an
  // exact compare, so the pass is one sweep over the matrices instead of
  // the O(n^2) pairwise scan it replaced - and the report carries one
  // finding per equivalence class listing every member, not a quadratic
  // flood of pairs.  kTol survives only in the all-zero screen (DICT004's
  // subject): duplicates born of a shared computation are bit-identical.
  void run(const PassContext& ctx, Report& out) const override {
    const AnalysisInput& in = ctx.input();
    if (in.dictionary == nullptr) return;
    const auto& sigs = in.dictionary->signatures;
    std::unordered_map<std::uint64_t, std::vector<std::pair<std::size_t, int>>>
        buckets;
    std::vector<std::vector<std::size_t>> classes;
    for (std::size_t a = 0; a < sigs.size(); ++a) {
      // All-zero signatures are DICT004's finding; classing them here
      // would bury the report under one giant meaningless class.
      if (sigs[a].s_crt.empty() || is_zero(sigs[a].s_crt)) continue;
      auto& bucket = buckets[hash_matrix(sigs[a].s_crt)];
      bool placed = false;
      for (auto& [rep, cls] : bucket) {
        if (equal(sigs[rep].s_crt, sigs[a].s_crt)) {
          classes[static_cast<std::size_t>(cls)].push_back(a);
          placed = true;
          break;
        }
      }
      if (!placed) {
        bucket.emplace_back(a, static_cast<int>(classes.size()));
        classes.push_back({a});
      }
    }
    std::size_t found = 0;
    for (const auto& cls : classes) {
      if (cls.size() < 2) continue;
      if (found++ >= kMaxFindings) continue;
      std::string members;
      constexpr std::size_t kMaxNamed = 6;
      for (std::size_t i = 0; i < cls.size() && i < kMaxNamed; ++i) {
        members += (i == 0 ? "" : ", ") + sigs[cls[i]].label;
      }
      if (cls.size() > kMaxNamed) {
        members += ", ... (" + std::to_string(cls.size() - kMaxNamed) +
                   " more)";
      }
      std::string msg =
          "equivalence class of " + std::to_string(cls.size()) +
          " identical signatures {" + members +
          "}: no error function can rank one member above another, so "
          "top-K resolution is capped by this class";
      const int group = matching_ambiguity_group(ctx, sigs, cls);
      if (group >= 0) {
        msg += "; matches ambiguity group #" + std::to_string(group) +
               " (DIAG001), confirming the structural prediction";
      }
      out.add(std::string(id()), severity(),
              sigs[cls.front()].label + " (+" +
                  std::to_string(cls.size() - 1) + " more)",
              msg);
    }
    if (found > kMaxFindings) {
      out.add(std::string(id()), severity(), "signatures",
              std::to_string(found - kMaxFindings) +
                  " further equivalence classes suppressed");
    }
  }

 private:
  static bool is_zero(const std::vector<std::vector<double>>& x) {
    for (const auto& row : x) {
      for (const double v : row) {
        if (std::abs(v) > kTol) return false;
      }
    }
    return true;
  }

  static std::uint64_t hash_matrix(const std::vector<std::vector<double>>& x) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t w) {
      for (int b = 0; b < 8; ++b) {
        h ^= w & 0xff;
        h *= 0x100000001b3ULL;
        w >>= 8;
      }
    };
    mix(x.size());
    for (const auto& row : x) {
      mix(row.size());
      for (const double v : row) {
        // Normalize +/-0.0 so equal() and the hash agree on it.
        std::uint64_t bits;
        const double canon = v == 0.0 ? 0.0 : v;
        std::memcpy(&bits, &canon, sizeof bits);
        mix(bits);
      }
    }
    return h;
  }

  static bool equal(const std::vector<std::vector<double>>& x,
                    const std::vector<std::vector<double>>& y) {
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i].size() != y[i].size()) return false;
      for (std::size_t j = 0; j < x[i].size(); ++j) {
        if (x[i][j] != y[i][j]) return false;
      }
    }
    return true;
  }

  /// Cross-link to DIAG001: when the input also carries a diagnosability
  /// subject and every member label parses as "arc N" with all N in one
  /// structural ambiguity group, returns that group's index; -1 otherwise.
  static int matching_ambiguity_group(
      const PassContext& ctx,
      const std::vector<DictionarySubject::Signature>& sigs,
      const std::vector<std::size_t>& cls) {
    const DiagnosabilitySubject* subject = ctx.input().diagnosability;
    if (subject == nullptr || subject->netlist == nullptr ||
        subject->lev == nullptr || subject->logic_sim == nullptr) {
      return -1;
    }
    const SensitizationFacts& facts = ctx.sensitization_facts();
    int group = -1;
    for (const std::size_t s : cls) {
      const std::string& label = sigs[s].label;
      if (label.rfind("arc ", 0) != 0) return -1;
      char* end = nullptr;
      const unsigned long arc = std::strtoul(label.c_str() + 4, &end, 10);
      if (end == label.c_str() + 4 || arc >= facts.group_of.size()) return -1;
      const int g = facts.group_of[arc];
      if (g < 0 || (group >= 0 && g != group)) return -1;
      group = g;
    }
    return group;
  }
};

class SampleBudgetRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleSampleBudget; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "Monte-Carlo sample count too low for the requested confidence";
  }

  // Uses the header-only confidence math (introspect/confidence.h) rather
  // than linking sddd_introspect, which would cycle back through
  // sddd_diagnosis into this library.
  void run(const PassContext& ctx, Report& out) const override {
    const AnalysisInput& in = ctx.input();
    if (in.dictionary == nullptr) return;
    const auto& d = *in.dictionary;
    if (d.mc_samples == 0 || d.target_ci_halfwidth <= 0.0) return;
    const double worst =
        introspect::wilson_worst_halfwidth(d.mc_samples);
    if (worst <= d.target_ci_halfwidth) return;
    const std::size_t needed =
        introspect::samples_for_halfwidth(d.target_ci_halfwidth);
    char msg[256];
    std::snprintf(msg, sizeof msg,
                  "%zu Monte-Carlo samples give a worst-case 95%% confidence "
                  "halfwidth of %.3f per dictionary entry, above the %.3f "
                  "target; use at least %zu samples",
                  d.mc_samples, worst, d.target_ci_halfwidth, needed);
    out.add(std::string(id()), severity(), "mc_samples", msg);
  }
};

}  // namespace

void register_dictionary_rules(Analyzer& a) {
  a.add_rule(std::make_unique<ProbabilityRangeRule>());
  a.add_rule(std::make_unique<SignatureRangeRule>());
  a.add_rule(std::make_unique<DictionaryShapeRule>());
  a.add_rule(std::make_unique<ZeroSignatureRule>());
  a.add_rule(std::make_unique<DuplicateSignatureRule>());
  a.add_rule(std::make_unique<SampleBudgetRule>());
}

}  // namespace sddd::analysis
