#include "analysis/dictionary_rules.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "introspect/confidence.h"

namespace sddd::analysis {

namespace {

constexpr double kTol = 1e-9;
constexpr std::size_t kMaxFindings = 16;

std::string cell_loc(const std::string& what, std::size_t i, std::size_t j) {
  return what + "[" + std::to_string(i) + "][" + std::to_string(j) + "]";
}

/// Checks every entry of an output-major matrix against [lo, hi]; returns
/// the number of violations (reporting at most kMaxFindings of them).
std::size_t check_range(const std::vector<std::vector<double>>& m,
                        const std::string& what, double lo, double hi,
                        std::string_view rule, Report& out) {
  std::size_t found = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m[i].size(); ++j) {
      const double v = m[i][j];
      if (std::isfinite(v) && v >= lo - kTol && v <= hi + kTol) continue;
      if (found++ < kMaxFindings) {
        out.add(std::string(rule), Severity::kError, cell_loc(what, i, j),
                "entry " + std::to_string(v) + " lies outside [" +
                    std::to_string(lo) + ", " + std::to_string(hi) + "]");
      }
    }
  }
  if (found > kMaxFindings) {
    out.add(std::string(rule), Severity::kError, what,
            std::to_string(found - kMaxFindings) +
                " further out-of-range entries suppressed");
  }
  return found;
}

class ProbabilityRangeRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleProbabilityRange; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "critical probability (M_crt/E_crt) outside [0, 1]";
  }

  void run(const AnalysisInput& in, Report& out) const override {
    if (in.dictionary == nullptr) return;
    check_range(in.dictionary->m_crt, "M", 0.0, 1.0, id(), out);
  }
};

class SignatureRangeRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleSignatureRange; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "signature probability (S_crt) outside [-1, 1]";
  }

  void run(const AnalysisInput& in, Report& out) const override {
    if (in.dictionary == nullptr) return;
    for (const auto& sig : in.dictionary->signatures) {
      check_range(sig.s_crt, "S(" + sig.label + ")", -1.0, 1.0, id(), out);
    }
  }
};

class DictionaryShapeRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleDictionaryShape; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "dictionary matrix dimensions inconsistent with |O| x |TP|";
  }

  void run(const AnalysisInput& in, Report& out) const override {
    if (in.dictionary == nullptr) return;
    const auto& d = *in.dictionary;
    check_shape(d.m_crt, "M", d, out);
    for (const auto& sig : d.signatures) {
      check_shape(sig.s_crt, "S(" + sig.label + ")", d, out);
    }
  }

 private:
  void check_shape(const std::vector<std::vector<double>>& m,
                   const std::string& what, const DictionarySubject& d,
                   Report& out) const {
    if (m.empty()) return;  // subject member not supplied
    if (m.size() != d.n_outputs) {
      out.add(std::string(id()), severity(), what,
              "matrix has " + std::to_string(m.size()) +
                  " output rows, expected |O| = " +
                  std::to_string(d.n_outputs));
    }
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m[i].size() != d.n_patterns) {
        out.add(std::string(id()), severity(),
                what + " row " + std::to_string(i),
                "row has " + std::to_string(m[i].size()) +
                    " pattern columns, expected |TP| = " +
                    std::to_string(d.n_patterns));
        return;  // one ragged row implies more; avoid flooding
      }
    }
  }
};

class ZeroSignatureRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleZeroSignature; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "all-zero signature: suspect predicts no failure, undiagnosable";
  }

  void run(const AnalysisInput& in, Report& out) const override {
    if (in.dictionary == nullptr) return;
    for (const auto& sig : in.dictionary->signatures) {
      if (sig.s_crt.empty()) continue;
      bool all_zero = true;
      for (const auto& row : sig.s_crt) {
        for (const double v : row) {
          if (std::abs(v) > kTol) {
            all_zero = false;
            break;
          }
        }
        if (!all_zero) break;
      }
      if (all_zero) {
        out.add(std::string(id()), severity(), sig.label,
                "signature is identically zero over every (output, "
                "pattern) cell: the pattern set cannot distinguish this "
                "suspect from a defect-free chip");
      }
    }
  }
};

class DuplicateSignatureRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleDuplicateSignature; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "identical signatures cap diagnosability (equivalence class)";
  }

  void run(const AnalysisInput& in, Report& out) const override {
    if (in.dictionary == nullptr) return;
    const auto& sigs = in.dictionary->signatures;
    // All-zero signatures are DICT004's finding; pairing them up here
    // would flood the report with quadratically many duplicates.
    std::vector<char> zero(sigs.size(), 0);
    for (std::size_t a = 0; a < sigs.size(); ++a) {
      zero[a] = is_zero(sigs[a].s_crt) ? 1 : 0;
    }
    std::size_t found = 0;
    for (std::size_t a = 0; a < sigs.size(); ++a) {
      if (sigs[a].s_crt.empty() || zero[a]) continue;
      for (std::size_t b = a + 1; b < sigs.size(); ++b) {
        if (zero[b]) continue;
        if (!equal(sigs[a].s_crt, sigs[b].s_crt)) continue;
        if (found++ < kMaxFindings) {
          out.add(std::string(id()), severity(),
                  sigs[a].label + " / " + sigs[b].label,
                  "signatures are identical: no error function can rank "
                  "one above the other, so top-K resolution is capped by "
                  "this equivalence class");
        }
      }
    }
    if (found > kMaxFindings) {
      out.add(std::string(id()), severity(), "signatures",
              std::to_string(found - kMaxFindings) +
                  " further duplicate pairs suppressed");
    }
  }

 private:
  static bool is_zero(const std::vector<std::vector<double>>& x) {
    for (const auto& row : x) {
      for (const double v : row) {
        if (std::abs(v) > kTol) return false;
      }
    }
    return true;
  }

  static bool equal(const std::vector<std::vector<double>>& x,
                    const std::vector<std::vector<double>>& y) {
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i].size() != y[i].size()) return false;
      for (std::size_t j = 0; j < x[i].size(); ++j) {
        if (std::abs(x[i][j] - y[i][j]) > kTol) return false;
      }
    }
    return true;
  }
};

class SampleBudgetRule final : public Rule {
 public:
  std::string_view id() const override { return kRuleSampleBudget; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "Monte-Carlo sample count too low for the requested confidence";
  }

  // Uses the header-only confidence math (introspect/confidence.h) rather
  // than linking sddd_introspect, which would cycle back through
  // sddd_diagnosis into this library.
  void run(const AnalysisInput& in, Report& out) const override {
    if (in.dictionary == nullptr) return;
    const auto& d = *in.dictionary;
    if (d.mc_samples == 0 || d.target_ci_halfwidth <= 0.0) return;
    const double worst =
        introspect::wilson_worst_halfwidth(d.mc_samples);
    if (worst <= d.target_ci_halfwidth) return;
    const std::size_t needed =
        introspect::samples_for_halfwidth(d.target_ci_halfwidth);
    char msg[256];
    std::snprintf(msg, sizeof msg,
                  "%zu Monte-Carlo samples give a worst-case 95%% confidence "
                  "halfwidth of %.3f per dictionary entry, above the %.3f "
                  "target; use at least %zu samples",
                  d.mc_samples, worst, d.target_ci_halfwidth, needed);
    out.add(std::string(id()), severity(), "mc_samples", msg);
  }
};

}  // namespace

void register_dictionary_rules(Analyzer& a) {
  a.add_rule(std::make_unique<ProbabilityRangeRule>());
  a.add_rule(std::make_unique<SignatureRangeRule>());
  a.add_rule(std::make_unique<DictionaryShapeRule>());
  a.add_rule(std::make_unique<ZeroSignatureRule>());
  a.add_rule(std::make_unique<DuplicateSignatureRule>());
  a.add_rule(std::make_unique<SampleBudgetRule>());
}

}  // namespace sddd::analysis
