#include "analysis/finding.h"

#include <sstream>

namespace sddd::analysis {

std::string_view severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void Report::add(std::string rule_id, Severity severity, std::string location,
                 std::string message) {
  findings_.push_back(Finding{std::move(rule_id), severity,
                              std::move(location), std::move(message)});
}

std::size_t Report::count(Severity s) const {
  std::size_t n = 0;
  for (const Finding& f : findings_) n += (f.severity == s) ? 1U : 0U;
  return n;
}

bool Report::has_rule(std::string_view rule_id) const {
  for (const Finding& f : findings_) {
    if (f.rule_id == rule_id) return true;
  }
  return false;
}

void Report::merge(const Report& other) {
  findings_.insert(findings_.end(), other.findings_.begin(),
                   other.findings_.end());
}

std::string Report::to_text() const {
  std::ostringstream os;
  for (const Finding& f : findings_) {
    os << severity_name(f.severity) << " " << f.rule_id;
    if (!f.location.empty()) os << " " << f.location;
    os << ": " << f.message << "\n";
  }
  os << findings_.size() << " finding(s): " << error_count() << " error(s), "
     << warning_count() << " warning(s)\n";
  return os.str();
}

namespace {

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < findings_.size(); ++i) {
    const Finding& f = findings_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"rule_id\": ";
    append_json_string(os, f.rule_id);
    os << ", \"severity\": \"" << severity_name(f.severity)
       << "\", \"location\": ";
    append_json_string(os, f.location);
    os << ", \"message\": ";
    append_json_string(os, f.message);
    os << "}";
  }
  os << (findings_.empty() ? "" : "\n  ") << "],\n"
     << "  \"errors\": " << error_count() << ",\n"
     << "  \"warnings\": " << warning_count() << "\n}\n";
  return os.str();
}

}  // namespace sddd::analysis
