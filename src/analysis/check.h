// check.h - compatibility forwarder.
//
// The runtime-contract layer (SDDD_CHECK, ContractViolation, the column
// guards) moved to src/obs/check.h so the observability subsystem and the
// runtime thread pool can report violations without a dependency on the
// static-analysis rule packs.  This header keeps the historical
// `sddd::analysis` spellings valid; new code should include "obs/check.h"
// directly.
#pragma once

#include "obs/check.h"

namespace sddd::analysis {

using obs::check_mode;
using obs::check_probability_column;
using obs::check_signature_column;
using obs::checks_enabled;
using obs::CheckMode;
using obs::ContractViolation;
using obs::set_check_mode;

namespace detail {
using obs::detail::report_violation;
}  // namespace detail

}  // namespace sddd::analysis
