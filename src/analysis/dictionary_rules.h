// dictionary_rules.h - Probabilistic fault-dictionary rules (DICT001..006).
//
//   DICT001  error    M_crt / E_crt entry outside [0, 1]
//   DICT002  error    S_crt signature entry outside [-1, 1]
//   DICT003  error    matrix dimensions inconsistent with |O| x |TP|
//   DICT004  warning  all-zero signature column set: the suspect predicts
//                     no failure anywhere and is undiagnosable
//   DICT005  warning  two suspects with identical signatures (equivalence
//                     class that caps diagnosability at its size)
//   DICT006  warning  Monte-Carlo sample count too low for the requested
//                     confidence: the worst-case Wilson 95% halfwidth of a
//                     dictionary entry exceeds target_ci_halfwidth
//
// DICT001 and DICT002 are also enforced at runtime by the SDDD_CHECK layer
// (see check.h) inside dictionary construction and diagnosis scoring.
#pragma once

#include "analysis/analyzer.h"

namespace sddd::analysis {

inline constexpr std::string_view kRuleProbabilityRange = "DICT001";
inline constexpr std::string_view kRuleSignatureRange = "DICT002";
inline constexpr std::string_view kRuleDictionaryShape = "DICT003";
inline constexpr std::string_view kRuleZeroSignature = "DICT004";
inline constexpr std::string_view kRuleDuplicateSignature = "DICT005";
inline constexpr std::string_view kRuleSampleBudget = "DICT006";

}  // namespace sddd::analysis
