// analyzer.h - Rule registry and parallel pass runner.
#pragma once

#include <memory>
#include <vector>

#include "analysis/rule.h"

namespace sddd::analysis {

/// Owns an ordered set of rules and runs them over an input.  Rules are
/// independent, so the run fans out over the runtime thread pool
/// (--threads / SDDD_THREADS); each rule writes its own Report slot and the
/// slots merge in registration order, making the combined Report
/// bit-identical for any thread count.
class Analyzer {
 public:
  void add_rule(std::unique_ptr<Rule> rule);

  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }

  Report run(const AnalysisInput& in) const;

  /// Same, against a caller-owned context: the caller keeps access to the
  /// shared facts afterwards (sddd_lint reuses the sensitization facts for
  /// the --diagnosability JSON report instead of recomputing them).
  Report run(const PassContext& ctx) const;

  /// All built-in rule packs (netlist + statistical model + dictionary).
  static Analyzer with_default_rules();

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Registration hooks for the individual packs (see the .cc of each pack
/// for the rule-id table; the authoritative list is DESIGN.md section 8).
void register_netlist_rules(Analyzer& a);
void register_model_rules(Analyzer& a);
void register_dictionary_rules(Analyzer& a);
void register_diagnosability_rules(Analyzer& a);

/// The standard netlist preflight shared by sddd_lint, sddd_cli --lint and
/// the experiment drivers: the netlist rule pack on `nl` as given, then —
/// when `nl` is frozen and structurally clean — the statistical-model rules
/// on the delay model of its combinational core (full-scan transformed when
/// sequential, since DFF cells carry no pin-to-pin delay distribution).
Report lint_netlist(const Analyzer& analyzer, const netlist::Netlist& nl);

}  // namespace sddd::analysis
