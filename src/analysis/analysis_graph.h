// analysis_graph.h - Shared facts the analysis passes compute once over
// the (timing) graph and every rule consumes.
//
// Before the pass framework each rule re-derived its own topology: NET003
// recomputed fanout counts, NET005 and NET006 each ran their own
// reachability fixpoint, NET001 its own cycle DFS.  These facts are now
// computed once per Analyzer::run through PassContext (pass.h) and handed
// to every rule that asks, so adding a rule never adds another sweep.
//
// Two fact families exist:
//   - NetlistFacts: structural topology (fanouts, source reachability,
//     combinational cycle back edges) over a possibly-unfrozen netlist;
//   - SensitizationFacts: static per-pattern observability derived from the
//     ternary-logic sensitization analysis (paths::TransitionGraph) over a
//     DiagnosabilitySubject - the arc x (output, pattern) observability
//     matrix, its equivalence classes (provable ambiguity groups),
//     dominance pairs, dead arcs, redundant patterns, the pattern-set
//     coverage ratio, and (when a delay model is supplied) analytic
//     Clark-SSTA signatures per ambiguity group for the rank-separability
//     prediction (DIAG005) - no Monte-Carlo anywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace sddd::analysis {

struct DiagnosabilitySubject;

/// Structural topology of one netlist, derived from the fanin lists alone
/// (works on unfrozen netlists; dangling fanin ids are ignored here and
/// reported by NET002).
struct NetlistFacts {
  /// Fanout count per gate.
  std::vector<std::uint32_t> fanout;
  /// True per gate when its fanin cone contains a transition source (PI or
  /// DFF output); fixpoint over fanout edges, tolerates cycles.
  std::vector<char> reachable;
  /// One combinational-cycle back edge (f, g): the DFS at gate g found
  /// fanin f already on its stack.  Discovery order and the enumeration
  /// cap match the pre-framework NET001 exactly, so the rule's findings
  /// are unchanged.
  struct BackEdge {
    netlist::GateId from;  ///< the gray fanin (finding location)
    netlist::GateId to;    ///< the gate whose fanin list closed the cycle
  };
  std::vector<BackEdge> cycle_back_edges;
};

NetlistFacts compute_netlist_facts(const netlist::Netlist& nl);

/// Arc-major bitset over (output, pattern) observability cells: bit
/// (o * n_patterns + j) of row a is set when arc a lies on an active path
/// to output o under pattern j (TransitionGraph::cone_to_output).
class ObsMatrix {
 public:
  ObsMatrix() = default;
  ObsMatrix(std::size_t n_arcs, std::size_t n_outputs, std::size_t n_patterns);

  std::size_t arc_count() const { return n_arcs_; }
  std::size_t cell_count() const { return n_cells_; }

  void set(netlist::ArcId a, std::size_t output, std::size_t pattern);
  bool test(netlist::ArcId a, std::size_t output, std::size_t pattern) const;

  /// Number of set cells in arc a's row.
  std::size_t row_popcount(netlist::ArcId a) const;
  /// FNV-1a over arc a's row words (bucketing key; equality is always
  /// verified with row_equal).
  std::uint64_t row_hash(netlist::ArcId a) const;
  bool row_equal(netlist::ArcId a, netlist::ArcId b) const;
  /// True when row a is a subset of row b (a implies b cell-wise).
  bool row_subset(netlist::ArcId a, netlist::ArcId b) const;

 private:
  std::size_t n_arcs_ = 0;
  std::size_t n_outputs_ = 0;
  std::size_t n_patterns_ = 0;
  std::size_t n_cells_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Static diagnosability facts for one (netlist, pattern set) pair.
struct SensitizationFacts {
  std::size_t n_arcs = 0;
  std::size_t n_outputs = 0;
  std::size_t n_patterns = 0;

  ObsMatrix obs;

  /// Per arc: number of patterns under which at least one output observes
  /// it (the per-suspect pattern coverage of the diagnosability report).
  std::vector<std::uint32_t> pattern_coverage;

  /// Arcs no (output, pattern) cell ever observes: statically dead for
  /// this pattern set (DIAG003).
  std::vector<netlist::ArcId> dead_arcs;

  /// Provable ambiguity group: arcs with identical (and nonempty)
  /// observability rows.  Only classes with >= 2 members are kept; members
  /// are in ascending arc order, groups ordered by their first member.
  struct AmbiguityGroup {
    std::vector<netlist::ArcId> arcs;
    std::uint32_t coverage = 0;  ///< shared pattern coverage of the class
  };
  std::vector<AmbiguityGroup> groups;
  /// Per arc: index into `groups`, or -1 when the arc is in no group.
  std::vector<int> group_of;

  /// Dominance among class representatives: `dominated`'s observability is
  /// a strict subset of `dominator`'s, so any behavior implicating the
  /// dominated arc also implicates its dominator (DIAG002).  Capped at
  /// kMaxDominancePairs; dominated_found counts all of them.
  struct DominancePair {
    netlist::ArcId dominated;
    netlist::ArcId dominator;
  };
  std::vector<DominancePair> dominance;
  std::size_t dominance_found = 0;

  /// Patterns with identical static observability columns (the set of
  /// (arc, output) pairs they observe): classes with >= 2 members, pattern
  /// indices ascending (DIAG004).
  std::vector<std::vector<std::size_t>> redundant_patterns;

  /// Fraction of arcs with pattern_coverage > 0 (DIAG006); 1.0 when the
  /// netlist has no arcs.
  double coverage_ratio = 1.0;

  /// Analytic rank-separability (DIAG005; empty when the subject carries
  /// no delay model): per ambiguity group, the L1 distance between its
  /// Clark-SSTA criticality signature and the nearest other group's.
  /// Signatures are per-(output, pattern) increases of the analytic
  /// critical probability when the group's representative arc is slowed by
  /// the subject's defect delta.  -1 = not computed (single group / cap).
  std::vector<double> group_min_separation;

  static constexpr std::size_t kMaxDominancePairs = 64;
};

SensitizationFacts compute_sensitization_facts(
    const DiagnosabilitySubject& subject);

/// Machine-readable diagnosability report (sddd_lint --diagnosability
/// --json): ambiguity groups, per-suspect coverage, dead arcs, redundant
/// patterns and the coverage ratio, in a stable schema (DESIGN.md section
/// 13) that CI and the experiment drivers consume.
std::string diagnosability_report_json(const DiagnosabilitySubject& subject,
                                       const SensitizationFacts& facts);

}  // namespace sddd::analysis
