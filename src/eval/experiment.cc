#include "eval/experiment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>

#include "diagnosis/behavior.h"
#include "diagnosis/logic_baseline.h"
#include "diagnosis/signature_matrix.h"
#include "eval/checkpoint.h"
#include "eval/explain.h"
#include "introspect/explain.h"
#include "introspect/manifest.h"
#include "netlist/levelize.h"
#include "obs/error.h"
#include "obs/faults.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "runtime/cancel.h"
#include "runtime/parallel_for.h"
#include "stats/rv.h"
#include "stats/sample_vector.h"
#include "timing/delay_field.h"
#include "timing/delay_model.h"

namespace sddd::eval {

using defect::DefectInjector;
using defect::DefectSizeModel;
using defect::InjectedChip;
using defect::SegmentDefectModel;
using diagnosis::BehaviorMatrix;
using diagnosis::Diagnoser;
using diagnosis::Method;
using netlist::Netlist;
using stats::Rng;

double ExperimentResult::success_rate(Method m, int k) const {
  const auto it = std::find(config.methods.begin(), config.methods.end(), m);
  if (it == config.methods.end()) {
    throw std::invalid_argument("success_rate: method not measured");
  }
  const auto mi = static_cast<std::size_t>(it - config.methods.begin());
  std::size_t total = 0;
  std::size_t hits = 0;
  for (const TrialRecord& t : trials) {
    if (!t.failed_test) continue;
    ++total;
    const int rank = t.rank_of_true[mi];
    if (rank >= 0 && rank < k) ++hits;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

double ExperimentResult::avg_suspects() const {
  std::size_t total = 0;
  std::size_t sum = 0;
  for (const TrialRecord& t : trials) {
    if (!t.failed_test) continue;
    ++total;
    sum += t.n_suspects;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(total);
}

double ExperimentResult::avg_injection_attempts() const {
  std::size_t total = 0;
  std::size_t sum = 0;
  for (const TrialRecord& t : trials) {
    if (!t.failed_test) continue;
    ++total;
    sum += t.injection_attempts;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(total);
}

double ExperimentResult::logic_baseline_success_rate(int k) const {
  std::size_t total = 0;
  std::size_t hits = 0;
  for (const TrialRecord& t : trials) {
    if (!t.failed_test) continue;
    ++total;
    if (t.logic_baseline_rank >= 0 && t.logic_baseline_rank < k) ++hits;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

std::size_t ExperimentResult::diagnosable_trials() const {
  std::size_t total = 0;
  for (const TrialRecord& t : trials) total += t.failed_test ? 1U : 0U;
  return total;
}

std::string_view trial_status_name(TrialStatus status) {
  switch (status) {
    case TrialStatus::kNotFailing: return "not_failing";
    case TrialStatus::kDiagnosed: return "diagnosed";
    case TrialStatus::kQuarantined: return "quarantined";
    case TrialStatus::kSkipped: return "skipped";
  }
  return "unknown";
}

std::size_t ExperimentResult::quarantined_trials() const {
  std::size_t total = 0;
  for (const TrialRecord& t : trials) {
    total += t.status == TrialStatus::kQuarantined ? 1U : 0U;
  }
  return total;
}

std::size_t ExperimentResult::skipped_trials() const {
  std::size_t total = 0;
  for (const TrialRecord& t : trials) {
    total += t.status == TrialStatus::kSkipped ? 1U : 0U;
  }
  return total;
}

std::size_t ExperimentResult::completed_trials() const {
  return trials.size() - skipped_trials();
}

namespace {

/// Rank (0-based position in the best-first order) of `arc` in the result
/// under method `m`; -1 = absent from the suspect set.
int rank_of(const diagnosis::DiagnosisResult& result, Method m,
            netlist::ArcId arc) {
  const auto ranked = result.ranked(m);
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].arc == arc) return static_cast<int>(i);
  }
  return -1;
}

// CPU attribution for the two phases whose work happens at experiment call
// sites (pattern generation and chip observation); the dictionary and
// diagnoser record their own ns counters.
obs::Counter& atpg_gen_ns_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("atpg.gen_ns");
  return c;
}

obs::Counter& mc_observe_ns_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("mc.observe_ns");
  return c;
}

double seconds_since(std::uint64_t t0_ns) {
  return static_cast<double>(obs::now_ns() - t0_ns) * 1e-9;
}

// Resilience counters: how many trials were quarantined by a failure, and
// how many were replayed from a checkpoint journal instead of recomputed.
obs::Counter& trial_quarantined_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("trial.quarantined");
  return c;
}

obs::Counter& run_resumed_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("run.resumed_trials");
  return c;
}

// Per-trial wall-clock latency shape; the p50/p95/p99 summaries land in
// the metrics JSON for `sddd_cli report` to compare.  Wall-clock valued,
// so deliberately NOT part of any byte-identity contract.
obs::Histogram& trial_ms_histogram() {
  static constexpr double kBoundsMs[] = {1,    2.5,   5,     10,    25,
                                         50,   100,   250,   500,   1000,
                                         2500, 5000,  10000, 30000};
  static obs::Histogram& h = obs::MetricsRegistry::instance()
                                 .register_histogram("exp.trial_ms",
                                                     kBoundsMs);
  return h;
}

/// Everything run_diagnosis_experiment builds before the trial loop: the
/// timing/logic models, the two disjoint Monte-Carlo worlds (dictionary
/// predictor vs manufactured chips), the calibrated clk with its
/// detectability window, and the defect injection machinery.  Factored out
/// so that explain_trial() can reconstruct the *identical* environment for
/// one trial; every value here is a pure function of (netlist, config).
struct ExperimentSetup {
  const Netlist& nl;
  const ExperimentConfig& config;
  std::uint64_t t0 = obs::now_ns();
  netlist::Levelization lev;
  timing::StatisticalCellLibrary lib;
  timing::ArcDelayModel model;
  logicsim::BitSimulator logic_sim;
  std::size_t instance_samples;
  // Two disjoint Monte-Carlo worlds: the dictionary field is the CAD
  // model's predictor; the instance field manufactures the actual chips.
  timing::DelayField dict_field;
  timing::DelayField inst_field;
  timing::DynamicTimingSimulator dict_sim;
  timing::DynamicTimingSimulator inst_sim;
  double setup_seconds;
  DefectSizeModel size_model;
  stats::RandomVariable size_rv;
  SegmentDefectModel location_model;
  DefectInjector injector;
  double clk = 0.0;
  double calibration_seconds = 0.0;
  // Detectability window for the injection gate (kDetectable).
  double detect_lo = 0.0;
  double detect_hi = 0.0;
  // Shared suspect-column cache for the kernel scoring path.  Constructed
  // unconditionally (it is empty and costs nothing until the first
  // column); wired into the diagnoser only when config.use_score_kernel.
  // Keyed by construction: its inputs are pure functions of
  // (netlist, config), exactly what experiment_fingerprint() covers.
  std::optional<diagnosis::SignatureCache> sig_cache;

  ExperimentSetup(const Netlist& nl_in, const ExperimentConfig& cfg)
      : nl(nl_in),
        config(cfg),
        lev(nl_in),
        lib(cfg.library),
        model(nl_in, lib),
        logic_sim(nl_in, lev),
        instance_samples(cfg.instance_samples != 0 ? cfg.instance_samples
                                                   : cfg.mc_samples),
        dict_field(model, cfg.mc_samples, cfg.global_weight,
                   cfg.seed ^ 0xd1c7ULL),
        inst_field(model, instance_samples, cfg.global_weight,
                   cfg.seed ^ 0xc41bULL),
        dict_sim(dict_field, lev),
        inst_sim(inst_field, lev),
        setup_seconds(seconds_since(t0)),
        size_model(model.mean_cell_delay(), cfg.defect_mean_lo,
                   cfg.defect_mean_hi, cfg.defect_three_sigma,
                   cfg.seed ^ 0x5e1fULL),
        size_rv(stats::RandomVariable::Normal(size_model.marginal_mean(),
                                              size_model.marginal_mean() /
                                                  6.0)),
        location_model(SegmentDefectModel::uniform_single(nl_in, size_rv)),
        injector(location_model, size_model) {
    // clk calibration: per-site achievable delays (see header).
    const std::uint64_t cal_t0 = obs::now_ns();
    {
      SDDD_SPAN(cal_span, "exp.calibration");
      cal_span.arg("sites",
                   static_cast<std::int64_t>(config.calibration_sites));
      Rng cal_rng(config.seed, 0xca1bULL);
      std::vector<double> site_delays;
      for (std::size_t s = 0; s < config.calibration_sites; ++s) {
        const auto site = static_cast<netlist::ArcId>(
            cal_rng.below(static_cast<std::uint32_t>(nl.arc_count())));
        const auto cal_patterns = [&] {
          const obs::ScopedNsTimer atpg_timer(atpg_gen_ns_counter());
          return atpg::generate_diagnostic_patterns(
              model, lev, site, config.pattern_config, cal_rng);
        }();
        const double d =
            atpg::site_best_nominal_delay(model, lev, cal_patterns, site);
        if (d > 0.0) site_delays.push_back(d);
      }
      if (site_delays.empty()) {
        throw std::runtime_error(
            "run_diagnosis_experiment: no calibration site was testable");
      }
      clk = stats::SampleVector(std::move(site_delays))
                .quantile(config.clk_site_quantile);
    }
    calibration_seconds = seconds_since(cal_t0);
    SDDD_LOG_DEBUG("%s: clk calibrated to %.4f (%zu sites)",
                   nl.name().c_str(), clk, config.calibration_sites);
    detect_lo = clk - config.detectable_lambda_lo * size_model.marginal_mean();
    detect_hi = clk + config.detectable_lambda_hi * size_model.marginal_mean();
    sig_cache.emplace(dict_sim, logic_sim, lev, size_model, clk,
                      !config.match_on_signature);
  }

  ExperimentSetup(const ExperimentSetup&) = delete;
  ExperimentSetup& operator=(const ExperimentSetup&) = delete;
};

/// What the explanation engine needs from a trial beyond its TrialRecord:
/// the pattern set, the observed behavior and the full diagnosis result
/// (with the captured phi matrix when the diagnoser was configured for it).
struct TrialArtifacts {
  std::vector<logicsim::PatternPair> patterns;
  BehaviorMatrix B{0, 0};
  diagnosis::DiagnosisResult diagnosis;
};

/// The measurement body of one trial.  Trial randomness derives purely
/// from (config.seed, trial index), so calling this again for the same
/// trial - in the experiment loop, on resume, or from explain_trial() -
/// reproduces the identical record bit for bit.  Failures propagate;
/// classification into TrialStatus is the caller's job.
void run_trial_body(const ExperimentSetup& S, const ExperimentConfig& config,
                    const Diagnoser& diagnoser,
                    const diagnosis::LogicBaselineDiagnoser* logic_baseline,
                    std::size_t trial, TrialRecord& record,
                    TrialArtifacts* artifacts) {
  SDDD_SPAN(trial_span, "exp.trial");
  trial_span.arg("trial", static_cast<std::int64_t>(trial));
  const Netlist& nl = S.nl;
  Rng trial_rng = Rng(config.seed, 0xe4a1ULL).split(trial + 1);

  // Redraw (site, size, chip) until the chip observably fails.
  std::vector<logicsim::PatternPair> patterns;
  BehaviorMatrix B(nl.outputs().size(), 0);
  for (std::size_t attempt = 0; attempt < config.max_injection_retries;
       ++attempt) {
    ++record.injection_attempts;
    record.chip = S.injector.draw(S.instance_samples, trial_rng);
    {
      const obs::ScopedNsTimer atpg_timer(atpg_gen_ns_counter());
      patterns = atpg::generate_diagnostic_patterns(
          S.model, S.lev, record.chip.defect_arc, config.pattern_config,
          trial_rng);
    }
    if (patterns.empty()) continue;
    if (config.site_bias == SiteBias::kDetectable) {
      const double d = atpg::site_best_nominal_delay(
          S.model, S.lev, patterns, record.chip.defect_arc);
      if (d < S.detect_lo || d > S.detect_hi) continue;
    }
    // Assemble the chip's defect list: the primary (pattern-targeted)
    // one, plus extras when the single-defect assumption is relaxed.
    record.extra_defects.clear();
    std::vector<std::pair<netlist::ArcId, double>> defects = {
        {record.chip.defect_arc, record.chip.defect_size}};
    for (std::size_t extra = 1; extra < config.n_defects; ++extra) {
      const auto other = S.injector.draw(S.instance_samples, trial_rng);
      record.extra_defects.emplace_back(other.defect_arc, other.defect_size);
      defects.emplace_back(other.defect_arc, other.defect_size);
    }
    {
      const obs::ScopedNsTimer observe_timer(mc_observe_ns_counter());
      B = diagnosis::observe_behavior_multi(S.inst_sim, S.logic_sim, S.lev,
                                            patterns,
                                            record.chip.sample_index,
                                            defects, S.clk);
    }
    if (!B.any_failure()) continue;
    // The chip must fail *because of* the defect: a slow-but-defect-free
    // instance that fails anyway is a process outlier, not a delay
    // defect, and its behavior carries no information about the injected
    // site.  Require at least one failing cell that passes without the
    // defect.
    const obs::ScopedNsTimer observe_timer(mc_observe_ns_counter());
    const BehaviorMatrix B0 = diagnosis::observe_behavior(
        S.inst_sim, S.logic_sim, S.lev, patterns, record.chip.sample_index,
        std::nullopt, S.clk);
    bool defect_contributes = false;
    for (std::size_t i = 0; i < B.output_count() && !defect_contributes;
         ++i) {
      for (std::size_t jj = 0; jj < B.pattern_count(); ++jj) {
        if (B.at(i, jj) && !B0.at(i, jj)) {
          defect_contributes = true;
          break;
        }
      }
    }
    if (defect_contributes) {
      record.failed_test = true;
      break;
    }
  }
  if (!record.failed_test) return;

  record.n_patterns = patterns.size();
  record.n_failing_cells = B.failure_count();
  auto diag = diagnoser.diagnose(patterns, B, config.methods, S.clk);
  record.n_suspects = diag.suspects.size();
  // Under multi-defect injection a hit on ANY injected site counts
  // (locating one real defect is actionable for failure analysis).
  std::vector<netlist::ArcId> true_arcs = {record.chip.defect_arc};
  for (const auto& [arc, size] : record.extra_defects) {
    true_arcs.push_back(arc);
  }
  record.true_arc_in_suspects = false;
  for (const netlist::ArcId arc : true_arcs) {
    record.true_arc_in_suspects |=
        std::find(diag.suspects.begin(), diag.suspects.end(), arc) !=
        diag.suspects.end();
  }
  for (std::size_t m = 0; m < config.methods.size(); ++m) {
    int best = -1;
    for (const netlist::ArcId arc : true_arcs) {
      const int r = rank_of(diag, config.methods[m], arc);
      if (r >= 0 && (best < 0 || r < best)) best = r;
    }
    record.rank_of_true[m] = best;
  }
  if (config.include_logic_baseline && logic_baseline != nullptr) {
    const auto ranked = logic_baseline->diagnose(patterns, B);
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      for (const netlist::ArcId arc : true_arcs) {
        if (ranked[i].arc == arc &&
            (record.logic_baseline_rank < 0 ||
             static_cast<int>(i) < record.logic_baseline_rank)) {
          record.logic_baseline_rank = static_cast<int>(i);
        }
      }
    }
  }
  if (artifacts != nullptr) {
    artifacts->patterns = std::move(patterns);
    artifacts->B = std::move(B);
    artifacts->diagnosis = std::move(diag);
  }
}

}  // namespace

ExperimentResult run_diagnosis_experiment(const Netlist& nl,
                                          const ExperimentConfig& config) {
  if (nl.dff_count() != 0) {
    throw std::invalid_argument(
        "run_diagnosis_experiment: run full_scan_transform first");
  }
  SDDD_SPAN(exp_span, "exp.run");
  exp_span.arg("circuit", std::string_view(nl.name()))
      .arg("chips", static_cast<std::int64_t>(config.n_chips))
      .arg("mc_samples", static_cast<std::int64_t>(config.mc_samples));
  const obs::MetricsSnapshot snap_start =
      obs::MetricsRegistry::instance().snapshot();
  const auto wall_start = std::chrono::steady_clock::now();
  const ExperimentSetup S(nl, config);

  diagnosis::DiagnoserConfig diag_config;
  diag_config.max_suspects = config.max_suspects;
  diag_config.match_on_total_probability = !config.match_on_signature;
  diag_config.collapse_unobservable = config.collapse_unobservable;
  if (config.use_score_kernel) diag_config.cache = &*S.sig_cache;
  const Diagnoser diagnoser(S.dict_sim, S.logic_sim, S.lev, S.size_model,
                            diag_config);
  const diagnosis::LogicBaselineDiagnoser logic_baseline(S.logic_sim, S.lev);

  ExperimentResult result;
  result.config = config;
  result.circuit_name = nl.name();
  result.clk = S.clk;

  // The run's identity: the same 16-hex fingerprint the checkpoint
  // journal, result JSON and manifest carry.  Stamp it into the flight
  // recorder up front so a postmortem dumped mid-run cross-links to the
  // run's other artifacts.
  const std::uint64_t fp = experiment_fingerprint(result.circuit_name, config);
  obs::Recorder::instance().set_run_id(introspect::to_hex64(fp));

  // Trials are independent: each one derives its RNG stream purely from
  // (config.seed, trial index) - no shared sequential generator - and
  // writes only its own pre-reserved TrialRecord slot, so the trial order
  // (and therefore the thread count) cannot change any result.  The
  // dictionary simulator's lazily-memoized delay rows are the one piece of
  // shared mutable state; pre-materialize them before fanning out.
  if (runtime::would_parallelize(config.n_chips)) S.dict_sim.prewarm();
  result.trials.resize(config.n_chips);

  // Checkpoint/resume: replay journaled trials into their slots first,
  // then journal the remaining trials as they finish.  Because trial
  // randomness derives only from (seed, trial index), a replayed record is
  // bit-identical to what recomputation would produce.
  std::vector<char> done(config.n_chips, 0);
  std::unique_ptr<CheckpointWriter> journal;
  if (!config.checkpoint_path.empty()) {
    std::uint64_t valid_bytes = 0;
    bool write_header = true;
    if (config.resume) {
      CheckpointLoad load =
          load_checkpoint(config.checkpoint_path, fp, config.n_chips);
      for (CheckpointRecord& rec : load.records) {
        if (!done[rec.trial]) ++result.resumed_trials;
        done[rec.trial] = 1;
        result.trials[rec.trial] = std::move(rec.record);
      }
      if (load.header_ok) {
        valid_bytes = load.valid_bytes;
        write_header = false;
      }
      if (result.resumed_trials > 0) {
        run_resumed_counter().add(result.resumed_trials);
        SDDD_LOG_INFO("%s: resumed %zu/%zu trials from %s",
                      nl.name().c_str(), result.resumed_trials,
                      config.n_chips, config.checkpoint_path.c_str());
      }
    }
    journal = std::make_unique<CheckpointWriter>(
        config.checkpoint_path, fp, config.n_chips, valid_bytes,
        write_header);
  }

  // Soft deadline for the trial loop.  The token travels as the ambient
  // CancelToken (runtime/cancel.h): the pool re-installs it on every
  // worker, DynamicTimingSimulator polls it mid-trial, and the dispatcher
  // below checks it before starting each trial.
  runtime::CancelToken deadline_token;
  std::optional<runtime::ScopedCancelToken> deadline_guard;
  if (config.deadline_s > 0.0) {
    deadline_token.set_deadline_after_seconds(config.deadline_s);
    deadline_guard.emplace(&deadline_token);
  }

  // Dispatcher: runs each not-yet-done trial, classifies any failure into
  // TrialStatus, and journals the finished record.  A quarantined trial
  // never takes the experiment down; a deadline expiry skips trials (not
  // journaled, so --resume re-runs them); only a hard cancel propagates.
  const std::uint64_t trials_t0 = obs::now_ns();
  std::atomic<bool> deadline_fired{false};
  runtime::parallel_for(config.n_chips, [&](std::size_t trial) {
    if (done[trial]) return;
    TrialRecord record;
    record.rank_of_true.assign(config.methods.size(), -1);
    const runtime::CancelToken* token = runtime::current_cancel_token();
    if (token != nullptr && token->deadline_passed()) {
      obs::Recorder::instance().record(obs::EventKind::kDeadline, "", trial);
      deadline_fired.store(true, std::memory_order_relaxed);
      record.status = TrialStatus::kSkipped;
      result.trials[trial] = std::move(record);
      return;
    }
    obs::Recorder::instance().record(obs::EventKind::kTrialBegin, "", trial);
    const std::uint64_t trial_t0 = obs::now_ns();
    bool journal_this = journal != nullptr;
    const auto reset_record = [&] {
      record = TrialRecord{};
      record.rank_of_true.assign(config.methods.size(), -1);
    };
    try {
      obs::fault_point("exp.trial", trial);
      run_trial_body(S, config, diagnoser, &logic_baseline, trial, record,
                     nullptr);
      record.status = record.failed_test ? TrialStatus::kDiagnosed
                                         : TrialStatus::kNotFailing;
    } catch (const CancelledError&) {
      throw;  // a hard cancel aborts the experiment, not just the trial
    } catch (const DeadlineError&) {
      reset_record();
      record.status = TrialStatus::kSkipped;
      journal_this = false;
      obs::Recorder::instance().record(obs::EventKind::kDeadline, "", trial);
      deadline_fired.store(true, std::memory_order_relaxed);
    } catch (const Error& e) {
      reset_record();
      record.status = TrialStatus::kQuarantined;
      record.error_code = e.code();
      record.error_message = e.what();
      trial_quarantined_counter().add(1);
      obs::Recorder::instance().record(obs::EventKind::kTrialError,
                                       error_code_name(e.code()), trial);
      SDDD_LOG_WARN("%s: trial %zu quarantined [%s]: %s", nl.name().c_str(),
                    trial,
                    std::string(error_code_name(e.code())).c_str(),
                    e.what());
      obs::dump_postmortem("trial_quarantined");
    } catch (const std::exception& e) {
      reset_record();
      record.status = TrialStatus::kQuarantined;
      record.error_code = ErrorCode::kInternal;
      record.error_message = e.what();
      trial_quarantined_counter().add(1);
      obs::Recorder::instance().record(obs::EventKind::kTrialError, "internal",
                                       trial);
      SDDD_LOG_WARN("%s: trial %zu quarantined [internal]: %s",
                    nl.name().c_str(), trial, e.what());
      obs::dump_postmortem("trial_quarantined");
    }
    trial_ms_histogram().record(
        static_cast<double>(obs::now_ns() - trial_t0) * 1e-6);
    obs::Recorder::instance().record(
        obs::EventKind::kTrialEnd, "", trial,
        static_cast<std::uint64_t>(record.status));
    result.trials[trial] = std::move(record);
    if (journal_this) {
      try {
        journal->append(trial, result.trials[trial]);
      } catch (const Error& e) {
        // A journal append failure only costs durability for this trial
        // (it re-runs on resume); the measurement itself is intact.
        SDDD_LOG_WARN("%s: checkpoint append for trial %zu failed: %s",
                      nl.name().c_str(), trial, e.what());
      }
    }
  });
  if (journal) journal->flush();
  if (deadline_fired.load(std::memory_order_relaxed)) {
    obs::dump_postmortem("deadline");
  }
  result.degraded = result.skipped_trials() > 0;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Per-phase attribution: wall splits from the three local timers, CPU
  // splits (thread-seconds) and work volumes from metric deltas across the
  // experiment.  Deterministic work => deterministic counters; the ns
  // figures vary with the machine but the counters do not.
  const obs::MetricsSnapshot snap_end =
      obs::MetricsRegistry::instance().snapshot();
  PhaseBreakdown& ph = result.phases;
  ph.setup_seconds = S.setup_seconds;
  ph.calibration_seconds = S.calibration_seconds;
  ph.trials_seconds = seconds_since(trials_t0);
  ph.atpg_cpu_seconds = obs::MetricsSnapshot::delta_ns_to_seconds(
      snap_start, snap_end, "atpg.gen_ns");
  ph.mc_observe_cpu_seconds = obs::MetricsSnapshot::delta_ns_to_seconds(
      snap_start, snap_end, "mc.observe_ns");
  ph.dict_build_cpu_seconds =
      obs::MetricsSnapshot::delta_ns_to_seconds(snap_start, snap_end,
                                                "dict.build_ns") +
      obs::MetricsSnapshot::delta_ns_to_seconds(snap_start, snap_end,
                                                "dict.e_ns");
  ph.suspect_extract_cpu_seconds = obs::MetricsSnapshot::delta_ns_to_seconds(
      snap_start, snap_end, "diag.extract_ns");
  ph.score_cpu_seconds = obs::MetricsSnapshot::delta_ns_to_seconds(
      snap_start, snap_end, "diag.score_ns");
  ph.score_column_build_cpu_seconds = obs::MetricsSnapshot::delta_ns_to_seconds(
      snap_start, snap_end, "diag.kernel.build_ns");
  ph.score_phi_cpu_seconds = obs::MetricsSnapshot::delta_ns_to_seconds(
      snap_start, snap_end, "diag.kernel.phi_ns");
  ph.sig_cache_hits = obs::MetricsSnapshot::counter_delta(
      snap_start, snap_end, "dict.sig_cache.hits");
  ph.sig_cache_misses = obs::MetricsSnapshot::counter_delta(
      snap_start, snap_end, "dict.sig_cache.misses");
  ph.sig_cache_bytes = obs::MetricsSnapshot::counter_delta(
      snap_start, snap_end, "dict.sig_cache.bytes");
  ph.mc_samples =
      obs::MetricsSnapshot::counter_delta(snap_start, snap_end, "mc.samples");
  ph.dict_columns_built = obs::MetricsSnapshot::counter_delta(
      snap_start, snap_end, "dict.columns_built");
  ph.phi_evals = obs::MetricsSnapshot::counter_delta(snap_start, snap_end,
                                                     "diag.phi_evals");
  ph.pool_tasks =
      obs::MetricsSnapshot::counter_delta(snap_start, snap_end, "pool.tasks");

  SDDD_LOG_INFO(
      "%s: %zu/%zu chips diagnosable, clk=%.3f, %.2fs wall "
      "(trials %.2fs, dict %.2f cpu-s, score %.2f cpu-s)",
      nl.name().c_str(), result.diagnosable_trials(), config.n_chips,
      result.clk, result.wall_seconds, ph.trials_seconds,
      ph.dict_build_cpu_seconds, ph.score_cpu_seconds);
  return result;
}

introspect::ExplanationReport explain_trial(const Netlist& nl,
                                            const ExperimentConfig& config,
                                            const ExplainRequest& request) {
  if (nl.dff_count() != 0) {
    throw std::invalid_argument("explain_trial: run full_scan_transform first");
  }
  SDDD_SPAN(span, "exp.explain_trial");
  span.arg("circuit", std::string_view(nl.name()));
  const ExperimentSetup S(nl, config);

  diagnosis::DiagnoserConfig diag_config;
  diag_config.max_suspects = config.max_suspects;
  diag_config.match_on_total_probability = !config.match_on_signature;
  diag_config.collapse_unobservable = config.collapse_unobservable;
  diag_config.capture_phi = true;
  if (config.use_score_kernel) diag_config.cache = &*S.sig_cache;
  const Diagnoser diagnoser(S.dict_sim, S.logic_sim, S.lev, S.size_model,
                            diag_config);
  // Unlike the experiment loop (where trials are the outer parallel level
  // and the suspect loop serializes beneath them), here the suspect loop
  // IS the top parallel level, so the lazily-memoized delay rows must be
  // materialized up front.
  S.dict_sim.prewarm();

  std::vector<std::size_t> trials_to_try;
  if (request.trial.has_value()) {
    if (*request.trial >= config.n_chips) {
      throw std::invalid_argument("explain_trial: trial index out of range");
    }
    trials_to_try.push_back(*request.trial);
  } else {
    for (std::size_t t = 0; t < config.n_chips; ++t) trials_to_try.push_back(t);
  }

  for (const std::size_t trial : trials_to_try) {
    TrialRecord record;
    record.rank_of_true.assign(config.methods.size(), -1);
    TrialArtifacts artifacts;
    run_trial_body(S, config, diagnoser, nullptr, trial, record, &artifacts);
    if (!record.failed_test) continue;

    introspect::ExplainConfig explain_config;
    explain_config.top_k = request.top_k;
    explain_config.match_on_total_probability = !config.match_on_signature;
    auto report = introspect::explain_diagnosis(
        S.dict_sim, S.logic_sim, S.lev, S.size_model, artifacts.patterns,
        artifacts.B, artifacts.diagnosis, S.clk, explain_config);
    report.circuit = nl.name();
    report.run_id =
        introspect::to_hex64(experiment_fingerprint(nl.name(), config));
    report.seed = config.seed;
    report.trial = trial;
    report.injected_arc = record.chip.defect_arc;
    report.injected_size = record.chip.defect_size;
    return report;
  }
  throw ModelError(
      request.trial.has_value()
          ? "explain_trial: the requested trial is not diagnosable (the chip "
            "never observably failed)"
          : "explain_trial: no diagnosable trial in the configured chip "
            "population");
}

}  // namespace sddd::eval
