// experiment.h - Statistical defect injection + diagnosis experiment
// (Section I).
//
// Reproduces the paper's measurement loop: produce N circuit instances with
// different delay configurations, inject one delay defect of random
// location and size per instance, generate diagnostic patterns for the
// injected fault's longest paths (Section H-4), observe the behavior
// matrix, run every diagnosis method, and score top-K success.
//
// Chips that do not fail the test (the defect is too small / sits on too
// short a path - exactly the Figure 1 escape phenomenon) are redrawn up to
// a retry budget; the number of redraws is recorded as the injection yield
// statistic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atpg/diag_patterns.h"
#include "defect/injector.h"
#include "diagnosis/diagnoser.h"
#include "netlist/netlist.h"
#include "obs/error.h"
#include "timing/celllib.h"

namespace sddd::eval {

/// Which injected (site, chip) draws the experiment accepts.
enum class SiteBias {
  /// Gate each draw on detectability: the site's own diagnostic patterns
  /// must launch a nominal delay through the site within a window around
  /// clk ([clk - lo, clk + hi] in defect-mean units).  This is the
  /// population an at-speed test can actually fail and resolve: a 0.5-1.0
  /// cell-delay defect on a short path never shows at the tester (the
  /// paper's Figure 1 escape argument), and a site already far beyond clk
  /// fails with or without the defect.  Default; what Table I effectively
  /// measures.
  kDetectable,
  /// No detectability gate; only the "chip must fail" redraw applies.
  /// Slower (low injection yield) and the accepted failures are deep-tail
  /// events the dictionary needs many more samples to resolve.
  kUniform,
};

struct ExperimentConfig {
  std::size_t mc_samples = 400;      ///< dictionary Monte-Carlo population
  /// Size of the manufactured-chip population (the instance field).  0 =
  /// same as mc_samples.  Kept separate so ablations can vary dictionary
  /// fidelity while diagnosing the *same* chips.
  std::size_t instance_samples = 0;
  std::size_t n_chips = 20;          ///< N failing chips to diagnose
  SiteBias site_bias = SiteBias::kDetectable;
  /// Detectability window around clk, in units of the mean defect size.
  double detectable_lambda_lo = 2.0;
  double detectable_lambda_hi = 1.5;
  /// Defects per chip.  1 = the paper's single-defect model (Definition
  /// D.10).  >1 relaxes the assumption (future work #3): extra defects of
  /// random location/size are added to the same chip while the diagnosis
  /// still assumes a single defect; success counts a hit when ANY injected
  /// site ranks within the top K.
  std::size_t n_defects = 1;
  std::vector<diagnosis::Method> methods = {
      diagnosis::Method::kSimI, diagnosis::Method::kSimII,
      diagnosis::Method::kSimIII, diagnosis::Method::kRev};
  /// clk calibration: for calibration_sites random fault sites, measure
  /// the nominal delay their own diagnostic patterns launch through the
  /// site; clk = this quantile of those per-site achievable delays.  That
  /// places the rated period where a typical testable site has small
  /// positive slack, so a 0.5-1.0 cell-delay defect is observable - the
  /// regime Table I operates in.  (Static Delta(C) would be false-path
  /// pessimistic: no chip, defective or not, ever reaches it; and the max
  /// over all sites would leave typical sites with several defect-sizes of
  /// slack, making every accepted failure an unresolvable tail event.)
  double clk_site_quantile = 0.7;
  std::size_t calibration_sites = 16;  ///< random sites in the calibration
  double global_weight = 0.03;       ///< inter-die correlation weight
  double defect_mean_lo = 0.5;       ///< defect mean, fraction of cell delay
  double defect_mean_hi = 1.0;
  double defect_three_sigma = 0.5;   ///< 3-sigma as fraction of the mean
  atpg::DiagnosticPatternConfig pattern_config;
  std::size_t max_suspects = 300;
  /// Match phi against the paper-literal signature S_crt = E - M instead
  /// of the default total failure probability E_crt (see DiagnoserConfig).
  bool match_on_signature = false;
  /// Score through the packed kernel against a per-experiment
  /// SignatureCache (suspect columns built once and shared across every
  /// chip) instead of re-simulating per chip.  Scores, ranks and captured
  /// phi are bit-identical either way, which is exactly why this knob is
  /// EXCLUDED from experiment_fingerprint(): kernel and scalar runs of the
  /// same experiment share run_ids/journals and their result JSON is
  /// byte-comparable.  Off = the scalar reference path (`--no-kernel`).
  bool use_score_kernel = true;
  /// Collapse suspects a pattern does not sensitize onto one shared phi
  /// evaluation per pattern (DiagnoserConfig::collapse_unobservable).
  /// Scores, ranks and result JSON are byte-identical either way - the
  /// collapsed column provably equals the baseline - so, like
  /// use_score_kernel, this knob is EXCLUDED from experiment_fingerprint()
  /// and ci.sh byte-compares collapsed vs uncollapsed result files; only
  /// diag.phi_evals and per-pattern column work drop.  (`--collapse`.)
  bool collapse_unobservable = false;
  /// Also run the traditional logic-domain baseline (gross-delay 0/1
  /// dictionary, Hamming matching) on every chip, for the paper's
  /// logic-vs-delay-diagnosis contrast.
  bool include_logic_baseline = true;
  std::size_t max_injection_retries = 120;
  timing::CellLibraryConfig library;
  std::uint64_t seed = 2003;

  // --- Resilience knobs (see DESIGN.md section 10) ---
  /// Trial journal path; empty = no journaling.  Finished trials are
  /// appended (crash-safe, checksummed) as they complete.
  std::string checkpoint_path;
  /// With a checkpoint_path: load the journal first and re-run only the
  /// trials it does not cover.  Trial randomness derives from (seed, trial
  /// index), so the resumed result is bit-identical to an uninterrupted
  /// run.  Without resume an existing journal is overwritten.
  bool resume = false;
  /// Soft wall-clock budget in seconds for the trial loop; <= 0 = none.
  /// Cooperative: trials already running unwind at their next poll point,
  /// un-started trials are marked kSkipped, and the result reports
  /// degraded=true instead of the run failing.  Skipped trials are not
  /// journaled, so a later --resume finishes them.
  double deadline_s = 0.0;
};

/// How one trial ended.  `kDiagnosed` <=> TrialRecord::failed_test; the
/// other states explain *why* a trial contributes nothing to the success
/// rates (whose denominator is diagnosable_trials(), i.e. kDiagnosed
/// only).
enum class TrialStatus : int {
  /// The chip never observably failed within the retry budget (the paper's
  /// Figure 1 escape phenomenon) - a valid measurement of zero.
  kNotFailing = 0,
  /// Diagnosis ran to completion; ranks are meaningful.
  kDiagnosed = 1,
  /// The trial threw; it is quarantined with the error recorded and the
  /// rest of the experiment unaffected.
  kQuarantined = 2,
  /// Skipped by the deadline (or a hard cancel) before producing a result;
  /// re-run on resume.
  kSkipped = 3,
};

/// Stable lower-case name ("not_failing", "diagnosed", "quarantined",
/// "skipped") used in journals and result JSON.
std::string_view trial_status_name(TrialStatus status);

/// Outcome of diagnosing one failing chip.
struct TrialRecord {
  defect::InjectedChip chip;  ///< the primary (pattern-targeted) defect
  /// Additional defects on the chip when config.n_defects > 1.
  std::vector<std::pair<netlist::ArcId, double>> extra_defects;
  std::size_t injection_attempts = 0;  ///< redraws until the chip failed
  bool failed_test = false;            ///< false = never failed, skipped
  std::size_t n_patterns = 0;
  std::size_t n_failing_cells = 0;
  std::size_t n_suspects = 0;
  bool true_arc_in_suspects = false;
  /// Rank (0-based) of the injected arc per method; -1 = not in suspects.
  std::vector<int> rank_of_true;
  /// Rank under the gross-delay logic baseline; -1 = absent or disabled.
  int logic_baseline_rank = -1;
  /// How the trial ended (kept in sync with failed_test; see TrialStatus).
  TrialStatus status = TrialStatus::kNotFailing;
  /// Why it was quarantined (meaningful when status == kQuarantined).
  ErrorCode error_code = ErrorCode::kInternal;
  std::string error_message;
  /// True when this record was replayed from a checkpoint journal rather
  /// than recomputed in this run.
  bool from_checkpoint = false;
};

/// Where one experiment's time went.  Wall-clock splits partition
/// wall_seconds; the *_cpu_seconds figures come from metric counter deltas
/// (obs::MetricsSnapshot) and sum across threads, so a perfectly scaled
/// 4-thread phase reports ~4x its wall share.  The counters echo the work
/// volume behind those times (BENCH_table1.json "phases" object).
struct PhaseBreakdown {
  double setup_seconds = 0.0;        ///< model / field / simulator build
  double calibration_seconds = 0.0;  ///< clk calibration sweep
  double trials_seconds = 0.0;       ///< injection + diagnosis loop

  double atpg_cpu_seconds = 0.0;          ///< diagnostic pattern generation
  double mc_observe_cpu_seconds = 0.0;    ///< chip behavior observation
  double dict_build_cpu_seconds = 0.0;    ///< dictionary M + E columns
  double suspect_extract_cpu_seconds = 0.0;
  double score_cpu_seconds = 0.0;         ///< per-pattern phi scoring
  /// Kernel-path split of score_cpu_seconds (both zero on the scalar
  /// path): cached-column acquisition vs packed phi evaluation.
  double score_column_build_cpu_seconds = 0.0;
  double score_phi_cpu_seconds = 0.0;

  std::uint64_t mc_samples = 0;
  std::uint64_t dict_columns_built = 0;
  std::uint64_t phi_evals = 0;
  std::uint64_t pool_tasks = 0;
  /// SignatureCache traffic (zero on the scalar path): column lookups
  /// served cached / built fresh, and resident column bytes.
  std::uint64_t sig_cache_hits = 0;
  std::uint64_t sig_cache_misses = 0;
  std::uint64_t sig_cache_bytes = 0;
};

struct ExperimentResult {
  ExperimentConfig config;
  std::string circuit_name;
  double clk = 0.0;
  /// Wall-clock cost of the whole experiment (calibration + trials); the
  /// number BENCH_table1.json tracks across thread counts and PRs.
  double wall_seconds = 0.0;
  /// Per-phase attribution of that time (see PhaseBreakdown).
  PhaseBreakdown phases;
  std::vector<TrialRecord> trials;
  /// True when the deadline expired before every trial finished: the
  /// numbers below are computed over fewer trials than configured.
  bool degraded = false;
  /// Trials replayed from the checkpoint journal instead of recomputed.
  std::size_t resumed_trials = 0;

  /// Paper accuracy metric: fraction of diagnosable trials whose injected
  /// arc ranks within the top K under `m`.  The denominator is
  /// diagnosable_trials() - quarantined and skipped trials are excluded
  /// explicitly, never silently counted as misses.
  double success_rate(diagnosis::Method m, int k) const;

  /// Same metric for the traditional logic baseline (0 when disabled).
  double logic_baseline_success_rate(int k) const;

  /// Average |S| over diagnosable trials (the paper reports 100-600).
  double avg_suspects() const;

  /// Total injection attempts / diagnosable trials.
  double avg_injection_attempts() const;

  std::size_t diagnosable_trials() const;

  /// Trials quarantined by a per-trial failure (status == kQuarantined).
  std::size_t quarantined_trials() const;
  /// Trials skipped by the deadline / cancellation (status == kSkipped).
  std::size_t skipped_trials() const;
  /// Trials that produced a result: everything but kSkipped.
  std::size_t completed_trials() const;
};

/// Runs the full experiment on a frozen combinational netlist.
///
/// Trials run in parallel over the runtime thread pool (`--threads` /
/// SDDD_THREADS; see src/runtime/parallel_for.h).  Every trial derives its
/// randomness purely from (config.seed, trial index) and fills its own
/// slot of ExperimentResult::trials, so results are bit-identical for any
/// thread count.
ExperimentResult run_diagnosis_experiment(const netlist::Netlist& nl,
                                          const ExperimentConfig& config);

}  // namespace sddd::eval
