// table1.h - Driver regenerating the paper's Table I.
//
// For each of the eight benchmark circuits (or a subset), builds the
// circuit (ISCAS stand-in via the synthetic generator, or a real .bench
// file when provided), runs the injection + diagnosis experiment, and
// formats the measured success rates next to the paper's reported numbers.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "eval/experiment.h"

namespace sddd::eval {

struct Table1Config {
  /// Circuits to run; empty = all eight of the paper.
  std::vector<std::string> circuits;
  /// Gate-count scale of the synthetic stand-ins (1.0 = published size).
  double scale = 1.0;
  /// Directory with real ISCAS .bench files; when a file named
  /// "<circuit>.bench" exists there it is used instead of the stand-in.
  std::optional<std::filesystem::path> bench_dir;
  /// Base experiment configuration (per-circuit K values come from the
  /// catalog; methods default to I/II/III/rev).
  ExperimentConfig base;
  /// Run the static-analysis preflight (netlist + statistical-model rule
  /// packs) on every circuit before its experiment; error-severity
  /// findings abort the run with the report text.
  bool lint_preflight = false;
};

struct Table1Cell {
  std::string circuit;
  int k = 0;
  double sim1_pct = 0.0;
  double sim2_pct = 0.0;
  double sim3_pct = 0.0;
  double rev_pct = 0.0;
  /// Traditional logic-domain baseline (gross-delay dictionary).
  double logic_pct = 0.0;
  /// Paper reference, when this (circuit, K) row exists in Table I.
  std::optional<double> paper_sim1;
  std::optional<double> paper_sim2;
  std::optional<double> paper_rev;
};

struct Table1Result {
  std::vector<Table1Cell> cells;
  std::vector<ExperimentResult> experiments;  ///< one per circuit

  /// Formats the measured-vs-paper table as fixed-width ASCII.
  std::string to_string() const;

  /// CSV (one row per cell) for EXPERIMENTS.md post-processing.
  std::string to_csv() const;
};

/// Runs the Table I reproduction.
Table1Result run_table1(const Table1Config& config);

/// The one BENCH_table1.json writer: every benchmark record (N-thread and
/// serial alike) goes through here, so `threads`, `git_sha`, `run_id` and
/// the per-circuit `phases` object are stamped identically in all of them.
/// `threads` is read from runtime::thread_count() at call time.  `run_id`
/// is the per-invocation 16-hex id (obs/ledger.h) that lets
/// append_bench_history.py refuse to double-append a stale artifact.
void write_table1_json(std::ostream& os, const Table1Config& config,
                       const Table1Result& result, double total_seconds,
                       const std::string& git_sha,
                       const std::string& run_id = "");

/// write_table1_json into `path`; false (with a warn log) when the file
/// cannot be opened.
bool write_table1_json_file(const std::string& path,
                            const Table1Config& config,
                            const Table1Result& result, double total_seconds,
                            const std::string& git_sha,
                            const std::string& run_id = "");

}  // namespace sddd::eval
