#include "eval/paper_reference.h"

namespace sddd::eval {

namespace {

constexpr std::array<PaperTable1Row, 24> kTable1 = {{
    {"s1196", 1, 0, 5, 10},    {"s1196", 3, 0, 30, 30},
    {"s1196", 7, 5, 35, 60},   {"s1238", 1, 0, 15, 20},
    {"s1238", 2, 5, 25, 25},   {"s1238", 7, 25, 65, 65},
    {"s1423", 1, 10, 15, 10},  {"s1423", 2, 30, 35, 35},
    {"s1423", 9, 50, 60, 65},  {"s1488", 1, 5, 5, 5},
    {"s1488", 3, 35, 30, 30},  {"s1488", 5, 55, 60, 65},
    {"s5378", 1, 15, 25, 25},  {"s5378", 2, 30, 40, 45},
    {"s5378", 7, 80, 85, 90},  {"s9234", 2, 25, 30, 30},
    {"s9234", 5, 40, 50, 50},  {"s9234", 11, 60, 75, 70},
    {"s13207", 1, 10, 20, 20}, {"s13207", 5, 30, 50, 60},
    {"s13207", 13, 70, 70, 80}, {"s15850", 1, 10, 10, 10},
    {"s15850", 2, 30, 30, 30}, {"s15850", 9, 40, 35, 45},
}};

}  // namespace

std::span<const PaperTable1Row> paper_table1() { return kTable1; }

std::span<const PaperTable1Row> paper_table1_for(std::string_view circuit) {
  std::size_t first = kTable1.size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < kTable1.size(); ++i) {
    if (kTable1[i].circuit == circuit) {
      if (count == 0) first = i;
      ++count;
    }
  }
  return {kTable1.data() + first, count};
}

}  // namespace sddd::eval
