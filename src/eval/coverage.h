// coverage.h - Statistical delay-fault coverage of a pattern set.
//
// The paper contrasts its diagnosis approach with Sivaraman & Strojwas's
// path-delay-fault coverage metric [10].  This module provides the
// statistical coverage view for the segment-oriented defect model: for a
// fault site e and a defect-size random variable delta,
//
//     cov(e) = P( chip with defect (e, delta) fails TP at clk )
//
// estimated over the joint (process, defect-size) Monte-Carlo space, and
// the set-level aggregate (mean coverage, fraction of sites above a
// threshold).  This measures what the diagnosis experiment's injection
// gate sees from the other side: which defects the test would catch at
// all (Figure 1's escapes are exactly the cov ~ 0 sites).
#pragma once

#include <span>
#include <vector>

#include "defect/defect_model.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "timing/dynamic_sim.h"

namespace sddd::eval {

struct CoverageResult {
  /// Per requested site: probability at least one (output, pattern) cell
  /// fails given the defect (union over the pattern set, computed exactly
  /// per Monte-Carlo sample).
  std::vector<double> site_coverage;
  /// Defect-free reference: probability a good chip fails TP at clk
  /// (test overkill / baseline yield loss).
  double defect_free_fail = 0.0;

  double mean_coverage() const;
  /// Fraction of sites with coverage >= threshold.
  double detection_rate(double threshold) const;
};

/// Computes statistical coverage of `patterns` for every site in `sites`.
/// Cost: one baseline dynamic simulation per pattern plus one incremental
/// cone re-simulation per (site, pattern).
CoverageResult statistical_coverage(
    const timing::DynamicTimingSimulator& sim,
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> patterns,
    std::span<const netlist::ArcId> sites,
    const defect::DefectSizeModel& size_model, double clk);

}  // namespace sddd::eval
