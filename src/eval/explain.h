// explain.h - Re-run one experiment trial under introspection.
//
// Because every trial of run_diagnosis_experiment derives its randomness
// purely from (config.seed, trial index), any single trial can be
// reconstructed after the fact - same chip, same patterns, same behavior
// matrix, same diagnosis - without the experiment having saved anything.
// explain_trial() does exactly that, with the diagnoser capturing its phi
// matrix, and hands the artifacts to the explanation engine
// (introspect/explain.h).  The resulting report is byte-identical at any
// thread count and regardless of whether the original experiment ran
// straight through or across checkpoint/resume cycles.
#pragma once

#include <optional>

#include "eval/experiment.h"
#include "introspect/explain.h"

namespace sddd::eval {

struct ExplainRequest {
  /// Trial to explain; nullopt = the first diagnosable trial in
  /// [0, config.n_chips).
  std::optional<std::size_t> trial;
  /// Candidates to fully decompose (ExplainConfig::top_k).
  std::size_t top_k = 5;
};

/// Reconstructs the requested trial and explains its diagnosis.  Throws
/// sddd::ModelError when the requested trial (or, with nullopt, every
/// trial) never observably fails, and std::invalid_argument for an
/// out-of-range trial index.  The report's run_id is the experiment
/// fingerprint (eval/checkpoint.h), so it cross-links with the result JSON
/// and checkpoint journal of the same (circuit, config).
introspect::ExplanationReport explain_trial(const netlist::Netlist& nl,
                                            const ExperimentConfig& config,
                                            const ExplainRequest& request);

}  // namespace sddd::eval
