// checkpoint.h - Append-only trial journal for crash-safe experiments,
// plus the deterministic experiment-result JSON used to verify resume.
//
// run_diagnosis_experiment derives every trial purely from (config.seed,
// trial index), so a killed run loses no information that cannot be
// recomputed - but recomputation is expensive.  The journal makes finished
// trials durable: one self-checksummed record per trial, appended as each
// trial completes and fsynced in small batches.  A resumed run loads the
// journal, replays the recorded trials into their slots, and re-runs only
// the rest; because the journal round-trips every double bit-exactly, the
// resumed result is byte-identical to an uninterrupted run at any thread
// count.
//
// File format (text, one record per line, LF terminated):
//
//   sddd-ckpt v1 <fingerprint-hex> <n_trials>
//   T <crc-hex> <trial> <status> <error-code> ...fields... m=<message>
//
// The fingerprint hashes the experiment identity (circuit, seed, trial
// count, sample counts, method list...); resuming against a journal with a
// different fingerprint is an error, not a silent wrong answer.  The crc
// (FNV-1a 64 of the payload after it) makes records self-validating: the
// loader accepts the longest valid prefix and reports where it ends, and
// the writer truncates the file there before appending, so a record half
// written at the moment of a crash - the expected failure mode - is
// dropped and its trial simply re-runs.
//
// Quarantined trials ARE journaled (re-running them would fail again
// deterministically); deadline-skipped trials are NOT (resume exists
// precisely to give them another chance).
//
// Fault seams (obs/faults.h): ckpt.open (k=0), ckpt.write (k=trial).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "eval/experiment.h"

namespace sddd::eval {

/// Stable hash of the experiment identity: two runs may share a journal
/// iff their fingerprints match.  Hashes circuit name, seed, n_chips,
/// sample counts, method list, defect model knobs - everything that
/// changes per-trial results.
std::uint64_t experiment_fingerprint(const std::string& circuit_name,
                                     const ExperimentConfig& config);

/// One journal record: the trial index plus its finished TrialRecord.
struct CheckpointRecord {
  std::size_t trial = 0;
  TrialRecord record;
};

/// Serializes `record` as one journal line (no trailing newline) and
/// parses it back.  Exposed for tests; doubles are bit-cast to hex so the
/// round trip is exact.
std::string encode_checkpoint_record(std::size_t trial,
                                     const TrialRecord& record);
bool decode_checkpoint_record(const std::string& line, CheckpointRecord* out);

/// Result of scanning a journal file.
struct CheckpointLoad {
  /// Valid records in file order (later duplicates of a trial win).
  std::vector<CheckpointRecord> records;
  /// File offset just past the last valid record (= where appending may
  /// safely continue).  0 when the file is missing or the header is bad.
  std::uint64_t valid_bytes = 0;
  bool header_ok = false;
};

/// Scans `path`, validating the header against `fingerprint` and every
/// record checksum; stops at the first invalid or truncated line.  A
/// missing file loads as empty.  Throws sddd::IoError when the file exists
/// but was written for a different experiment (fingerprint mismatch) or
/// its trial count disagrees with `n_trials`.
CheckpointLoad load_checkpoint(const std::string& path,
                               std::uint64_t fingerprint,
                               std::size_t n_trials);

/// Append-side of the journal.  Thread-safe: trials finishing on any
/// worker append under a mutex; record order in the file is the completion
/// order (schedule-dependent), which is fine because records carry their
/// trial index.  fsync is batched (every kSyncEvery appends, plus one on
/// destruction), bounding both the crash window and the sync overhead.
class CheckpointWriter {
 public:
  /// Opens `path` for appending at `valid_bytes` (truncating any invalid
  /// tail beyond it); writes the header first when `write_header`.  Throws
  /// sddd::IoError on any filesystem failure.
  CheckpointWriter(const std::string& path, std::uint64_t fingerprint,
                   std::size_t n_trials, std::uint64_t valid_bytes,
                   bool write_header);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Appends one finished trial.  Throws sddd::IoError on write failure
  /// (also the `ckpt.write` fault seam, keyed by trial index).
  void append(std::size_t trial, const TrialRecord& record);

  /// Forces an fsync of everything appended so far.
  void flush();

  static constexpr std::size_t kSyncEvery = 8;

 private:
  std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  std::size_t unsynced_ = 0;
};

/// Writes the deterministic result JSON: config identity, aggregate
/// counts, success rates, and every per-trial record - but no wall-clock
/// or CPU timings - so an uninterrupted run and a kill+resume run of the
/// same experiment produce byte-identical files.  Doubles are printed with
/// 17 significant digits (round-trip exact).  The write is atomic
/// (obs::atomic_write_file_or_throw).
void write_experiment_json(const ExperimentResult& result,
                           const std::string& path);

}  // namespace sddd::eval
