// paper_reference.h - The numbers the paper reports, embedded for
// side-by-side comparison in EXPERIMENTS.md and the Table I bench.
//
// Source: Table I, "Diagnosis Accuracy on Benchmark Examples" (DATE 2003).
// Values are success-rate percentages for Alg_sim Method I, Method II and
// Alg_rev at the circuit's three K values.  (Method III is discussed only
// in the text: "too restrictive ... otherwise score = 0"; no column.)
#pragma once

#include <array>
#include <span>
#include <string_view>

namespace sddd::eval {

struct PaperTable1Row {
  std::string_view circuit;
  int k;
  double sim1_pct;
  double sim2_pct;
  double rev_pct;
};

/// All 24 rows of Table I in the paper's order.
std::span<const PaperTable1Row> paper_table1();

/// Rows of one circuit (three of them), empty span when unknown.
std::span<const PaperTable1Row> paper_table1_for(std::string_view circuit);

}  // namespace sddd::eval
