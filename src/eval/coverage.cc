#include "eval/coverage.h"

#include <numeric>

#include "paths/transition_graph.h"

namespace sddd::eval {

double CoverageResult::mean_coverage() const {
  if (site_coverage.empty()) return 0.0;
  return std::accumulate(site_coverage.begin(), site_coverage.end(), 0.0) /
         static_cast<double>(site_coverage.size());
}

double CoverageResult::detection_rate(double threshold) const {
  if (site_coverage.empty()) return 0.0;
  std::size_t hits = 0;
  for (const double c : site_coverage) hits += (c >= threshold) ? 1U : 0U;
  return static_cast<double>(hits) /
         static_cast<double>(site_coverage.size());
}

CoverageResult statistical_coverage(
    const timing::DynamicTimingSimulator& sim,
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    std::span<const logicsim::PatternPair> patterns,
    std::span<const netlist::ArcId> sites,
    const defect::DefectSizeModel& size_model, double clk) {
  const std::size_t n = sim.field().sample_count();

  // Per-sample failure mask accumulated over patterns, per site (plus the
  // defect-free baseline).  The union must be taken jointly per sample:
  // marginal per-pattern probabilities would overstate independent tests.
  std::vector<std::vector<std::uint8_t>> site_mask(
      sites.size(), std::vector<std::uint8_t>(n, 0));
  std::vector<std::uint8_t> base_mask(n, 0);

  for (const auto& pattern : patterns) {
    const paths::TransitionGraph tg(logic_sim, lev, pattern);
    const auto baseline = sim.simulate(tg);
    const auto base = sim.late_mask(tg, baseline, clk);
    for (std::size_t k = 0; k < n; ++k) base_mask[k] |= base[k];
    for (std::size_t s = 0; s < sites.size(); ++s) {
      timing::InjectedDefect defect;
      defect.arc = sites[s];
      defect.extra.resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        defect.extra[k] = size_model.sample(sites[s], k);
      }
      const auto mask = sim.late_mask_with_defect(tg, baseline, defect, clk);
      for (std::size_t k = 0; k < n; ++k) site_mask[s][k] |= mask[k];
    }
  }

  CoverageResult result;
  result.site_coverage.resize(sites.size());
  for (std::size_t s = 0; s < sites.size(); ++s) {
    std::size_t hits = 0;
    for (const std::uint8_t m : site_mask[s]) hits += m;
    result.site_coverage[s] = static_cast<double>(hits) / static_cast<double>(n);
  }
  std::size_t base_hits = 0;
  for (const std::uint8_t m : base_mask) base_hits += m;
  result.defect_free_fail =
      static_cast<double>(base_hits) / static_cast<double>(n);
  return result;
}

}  // namespace sddd::eval
