#include "eval/table1.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "analysis/analyzer.h"
#include "eval/paper_reference.h"
#include "introspect/confidence.h"
#include "netlist/bench_io.h"
#include "netlist/iscas_catalog.h"
#include "netlist/scan.h"
#include "obs/atomic_file.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"

namespace sddd::eval {

using diagnosis::Method;
using netlist::IscasProfile;
using netlist::Netlist;

namespace {

Netlist load_circuit(const IscasProfile& profile, const Table1Config& config) {
  if (config.bench_dir) {
    const auto path = *config.bench_dir /
                      (std::string(profile.name) + ".bench");
    if (std::filesystem::exists(path)) {
      return netlist::full_scan_transform(netlist::parse_bench_file(path));
    }
  }
  return netlist::make_standin(profile, config.scale, config.base.seed);
}

/// Rejects circuits with error-severity findings before any Monte-Carlo
/// cycle is spent on them.
void lint_or_throw(const Netlist& nl) {
  const auto report =
      analysis::lint_netlist(analysis::Analyzer::with_default_rules(), nl);
  if (report.error_count() > 0) {
    throw std::runtime_error("lint preflight failed for " + nl.name() +
                             ":\n" + report.to_text());
  }
  if (!report.empty()) {
    SDDD_LOG_WARN("lint preflight (%s):\n%s", nl.name().c_str(),
                  report.to_text().c_str());
  }
}

}  // namespace

Table1Result run_table1(const Table1Config& config) {
  Table1Result result;
  for (const IscasProfile& profile : netlist::table1_circuits()) {
    if (!config.circuits.empty()) {
      bool wanted = false;
      for (const auto& name : config.circuits) wanted |= (name == profile.name);
      if (!wanted) continue;
    }
    SDDD_SPAN(span, "table1.circuit");
    span.arg("circuit", std::string_view(profile.name));
    SDDD_LOG_INFO("table1: running %s (scale %.2f, %zu chips, %zu samples)",
                  std::string(profile.name).c_str(), config.scale,
                  config.base.n_chips, config.base.mc_samples);
    const Netlist nl = load_circuit(profile, config);
    if (config.lint_preflight) lint_or_throw(nl);

    ExperimentConfig exp_config = config.base;
    exp_config.methods = {Method::kSimI, Method::kSimII, Method::kSimIII,
                          Method::kRev};
    auto experiment = run_diagnosis_experiment(nl, exp_config);

    const auto paper_rows = paper_table1_for(profile.name);
    for (const int k : profile.table1_k) {
      Table1Cell cell;
      cell.circuit = std::string(profile.name);
      cell.k = k;
      cell.sim1_pct = 100.0 * experiment.success_rate(Method::kSimI, k);
      cell.sim2_pct = 100.0 * experiment.success_rate(Method::kSimII, k);
      cell.sim3_pct = 100.0 * experiment.success_rate(Method::kSimIII, k);
      cell.rev_pct = 100.0 * experiment.success_rate(Method::kRev, k);
      cell.logic_pct = 100.0 * experiment.logic_baseline_success_rate(k);
      for (const auto& row : paper_rows) {
        if (row.k == k) {
          cell.paper_sim1 = row.sim1_pct;
          cell.paper_sim2 = row.sim2_pct;
          cell.paper_rev = row.rev_pct;
        }
      }
      result.cells.push_back(std::move(cell));
    }
    result.experiments.push_back(std::move(experiment));
  }
  return result;
}

std::string Table1Result::to_string() const {
  std::ostringstream os;
  os << "circuit    K | logic  sim-I  sim-II sim-III rev    | paper: I    II   rev\n";
  os << "-------------+---------------------------------------+---------------------\n";
  char buf[160];
  for (const auto& c : cells) {
    std::snprintf(buf, sizeof(buf),
                  "%-9s %3d | %5.0f%% %5.0f%% %5.0f%% %6.0f%% %5.0f%% |      "
                  "%4.0f %5.0f %5.0f\n",
                  c.circuit.c_str(), c.k, c.logic_pct, c.sim1_pct, c.sim2_pct,
                  c.sim3_pct, c.rev_pct, c.paper_sim1.value_or(-1),
                  c.paper_sim2.value_or(-1), c.paper_rev.value_or(-1));
    os << buf;
  }
  return os.str();
}

void write_table1_json(std::ostream& os, const Table1Config& config,
                       const Table1Result& result, double total_seconds,
                       const std::string& git_sha,
                       const std::string& run_id) {
  os << "{\n"
     << "  \"bench\": \"table1\",\n"
     << "  \"run_id\": \"" << run_id << "\",\n"
     << "  \"git_sha\": \"" << git_sha << "\",\n"
     << "  \"threads\": " << runtime::thread_count() << ",\n"
     << "  \"scale\": " << config.scale << ",\n"
     << "  \"samples\": " << config.base.mc_samples << ",\n"
     << "  \"chips\": " << config.base.n_chips << ",\n"
     << "  \"seed\": " << config.base.seed << ",\n"
     << "  \"total_seconds\": " << total_seconds << ",\n"
     << "  \"circuits\": [\n";
  for (std::size_t i = 0; i < result.experiments.size(); ++i) {
    const auto& exp = result.experiments[i];
    const PhaseBreakdown& ph = exp.phases;
    os << "    {\"name\": \"" << exp.circuit_name << "\", \"seconds\": "
       << exp.wall_seconds << ", \"clk\": " << exp.clk
       << ", \"diagnosable\": " << exp.diagnosable_trials() << ",\n"
       << "     \"completed\": " << exp.completed_trials()
       << ", \"quarantined\": " << exp.quarantined_trials()
       << ", \"resumed\": " << exp.resumed_trials << ", \"degraded\": "
       << (exp.degraded ? "true" : "false") << ",\n"
       << "     \"phases\": {\"setup_s\": " << ph.setup_seconds
       << ", \"calibration_s\": " << ph.calibration_seconds
       << ", \"trials_s\": " << ph.trials_seconds << ",\n"
       << "                \"atpg_cpu_s\": " << ph.atpg_cpu_seconds
       << ", \"mc_observe_cpu_s\": " << ph.mc_observe_cpu_seconds
       << ", \"dict_build_cpu_s\": " << ph.dict_build_cpu_seconds << ",\n"
       << "                \"suspect_extract_cpu_s\": "
       << ph.suspect_extract_cpu_seconds
       << ", \"score_cpu_s\": " << ph.score_cpu_seconds << ",\n"
       << "                \"score_col_build_s\": "
       << ph.score_column_build_cpu_seconds
       << ", \"score_phi_s\": " << ph.score_phi_cpu_seconds << ",\n"
       << "                \"counters\": {\"mc_samples\": " << ph.mc_samples
       << ", \"dict_columns_built\": " << ph.dict_columns_built
       << ", \"phi_evals\": " << ph.phi_evals
       << ", \"pool_tasks\": " << ph.pool_tasks
       << ",\n                             \"sig_cache_hits\": "
       << ph.sig_cache_hits
       << ", \"sig_cache_misses\": " << ph.sig_cache_misses
       << ", \"sig_cache_bytes\": " << ph.sig_cache_bytes << "}},\n";
    // Wilson 95% intervals on the top-1 success rates: each rate is a
    // binomial proportion over the diagnosable trials, so without these
    // a 3/4-vs-4/4 difference reads as a 25-point gap.
    const std::size_t n_diag = exp.diagnosable_trials();
    os << "     \"confidence\": {\"mc_samples\": " << exp.config.mc_samples
       << ", \"diagnosable\": " << n_diag;
    for (const Method m : exp.config.methods) {
      const double p = exp.success_rate(m, 1);
      const auto ci = introspect::wilson_interval(p, n_diag);
      os << ", \"" << diagnosis::method_name(m) << "_top1_ci\": [" << ci.lo
         << ", " << ci.hi << "]";
    }
    os << "}}" << (i + 1 < result.experiments.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

bool write_table1_json_file(const std::string& path,
                            const Table1Config& config,
                            const Table1Result& result, double total_seconds,
                            const std::string& git_sha,
                            const std::string& run_id) {
  // Atomic (temp + rename): a crash or injected fault mid-write leaves
  // either the previous artifact or none - never a truncated JSON that a
  // downstream plot script would half-parse.
  std::ostringstream os;
  write_table1_json(os, config, result, total_seconds, git_sha, run_id);
  return obs::atomic_write_file(path, os.str());
}

std::string Table1Result::to_csv() const {
  std::ostringstream os;
  os << "circuit,k,logic,sim1,sim2,sim3,rev,paper_sim1,paper_sim2,paper_rev\n";
  for (const auto& c : cells) {
    os << c.circuit << ',' << c.k << ',' << c.logic_pct << ',' << c.sim1_pct << ',' << c.sim2_pct
       << ',' << c.sim3_pct << ',' << c.rev_pct << ','
       << (c.paper_sim1 ? std::to_string(*c.paper_sim1) : "") << ','
       << (c.paper_sim2 ? std::to_string(*c.paper_sim2) : "") << ','
       << (c.paper_rev ? std::to_string(*c.paper_rev) : "") << '\n';
  }
  return os.str();
}

}  // namespace sddd::eval
