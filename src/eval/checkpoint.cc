#include "eval/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/atomic_file.h"
#include "obs/faults.h"

namespace sddd::eval {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

bool parse_hex64(std::string_view s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = v;
  return true;
}

std::string double_hex(double d) { return hex64(std::bit_cast<std::uint64_t>(d)); }

bool parse_double_hex(std::string_view s, double* out) {
  std::uint64_t bits = 0;
  if (!parse_hex64(s, &bits)) return false;
  *out = std::bit_cast<double>(bits);
  return true;
}

/// Journal messages are single-line by construction, but defend the format
/// anyway: escape backslash and newline so one record is always one line.
std::string escape_message(std::string_view msg) {
  std::string out;
  out.reserve(msg.size());
  for (const char c : msg) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_message(std::string_view msg) {
  std::string out;
  out.reserve(msg.size());
  for (std::size_t i = 0; i < msg.size(); ++i) {
    if (msg[i] == '\\' && i + 1 < msg.size()) {
      out += msg[i + 1] == 'n' ? '\n' : msg[i + 1];
      ++i;
    } else {
      out += msg[i];
    }
  }
  return out;
}

constexpr std::string_view kHeaderMagic = "sddd-ckpt v1 ";

std::string header_line(std::uint64_t fingerprint, std::size_t n_trials) {
  return std::string(kHeaderMagic) + hex64(fingerprint) + ' ' +
         std::to_string(n_trials) + '\n';
}

void write_all_fd(int fd, std::string_view data, const std::string& path) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t w = ::write(fd, data.data() + off, data.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError("checkpoint write failed for " + path + ": " +
                    std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
}

const char* status_names[] = {"not_failing", "diagnosed", "quarantined",
                              "skipped"};

bool parse_trial_status(std::string_view name, TrialStatus* out) {
  for (int i = 0; i < 4; ++i) {
    if (name == status_names[i]) {
      *out = static_cast<TrialStatus>(i);
      return true;
    }
  }
  return false;
}

}  // namespace

std::uint64_t experiment_fingerprint(const std::string& circuit_name,
                                     const ExperimentConfig& c) {
  // Serialize every knob that changes per-trial outcomes; hash the text.
  // Timings, checkpoint/resume/deadline knobs - and use_score_kernel /
  // collapse_unobservable, whose paths produce bit-identical results -
  // are deliberately excluded: they change how a run executes, not what
  // it computes.
  std::ostringstream os;
  os << circuit_name << '|' << c.seed << '|' << c.n_chips << '|'
     << c.mc_samples << '|' << c.instance_samples << '|'
     << static_cast<int>(c.site_bias) << '|' << double_hex(c.detectable_lambda_lo)
     << '|' << double_hex(c.detectable_lambda_hi) << '|' << c.n_defects << '|'
     << double_hex(c.clk_site_quantile) << '|' << c.calibration_sites << '|'
     << double_hex(c.global_weight) << '|' << double_hex(c.defect_mean_lo)
     << '|' << double_hex(c.defect_mean_hi) << '|'
     << double_hex(c.defect_three_sigma) << '|' << c.max_suspects << '|'
     << c.match_on_signature << '|' << c.include_logic_baseline << '|'
     << c.max_injection_retries << '|';
  for (const auto m : c.methods) os << static_cast<int>(m) << ',';
  os << '|' << c.pattern_config.paths_per_site << ','
     << c.pattern_config.candidate_paths << ',' << c.pattern_config.try_robust
     << ',' << c.pattern_config.site_search_patterns << ','
     << c.pattern_config.site_search_tries << ','
     << c.pattern_config.random_patterns << ',' << c.pattern_config.max_patterns
     << '|' << double_hex(c.library.buf_delay) << ','
     << double_hex(c.library.not_delay) << ',' << double_hex(c.library.nand_delay)
     << ',' << double_hex(c.library.nor_delay) << ','
     << double_hex(c.library.and_delay) << ',' << double_hex(c.library.or_delay)
     << ',' << double_hex(c.library.xor_delay) << ','
     << double_hex(c.library.xnor_delay) << ','
     << double_hex(c.library.arity_factor) << ','
     << double_hex(c.library.load_slope) << ','
     << double_hex(c.library.three_sigma_pct);
  return fnv1a(os.str());
}

std::string encode_checkpoint_record(std::size_t trial,
                                     const TrialRecord& r) {
  std::ostringstream os;
  os << trial << ' ' << trial_status_name(r.status) << ' '
     << error_code_name(r.error_code) << ' ' << r.injection_attempts << ' '
     << (r.failed_test ? 1 : 0) << ' ' << r.n_patterns << ' '
     << r.n_failing_cells << ' ' << r.n_suspects << ' '
     << (r.true_arc_in_suspects ? 1 : 0) << ' ' << r.logic_baseline_rank
     << ' ' << r.chip.sample_index << ' ' << r.chip.defect_arc << ' '
     << double_hex(r.chip.defect_size) << ' ' << double_hex(r.chip.size_mean)
     << ' ' << r.rank_of_true.size();
  for (const int rank : r.rank_of_true) os << ' ' << rank;
  os << ' ' << r.extra_defects.size();
  for (const auto& [arc, size] : r.extra_defects) {
    os << ' ' << arc << ':' << double_hex(size);
  }
  os << " m=" << escape_message(r.error_message);
  const std::string payload = os.str();
  return "T " + hex64(fnv1a(payload)) + ' ' + payload;
}

bool decode_checkpoint_record(const std::string& line, CheckpointRecord* out) {
  if (line.size() < 2 || line[0] != 'T' || line[1] != ' ') return false;
  const std::size_t crc_end = line.find(' ', 2);
  if (crc_end == std::string::npos) return false;
  std::uint64_t crc = 0;
  if (!parse_hex64(std::string_view(line).substr(2, crc_end - 2), &crc)) {
    return false;
  }
  const std::string payload = line.substr(crc_end + 1);
  if (fnv1a(payload) != crc) return false;

  // The message field is "m=<rest of line>"; split it off first so the
  // stream below only sees whitespace-delimited scalars.
  const std::size_t m_pos = payload.rfind(" m=");
  if (m_pos == std::string::npos) return false;
  std::istringstream is(payload.substr(0, m_pos));
  CheckpointRecord rec;
  TrialRecord& r = rec.record;
  std::string status_name;
  std::string code_name;
  std::string ds_hex;
  std::string sm_hex;
  int failed = 0;
  int true_in = 0;
  std::size_t n_ranks = 0;
  if (!(is >> rec.trial >> status_name >> code_name >> r.injection_attempts >>
        failed >> r.n_patterns >> r.n_failing_cells >> r.n_suspects >>
        true_in >> r.logic_baseline_rank >> r.chip.sample_index >>
        r.chip.defect_arc >> ds_hex >> sm_hex >> n_ranks)) {
    return false;
  }
  if (!parse_trial_status(status_name, &r.status) ||
      !parse_error_code(code_name, &r.error_code) ||
      !parse_double_hex(ds_hex, &r.chip.defect_size) ||
      !parse_double_hex(sm_hex, &r.chip.size_mean)) {
    return false;
  }
  r.failed_test = failed != 0;
  r.true_arc_in_suspects = true_in != 0;
  r.rank_of_true.resize(n_ranks);
  for (std::size_t i = 0; i < n_ranks; ++i) {
    if (!(is >> r.rank_of_true[i])) return false;
  }
  std::size_t n_extra = 0;
  if (!(is >> n_extra)) return false;
  r.extra_defects.resize(n_extra);
  for (std::size_t i = 0; i < n_extra; ++i) {
    std::string tok;
    if (!(is >> tok)) return false;
    const std::size_t colon = tok.find(':');
    if (colon == std::string::npos) return false;
    r.extra_defects[i].first = static_cast<netlist::ArcId>(
        std::strtoull(tok.c_str(), nullptr, 10));
    if (!parse_double_hex(std::string_view(tok).substr(colon + 1),
                          &r.extra_defects[i].second)) {
      return false;
    }
  }
  std::string trailing;
  if (is >> trailing) return false;  // extra fields = corrupt
  r.error_message = unescape_message(payload.substr(m_pos + 3));
  r.from_checkpoint = true;
  *out = std::move(rec);
  return true;
}

CheckpointLoad load_checkpoint(const std::string& path,
                               std::uint64_t fingerprint,
                               std::size_t n_trials) {
  CheckpointLoad load;
  std::ifstream in(path, std::ios::binary);
  if (!in) return load;  // missing file: start fresh
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();

  // Header first.  A journal for a different experiment is an error; a
  // garbled header (e.g. a crash before the first fsync) just means an
  // empty journal.
  const std::size_t header_end = contents.find('\n');
  if (header_end == std::string::npos) return load;
  const std::string header = contents.substr(0, header_end + 1);
  if (header.rfind(kHeaderMagic, 0) != 0) return load;
  {
    std::istringstream hs(header.substr(kHeaderMagic.size()));
    std::string fp_hex;
    std::size_t journal_trials = 0;
    std::uint64_t fp = 0;
    if (!(hs >> fp_hex >> journal_trials) || !parse_hex64(fp_hex, &fp)) {
      return load;
    }
    if (fp != fingerprint || journal_trials != n_trials) {
      throw IoError(
          "checkpoint " + path +
          " was written by a different experiment configuration; refusing "
          "to resume (delete it or drop --resume to start over)");
    }
  }
  load.header_ok = true;
  load.valid_bytes = header.size();

  // Accept the longest valid prefix of records.  Only lines that end in
  // '\n' AND checksum-validate advance valid_bytes; the first bad line
  // (typically a partial tail write from a crash) stops the scan.
  std::size_t pos = header.size();
  while (pos < contents.size()) {
    const std::size_t eol = contents.find('\n', pos);
    if (eol == std::string::npos) break;  // unterminated tail
    const std::string line = contents.substr(pos, eol - pos);
    CheckpointRecord rec;
    if (!decode_checkpoint_record(line, &rec) || rec.trial >= n_trials) break;
    load.records.push_back(std::move(rec));
    pos = eol + 1;
    load.valid_bytes = pos;
  }
  return load;
}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   std::uint64_t fingerprint,
                                   std::size_t n_trials,
                                   std::uint64_t valid_bytes,
                                   bool write_header)
    : path_(path) {
  if (obs::fault_at("ckpt.open", 0)) {
    throw IoError("checkpoint open failed for " + path +
                  ": injected fault (SDDD_FAULTS)");
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) {
    throw IoError("checkpoint open failed for " + path + ": " +
                  std::strerror(errno));
  }
  // Drop any invalid tail (a record half-written at crash time) before
  // appending, so the file is all-valid-records again.
  if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw IoError("checkpoint truncate failed for " + path + ": " + err);
  }
  if (write_header) {
    write_all_fd(fd_, header_line(fingerprint, n_trials), path_);
    unsynced_ = 1;
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (fd_ >= 0) {
    if (unsynced_ > 0) ::fsync(fd_);
    ::close(fd_);
  }
}

void CheckpointWriter::append(std::size_t trial, const TrialRecord& record) {
  const std::string line = encode_checkpoint_record(trial, record) + '\n';
  const std::lock_guard<std::mutex> lock(mu_);
  if (obs::fault_at("ckpt.write", trial)) {
    throw IoError("checkpoint append failed for " + path_ +
                  ": injected fault (SDDD_FAULTS)");
  }
  write_all_fd(fd_, line, path_);
  // fsync in batches: bounds the crash-loss window to kSyncEvery trials
  // without paying a disk flush per trial.
  if (++unsynced_ >= kSyncEvery) {
    ::fsync(fd_);
    unsynced_ = 0;
  }
}

void CheckpointWriter::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0 && unsynced_ > 0) {
    ::fsync(fd_);
    unsynced_ = 0;
  }
}

namespace {

/// 17 significant digits: enough for an exact double round trip, so two
/// runs that compute identical doubles print identical bytes.
std::string json_double(double d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return std::string(buf);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_experiment_json(const ExperimentResult& result,
                           const std::string& path) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"circuit\": \"" << json_escape(result.circuit_name) << "\",\n";
  // The experiment fingerprint, doubling as the run id every introspection
  // artifact (manifest, explain report) carries: equal run ids = same
  // deterministic computation.  A pure function of (circuit, config), so
  // it byte-matches across thread counts and checkpoint/resume cycles.
  os << "  \"run_id\": \""
     << hex64(experiment_fingerprint(result.circuit_name, result.config))
     << "\",\n";
  os << "  \"seed\": " << result.config.seed << ",\n";
  os << "  \"n_chips\": " << result.config.n_chips << ",\n";
  os << "  \"mc_samples\": " << result.config.mc_samples << ",\n";
  os << "  \"clk\": " << json_double(result.clk) << ",\n";
  // Deliberately no resumed_trials / timings here: they describe how the
  // run executed, not what it computed, and this file must byte-match
  // between an uninterrupted run and a kill+resume run.
  os << "  \"degraded\": " << (result.degraded ? "true" : "false") << ",\n";
  os << "  \"completed_trials\": " << result.completed_trials() << ",\n";
  os << "  \"quarantined_trials\": " << result.quarantined_trials() << ",\n";
  os << "  \"skipped_trials\": " << result.skipped_trials() << ",\n";
  os << "  \"diagnosable_trials\": " << result.diagnosable_trials() << ",\n";
  os << "  \"avg_suspects\": " << json_double(result.avg_suspects()) << ",\n";
  os << "  \"success\": {";
  bool first_m = true;
  for (const auto m : result.config.methods) {
    for (const int k : {1, 5}) {
      os << (first_m ? "\n" : ",\n") << "    \"m" << static_cast<int>(m)
         << "_top" << k << "\": " << json_double(result.success_rate(m, k));
      first_m = false;
    }
  }
  os << "\n  },\n";
  os << "  \"trials\": [\n";
  for (std::size_t i = 0; i < result.trials.size(); ++i) {
    const TrialRecord& t = result.trials[i];
    os << "    {\"trial\": " << i << ", \"status\": \""
       << trial_status_name(t.status) << "\"";
    if (t.status == TrialStatus::kQuarantined) {
      os << ", \"error_code\": \"" << error_code_name(t.error_code)
         << "\", \"error\": \"" << json_escape(t.error_message) << "\"";
    }
    os << ", \"attempts\": " << t.injection_attempts
       << ", \"sample\": " << t.chip.sample_index
       << ", \"arc\": " << t.chip.defect_arc
       << ", \"size\": " << json_double(t.chip.defect_size)
       << ", \"suspects\": " << t.n_suspects << ", \"ranks\": [";
    for (std::size_t m = 0; m < t.rank_of_true.size(); ++m) {
      os << (m == 0 ? "" : ", ") << t.rank_of_true[m];
    }
    os << "], \"logic_rank\": " << t.logic_baseline_rank << "}"
       << (i + 1 < result.trials.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  obs::atomic_write_file_or_throw(path, os.str());
}

}  // namespace sddd::eval
