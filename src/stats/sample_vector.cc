#include "stats/sample_vector.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/rng.h"
#include "stats/rv.h"

namespace sddd::stats {

namespace {

void require_same_size(std::size_t a, std::size_t b) {
  if (a != b) {
    throw std::invalid_argument(
        "SampleVector: operands must have the same sample count");
  }
}

}  // namespace

SampleVector SampleVector::draw(const RandomVariable& rv, std::size_t n,
                                Rng& rng) {
  std::vector<double> s(n);
  for (auto& x : s) x = rv.sample(rng);
  return SampleVector(std::move(s));
}

SampleVector& SampleVector::operator+=(const SampleVector& other) {
  require_same_size(size(), other.size());
  const double* __restrict b = other.samples_.data();
  double* __restrict a = samples_.data();
  const std::size_t n = samples_.size();
  for (std::size_t i = 0; i < n; ++i) a[i] += b[i];
  return *this;
}

SampleVector& SampleVector::max_with(const SampleVector& other) {
  require_same_size(size(), other.size());
  const double* __restrict b = other.samples_.data();
  double* __restrict a = samples_.data();
  const std::size_t n = samples_.size();
  for (std::size_t i = 0; i < n; ++i) a[i] = a[i] > b[i] ? a[i] : b[i];
  return *this;
}

SampleVector& SampleVector::operator+=(double delta) {
  for (auto& x : samples_) x += delta;
  return *this;
}

SampleVector& SampleVector::operator*=(double factor) {
  for (auto& x : samples_) x *= factor;
  return *this;
}

double SampleVector::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleVector::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleVector::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleVector::max_value() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleVector::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("quantile: q must be in [0, 1]");
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double SampleVector::critical_probability(double clk) const {
  if (samples_.empty()) return 0.0;
  std::size_t count = 0;
  for (const double x : samples_) count += (x > clk) ? 1U : 0U;
  return static_cast<double>(count) / static_cast<double>(samples_.size());
}

double SampleVector::correlation(const SampleVector& other) const {
  require_same_size(size(), other.size());
  if (samples_.size() < 2) return 0.0;
  const double ma = mean();
  const double mb = other.mean();
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double da = samples_[i] - ma;
    const double db = other.samples_[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace sddd::stats
