#include "stats/correlation.h"

#include <cmath>
#include <stdexcept>

#include "stats/rv.h"

namespace sddd::stats {

ProcessVariation::ProcessVariation(double global_weight, double local_weight)
    : global_weight_(global_weight), local_weight_(local_weight) {
  if (global_weight < 0.0 || local_weight < 0.0) {
    throw std::invalid_argument("ProcessVariation: weights must be >= 0");
  }
}

double ProcessVariation::pairwise_correlation() const {
  const double g2 = global_weight_ * global_weight_;
  const double l2 = local_weight_ * local_weight_;
  if (g2 + l2 == 0.0) return 0.0;
  return g2 / (g2 + l2);
}

SampleVector ProcessVariation::draw_global_factors(std::size_t n,
                                                   Rng& rng) const {
  std::vector<double> g(n);
  for (auto& x : g) x = inverse_normal_cdf(rng.uniform01());
  return SampleVector(std::move(g));
}

SampleVector ProcessVariation::draw_multipliers(
    const SampleVector& global_factors, Rng& rng) const {
  std::vector<double> m(global_factors.size());
  for (std::size_t k = 0; k < m.size(); ++k) {
    const double local = inverse_normal_cdf(rng.uniform01());
    const double mult =
        1.0 + global_weight_ * global_factors[k] + local_weight_ * local;
    m[k] = mult > 0.0 ? mult : 0.0;
  }
  return SampleVector(std::move(m));
}

std::vector<double> cholesky_lower(const std::vector<double>& matrix,
                                   std::size_t dim) {
  if (matrix.size() != dim * dim) {
    throw std::invalid_argument("cholesky_lower: size mismatch");
  }
  std::vector<double> L(dim * dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = matrix[i * dim + j];
      for (std::size_t k = 0; k < j; ++k) sum -= L[i * dim + k] * L[j * dim + k];
      if (i == j) {
        if (sum <= 0.0) {
          throw std::invalid_argument(
              "cholesky_lower: matrix is not positive definite");
        }
        L[i * dim + i] = std::sqrt(sum);
      } else {
        L[i * dim + j] = sum / L[j * dim + j];
      }
    }
  }
  return L;
}

std::vector<double> sample_mvn(const std::vector<double>& means,
                               const std::vector<double>& chol_lower,
                               std::size_t dim, Rng& rng) {
  if (means.size() != dim || chol_lower.size() != dim * dim) {
    throw std::invalid_argument("sample_mvn: size mismatch");
  }
  std::vector<double> z(dim);
  for (auto& x : z) x = inverse_normal_cdf(rng.uniform01());
  std::vector<double> out(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    double acc = means[i];
    for (std::size_t j = 0; j <= i; ++j) acc += chol_lower[i * dim + j] * z[j];
    out[i] = acc;
  }
  return out;
}

}  // namespace sddd::stats
