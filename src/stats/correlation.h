// correlation.h - Correlated process-variation sampling.
//
// Definition D.1 allows arc delays f(e_i), f(e_j) to be correlated.  In a
// real flow the correlation comes from shared process parameters; the paper
// pre-characterizes cells with a Monte-Carlo SPICE run on a 0.25um process.
// We model the standard decomposition used in statistical timing:
//
//     delay(e, k) = nominal(e) * (1 + w_g * G_k + w_l * L_{e,k})
//
// where G_k is a per-instance (inter-die) standard-normal factor shared by
// every arc of sample k, L_{e,k} is an independent per-arc (intra-die)
// standard-normal factor, and w_g / w_l are the global/local variation
// weights.  The resulting pairwise correlation between any two arc delays is
// rho = w_g^2 / (w_g^2 + w_l^2).
//
// A generic Cholesky-based multivariate-normal sampler is also provided for
// tests and for users who want an arbitrary correlation matrix.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.h"
#include "stats/sample_vector.h"

namespace sddd::stats {

/// Per-analysis process-variation context: one global factor per Monte-Carlo
/// sample, shared across all arcs.
class ProcessVariation {
 public:
  /// @param global_weight  w_g: relative sigma of the shared inter-die factor.
  /// @param local_weight   w_l: relative sigma of the per-arc factor.
  ProcessVariation(double global_weight, double local_weight);

  double global_weight() const { return global_weight_; }
  double local_weight() const { return local_weight_; }

  /// Theoretical pairwise correlation between two distinct arc delays.
  double pairwise_correlation() const;

  /// Draws the shared inter-die factors for `n` Monte-Carlo samples.
  SampleVector draw_global_factors(std::size_t n, Rng& rng) const;

  /// Produces n correlated relative-variation multipliers for one arc:
  ///   m_k = max(0, 1 + w_g * G_k + w_l * L_k)
  /// where `global_factors` must come from draw_global_factors of the same
  /// analysis (same n, same rng lineage).
  SampleVector draw_multipliers(const SampleVector& global_factors,
                                Rng& rng) const;

 private:
  double global_weight_;
  double local_weight_;
};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix
/// given in row-major order.  Throws std::invalid_argument when the matrix
/// is not positive definite.
std::vector<double> cholesky_lower(const std::vector<double>& matrix,
                                   std::size_t dim);

/// Draws one multivariate-normal vector with the given means and
/// lower-triangular Cholesky factor (row-major, dim x dim).
std::vector<double> sample_mvn(const std::vector<double>& means,
                               const std::vector<double>& chol_lower,
                               std::size_t dim, Rng& rng);

}  // namespace sddd::stats
