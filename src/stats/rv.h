// rv.h - Parametric random-variable descriptions.
//
// The statistical timing model of the paper (Definition D.1) attaches a
// delay random variable f(e) to every arc e of the circuit.  This header
// provides the parametric families used to *describe* those variables in the
// cell library and defect models.  During analysis the variables are
// realized as Monte-Carlo sample vectors (see sample_vector.h), which is
// what lets correlated sums and maxima be computed exactly per sample.
//
// The families provided cover everything the paper's experiments need:
//   - Normal: cell pin-to-pin delays around a nominal (truncated at zero,
//     since delays live on [0, +inf) per Definition D.1);
//   - LogNormal: skewed interconnect delay / resistive-defect sizes;
//   - Uniform and Triangular: bounded process-corner style variation;
//   - PointMass: degenerate (deterministic) delays, used for nominal-only
//     analysis and unit tests.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "stats/rng.h"

namespace sddd::stats {

/// Supported parametric families.
enum class RvKind : std::uint8_t {
  kPointMass,   ///< P(X = a) = 1
  kNormal,      ///< N(mu, sigma^2) truncated to [0, +inf) by resampling
  kLogNormal,   ///< exp(N(mu, sigma^2)); parameters are of the underlying normal
  kUniform,     ///< U[lo, hi]
  kTriangular,  ///< Triangular(lo, mode, hi)
};

/// A parametric random variable over [0, +inf).  Immutable value type.
class RandomVariable {
 public:
  /// Degenerate distribution concentrated at `value` (value >= 0).
  static RandomVariable PointMass(double value);

  /// Normal with the given mean and standard deviation, truncated to be
  /// non-negative by rejection (the truncation is negligible for the
  /// sigma/mu ratios used in timing models; it exists so that Definition
  /// D.1's [0, +inf) support always holds).
  static RandomVariable Normal(double mean, double sigma);

  /// Normal specified as (nominal, 3sigma-as-fraction-of-nominal), the
  /// parameterization the paper uses ("3sigma is 50% of the mean").
  static RandomVariable NormalThreeSigmaPct(double nominal, double three_sigma_pct);

  /// LogNormal such that the *resulting* variable has the given mean and
  /// standard deviation (moment-matched).
  static RandomVariable LogNormalMeanSigma(double mean, double sigma);

  /// Uniform over [lo, hi], 0 <= lo <= hi.
  static RandomVariable Uniform(double lo, double hi);

  /// Triangular over [lo, hi] with the given mode.
  static RandomVariable Triangular(double lo, double mode, double hi);

  RvKind kind() const { return kind_; }

  /// Analytic mean of the (untruncated) distribution.
  double mean() const;

  /// Analytic standard deviation of the (untruncated) distribution.
  double stddev() const;

  /// First raw parameter (family-specific: value / mu / lo).
  double a() const { return a_; }
  /// Second raw parameter (family-specific: sigma / hi / mode).
  double b() const { return b_; }
  /// Third raw parameter (triangular hi).
  double c() const { return c_; }

  /// Draws one sample.  Non-negative by construction.
  double sample(Rng& rng) const;

  /// Inverse CDF at u in (0, 1), clamped to [0, +inf).  Every supported
  /// family has a closed form, which lets callers sample deterministically
  /// from counter-based uniforms (see timing/delay_field.h).
  double quantile(double u) const;

  /// Shifts the distribution's location by `delta` (mean moves by delta;
  /// spread is unchanged where the family permits it).  Used for composing
  /// a defect-size variable on top of a nominal delay.
  RandomVariable shifted(double delta) const;

  /// Scales the distribution by a positive factor (both location and spread
  /// scale).  Used for load/slew derating of library delays.
  RandomVariable scaled(double factor) const;

  /// Human-readable description for logs and reports.
  std::string to_string() const;

  bool operator==(const RandomVariable& other) const = default;

 private:
  RandomVariable(RvKind kind, double a, double b, double c)
      : kind_(kind), a_(a), b_(b), c_(c) {}

  RvKind kind_ = RvKind::kPointMass;
  double a_ = 0.0;
  double b_ = 0.0;
  double c_ = 0.0;
};

/// Inverse CDF of the standard normal (Acklam's rational approximation,
/// |relative error| < 1.15e-9).  Exposed for reuse by the correlated
/// sampling utilities and tests.
double inverse_normal_cdf(double p);

/// Standard normal CDF (via std::erfc).
double normal_cdf(double z);

}  // namespace sddd::stats
