#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sddd::stats {

Histogram::Histogram(const SampleVector& data, std::size_t bins, double lo,
                     double hi) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: need hi > lo");
  lo_ = lo;
  hi_ = hi;
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
  for (const double x : data.samples()) {
    double pos = (x - lo) / width_;
    pos = std::clamp(pos, 0.0, static_cast<double>(bins) - 0.5);
    ++counts_[static_cast<std::size_t>(pos)];
  }
  total_ = data.size();
}

namespace {

std::pair<double, double> auto_range(const SampleVector& data) {
  double lo = data.min();
  double hi = data.max_value();
  if (!(hi > lo)) {
    // Degenerate (constant) data: pad to a unit-wide window around it.
    lo -= 0.5;
    hi += 0.5;
  }
  return {lo, hi};
}

}  // namespace

Histogram::Histogram(const SampleVector& data, std::size_t bins)
    : Histogram(data, bins, auto_range(data).first, auto_range(data).second) {}

double Histogram::mass(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double Histogram::center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::mass_above(double x) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (center(i) >= x) acc += mass(i);
  }
  return acc;
}

std::string Histogram::ascii(std::size_t width, double marker) const {
  std::ostringstream os;
  double max_mass = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    max_mass = std::max(max_mass, mass(i));
  }
  const bool has_marker = std::isfinite(marker);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double m = mass(i);
    const auto bar =
        max_mass > 0.0
            ? static_cast<std::size_t>(std::lround(
                  m / max_mass * static_cast<double>(width)))
            : 0U;
    char lead = ' ';
    if (has_marker && marker >= lo_ + static_cast<double>(i) * width_ &&
        marker < lo_ + static_cast<double>(i + 1) * width_) {
      lead = '|';
    }
    os << lead;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%10.3f ", center(i));
    os << buf << std::string(bar, '#') << "\n";
  }
  return os.str();
}

}  // namespace sddd::stats
