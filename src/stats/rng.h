// rng.h - Deterministic pseudo-random number generation for all stochastic
// components of the SDDD library.
//
// Every stochastic object in the library (statistical cell libraries,
// Monte-Carlo timing simulation, defect injection, synthetic circuit
// generation, genetic-algorithm fill, ...) draws randomness from an explicit
// Rng handed to it by the caller.  There is no hidden global state: a fixed
// seed reproduces an experiment bit-for-bit, which is essential for the
// paper-reproduction harness (EXPERIMENTS.md records seeds next to results).
//
// The generator is PCG32 (O'Neill, 2014): 64-bit state, 32-bit output,
// period 2^64 per stream, with an odd stream-selector constant that makes it
// cheap to split one master seed into many statistically independent
// sub-streams (one per circuit instance, one per suspect fault, ...).
#pragma once

#include <cstdint>
#include <limits>

namespace sddd::stats {

/// Minimal PCG32 engine.  Satisfies the C++ UniformRandomBitGenerator
/// requirements so it can be used with <random> distributions, although the
/// library prefers its own inverse-CDF samplers (see rv.h) for portability
/// of results across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint32_t;

  /// Constructs a generator from a seed and a stream selector.  Two Rng
  /// objects with the same seed but different streams produce statistically
  /// independent sequences.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0U;
    inc_ = (stream << 1U) | 1U;
    (void)next();
    state_ += seed;
    (void)next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  /// Next 32 uniform random bits.
  result_type next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  /// Uniform double in [0, 1).  53-bit resolution.
  double uniform01() {
    const std::uint64_t hi = next();
    const std::uint64_t lo = next();
    const std::uint64_t bits53 = ((hi << 32U) | lo) >> 11U;
    return static_cast<double>(bits53) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [0, n).  n must be > 0.  Uses rejection to avoid
  /// modulo bias.
  std::uint32_t below(std::uint32_t n) {
    const std::uint32_t threshold = (-n) % n;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    // Compose two 32-bit draws when the span exceeds 32 bits.
    if (span <= std::numeric_limits<std::uint32_t>::max()) {
      return lo + static_cast<std::int64_t>(
                      below(static_cast<std::uint32_t>(span)));
    }
    const std::uint64_t r =
        (static_cast<std::uint64_t>(next()) << 32U) | next();
    return lo + static_cast<std::int64_t>(r % span);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Derives an independent child stream.  Used to give each Monte-Carlo
  /// instance / suspect fault / worker its own reproducible stream without
  /// the sequences overlapping.
  Rng split(std::uint64_t salt) {
    const std::uint64_t seed =
        (static_cast<std::uint64_t>(next()) << 32U) | next();
    return Rng(seed ^ (salt * 0x9e3779b97f4a7c15ULL),
               inc_ ^ (salt * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL));
  }

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

}  // namespace sddd::stats
