// sample_vector.h - Empirical (Monte-Carlo) random variables.
//
// All statistical timing quantities in the library - timing lengths TL(p),
// arrival times Ar(o), circuit delay Delta(C) (Section D-1 of the paper) -
// are represented as vectors of joint Monte-Carlo samples.  Sample index k
// of *every* SampleVector in one analysis refers to the *same* underlying
// circuit-instance draw, so:
//
//   - Sum and Max of arrival times are computed exactly per sample, which
//     realizes the paper's "joint distribution" semantics (Definition D.1's
//     correlated delay variables) with no analytic approximation;
//   - a single sample index k *is* a circuit instance (Definition D.2): the
//     k-th coordinates of all edge-delay vectors form one fixed-delay chip.
//
// The vector length (sample count) is fixed per analysis context and checked
// on every binary operation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sddd::stats {

class Rng;
class RandomVariable;

/// Empirical random variable: a fixed-length vector of equally likely
/// samples.  Value type with cheap moves.
class SampleVector {
 public:
  SampleVector() = default;

  /// n samples, all equal to `fill` (default 0).
  explicit SampleVector(std::size_t n, double fill = 0.0)
      : samples_(n, fill) {}

  /// Takes ownership of precomputed samples.
  explicit SampleVector(std::vector<double> samples)
      : samples_(std::move(samples)) {}

  /// Draws n independent samples of `rv`.
  static SampleVector draw(const RandomVariable& rv, std::size_t n, Rng& rng);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double operator[](std::size_t i) const { return samples_[i]; }
  double& operator[](std::size_t i) { return samples_[i]; }

  std::span<const double> samples() const { return samples_; }
  std::span<double> mutable_samples() { return samples_; }

  // --- Per-sample (joint) arithmetic.  Sizes must match. ---

  /// this += other (per sample).  The Sum operator of Definition D-1.
  SampleVector& operator+=(const SampleVector& other);
  /// this = max(this, other) (per sample).  The Max operator of Def. D-1.
  SampleVector& max_with(const SampleVector& other);
  /// this += constant.
  SampleVector& operator+=(double delta);
  /// this *= constant.
  SampleVector& operator*=(double factor);

  friend SampleVector operator+(SampleVector lhs, const SampleVector& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend SampleVector max(SampleVector lhs, const SampleVector& rhs) {
    lhs.max_with(rhs);
    return lhs;
  }

  // --- Statistics over the empirical distribution. ---

  double mean() const;
  double stddev() const;
  double min() const;
  double max_value() const;

  /// Empirical q-quantile, q in [0, 1], by linear interpolation on the
  /// sorted samples.  Does not modify the vector.
  double quantile(double q) const;

  /// Critical probability Prob(X > clk) (Definition D.6): the fraction of
  /// samples strictly exceeding the cut-off period.
  double critical_probability(double clk) const;

  /// Pearson correlation with another vector of the same length.
  double correlation(const SampleVector& other) const;

  bool operator==(const SampleVector& other) const = default;

 private:
  std::vector<double> samples_;
};

}  // namespace sddd::stats
