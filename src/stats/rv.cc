#include "stats/rv.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sddd::stats {

namespace {

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

RandomVariable RandomVariable::PointMass(double value) {
  require(value >= 0.0, "PointMass: value must be >= 0");
  return RandomVariable(RvKind::kPointMass, value, 0.0, 0.0);
}

RandomVariable RandomVariable::Normal(double mean, double sigma) {
  require(sigma >= 0.0, "Normal: sigma must be >= 0");
  if (sigma == 0.0) return PointMass(std::max(mean, 0.0));
  return RandomVariable(RvKind::kNormal, mean, sigma, 0.0);
}

RandomVariable RandomVariable::NormalThreeSigmaPct(double nominal,
                                                   double three_sigma_pct) {
  require(nominal >= 0.0, "NormalThreeSigmaPct: nominal must be >= 0");
  require(three_sigma_pct >= 0.0, "NormalThreeSigmaPct: pct must be >= 0");
  return Normal(nominal, nominal * three_sigma_pct / 3.0);
}

RandomVariable RandomVariable::LogNormalMeanSigma(double mean, double sigma) {
  require(mean > 0.0, "LogNormalMeanSigma: mean must be > 0");
  require(sigma >= 0.0, "LogNormalMeanSigma: sigma must be >= 0");
  if (sigma == 0.0) return PointMass(mean);
  // Moment matching: if X = exp(N(mu, s^2)) then
  //   E[X]   = exp(mu + s^2/2)
  //   Var[X] = (exp(s^2) - 1) exp(2mu + s^2)
  const double cv2 = (sigma / mean) * (sigma / mean);
  const double s2 = std::log1p(cv2);
  const double mu = std::log(mean) - 0.5 * s2;
  return RandomVariable(RvKind::kLogNormal, mu, std::sqrt(s2), 0.0);
}

RandomVariable RandomVariable::Uniform(double lo, double hi) {
  require(lo >= 0.0 && hi >= lo, "Uniform: need 0 <= lo <= hi");
  if (lo == hi) return PointMass(lo);
  return RandomVariable(RvKind::kUniform, lo, hi, 0.0);
}

RandomVariable RandomVariable::Triangular(double lo, double mode, double hi) {
  require(lo >= 0.0 && lo <= mode && mode <= hi,
          "Triangular: need 0 <= lo <= mode <= hi");
  if (lo == hi) return PointMass(lo);
  return RandomVariable(RvKind::kTriangular, lo, hi, mode);
}

double RandomVariable::mean() const {
  switch (kind_) {
    case RvKind::kPointMass:
      return a_;
    case RvKind::kNormal:
      return a_;
    case RvKind::kLogNormal:
      return std::exp(a_ + 0.5 * b_ * b_);
    case RvKind::kUniform:
      return 0.5 * (a_ + b_);
    case RvKind::kTriangular:
      return (a_ + b_ + c_) / 3.0;
  }
  return 0.0;
}

double RandomVariable::stddev() const {
  switch (kind_) {
    case RvKind::kPointMass:
      return 0.0;
    case RvKind::kNormal:
      return b_;
    case RvKind::kLogNormal: {
      const double ex = std::exp(a_ + 0.5 * b_ * b_);
      return ex * std::sqrt(std::expm1(b_ * b_));
    }
    case RvKind::kUniform:
      return (b_ - a_) / std::sqrt(12.0);
    case RvKind::kTriangular: {
      const double v = (a_ * a_ + b_ * b_ + c_ * c_ - a_ * b_ - a_ * c_ - b_ * c_) / 18.0;
      return std::sqrt(v);
    }
  }
  return 0.0;
}

double RandomVariable::sample(Rng& rng) const {
  switch (kind_) {
    case RvKind::kPointMass:
      return a_;
    case RvKind::kNormal: {
      // Inverse-CDF sampling; truncate to [0, +inf) by rejection so that
      // Definition D.1's support constraint holds exactly.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const double z = inverse_normal_cdf(rng.uniform01());
        const double x = a_ + b_ * z;
        if (x >= 0.0) return x;
      }
      return 0.0;  // mean far below 0 relative to sigma; clamp
    }
    case RvKind::kLogNormal: {
      const double z = inverse_normal_cdf(rng.uniform01());
      return std::exp(a_ + b_ * z);
    }
    case RvKind::kUniform:
      return rng.uniform(a_, b_);
    case RvKind::kTriangular: {
      const double u = rng.uniform01();
      const double f = (c_ - a_) / (b_ - a_);
      if (u < f) return a_ + std::sqrt(u * (b_ - a_) * (c_ - a_));
      return b_ - std::sqrt((1.0 - u) * (b_ - a_) * (b_ - c_));
    }
  }
  return 0.0;
}

double RandomVariable::quantile(double u) const {
  u = std::clamp(u, 1e-12, 1.0 - 1e-12);
  switch (kind_) {
    case RvKind::kPointMass:
      return a_;
    case RvKind::kNormal:
      return std::max(0.0, a_ + b_ * inverse_normal_cdf(u));
    case RvKind::kLogNormal:
      return std::exp(a_ + b_ * inverse_normal_cdf(u));
    case RvKind::kUniform:
      return a_ + (b_ - a_) * u;
    case RvKind::kTriangular: {
      const double f = (c_ - a_) / (b_ - a_);
      if (u < f) return a_ + std::sqrt(u * (b_ - a_) * (c_ - a_));
      return b_ - std::sqrt((1.0 - u) * (b_ - a_) * (b_ - c_));
    }
  }
  return 0.0;
}

RandomVariable RandomVariable::shifted(double delta) const {
  switch (kind_) {
    case RvKind::kPointMass:
      return PointMass(std::max(a_ + delta, 0.0));
    case RvKind::kNormal:
      return Normal(a_ + delta, b_);
    case RvKind::kLogNormal: {
      // Shift by moment matching (keeps sigma of the value, moves the mean).
      const double m = mean() + delta;
      const double s = stddev();
      if (m <= 0.0) return PointMass(0.0);
      return LogNormalMeanSigma(m, s);
    }
    case RvKind::kUniform:
      return Uniform(std::max(a_ + delta, 0.0), std::max(b_ + delta, 0.0));
    case RvKind::kTriangular:
      return Triangular(std::max(a_ + delta, 0.0), std::max(c_ + delta, 0.0),
                        std::max(b_ + delta, 0.0));
  }
  return *this;
}

RandomVariable RandomVariable::scaled(double factor) const {
  require(factor > 0.0, "scaled: factor must be > 0");
  switch (kind_) {
    case RvKind::kPointMass:
      return PointMass(a_ * factor);
    case RvKind::kNormal:
      return Normal(a_ * factor, b_ * factor);
    case RvKind::kLogNormal:
      return RandomVariable(RvKind::kLogNormal, a_ + std::log(factor), b_, 0.0);
    case RvKind::kUniform:
      return Uniform(a_ * factor, b_ * factor);
    case RvKind::kTriangular:
      return Triangular(a_ * factor, c_ * factor, b_ * factor);
  }
  return *this;
}

std::string RandomVariable::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case RvKind::kPointMass:
      os << "PointMass(" << a_ << ")";
      break;
    case RvKind::kNormal:
      os << "Normal(mu=" << a_ << ", sigma=" << b_ << ")";
      break;
    case RvKind::kLogNormal:
      os << "LogNormal(mean=" << mean() << ", sigma=" << stddev() << ")";
      break;
    case RvKind::kUniform:
      os << "Uniform[" << a_ << ", " << b_ << "]";
      break;
    case RvKind::kTriangular:
      os << "Triangular(" << a_ << ", " << c_ << ", " << b_ << ")";
      break;
  }
  return os.str();
}

double inverse_normal_cdf(double p) {
  // Acklam's algorithm.  Valid for p in (0, 1).
  if (p <= 0.0) return -8.0;
  if (p >= 1.0) return 8.0;
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q = 0.0;
  double r = 0.0;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace sddd::stats
