// histogram.h - Fixed-bin histograms for reporting empirical pdfs.
//
// The reporting layer (EXPERIMENTS.md tables, Figure 1/2 reproductions)
// renders arrival-time pdfs as text histograms.  This class converts a
// SampleVector into bins and offers an ASCII rendering similar to the pdf
// sketches in the paper's Figure 1.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "stats/sample_vector.h"

namespace sddd::stats {

/// Equal-width binned histogram over a closed range.
class Histogram {
 public:
  /// Bins `data` into `bins` equal-width buckets over [lo, hi].  Samples
  /// outside the range are clamped into the first/last bin.  Requires
  /// bins >= 1 and hi > lo.
  Histogram(const SampleVector& data, std::size_t bins, double lo, double hi);

  /// Convenience: range auto-derived from the data (min..max, padded when
  /// degenerate).
  Histogram(const SampleVector& data, std::size_t bins);

  std::size_t bin_count() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }

  /// Raw count in bin i.
  std::size_t count(std::size_t i) const { return counts_.at(i); }

  /// Probability mass in bin i (count / total).
  double mass(std::size_t i) const;

  /// Center x-coordinate of bin i.
  double center(std::size_t i) const;

  /// Probability mass at or beyond x (sum of bins whose center >= x), an
  /// approximation of the survival function used for quick visual checks.
  double mass_above(double x) const;

  /// Multi-line ASCII rendering: one row per bin, bar length proportional
  /// to mass, `width` characters for a full bar.  `marker` (if finite)
  /// draws a '|' row at that x position - used to show the clk cut-off in
  /// Figure 1 style plots.
  std::string ascii(std::size_t width = 50,
                    double marker = std::numeric_limits<double>::quiet_NaN()) const;

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  double lo_ = 0.0;
  double hi_ = 1.0;
  double width_ = 1.0;
};

}  // namespace sddd::stats
