#include "paths/path_enum.h"

#include <algorithm>
#include <stdexcept>

namespace sddd::paths {

using netlist::ArcId;
using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;

PathDistances::PathDistances(const Netlist& nl,
                             const netlist::Levelization& lev,
                             std::span<const double> arc_weight)
    : nl_(&nl) {
  if (arc_weight.size() != nl.arc_count()) {
    throw std::invalid_argument("PathDistances: arc_weight size mismatch");
  }
  weight_copy_.assign(arc_weight.begin(), arc_weight.end());
  weight_ = weight_copy_;
  const std::size_t n = nl.gate_count();
  up_.assign(n, 0.0);
  down_.assign(n, 0.0);

  const auto& order = lev.topo_order();
  for (const GateId g : order) {
    const Gate& gate = nl.gate(g);
    if (!is_combinational(gate.type)) continue;
    double best = 0.0;
    for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
      best = std::max(best,
                      up_[gate.fanins[pin]] + weight_[nl.arc_of(g, pin)]);
    }
    up_[g] = best;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const GateId g = *it;
    const Gate& gate = nl.gate(g);
    if (!is_combinational(gate.type)) continue;
    for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
      const GateId f = gate.fanins[pin];
      down_[f] = std::max(down_[f], down_[g] + weight_[nl.arc_of(g, pin)]);
    }
  }
}

double PathDistances::through_arc(ArcId a) const {
  const auto& arc = nl_->arc(a);
  const GateId f = nl_->gate(arc.gate).fanins[arc.pin];
  return up_[f] + weight_[a] + down_[arc.gate];
}

double PathDistances::critical_weight() const {
  double best = 0.0;
  for (const GateId o : nl_->outputs()) best = std::max(best, up_[o]);
  return best;
}

namespace {

/// Extends `partial` (ending at gate `g`) forward to a PO, always taking
/// the heaviest continuation not yet exhausted; `skip` counts how many
/// times the search may deviate from the heaviest choice (to produce
/// distinct near-heaviest paths).
struct ForwardEnumerator {
  const Netlist& nl;
  const PathDistances& dist;
  std::span<const double> weight;
  std::size_t limit;
  std::vector<Path> out;

  // DFS over forward continuations in descending (w + downstream) order.
  void extend(Path& partial, GateId g) {
    if (out.size() >= limit) return;
    if (nl.output_index(g) >= 0 && !partial.empty()) {
      out.push_back(partial);
      // A PO driver may still have further fanout; fall through to also
      // explore longer continuations after recording this terminal path.
    }
    // Gather forward arcs from g.
    std::vector<ArcId> next;
    for (const GateId fo : nl.gate(g).fanouts) {
      const Gate& fog = nl.gate(fo);
      for (std::uint32_t pin = 0; pin < fog.fanins.size(); ++pin) {
        if (fog.fanins[pin] == g) next.push_back(nl.arc_of(fo, pin));
      }
    }
    std::sort(next.begin(), next.end(), [&](ArcId a, ArcId b) {
      return weight[a] + dist.downstream(nl.arc(a).gate) >
             weight[b] + dist.downstream(nl.arc(b).gate);
    });
    for (const ArcId a : next) {
      if (out.size() >= limit) return;
      partial.arcs.push_back(a);
      extend(partial, nl.arc(a).gate);
      partial.arcs.pop_back();
    }
  }
};

/// Enumerates backward prefixes from gate `g` to PIs, heaviest first,
/// invoking `sink` with each complete prefix (arcs in PI->g order).
template <typename Fn>
void enumerate_prefixes(const Netlist& nl, const PathDistances& dist,
                        std::span<const double> weight, GateId g,
                        std::vector<ArcId>& rev, Fn&& sink, std::size_t& budget) {
  if (budget == 0) return;
  const Gate& gate = nl.gate(g);
  if (!is_combinational(gate.type) || gate.fanins.empty()) {
    sink(rev);
    if (budget > 0) --budget;
    return;
  }
  std::vector<std::uint32_t> pins(gate.fanins.size());
  for (std::uint32_t i = 0; i < pins.size(); ++i) pins[i] = i;
  std::sort(pins.begin(), pins.end(), [&](std::uint32_t a, std::uint32_t b) {
    return dist.upstream(gate.fanins[a]) + weight[nl.arc_of(g, a)] >
           dist.upstream(gate.fanins[b]) + weight[nl.arc_of(g, b)];
  });
  for (const std::uint32_t pin : pins) {
    if (budget == 0) return;
    rev.push_back(nl.arc_of(g, pin));
    enumerate_prefixes(nl, dist, weight, gate.fanins[pin], rev, sink, budget);
    rev.pop_back();
  }
}

}  // namespace

std::vector<Path> k_heaviest_paths_through(const Netlist& nl,
                                           const netlist::Levelization& lev,
                                           std::span<const double> arc_weight,
                                           ArcId site, std::size_t k) {
  if (k == 0) return {};
  const PathDistances dist(nl, lev, arc_weight);
  const auto& arc = nl.arc(site);
  const GateId head = arc.gate;                        // gate after the site
  const GateId tail = nl.gate(head).fanins[arc.pin];   // gate before the site

  // Enumerate up to k backward prefixes into `tail` and, for each, up to k
  // forward suffixes from `head`; keep the k heaviest combinations.
  std::vector<std::vector<ArcId>> prefixes;
  std::vector<ArcId> rev;
  std::size_t budget = k;
  enumerate_prefixes(
      nl, dist, arc_weight, tail, rev,
      [&](const std::vector<ArcId>& r) {
        std::vector<ArcId> fwd(r.rbegin(), r.rend());
        prefixes.push_back(std::move(fwd));
      },
      budget);

  ForwardEnumerator fwd{nl, dist, arc_weight, k, {}};
  Path stub;
  fwd.extend(stub, head);

  std::vector<Path> result;
  for (const auto& pre : prefixes) {
    // Suffix paths from `head` include the case where head itself is a PO
    // (handled by ForwardEnumerator recording the partial).
    if (nl.output_index(head) >= 0) {
      Path p;
      p.arcs = pre;
      p.arcs.push_back(site);
      result.push_back(std::move(p));
    }
    for (const Path& suf : fwd.out) {
      Path p;
      p.arcs = pre;
      p.arcs.push_back(site);
      p.arcs.insert(p.arcs.end(), suf.arcs.begin(), suf.arcs.end());
      result.push_back(std::move(p));
    }
  }
  std::stable_sort(result.begin(), result.end(), [&](const Path& a, const Path& b) {
    return path_weight(a, arc_weight) > path_weight(b, arc_weight);
  });
  result.erase(std::unique(result.begin(), result.end()), result.end());
  if (result.size() > k) result.resize(k);
  return result;
}

std::vector<Path> enumerate_active_paths(const TransitionGraph& tg, GateId o,
                                         std::size_t limit) {
  std::vector<Path> out;
  if (!tg.toggles(o) || limit == 0) return out;
  const Netlist& nl = tg.netlist();
  // DFS backward over active arcs; emit when reaching a source (a gate with
  // no active fanins, i.e. a toggling PI).
  std::vector<ArcId> rev;
  const auto dfs = [&](auto&& self, GateId g) -> void {
    if (out.size() >= limit) return;
    const auto& act = tg.active_fanins(g);
    if (act.empty()) {
      Path p;
      p.arcs.assign(rev.rbegin(), rev.rend());
      if (!p.arcs.empty()) out.push_back(std::move(p));
      return;
    }
    for (const ArcId a : act) {
      if (out.size() >= limit) return;
      rev.push_back(a);
      const auto& arc = nl.arc(a);
      self(self, nl.gate(arc.gate).fanins[arc.pin]);
      rev.pop_back();
    }
  };
  dfs(dfs, o);
  return out;
}

std::vector<bool> suspect_arcs_for_outputs(
    const TransitionGraph& tg, std::span<const GateId> outputs) {
  std::vector<bool> result(tg.netlist().arc_count(), false);
  for (const GateId o : outputs) {
    const auto cone = tg.cone_to_output(o);
    for (std::size_t a = 0; a < cone.size(); ++a) {
      if (cone[a]) result[a] = true;
    }
  }
  return result;
}

}  // namespace sddd::paths
