#include "paths/transition_graph.h"

#include <algorithm>
#include <stdexcept>

namespace sddd::paths {

using logicsim::PatternPair;
using netlist::ArcId;
using netlist::CellType;
using netlist::Gate;
using netlist::GateId;
using netlist::Netlist;

TransitionGraph::TransitionGraph(const logicsim::BitSimulator& sim,
                                 const netlist::Levelization& lev,
                                 const PatternPair& pattern)
    : nl_(&sim.netlist()), lev_(&lev) {
  const Netlist& nl = *nl_;
  // Simulate both vectors in one bit-parallel pass: bit 0 = v1, bit 1 = v2.
  const std::vector<logicsim::Pattern> pair = {pattern.v1, pattern.v2};
  const auto words = sim.simulate(sim.pack(pair));

  const std::size_t n = nl.gate_count();
  toggles_.assign(n, false);
  v1_value_.assign(n, false);
  v2_value_.assign(n, false);
  rule_.assign(n, ArrivalRule::kMaxOverActive);
  active_.assign(nl.arc_count(), false);
  active_fanins_.assign(n, {});

  for (GateId g = 0; g < n; ++g) {
    v1_value_[g] = (words[g] & 1ULL) != 0;
    v2_value_[g] = (words[g] & 2ULL) != 0;
    toggles_[g] = v1_value_[g] != v2_value_[g];
  }

  for (GateId g = 0; g < n; ++g) {
    const Gate& gate = nl.gate(g);
    if (!toggles_[g] || !is_combinational(gate.type)) continue;

    auto& act = active_fanins_[g];
    if (has_controlling_value(gate.type)) {
      const bool ctrl = controlling_value(gate.type);
      bool final_controlled = false;
      for (const GateId f : gate.fanins) {
        if (v2_value_[f] == ctrl) {
          final_controlled = true;
          break;
        }
      }
      if (final_controlled) {
        // Output switched when the first input reached the controlling
        // value: only inputs that toggled *to* controlling matter.
        rule_[g] = ArrivalRule::kMinOverActive;
        for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
          const GateId f = gate.fanins[pin];
          if (toggles_[f] && v2_value_[f] == ctrl) {
            act.push_back(nl.arc_of(g, pin));
          }
        }
      } else {
        // All inputs settle non-controlling: the last toggling input
        // releases the output.
        rule_[g] = ArrivalRule::kMaxOverActive;
        for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
          if (toggles_[gate.fanins[pin]]) act.push_back(nl.arc_of(g, pin));
        }
      }
    } else {
      // XOR/XNOR/NOT/BUF: every toggling input contributes; output settles
      // at the latest.
      rule_[g] = ArrivalRule::kMaxOverActive;
      for (std::uint32_t pin = 0; pin < gate.fanins.size(); ++pin) {
        if (toggles_[gate.fanins[pin]]) act.push_back(nl.arc_of(g, pin));
      }
    }
    for (const ArcId a : act) active_[a] = true;
  }
}

bool TransitionGraph::any_output_toggles() const {
  return std::any_of(nl_->outputs().begin(), nl_->outputs().end(),
                     [&](GateId o) { return toggles_[o]; });
}

std::vector<bool> TransitionGraph::cone_to_output(GateId o) const {
  std::vector<bool> in_cone(nl_->arc_count(), false);
  if (!toggles_[o]) return in_cone;
  std::vector<bool> visited(nl_->gate_count(), false);
  std::vector<GateId> stack = {o};
  visited[o] = true;
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (const ArcId a : active_fanins_[g]) {
      in_cone[a] = true;
      const auto& arc = nl_->arc(a);
      const GateId f = nl_->gate(arc.gate).fanins[arc.pin];
      if (!visited[f]) {
        visited[f] = true;
        stack.push_back(f);
      }
    }
  }
  return in_cone;
}

std::vector<GateId> TransitionGraph::forward_cone(GateId g) const {
  std::vector<GateId> cone;
  if (!toggles_[g]) return cone;
  std::vector<bool> visited(nl_->gate_count(), false);
  std::vector<GateId> stack = {g};
  visited[g] = true;
  while (!stack.empty()) {
    const GateId cur = stack.back();
    stack.pop_back();
    cone.push_back(cur);
    for (const GateId fo : nl_->gate(cur).fanouts) {
      if (visited[fo]) continue;
      // The fanout is in the cone when one of its *active* fanin arcs
      // originates at `cur`.
      for (const ArcId a : active_fanins_[fo]) {
        const auto& arc = nl_->arc(a);
        if (nl_->gate(arc.gate).fanins[arc.pin] == cur) {
          visited[fo] = true;
          stack.push_back(fo);
          break;
        }
      }
    }
  }
  std::sort(cone.begin(), cone.end(), [&](GateId a, GateId b) {
    return lev_->level(a) < lev_->level(b);
  });
  return cone;
}

}  // namespace sddd::paths
