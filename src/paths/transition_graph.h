// transition_graph.h - Per-pattern sensitization analysis.
//
// Given a two-vector test (v1, v2), this module computes which nets toggle
// and which timing arcs are *active*, i.e. carry a transition that
// contributes to the output settling time.  The active subgraph is exactly
// the paper's induced circuit Induced(Path_v) (Definitions D.3-D.5): the
// statistical dynamic timing simulator propagates arrival-time random
// variables only along active arcs.
//
// Arrival semantics per gate ("transition mode" timing):
//   - the gate's output must toggle between v1 and v2 to carry an arrival;
//   - if the final (v2) output value is *controlled* (some input sits at
//     the controlling value), the output switched when the FIRST input
//     arrived at the controlling value: arrival = MIN over inputs that
//     toggled to the controlling value;
//   - otherwise the output switched when the LAST toggling input settled:
//     arrival = MAX over toggling inputs (this covers XOR/NOT/BUF too).
//
// This is the standard gate-level approximation of the waveforms a
// Monte-Carlo SPICE dynamic simulation would produce (Section H-2); it
// keeps every quantity a pure min/max/plus network over arc-delay samples,
// which makes all timing quantities monotone in every arc delay - the
// property that guarantees S_crt = E_crt - M_crt >= 0 (Definition E.1).
#pragma once

#include <cstdint>
#include <vector>

#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "netlist/netlist.h"

namespace sddd::paths {

/// How a toggling gate's arrival time combines its active fanin arrivals.
enum class ArrivalRule : std::uint8_t {
  kMaxOverActive,  ///< final value non-controlled: latest active input
  kMinOverActive,  ///< final value controlled: earliest controlling input
};

/// Sensitization result for one pattern pair on one netlist.
class TransitionGraph {
 public:
  /// Simulates v1/v2 with `sim` and derives toggles, active arcs and
  /// per-gate arrival rules.
  TransitionGraph(const logicsim::BitSimulator& sim,
                  const netlist::Levelization& lev,
                  const logicsim::PatternPair& pattern);

  const netlist::Netlist& netlist() const { return *nl_; }

  /// True when the net toggles between the two vectors.
  bool toggles(netlist::GateId g) const { return toggles_[g]; }

  /// True when the arc carries a contributing transition (see header).
  bool is_active(netlist::ArcId a) const { return active_[a]; }

  ArrivalRule rule(netlist::GateId g) const { return rule_[g]; }

  /// Active fanin arcs of gate g (subset of its pins), empty when the gate
  /// does not toggle or is a source.
  const std::vector<netlist::ArcId>& active_fanins(netlist::GateId g) const {
    return active_fanins_[g];
  }

  /// Final (v2) logic value of each gate; used by tests and the ATPG.
  bool final_value(netlist::GateId g) const { return v2_value_[g]; }
  /// Initial (v1) logic value of each gate.
  bool initial_value(netlist::GateId g) const { return v1_value_[g]; }

  /// True when at least one primary output toggles (the pattern exercises
  /// some path; otherwise the induced circuit is empty).
  bool any_output_toggles() const;

  /// Arcs lying on some active path that terminates at output gate `o`:
  /// the backward cone over active arcs.  Returns one flag per arc.
  /// These are the arcs whose delay can influence Ar(o) - the suspect
  /// universe of Algorithm E.1 step 1 for a failing (o, v) pair.
  std::vector<bool> cone_to_output(netlist::GateId o) const;

  /// Gates downstream of gate `g` (inclusive) reachable over active arcs:
  /// the forward cone a defect at g can influence, in topological order.
  /// Used for incremental dictionary simulation.
  std::vector<netlist::GateId> forward_cone(netlist::GateId g) const;

 private:
  const netlist::Netlist* nl_;
  const netlist::Levelization* lev_;
  std::vector<bool> toggles_;
  std::vector<bool> active_;
  std::vector<bool> v1_value_;
  std::vector<bool> v2_value_;
  std::vector<ArrivalRule> rule_;
  std::vector<std::vector<netlist::ArcId>> active_fanins_;
};

}  // namespace sddd::paths
