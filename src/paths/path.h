// path.h - Structural paths through the circuit DAG.
//
// A path (Section D-1) runs from a primary input to a primary output along
// timing arcs.  Paths are stored as arc-id sequences; the gate sequence is
// derivable from the arcs.  Paths are the currency between the statistical
// timing engine (timing length TL(p)), the ATPG (path delay fault targets)
// and the diagnosis experiments (longest paths through a defect site,
// Section H-4).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace sddd::paths {

/// An input-to-output path: consecutive timing arcs where arc i+1's fanin
/// gate equals arc i's gate.
struct Path {
  std::vector<netlist::ArcId> arcs;

  bool empty() const { return arcs.empty(); }
  std::size_t length() const { return arcs.size(); }

  bool operator==(const Path&) const = default;
};

/// First gate of the path (the PI or source gate feeding the first arc).
netlist::GateId path_source(const netlist::Netlist& nl, const Path& p);

/// Last gate of the path (drives the PO).
netlist::GateId path_sink(const netlist::Netlist& nl, const Path& p);

/// True when `p` is structurally consistent in `nl`: arcs chain head-to-
/// tail and the sink drives a primary output.
bool is_valid_path(const netlist::Netlist& nl, const Path& p);

/// True when arc `a` lies on `p`.
bool path_contains(const Path& p, netlist::ArcId a);

/// "I3 -> N12 -> N40 -> PO N77" rendering for logs.
std::string path_to_string(const netlist::Netlist& nl, const Path& p);

/// Sum of per-arc weights along the path (e.g. mean delays): the nominal
/// timing length used by longest-path selection.
double path_weight(const Path& p, std::span<const double> arc_weight);

}  // namespace sddd::paths
