#include "paths/path.h"

#include <algorithm>
#include <sstream>

namespace sddd::paths {

using netlist::ArcId;
using netlist::GateId;
using netlist::Netlist;

GateId path_source(const Netlist& nl, const Path& p) {
  if (p.empty()) return netlist::kInvalidGate;
  const auto& first = nl.arc(p.arcs.front());
  return nl.gate(first.gate).fanins[first.pin];
}

GateId path_sink(const Netlist& nl, const Path& p) {
  if (p.empty()) return netlist::kInvalidGate;
  return nl.arc(p.arcs.back()).gate;
}

bool is_valid_path(const Netlist& nl, const Path& p) {
  if (p.empty()) return false;
  for (std::size_t i = 0; i + 1 < p.arcs.size(); ++i) {
    const auto& cur = nl.arc(p.arcs[i]);
    const auto& nxt = nl.arc(p.arcs[i + 1]);
    if (nl.gate(nxt.gate).fanins[nxt.pin] != cur.gate) return false;
  }
  return nl.output_index(path_sink(nl, p)) >= 0;
}

bool path_contains(const Path& p, ArcId a) {
  return std::find(p.arcs.begin(), p.arcs.end(), a) != p.arcs.end();
}

std::string path_to_string(const Netlist& nl, const Path& p) {
  if (p.empty()) return "<empty>";
  std::ostringstream os;
  os << nl.gate(path_source(nl, p)).name;
  for (const ArcId a : p.arcs) {
    os << " -> " << nl.gate(nl.arc(a).gate).name;
  }
  return os.str();
}

double path_weight(const Path& p, std::span<const double> arc_weight) {
  double acc = 0.0;
  for (const ArcId a : p.arcs) acc += arc_weight[a];
  return acc;
}

}  // namespace sddd::paths
