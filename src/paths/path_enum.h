// path_enum.h - Path selection and enumeration.
//
// Section H-4: "For the injected fault and circuit instance, we find a set
// of 'longest' paths through the fault site and generate path delay tests
// for them.  The longest paths are derived using false-path aware static
// statistical timing analysis."  This module provides that selection: the
// K heaviest structural paths through a given timing arc under per-arc
// weights (typically the mean of each arc's delay random variable, i.e.
// the statistically longest paths), plus enumeration of the active paths
// of a pattern's induced circuit for tests and the Figure 1 study.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "netlist/levelize.h"
#include "netlist/netlist.h"
#include "paths/path.h"
#include "paths/transition_graph.h"

namespace sddd::paths {

/// Longest-distance tables for weighted path queries.
class PathDistances {
 public:
  /// arc_weight has one entry per arc (e.g. mean arc delays).
  PathDistances(const netlist::Netlist& nl, const netlist::Levelization& lev,
                std::span<const double> arc_weight);

  /// Heaviest PI-to-here distance ending at gate g's output (0 at sources).
  double upstream(netlist::GateId g) const { return up_[g]; }

  /// Heaviest here-to-PO distance starting at gate g's output (0 when g
  /// drives a PO and nothing heavier lies beyond it).
  double downstream(netlist::GateId g) const { return down_[g]; }

  /// Weight of the heaviest path through arc `a`.
  double through_arc(netlist::ArcId a) const;

  /// Weight of the heaviest path in the circuit (nominal critical path).
  double critical_weight() const;

 private:
  const netlist::Netlist* nl_;
  std::vector<double> up_;
  std::vector<double> down_;
  std::span<const double> weight_;
  std::vector<double> weight_copy_;
};

/// Returns up to `k` distinct heavy paths through arc `site`, heaviest
/// first.  Enumeration explores extensions in descending weight-to-go
/// order, so the first path is the true heaviest; subsequent paths are
/// near-heaviest (greedy k-best, sufficient for ATPG target selection).
std::vector<Path> k_heaviest_paths_through(const netlist::Netlist& nl,
                                           const netlist::Levelization& lev,
                                           std::span<const double> arc_weight,
                                           netlist::ArcId site, std::size_t k);

/// Enumerates active paths of the induced circuit that end at output gate
/// `o` (every arc active in `tg`), up to `limit` paths.  The full list can
/// be exponential; callers cap it.
std::vector<Path> enumerate_active_paths(const TransitionGraph& tg,
                                         netlist::GateId o, std::size_t limit);

/// Convenience: all arcs that lie on at least one active path to a failing
/// output, unioned over the given outputs.  This is the suspect universe of
/// Algorithm E.1 step 1 for one pattern.
std::vector<bool> suspect_arcs_for_outputs(
    const TransitionGraph& tg, std::span<const netlist::GateId> outputs);

}  // namespace sddd::paths
