// explain.h - The diagnosis explanation engine (introspection tentpole).
//
// A DiagnosisResult says *which* suspects rank where; this module says
// *why*, and whether the ranking means anything given the Monte-Carlo
// noise underneath it.  For the top-K candidates it decomposes every score
// back into its per-pattern phi_j contributions and every phi_j into its
// per-output factors f_kj = b_kj s_kj + (1 - b_kj)(1 - s_kj) against the
// observed behavior matrix B, exports the signature rows those factors
// were matched on, and attaches the logic-domain equivalence-class
// structure (resolution.h) so a user can see when "rank 1" really means
// "rank 1 within a class no pattern set could split".
//
// Confidence propagation (exact, by monotonicity): every dictionary entry
// is a binomial proportion over n = mc_samples, so each matched value gets
// a Wilson 95% interval (confidence.h); each factor f is monotone in s, so
// its interval is the mapped endpoint pair; phi = prod_k f_k is monotone
// increasing in every factor, so [prod lo, prod hi] bounds it; and every
// method score is monotone in every phi_j (increasing for Sim I/II/III,
// decreasing for Alg_rev), so feeding the phi bounds through two
// ScoreAccumulators bounds the score.  The per-method
// `rank_separable_at_95` verdict then asks whether the rank-1 interval
// clears the rank-2 interval in the method's ranking direction - the
// difference between a confident diagnosis and a coin flip.
//
// Everything here iterates in fixed (pattern, output, candidate) order and
// prints doubles with 17 significant digits, so reports are byte-identical
// at any thread count.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "defect/defect_model.h"
#include "diagnosis/behavior.h"
#include "diagnosis/diagnoser.h"
#include "diagnosis/error_fn.h"
#include "introspect/confidence.h"
#include "logicsim/bitsim.h"
#include "netlist/levelize.h"
#include "timing/dynamic_sim.h"

namespace sddd::introspect {

struct ExplainConfig {
  /// Candidates to fully decompose, best-first under `primary`.
  std::size_t top_k = 5;
  /// Method whose ranking orders the candidate list (must be in the
  /// DiagnosisResult's method set).
  diagnosis::Method primary = diagnosis::Method::kSimII;
  /// Mirrors DiagnoserConfig::match_on_total_probability: what phi was
  /// matched against (E_crt vs S_crt), so the breakdown recomputes the
  /// exact factors the diagnosis used.
  bool match_on_total_probability = true;
};

/// One (output, pattern) cell of a candidate's match.
struct CellBreakdown {
  std::size_t output = 0;   ///< output row index (B row)
  bool observed_fail = false;  ///< b_kj
  double m = 0.0;           ///< M_crt: defect-free failure probability
  double e = 0.0;           ///< E_crt: failure probability with the defect
  double s = 0.0;           ///< signature S = max(E - M, 0)
  double matched = 0.0;     ///< the value phi matched on (E or S)
  Interval matched_ci;      ///< Wilson 95% on `matched`
  double factor = 0.0;      ///< b ? matched : 1 - matched
  /// True when the dictionary leans the same way the chip behaved
  /// (factor >= 1/2): this cell supports the candidate.
  bool agrees = false;
};

/// One pattern's phi contribution for a candidate.
struct PatternBreakdown {
  std::size_t pattern = 0;
  std::size_t observed_fails = 0;  ///< failing outputs of B under this pattern
  double phi = 0.0;
  Interval phi_ci;
  std::vector<CellBreakdown> cells;  ///< one per output, in output order
};

/// A candidate's score under one method, with its 95% interval and rank.
struct MethodScore {
  diagnosis::Method method = diagnosis::Method::kSimI;
  double score = 0.0;
  double ranking_key = 0.0;
  Interval ci;
  int rank = -1;  ///< 0-based rank of this candidate under `method`
};

struct CandidateExplanation {
  netlist::ArcId arc = netlist::kInvalidArc;
  int rank = -1;            ///< rank under ExplainConfig::primary
  double phi_sum = 0.0;     ///< sum_j phi_j (= |TP| x the Sim-II score)
  std::vector<MethodScore> methods;
  std::vector<PatternBreakdown> patterns;
  /// Logic-domain equivalence class of this candidate within the suspect
  /// set: members are indistinguishable by any 0/1 observation of the
  /// pattern set, so ranks within the class are arbitrary.
  std::size_t class_index = 0;
  std::vector<netlist::ArcId> class_members;
};

/// Separability verdict for one method: does the rank-1 score interval
/// clear the rank-2 interval in the method's ranking direction?
struct SeparabilityVerdict {
  diagnosis::Method method = diagnosis::Method::kSimI;
  bool separable_at_95 = false;
};

struct ExplanationReport {
  std::string circuit;
  std::string run_id;       ///< hex64 experiment fingerprint, "" = unknown
  std::uint64_t seed = 0;
  std::size_t trial = 0;
  double clk = 0.0;
  std::size_t mc_samples = 0;  ///< n behind every dictionary estimate
  std::size_t n_patterns = 0;
  std::size_t n_outputs = 0;
  std::size_t n_suspects = 0;
  /// Ground truth when the caller knows it (an injected experiment);
  /// netlist::kInvalidArc otherwise (a real chip).
  netlist::ArcId injected_arc = netlist::kInvalidArc;
  double injected_size = 0.0;
  diagnosis::Method primary = diagnosis::Method::kSimII;
  /// Rank-1 vs rank-2 margin under `primary`, in ranking-key units, and
  /// whether their score intervals overlap (the "near tie" flag).
  double top_margin = 0.0;
  bool near_tie = false;
  std::vector<SeparabilityVerdict> separability;
  std::vector<CandidateExplanation> candidates;  ///< best-first, top-K
};

/// Builds the full explanation for an existing diagnosis.  `sim` must be
/// the same dictionary simulator the diagnosis ran against (its field's
/// sample_count is the n of every interval); columns are recomputed
/// deterministically, and when `diag` carries a captured phi matrix the
/// recomputation is cross-checked against it bit-exactly.
ExplanationReport explain_diagnosis(
    const timing::DynamicTimingSimulator& sim,
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    const defect::DefectSizeModel& size_model,
    std::span<const logicsim::PatternPair> patterns,
    const diagnosis::BehaviorMatrix& B,
    const diagnosis::DiagnosisResult& diag, double clk,
    const ExplainConfig& config = {});

/// Deterministic JSON rendering (doubles at 17 significant digits; field
/// order fixed) - byte-identical for byte-identical reports.
std::string to_json(const ExplanationReport& r);

/// Self-contained human-readable markdown report.
std::string to_markdown(const ExplanationReport& r);

}  // namespace sddd::introspect
