// manifest.h - Run provenance: one manifest.json per experiment artifact.
//
// Diagnosis artifacts (result JSON, checkpoint journals, explain reports,
// trace/metrics captures) are only trustworthy together with the exact
// configuration that produced them.  The manifest stamps that identity:
// the experiment fingerprint (the same hash the checkpoint journal is
// keyed by, exposed everywhere as the 16-hex-digit run id), the seed and
// sample counts, the thread count and git SHA of the producing build,
// FNV-1a hashes of every input file, the fault-injection spec that was
// active, and the quarantine/resume state of the run.  Artifacts sharing a
// run id were computed from the same (circuit, config) and are therefore
// cross-linkable: a checkpoint journal, a result JSON and an explain
// report with equal run ids describe the same deterministic computation.
//
// The manifest deliberately records *how* the run executed (threads,
// faults, resume counts), so unlike the result JSON it is not expected to
// be byte-identical across thread counts; the run id inside it is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sddd::introspect {

/// Lower-case 16-digit hex of `v` (the run-id / fingerprint spelling used
/// by checkpoint journals and every introspection artifact).
std::string to_hex64(std::uint64_t v);

/// FNV-1a 64 hash of a file's bytes; `size_out` (optional) receives the
/// byte count.  Throws sddd::IoError when the file cannot be read.
std::uint64_t fnv1a_file(const std::string& path,
                         std::uint64_t* size_out = nullptr);

struct RunManifest {
  std::string tool;      ///< producing command, e.g. "sddd_cli diagnose"
  std::string circuit;
  std::string run_id;    ///< hex64 experiment fingerprint
  std::uint64_t seed = 0;
  std::size_t mc_samples = 0;
  std::size_t n_chips = 0;
  std::size_t threads = 0;   ///< resolved runtime thread count
  std::string git_sha;       ///< SDDD_GIT_SHA env or "unknown"
  std::string faults;        ///< active SDDD_FAULTS spec, empty = none
  std::size_t quarantined_trials = 0;
  std::size_t resumed_trials = 0;
  std::size_t skipped_trials = 0;
  bool degraded = false;

  struct InputFile {
    std::string path;
    std::string fnv1a;       ///< hex64 content hash
    std::uint64_t bytes = 0;
  };
  std::vector<InputFile> inputs;

  struct Artifact {
    std::string kind;        ///< "result_json", "checkpoint", "explain", ...
    std::string path;
  };
  std::vector<Artifact> artifacts;
};

/// Renders the manifest as pretty-printed JSON (deterministic field
/// order).
std::string manifest_to_json(const RunManifest& m);

/// Atomically writes manifest_to_json(m) to `path`
/// (obs::atomic_write_file_or_throw).
void write_manifest(const RunManifest& m, const std::string& path);

}  // namespace sddd::introspect
