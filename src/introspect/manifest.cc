#include "introspect/manifest.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/atomic_file.h"
#include "obs/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sddd::introspect {

namespace {

obs::Counter& manifest_written_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("introspect.manifests");
  return c;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::uint64_t fnv1a_file(const std::string& path, std::uint64_t* size_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("manifest: cannot read input file " + path);
  }
  std::uint64_t h = 1469598103934665603ULL;
  std::uint64_t bytes = 0;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    const std::streamsize got = in.gcount();
    for (std::streamsize i = 0; i < got; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 1099511628211ULL;
    }
    bytes += static_cast<std::uint64_t>(got);
  }
  if (size_out != nullptr) *size_out = bytes;
  return h;
}

std::string manifest_to_json(const RunManifest& m) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"sddd-manifest-v1\",\n";
  os << "  \"tool\": \"" << json_escape(m.tool) << "\",\n";
  os << "  \"circuit\": \"" << json_escape(m.circuit) << "\",\n";
  os << "  \"run_id\": \"" << json_escape(m.run_id) << "\",\n";
  os << "  \"seed\": " << m.seed << ",\n";
  os << "  \"mc_samples\": " << m.mc_samples << ",\n";
  os << "  \"n_chips\": " << m.n_chips << ",\n";
  os << "  \"threads\": " << m.threads << ",\n";
  os << "  \"git_sha\": \"" << json_escape(m.git_sha) << "\",\n";
  os << "  \"faults\": \"" << json_escape(m.faults) << "\",\n";
  os << "  \"quarantined_trials\": " << m.quarantined_trials << ",\n";
  os << "  \"resumed_trials\": " << m.resumed_trials << ",\n";
  os << "  \"skipped_trials\": " << m.skipped_trials << ",\n";
  os << "  \"degraded\": " << (m.degraded ? "true" : "false") << ",\n";
  os << "  \"inputs\": [";
  for (std::size_t i = 0; i < m.inputs.size(); ++i) {
    const auto& f = m.inputs[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"path\": \""
       << json_escape(f.path) << "\", \"fnv1a\": \"" << json_escape(f.fnv1a)
       << "\", \"bytes\": " << f.bytes << "}";
  }
  os << (m.inputs.empty() ? "" : "\n  ") << "],\n";
  os << "  \"artifacts\": [";
  for (std::size_t i = 0; i < m.artifacts.size(); ++i) {
    const auto& a = m.artifacts[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"kind\": \""
       << json_escape(a.kind) << "\", \"path\": \"" << json_escape(a.path)
       << "\"}";
  }
  os << (m.artifacts.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

void write_manifest(const RunManifest& m, const std::string& path) {
  SDDD_SPAN(span, "introspect.manifest");
  span.arg("run_id", std::string_view(m.run_id));
  obs::atomic_write_file_or_throw(path, manifest_to_json(m));
  manifest_written_counter().add(1);
}

}  // namespace sddd::introspect
