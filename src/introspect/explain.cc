#include "introspect/explain.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>

#include "diagnosis/dictionary.h"
#include "diagnosis/resolution.h"
#include "obs/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sddd::introspect {

using diagnosis::Method;
using netlist::ArcId;

namespace {

obs::Counter& reports_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("introspect.reports");
  return c;
}

obs::Counter& candidates_counter() {
  static obs::Counter& c = obs::MetricsRegistry::instance().register_counter(
      "introspect.candidates");
  return c;
}

obs::Counter& cells_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().register_counter("introspect.cells");
  return c;
}

/// Whether a method's score grows when any phi_j grows.  True for the
/// Sim methods; Alg_rev's distance shrinks instead (and ranks low-first).
bool score_increases_with_phi(Method m) { return m != Method::kRev; }

/// 17 significant digits: exact double round trip, so identical doubles
/// print identical bytes (mirrors the checkpoint JSON writer).
std::string json_double(double d) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return std::string(buf);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string interval_json(const Interval& iv) {
  return "[" + json_double(iv.lo) + ", " + json_double(iv.hi) + "]";
}

/// Everything accumulated for one evaluated arc.  Detailed candidates keep
/// their per-pattern breakdowns; separability-only extras keep just the
/// score bounds.
struct ArcEval {
  std::size_t suspect_index = 0;
  double phi_sum = 0.0;
  std::vector<diagnosis::ScoreAccumulator> acc_lo;
  std::vector<diagnosis::ScoreAccumulator> acc_hi;
  std::vector<PatternBreakdown> patterns;  ///< empty unless detailed
};

}  // namespace

ExplanationReport explain_diagnosis(
    const timing::DynamicTimingSimulator& sim,
    const logicsim::BitSimulator& logic_sim, const netlist::Levelization& lev,
    const defect::DefectSizeModel& size_model,
    std::span<const logicsim::PatternPair> patterns,
    const diagnosis::BehaviorMatrix& B,
    const diagnosis::DiagnosisResult& diag, double clk,
    const ExplainConfig& config) {
  SDDD_SPAN(span, "introspect.explain");
  span.arg("suspects", static_cast<std::int64_t>(diag.suspects.size()))
      .arg("top_k", static_cast<std::int64_t>(config.top_k));

  const std::size_t n_patterns = patterns.size();
  const std::size_t n_outputs = B.output_count();
  const std::size_t n = sim.field().sample_count();

  ExplanationReport report;
  report.clk = clk;
  report.mc_samples = n;
  report.n_patterns = n_patterns;
  report.n_outputs = n_outputs;
  report.n_suspects = diag.suspects.size();
  report.primary = config.primary;

  if (diag.suspects.empty()) {
    reports_counter().add(1);
    return report;
  }

  // Best-first orders per method, shared by candidate ranks and the
  // separability verdicts.
  std::map<Method, std::vector<diagnosis::RankedSuspect>> ranked;
  for (const Method m : diag.methods) ranked.emplace(m, diag.ranked(m));
  const auto primary_it = ranked.find(config.primary);
  if (primary_it == ranked.end()) {
    throw std::invalid_argument(
        "explain_diagnosis: primary method not in the diagnosis");
  }
  const auto& primary_order = primary_it->second;

  // Arcs to evaluate: the top-K under the primary method (full breakdown)
  // plus the top-2 under every method (interval-only, for separability).
  const std::size_t top_k = std::min(config.top_k, primary_order.size());
  std::vector<ArcId> detailed;
  for (std::size_t i = 0; i < top_k; ++i) {
    detailed.push_back(primary_order[i].arc);
  }
  std::vector<ArcId> eval_arcs = detailed;
  for (const auto& [m, order] : ranked) {
    for (std::size_t i = 0; i < std::min<std::size_t>(2, order.size()); ++i) {
      eval_arcs.push_back(order[i].arc);
    }
  }
  std::sort(eval_arcs.begin(), eval_arcs.end());
  eval_arcs.erase(std::unique(eval_arcs.begin(), eval_arcs.end()),
                  eval_arcs.end());

  std::map<ArcId, ArcEval> evals;
  for (const ArcId arc : eval_arcs) {
    const auto it =
        std::find(diag.suspects.begin(), diag.suspects.end(), arc);
    ArcEval ev;
    ev.suspect_index =
        static_cast<std::size_t>(it - diag.suspects.begin());
    for (const Method m : diag.methods) {
      ev.acc_lo.emplace_back(m);
      ev.acc_hi.emplace_back(m);
    }
    evals.emplace(arc, std::move(ev));
  }
  const auto is_detailed = [&](ArcId arc) {
    return std::find(detailed.begin(), detailed.end(), arc) != detailed.end();
  };

  // One pass per pattern (the slice holds the only baseline arrival matrix
  // alive), serially over the handful of evaluated arcs - deterministic by
  // construction, no parallel region to order.
  std::vector<bool> b_col(n_outputs);
  for (std::size_t j = 0; j < n_patterns; ++j) {
    const diagnosis::PatternSlice slice(sim, logic_sim, lev, patterns[j],
                                        clk);
    for (std::size_t i = 0; i < n_outputs; ++i) b_col[i] = B.at(i, j);
    std::size_t observed_fails = 0;
    for (std::size_t i = 0; i < n_outputs; ++i) {
      observed_fails += b_col[i] ? 1U : 0U;
    }
    const auto& m_col = slice.m_column();
    for (const ArcId arc : eval_arcs) {
      ArcEval& ev = evals.at(arc);
      // Recompute the exact column phi was matched on, with the same call
      // the diagnoser used, so the recomputed phi is bit-identical to the
      // captured one.
      const std::vector<double> e_col = slice.e_column(arc, size_model);
      std::vector<double> matched_col;
      if (config.match_on_total_probability) {
        matched_col = e_col;
      } else {
        matched_col = slice.signature_column(arc, size_model);
      }
      const double phi_j = diagnosis::phi(matched_col, b_col);
      if (!diag.phi.empty() && diag.phi[ev.suspect_index][j] != phi_j) {
        throw NumericError(
            "explain_diagnosis: recomputed phi disagrees with the captured "
            "phi matrix (non-deterministic dictionary?)");
      }
      // Interval propagation: Wilson per cell, monotone map per factor,
      // product in output order (the same order phi() multiplies in).
      Interval phi_iv{1.0, 1.0};
      PatternBreakdown pb;
      const bool keep_cells = is_detailed(arc);
      if (keep_cells) {
        pb.pattern = j;
        pb.observed_fails = observed_fails;
        pb.cells.reserve(n_outputs);
      }
      for (std::size_t i = 0; i < n_outputs; ++i) {
        const double matched = matched_col[i];
        const Interval matched_iv = wilson_interval(matched, n);
        const Interval f_iv = factor_interval(matched_iv, b_col[i]);
        phi_iv.lo *= f_iv.lo;
        phi_iv.hi *= f_iv.hi;
        if (keep_cells) {
          CellBreakdown cell;
          cell.output = i;
          cell.observed_fail = b_col[i];
          cell.m = m_col[i];
          cell.e = e_col[i];
          cell.s = std::max(e_col[i] - m_col[i], 0.0);
          cell.matched = matched;
          cell.matched_ci = matched_iv;
          cell.factor = b_col[i] ? matched : 1.0 - matched;
          cell.agrees = cell.factor >= 0.5;
          pb.cells.push_back(cell);
        }
      }
      ev.phi_sum += phi_j;
      for (auto& a : ev.acc_lo) a.add_phi(phi_iv.lo);
      for (auto& a : ev.acc_hi) a.add_phi(phi_iv.hi);
      if (keep_cells) {
        pb.phi = phi_j;
        pb.phi_ci = phi_iv;
        ev.patterns.push_back(std::move(pb));
        cells_counter().add(n_outputs);
      }
    }
  }

  // Score intervals.  Each method score is monotone in every phi_j, so the
  // two extreme accumulators bound it: increasing methods map [phi_lo,
  // phi_hi] to [score(lo), score(hi)], Alg_rev reverses the endpoints.
  const auto score_ci = [&](const ArcEval& ev, std::size_t mi) {
    const double a = ev.acc_lo[mi].finish(n_patterns);
    const double b = ev.acc_hi[mi].finish(n_patterns);
    return score_increases_with_phi(diag.methods[mi]) ? Interval{a, b}
                                                      : Interval{b, a};
  };
  const auto rank_under = [&](Method m, ArcId arc) {
    const auto& order = ranked.at(m);
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i].arc == arc) return static_cast<int>(i);
    }
    return -1;
  };

  // Separability: the rank-1 interval must clear the rank-2 interval in
  // the method's ranking direction.  With a single suspect there is
  // nothing to confuse the candidate with.
  for (std::size_t mi = 0; mi < diag.methods.size(); ++mi) {
    const Method m = diag.methods[mi];
    const auto& order = ranked.at(m);
    SeparabilityVerdict v;
    v.method = m;
    if (order.size() < 2) {
      v.separable_at_95 = true;
    } else {
      const Interval top1 = score_ci(evals.at(order[0].arc), mi);
      const Interval top2 = score_ci(evals.at(order[1].arc), mi);
      v.separable_at_95 = score_increases_with_phi(m)
                              ? top1.lo > top2.hi
                              : top1.hi < top2.lo;
    }
    report.separability.push_back(v);
  }

  // Near-tie flag under the primary method.
  {
    const auto pm_it =
        std::find(diag.methods.begin(), diag.methods.end(), config.primary);
    const auto pmi =
        static_cast<std::size_t>(pm_it - diag.methods.begin());
    if (primary_order.size() >= 2) {
      const auto key_of = [&](ArcId arc) {
        return diag.keys[pmi][evals.at(arc).suspect_index];
      };
      report.top_margin = std::abs(key_of(primary_order[0].arc) -
                                   key_of(primary_order[1].arc));
      report.near_tie =
          score_ci(evals.at(primary_order[0].arc), pmi)
              .overlaps(score_ci(evals.at(primary_order[1].arc), pmi));
    }
  }

  // Logic-domain equivalence classes over the whole suspect set: the hard
  // ambiguity floor no error function can rank through.
  const auto classes = diagnosis::logic_equivalence_classes(
      logic_sim, lev, patterns, diag.suspects);

  for (std::size_t i = 0; i < top_k; ++i) {
    const ArcId arc = primary_order[i].arc;
    ArcEval& ev = evals.at(arc);
    CandidateExplanation cand;
    cand.arc = arc;
    cand.rank = static_cast<int>(i);
    cand.phi_sum = ev.phi_sum;
    for (std::size_t mi = 0; mi < diag.methods.size(); ++mi) {
      MethodScore ms;
      ms.method = diag.methods[mi];
      ms.score = diag.scores[mi][ev.suspect_index];
      ms.ranking_key = diag.keys[mi][ev.suspect_index];
      ms.ci = score_ci(ev, mi);
      ms.rank = rank_under(diag.methods[mi], arc);
      cand.methods.push_back(ms);
    }
    cand.patterns = std::move(ev.patterns);
    cand.class_index = classes.class_of[ev.suspect_index];
    cand.class_members = classes.classes[cand.class_index];
    report.candidates.push_back(std::move(cand));
  }

  reports_counter().add(1);
  candidates_counter().add(report.candidates.size());
  return report;
}

std::string to_json(const ExplanationReport& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"sddd-explain-v1\",\n";
  os << "  \"circuit\": \"" << json_escape(r.circuit) << "\",\n";
  os << "  \"run_id\": \"" << json_escape(r.run_id) << "\",\n";
  os << "  \"seed\": " << r.seed << ",\n";
  os << "  \"trial\": " << r.trial << ",\n";
  os << "  \"clk\": " << json_double(r.clk) << ",\n";
  os << "  \"mc_samples\": " << r.mc_samples << ",\n";
  os << "  \"n_patterns\": " << r.n_patterns << ",\n";
  os << "  \"n_outputs\": " << r.n_outputs << ",\n";
  os << "  \"n_suspects\": " << r.n_suspects << ",\n";
  os << "  \"injected_arc\": "
     << (r.injected_arc == netlist::kInvalidArc
             ? std::string("-1")
             : std::to_string(r.injected_arc))
     << ",\n";
  os << "  \"injected_size\": " << json_double(r.injected_size) << ",\n";
  os << "  \"primary_method\": \"" << diagnosis::method_name(r.primary)
     << "\",\n";
  os << "  \"top_margin\": " << json_double(r.top_margin) << ",\n";
  os << "  \"near_tie\": " << (r.near_tie ? "true" : "false") << ",\n";
  os << "  \"rank_separable_at_95\": {";
  for (std::size_t i = 0; i < r.separability.size(); ++i) {
    const auto& v = r.separability[i];
    os << (i == 0 ? "" : ", ") << "\"" << diagnosis::method_name(v.method)
       << "\": " << (v.separable_at_95 ? "true" : "false");
  }
  os << "},\n";
  os << "  \"candidates\": [";
  for (std::size_t c = 0; c < r.candidates.size(); ++c) {
    const auto& cand = r.candidates[c];
    os << (c == 0 ? "\n" : ",\n");
    os << "    {\"arc\": " << cand.arc << ", \"rank\": " << cand.rank
       << ", \"is_injected\": "
       << (cand.arc == r.injected_arc ? "true" : "false")
       << ", \"phi_sum\": " << json_double(cand.phi_sum) << ",\n";
    os << "     \"class_index\": " << cand.class_index
       << ", \"class_size\": " << cand.class_members.size()
       << ", \"class_members\": [";
    for (std::size_t i = 0; i < cand.class_members.size(); ++i) {
      os << (i == 0 ? "" : ", ") << cand.class_members[i];
    }
    os << "],\n";
    os << "     \"methods\": [";
    for (std::size_t i = 0; i < cand.methods.size(); ++i) {
      const auto& ms = cand.methods[i];
      os << (i == 0 ? "\n" : ",\n") << "       {\"method\": \""
         << diagnosis::method_name(ms.method) << "\", \"rank\": " << ms.rank
         << ", \"score\": " << json_double(ms.score)
         << ", \"ranking_key\": " << json_double(ms.ranking_key)
         << ", \"ci\": " << interval_json(ms.ci) << "}";
    }
    os << "\n     ],\n";
    os << "     \"patterns\": [";
    for (std::size_t j = 0; j < cand.patterns.size(); ++j) {
      const auto& pb = cand.patterns[j];
      os << (j == 0 ? "\n" : ",\n") << "       {\"pattern\": " << pb.pattern
         << ", \"observed_fails\": " << pb.observed_fails
         << ", \"phi\": " << json_double(pb.phi)
         << ", \"ci\": " << interval_json(pb.phi_ci) << ", \"cells\": [";
      for (std::size_t i = 0; i < pb.cells.size(); ++i) {
        const auto& cell = pb.cells[i];
        os << (i == 0 ? "\n" : ",\n") << "         {\"output\": "
           << cell.output << ", \"b\": " << (cell.observed_fail ? 1 : 0)
           << ", \"m\": " << json_double(cell.m)
           << ", \"e\": " << json_double(cell.e)
           << ", \"s\": " << json_double(cell.s)
           << ", \"matched\": " << json_double(cell.matched)
           << ", \"matched_ci\": " << interval_json(cell.matched_ci)
           << ", \"factor\": " << json_double(cell.factor)
           << ", \"agrees\": " << (cell.agrees ? "true" : "false") << "}";
      }
      os << "\n       ]}";
    }
    os << "\n     ]}";
  }
  os << "\n  ]\n";
  os << "}\n";
  return os.str();
}

std::string to_markdown(const ExplanationReport& r) {
  std::ostringstream os;
  char buf[256];
  os << "# Diagnosis explanation - " << r.circuit << ", trial " << r.trial
     << "\n\n";
  os << "- run id: `" << r.run_id << "` (seed " << r.seed << ")\n";
  std::snprintf(buf, sizeof buf,
                "- clk %.4f, %zu Monte-Carlo samples behind every "
                "dictionary entry\n",
                r.clk, r.mc_samples);
  os << buf;
  os << "- " << r.n_patterns << " patterns x " << r.n_outputs
     << " outputs, " << r.n_suspects << " suspects\n";
  if (r.injected_arc != netlist::kInvalidArc) {
    std::snprintf(buf, sizeof buf,
                  "- injected defect: arc %u, size %.4f (ground truth)\n",
                  r.injected_arc, r.injected_size);
    os << buf;
  }
  os << "\n## Confidence\n\n";
  os << "| method | rank-1 separable from rank-2 at 95%? |\n";
  os << "|---|---|\n";
  for (const auto& v : r.separability) {
    os << "| " << diagnosis::method_name(v.method) << " | "
       << (v.separable_at_95 ? "yes" : "no") << " |\n";
  }
  std::snprintf(buf, sizeof buf,
                "\nrank-1 vs rank-2 margin under %.*s: %.6g (%s)\n",
                static_cast<int>(diagnosis::method_name(r.primary).size()),
                diagnosis::method_name(r.primary).data(), r.top_margin,
                r.near_tie ? "NEAR TIE: score intervals overlap"
                           : "intervals do not overlap");
  os << buf;

  for (const auto& cand : r.candidates) {
    os << "\n## Candidate " << cand.rank + 1 << ": arc " << cand.arc;
    if (cand.arc == r.injected_arc) os << " (the injected defect)";
    os << "\n\n";
    if (cand.class_members.size() > 1) {
      os << "Logic equivalence class of " << cand.class_members.size()
         << " arcs (";
      for (std::size_t i = 0; i < cand.class_members.size(); ++i) {
        os << (i == 0 ? "" : ", ") << cand.class_members[i];
      }
      os << "): no 0/1 observation of this pattern set can rank these "
            "apart; timing signatures are the only separator.\n\n";
    }
    os << "| method | rank | score | 95% CI |\n|---|---|---|---|\n";
    for (const auto& ms : cand.methods) {
      std::snprintf(buf, sizeof buf, "| %.*s | %d | %.6g | [%.6g, %.6g] |\n",
                    static_cast<int>(diagnosis::method_name(ms.method).size()),
                    diagnosis::method_name(ms.method).data(), ms.rank,
                    ms.score, ms.ci.lo, ms.ci.hi);
      os << buf;
    }
    std::snprintf(buf, sizeof buf,
                  "\nphi contributions (sum %.6g over %zu patterns):\n\n",
                  cand.phi_sum, r.n_patterns);
    os << buf;
    os << "| pattern | phi | 95% CI | fails | disagreeing cells |\n";
    os << "|---|---|---|---|---|\n";
    for (const auto& pb : cand.patterns) {
      std::size_t disagree = 0;
      for (const auto& cell : pb.cells) disagree += cell.agrees ? 0U : 1U;
      std::snprintf(buf, sizeof buf,
                    "| v%zu | %.6g | [%.6g, %.6g] | %zu | %zu |\n",
                    pb.pattern, pb.phi, pb.phi_ci.lo, pb.phi_ci.hi,
                    pb.observed_fails, disagree);
      os << buf;
    }
    // Per-cell detail only where the dictionary and the chip disagree -
    // the cells that cost this candidate score.
    bool any = false;
    for (const auto& pb : cand.patterns) {
      for (const auto& cell : pb.cells) {
        if (cell.agrees) continue;
        if (!any) {
          os << "\ndisagreements (dictionary vs observed):\n\n"
             << "| pattern | output | observed | M | E | S | matched "
                "(95% CI) |\n|---|---|---|---|---|---|---|\n";
          any = true;
        }
        std::snprintf(buf, sizeof buf,
                      "| v%zu | %zu | %s | %.3f | %.3f | %.3f | %.3f "
                      "[%.3f, %.3f] |\n",
                      pb.pattern, cell.output,
                      cell.observed_fail ? "FAIL" : "pass", cell.m, cell.e,
                      cell.s, cell.matched, cell.matched_ci.lo,
                      cell.matched_ci.hi);
        os << buf;
      }
    }
  }
  return os.str();
}

}  // namespace sddd::introspect
