// confidence.h - Monte-Carlo confidence intervals for sampled
// probabilities (the introspection layer's statistical core).
//
// Every M_crt / E_crt / S_crt entry of the fault dictionary is a binomial
// proportion p-hat estimated from n Monte-Carlo samples, so every phi and
// every diagnosis score inherits sampling noise.  This header quantifies
// it:
//
//   binomial_se        Wald standard error sqrt(p(1-p)/n)
//   wilson_interval    Wilson score interval - well-behaved at p near 0/1
//                      where the Wald interval degenerates to width zero
//   wilson_worst_halfwidth   the n -> precision curve at the worst case
//                      p-hat = 1/2:  z / (2 sqrt(n + z^2))
//   samples_for_halfwidth    its inverse: the smallest n whose worst-case
//                      halfwidth is <= h:  ceil((z / 2h)^2 - z^2)
//
// Header-only and dependency-free on purpose: the analysis layer (DICT006)
// consumes it without linking sddd_introspect, which would cycle through
// sddd_diagnosis.  Score-interval propagation (which needs the diagnosis
// method definitions) lives in explain.h instead.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace sddd::introspect {

/// z for a two-sided 95% interval: Phi^-1(0.975).
inline constexpr double kZ95 = 1.959963984540054;

/// A closed interval [lo, hi]; for probabilities always within [0, 1].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  bool contains(double x) const { return x >= lo && x <= hi; }
  bool overlaps(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }
};

/// Wald standard error sqrt(p(1-p)/n); 0 when n == 0 (no information, but
/// callers use wilson_interval for the honest [0, 1] answer there).
inline double binomial_se(double p_hat, std::size_t n) {
  if (n == 0) return 0.0;
  const double p = std::clamp(p_hat, 0.0, 1.0);
  return std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

/// Wilson score interval for a binomial proportion.  n == 0 returns the
/// vacuous [0, 1]; p-hat = 0 or 1 still yields a non-degenerate interval
/// (unlike Wald), which is exactly the regime dictionary entries live in.
inline Interval wilson_interval(double p_hat, std::size_t n,
                                double z = kZ95) {
  if (n == 0) return Interval{0.0, 1.0};
  const double p = std::clamp(p_hat, 0.0, 1.0);
  const double nn = static_cast<double>(n);
  const double z2n = z * z / nn;
  const double denom = 1.0 + z2n;
  const double center = (p + z2n / 2.0) / denom;
  const double hw = (z / denom) *
                    std::sqrt(p * (1.0 - p) / nn + z2n / (4.0 * nn));
  // At p-hat = 0 (or 1) the exact lower (upper) endpoint is p-hat itself,
  // but center -/+ hw computes it as a difference of equal-magnitude terms
  // and can round to the wrong side; the interval must contain p-hat.
  return Interval{std::clamp(std::min(center - hw, p), 0.0, 1.0),
                  std::clamp(std::max(center + hw, p), 0.0, 1.0)};
}

/// Worst-case (p-hat = 1/2) halfwidth of the Wilson interval at population
/// n; the single number that says how much resolution n samples can buy.
inline double wilson_worst_halfwidth(std::size_t n, double z = kZ95) {
  if (n == 0) return 0.5;
  return z / (2.0 * std::sqrt(static_cast<double>(n) + z * z));
}

/// Smallest n whose worst-case Wilson halfwidth is <= h (inverse of the
/// above, rounded up).
inline std::size_t samples_for_halfwidth(double h, double z = kZ95) {
  if (h <= 0.0) return 0;  // unreachable precision; caller validates
  if (h >= 0.5) return 1;
  const double zh = z / (2.0 * h);
  return static_cast<std::size_t>(std::ceil(zh * zh - z * z));
}

/// Interval of one phi factor f = b s + (1 - b)(1 - s) given the interval
/// of the matched probability s and the observed fail bit b.  f is
/// monotone increasing in s when b = 1 and decreasing when b = 0, so the
/// bound propagation is exact.
inline Interval factor_interval(const Interval& s, bool observed_fail) {
  return observed_fail ? s : Interval{1.0 - s.hi, 1.0 - s.lo};
}

}  // namespace sddd::introspect
