// netlist.h - Structural gate-level circuit (Definition D.1's (V, E, I, O)).
//
// Representation decisions:
//   - Every signal has exactly one driver gate; primary inputs are pseudo-
//     gates of type kInput.  A gate id therefore doubles as a net id.
//   - Primary outputs are references to driver gates (bench-style named
//     outputs).  A gate may drive several POs and internal fanouts.
//   - The timing arcs E of Definition D.1 are the (gate, fanin-pin) pairs:
//     arc a = (g, i) is the pin-to-pin edge from g's i-th fanin net into
//     g's output.  Interconnect delay is lumped into the receiving pin arc
//     (Section H-1 pre-characterizes interconnect once RCs are extracted;
//     the lumping preserves every path-delay sum).  Arcs are densely
//     numbered so per-arc data (delays, defect sites) are plain vectors.
//
// The class is a plain container: analyses (levelization, simulation,
// timing) live in their own modules and treat the netlist as immutable.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/cell.h"

namespace sddd::netlist {

using GateId = std::uint32_t;
using ArcId = std::uint32_t;

inline constexpr GateId kInvalidGate = std::numeric_limits<GateId>::max();
inline constexpr ArcId kInvalidArc = std::numeric_limits<ArcId>::max();

/// One vertex of the circuit DAG.
struct Gate {
  CellType type = CellType::kBuf;
  std::string name;
  std::vector<GateId> fanins;   ///< driver gate of each input pin, in pin order
  std::vector<GateId> fanouts;  ///< gates with this gate among their fanins
};

/// A timing arc: input pin `pin` of gate `gate`.
struct Arc {
  GateId gate = kInvalidGate;
  std::uint32_t pin = 0;
};

/// Structural netlist.  Build with add_* calls, then freeze() to compute
/// fanouts and arc numbering.  All queries require a frozen netlist.
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Construction ---

  /// Adds a primary input; returns its gate id.
  GateId add_input(std::string name);

  /// Adds a gate of the given combinational type (or kDff/kConst*).
  /// Fanins may be placeholder ids from declare() that are defined later.
  GateId add_gate(CellType type, std::string name, std::vector<GateId> fanins);

  /// Declares a signal name without a definition yet; returns its gate id.
  /// Used by parsers for forward references (e.g. DFF feedback in .bench
  /// files).  Every declared gate must be completed with define() before
  /// freeze().
  GateId declare(std::string name);

  /// Completes a previously declared gate.
  void define(GateId id, CellType type, std::vector<GateId> fanins);

  /// Marks an existing gate's output as a primary output.
  void add_output(GateId driver);

  /// Computes fanout lists and arc numbering; validates fanin arities and
  /// gate-id ranges.  Must be called once after construction; mutating
  /// calls afterwards throw.
  void freeze();

  bool frozen() const { return frozen_; }

  // --- Topology queries (frozen only for arcs/fanouts) ---

  std::size_t gate_count() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_[id]; }
  const std::vector<Gate>& gates() const { return gates_; }

  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }

  /// Index of `id` in outputs(), or -1 when the gate drives no PO.
  int output_index(GateId id) const;

  /// Gate lookup by name; kInvalidGate when absent.
  GateId find(std::string_view name) const;

  // --- Arc numbering ---

  std::size_t arc_count() const { return arcs_.size(); }
  const Arc& arc(ArcId id) const { return arcs_[id]; }

  /// Arc id of (gate, pin).  Valid only after freeze().
  ArcId arc_of(GateId gate, std::uint32_t pin) const {
    assert(frozen_ && "arc numbering exists only after freeze()");
    return arc_base_[gate] + pin;
  }

  /// First arc id of `gate`; arcs of a gate are contiguous.  Valid only
  /// after freeze().
  ArcId arc_base(GateId gate) const {
    assert(frozen_ && "arc numbering exists only after freeze()");
    return arc_base_[gate];
  }

  /// Number of DFFs still present (0 after full-scan transform).
  std::size_t dff_count() const;

  /// Human-readable one-line summary ("name: 14 PI, 14 PO, 529 gates, ...").
  std::string summary() const;

 private:
  void require_frozen(bool expect) const;

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::unordered_map<std::string, GateId> by_name_;
  std::unordered_map<GateId, int> output_index_;
  std::vector<Arc> arcs_;
  std::vector<ArcId> arc_base_;
  std::vector<GateId> undefined_;  ///< declared but not yet defined
  bool frozen_ = false;
};

}  // namespace sddd::netlist
