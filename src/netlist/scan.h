// scan.h - Full-scan transformation of sequential netlists.
//
// The ISCAS-89 circuits used in the paper's Table I are sequential.  Delay
// test and diagnosis flows (including the paper's) treat them as full-scan
// designs: every flip-flop is directly controllable and observable through
// the scan chain, so the timing-relevant circuit is the combinational core
// where
//   - each DFF output becomes a pseudo primary input, and
//   - each DFF data input becomes a pseudo primary output.
// Test patterns are then two-vector pairs applied to PIs+pseudo-PIs and
// captured at POs+pseudo-POs (launch-on-capture/launch-on-shift details are
// below the abstraction level of the paper and of this library).
#pragma once

#include "netlist/netlist.h"

namespace sddd::netlist {

/// Returns the full-scan combinational core of `nl`: DFFs replaced by
/// pseudo-PI / pseudo-PO pairs.  Gate names and relative order are
/// preserved; the result is frozen and contains no DFFs.  A combinational
/// netlist is returned unchanged (copied).
Netlist full_scan_transform(const Netlist& nl);

}  // namespace sddd::netlist
