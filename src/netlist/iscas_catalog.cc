#include "netlist/iscas_catalog.h"

#include <algorithm>

namespace sddd::netlist {

namespace {

// Published ISCAS-89 profiles (PI, PO, FF, combinational gates, depth) and
// the K triples the paper reports per circuit in Table I.
constexpr std::array<IscasProfile, 8> kTable1 = {{
    {"s1196", 14, 14, 18, 529, 24, {1, 3, 7}},
    {"s1238", 14, 14, 18, 508, 22, {1, 2, 7}},
    {"s1423", 17, 5, 74, 657, 59, {1, 2, 9}},
    {"s1488", 8, 19, 6, 653, 17, {1, 3, 5}},
    {"s5378", 35, 49, 179, 2779, 25, {1, 2, 7}},
    {"s9234", 36, 39, 211, 5597, 58, {2, 5, 11}},
    {"s13207", 62, 152, 638, 7951, 59, {1, 5, 13}},
    {"s15850", 77, 150, 534, 9772, 82, {1, 2, 9}},
}};

}  // namespace

std::span<const IscasProfile> table1_circuits() { return kTable1; }

const IscasProfile* find_profile(std::string_view name) {
  const auto it = std::find_if(kTable1.begin(), kTable1.end(),
                               [&](const IscasProfile& p) { return p.name == name; });
  return it == kTable1.end() ? nullptr : &*it;
}

Netlist make_standin(const IscasProfile& profile, double scale,
                     std::uint64_t seed) {
  SynthSpec spec;
  spec.name = std::string(profile.name);
  spec.n_inputs = profile.n_pi + profile.n_ff;
  spec.n_outputs = profile.n_po + profile.n_ff;
  spec.n_gates = std::max<std::uint32_t>(
      static_cast<std::uint32_t>(static_cast<double>(profile.n_gates) * scale),
      spec.n_outputs);
  spec.depth = std::min<std::uint32_t>(profile.depth, spec.n_gates);
  spec.seed = seed;
  return synthesize(spec);
}

std::string_view c17_bench_text() {
  return R"(# c17 - ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
}

std::string_view s27_bench_text() {
  return R"(# s27 - ISCAS-89
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";
}

}  // namespace sddd::netlist
