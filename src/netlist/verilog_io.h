// verilog_io.h - Reader/writer for a structural Verilog subset.
//
// Many benchmark distributions (including ISCAS-85/89 conversions) ship as
// gate-level structural Verilog rather than `.bench`.  This module accepts
// the common subset those files use:
//
//     module c17 (N1, N2, N3, N6, N7, N22, N23);
//       input N1, N2, N3, N6, N7;
//       output N22, N23;
//       wire N10, N11, N16, N19;
//       nand g1 (N10, N1, N3);      // first terminal = output
//       nand (N11, N3, N6);         // instance name optional
//       dff  q1 (Q, D);             // flip-flops as a primitive
//     endmodule
//
// Supported: one module per file, scalar nets, primitive gates (and, or,
// nand, nor, xor, xnor, not, buf, dff), `//` and `/* */` comments,
// multi-declaration statements, forward references.  Unsupported
// constructs fail with a line-numbered error rather than misparse.
#pragma once

#include <filesystem>
#include <istream>
#include <ostream>
#include <string_view>

#include "netlist/netlist.h"

namespace sddd::netlist {

/// Parses the structural Verilog subset.  The returned netlist is frozen;
/// its name is the module name.  Malformed input throws sddd::ParseError
/// (a std::runtime_error) carrying `source` - the file path when parsing a
/// file, "verilog" by default - and the 1-based line.
Netlist parse_verilog(std::istream& in, std::string source = "");

/// String convenience.
Netlist parse_verilog_string(std::string_view text);

/// File convenience.
Netlist parse_verilog_file(const std::filesystem::path& path);

/// Writes a frozen netlist as structural Verilog (the same subset).
void write_verilog(const Netlist& nl, std::ostream& out);

/// String convenience for write_verilog.
std::string to_verilog_string(const Netlist& nl);

}  // namespace sddd::netlist
