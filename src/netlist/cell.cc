#include "netlist/cell.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace sddd::netlist {

std::string_view cell_type_name(CellType type) {
  switch (type) {
    case CellType::kInput:
      return "input";
    case CellType::kBuf:
      return "buf";
    case CellType::kNot:
      return "not";
    case CellType::kAnd:
      return "and";
    case CellType::kNand:
      return "nand";
    case CellType::kOr:
      return "or";
    case CellType::kNor:
      return "nor";
    case CellType::kXor:
      return "xor";
    case CellType::kXnor:
      return "xnor";
    case CellType::kDff:
      return "dff";
    case CellType::kConst0:
      return "const0";
    case CellType::kConst1:
      return "const1";
  }
  return "?";
}

std::optional<CellType> parse_cell_type(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "buf" || lower == "buff") return CellType::kBuf;
  if (lower == "not" || lower == "inv") return CellType::kNot;
  if (lower == "and") return CellType::kAnd;
  if (lower == "nand") return CellType::kNand;
  if (lower == "or") return CellType::kOr;
  if (lower == "nor") return CellType::kNor;
  if (lower == "xor") return CellType::kXor;
  if (lower == "xnor") return CellType::kXnor;
  if (lower == "dff") return CellType::kDff;
  if (lower == "const0" || lower == "gnd") return CellType::kConst0;
  if (lower == "const1" || lower == "vdd") return CellType::kConst1;
  return std::nullopt;
}

bool has_controlling_value(CellType type) {
  switch (type) {
    case CellType::kAnd:
    case CellType::kNand:
    case CellType::kOr:
    case CellType::kNor:
      return true;
    default:
      return false;
  }
}

bool controlling_value(CellType type) {
  // AND/NAND are controlled by 0; OR/NOR by 1.
  return type == CellType::kOr || type == CellType::kNor;
}

bool is_inverting(CellType type) {
  switch (type) {
    case CellType::kNot:
    case CellType::kNand:
    case CellType::kNor:
    case CellType::kXnor:
      return true;
    default:
      return false;
  }
}

bool is_combinational(CellType type) {
  switch (type) {
    case CellType::kInput:
    case CellType::kDff:
    case CellType::kConst0:
    case CellType::kConst1:
      return false;
    default:
      return true;
  }
}

int min_fanin(CellType type) {
  switch (type) {
    case CellType::kInput:
    case CellType::kConst0:
    case CellType::kConst1:
      return 0;
    case CellType::kBuf:
    case CellType::kNot:
    case CellType::kDff:
      return 1;
    default:
      return 2;
  }
}

}  // namespace sddd::netlist
