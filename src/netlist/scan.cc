#include "netlist/scan.h"

#include <stdexcept>

namespace sddd::netlist {

Netlist full_scan_transform(const Netlist& nl) {
  if (!nl.frozen()) {
    throw std::logic_error("full_scan_transform: netlist must be frozen");
  }
  Netlist out(nl.name());
  // Gate ids are preserved 1:1, so fanin lists can be copied directly.
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const Gate& gate = nl.gate(g);
    switch (gate.type) {
      case CellType::kInput:
        out.add_input(gate.name);
        break;
      case CellType::kDff:
        // The flop's Q pin is a controllable pseudo-input of the core.
        out.add_input(gate.name);
        break;
      default:
        out.add_gate(gate.type, gate.name, gate.fanins);
        break;
    }
  }
  for (const GateId o : nl.outputs()) out.add_output(o);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.type == CellType::kDff) {
      // The flop's D pin is an observable pseudo-output of the core.
      out.add_output(gate.fanins.at(0));
    }
  }
  out.freeze();
  return out;
}

}  // namespace sddd::netlist
