#include "netlist/synth.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"

namespace sddd::netlist {

namespace {

using stats::Rng;

struct ProtoGate {
  CellType type = CellType::kNand;
  std::uint32_t level = 0;
  std::vector<std::uint32_t> fanins;  // node ids (PIs are 0..n_inputs-1)
  std::uint32_t fanout = 0;
};

CellType pick_multi_input_type(const SynthSpec& spec, Rng& rng) {
  if (rng.bernoulli(spec.xor_fraction)) {
    return rng.bernoulli(0.5) ? CellType::kXor : CellType::kXnor;
  }
  const double u = rng.uniform01();
  if (u < 0.38) return CellType::kNand;
  if (u < 0.60) return CellType::kNor;
  if (u < 0.80) return CellType::kAnd;
  return CellType::kOr;
}

/// Distributes `total` gates over levels 1..depth with a mid-heavy profile
/// (wide middle, narrowing cone toward the outputs, like real benchmarks),
/// at least one gate per level, and at most `max_last` gates on the deepest
/// level.
std::vector<std::uint32_t> schedule_levels(std::uint32_t total,
                                           std::uint32_t depth,
                                           std::uint32_t max_last, Rng& rng) {
  std::vector<std::uint32_t> count(depth, 1);
  std::uint32_t placed = depth;
  if (placed > total) {
    throw std::invalid_argument("synthesize: n_gates < depth");
  }
  // Weight of level i (1-based): rises to a plateau then tapers.
  std::vector<double> weight(depth);
  for (std::uint32_t i = 0; i < depth; ++i) {
    const double x = (static_cast<double>(i) + 0.5) / static_cast<double>(depth);
    weight[i] = 0.25 + std::min({x * 4.0, 1.0, (1.0 - x) * 2.5});
    weight[i] = std::max(weight[i], 0.05);
  }
  double wsum = 0.0;
  for (const double w : weight) wsum += w;
  while (placed < total) {
    double u = rng.uniform01() * wsum;
    std::uint32_t pick = 0;
    for (; pick + 1 < depth; ++pick) {
      if (u < weight[pick]) break;
      u -= weight[pick];
    }
    if (pick == depth - 1 && count[pick] >= max_last) pick = depth / 2;
    ++count[pick];
    ++placed;
  }
  return count;
}

}  // namespace

Netlist synthesize(const SynthSpec& spec) {
  if (spec.n_inputs == 0 || spec.n_outputs == 0 || spec.n_gates == 0) {
    throw std::invalid_argument("synthesize: counts must be positive");
  }
  if (spec.depth == 0) throw std::invalid_argument("synthesize: depth >= 1");
  if (spec.n_outputs > spec.n_gates) {
    throw std::invalid_argument("synthesize: n_outputs > n_gates");
  }
  Rng rng(spec.seed, 0x5dddULL);

  const std::uint32_t n_pi = spec.n_inputs;
  const auto per_level =
      schedule_levels(spec.n_gates, spec.depth, spec.n_outputs, rng);

  std::vector<ProtoGate> nodes(n_pi + spec.n_gates);
  for (std::uint32_t i = 0; i < n_pi; ++i) {
    nodes[i].type = CellType::kInput;
    nodes[i].level = 0;
  }

  // Node ids per level, and the subset that still has no fanout (orphans).
  std::vector<std::vector<std::uint32_t>> level_nodes(spec.depth + 1);
  for (std::uint32_t i = 0; i < n_pi; ++i) level_nodes[0].push_back(i);

  // Pool of all node ids at level < L, for uniform "any lower level" picks.
  std::vector<std::uint32_t> lower_pool(level_nodes[0]);

  // Two nodes are "trivially related" when one is a unary gate (NOT/BUF)
  // of the other: feeding both into one gate creates constant or redundant
  // logic, which real benchmark circuits (and any synthesized netlist)
  // avoid and which would riddle the DAG with false paths.
  const auto trivially_related = [&](std::uint32_t a, std::uint32_t b) {
    const auto unary_source = [&](std::uint32_t x) -> std::uint32_t {
      if ((nodes[x].type == CellType::kNot || nodes[x].type == CellType::kBuf) &&
          !nodes[x].fanins.empty()) {
        return nodes[x].fanins[0];
      }
      return x;
    };
    return a == b || unary_source(a) == b || unary_source(b) == a ||
           unary_source(a) == unary_source(b);
  };

  const auto conflicts = [&](std::uint32_t cand,
                             const std::vector<std::uint32_t>& exclude) {
    for (const std::uint32_t e : exclude) {
      if (trivially_related(cand, e)) return true;
    }
    return false;
  };

  const auto pick_fanin = [&](std::uint32_t level,
                              const std::vector<std::uint32_t>& exclude) {
    // Prefer an orphan from the immediately lower level, then any orphan,
    // then anything from lower levels.  Rejection on duplicates and
    // trivially related nodes.
    for (int attempt = 0; attempt < 48; ++attempt) {
      std::uint32_t cand = 0;
      const double u = rng.uniform01();
      if (u < 0.55 && !level_nodes[level - 1].empty()) {
        const auto& pool = level_nodes[level - 1];
        cand = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
      } else {
        cand = lower_pool[rng.below(static_cast<std::uint32_t>(lower_pool.size()))];
      }
      // Bias toward unconsumed nodes to keep the DAG connected.
      if (nodes[cand].fanout > 0 && attempt < 8 && rng.bernoulli(0.6)) continue;
      if (!conflicts(cand, exclude)) return cand;
    }
    // Fall back to the first acceptable node in the lower pool, relaxing
    // the relatedness rule if nothing else is available.
    for (const std::uint32_t cand : lower_pool) {
      if (!conflicts(cand, exclude)) return cand;
    }
    for (const std::uint32_t cand : lower_pool) {
      if (std::find(exclude.begin(), exclude.end(), cand) == exclude.end()) {
        return cand;
      }
    }
    return exclude.empty() ? lower_pool.front() : exclude.front();
  };

  std::uint32_t next = n_pi;
  for (std::uint32_t lvl = 1; lvl <= spec.depth; ++lvl) {
    for (std::uint32_t k = 0; k < per_level[lvl - 1]; ++k) {
      ProtoGate& g = nodes[next];
      g.level = lvl;
      const bool unary = rng.bernoulli(spec.inverter_fraction);
      std::uint32_t arity = 1;
      if (unary) {
        g.type = rng.bernoulli(0.8) ? CellType::kNot : CellType::kBuf;
      } else {
        g.type = pick_multi_input_type(spec, rng);
        arity = rng.bernoulli(spec.fanin3_fraction) ? 3 : 2;
        arity = std::min<std::uint32_t>(
            arity, static_cast<std::uint32_t>(lower_pool.size()));
        arity = std::max<std::uint32_t>(arity, 2);
      }
      for (std::uint32_t pin = 0; pin < arity; ++pin) {
        const std::uint32_t f = pick_fanin(lvl, g.fanins);
        g.fanins.push_back(f);
        ++nodes[f].fanout;
      }
      level_nodes[lvl].push_back(next);
      ++next;
    }
    for (const std::uint32_t id : level_nodes[lvl]) lower_pool.push_back(id);
  }

  // --- Choose primary outputs: deepest orphans first, then deepest gates.
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t id = n_pi; id < nodes.size(); ++id) candidates.push_back(id);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     const bool oa = nodes[a].fanout == 0;
                     const bool ob = nodes[b].fanout == 0;
                     if (oa != ob) return oa;  // orphans first
                     return nodes[a].level > nodes[b].level;
                   });
  std::vector<std::uint32_t> outputs(candidates.begin(),
                                     candidates.begin() + spec.n_outputs);

  // --- Mop up remaining orphans: attach each as an extra fanin of a
  // multi-input gate at a strictly higher level, keeping everything on a
  // PI -> PO path.
  std::vector<bool> is_output(nodes.size(), false);
  for (const std::uint32_t o : outputs) is_output[o] = true;
  for (std::uint32_t id = 0; id < nodes.size(); ++id) {
    if (nodes[id].fanout > 0 || is_output[id]) continue;
    // Collect multi-input gates above this node's level.
    std::vector<std::uint32_t> targets;
    for (std::uint32_t t = n_pi; t < nodes.size(); ++t) {
      if (nodes[t].level > nodes[id].level && nodes[t].fanins.size() >= 2 &&
          !conflicts(id, nodes[t].fanins)) {
        targets.push_back(t);
      }
    }
    if (targets.empty()) {
      // Deepest-level orphan beyond the PO allotment cannot happen thanks to
      // the max_last cap in schedule_levels; a PI in a 1-level circuit can
      // land here - attach to any multi-input gate.
      for (std::uint32_t t = n_pi; t < nodes.size(); ++t) {
        if (nodes[t].fanins.size() >= 2 &&
            std::find(nodes[t].fanins.begin(), nodes[t].fanins.end(), id) ==
                nodes[t].fanins.end()) {
          targets.push_back(t);
        }
      }
    }
    if (targets.empty()) continue;  // degenerate spec; leave dangling
    const std::uint32_t t =
        targets[rng.below(static_cast<std::uint32_t>(targets.size()))];
    nodes[t].fanins.push_back(id);
    ++nodes[id].fanout;
  }

  // --- Emit. ---
  Netlist nl(spec.name);
  std::vector<GateId> ids(nodes.size(), kInvalidGate);
  for (std::uint32_t i = 0; i < n_pi; ++i) {
    ids[i] = nl.add_input("I" + std::to_string(i));
  }
  for (std::uint32_t id = n_pi; id < nodes.size(); ++id) {
    std::vector<GateId> fanins;
    fanins.reserve(nodes[id].fanins.size());
    for (const std::uint32_t f : nodes[id].fanins) fanins.push_back(ids[f]);
    ids[id] = nl.add_gate(nodes[id].type, "N" + std::to_string(id), std::move(fanins));
  }
  for (const std::uint32_t o : outputs) nl.add_output(ids[o]);
  nl.freeze();
  return nl;
}

}  // namespace sddd::netlist
