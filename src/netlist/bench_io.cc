#include "netlist/bench_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/error.h"

namespace sddd::netlist {

namespace {

/// All bench diagnostics are ParseErrors carrying (source, line): the
/// source is the file path when parsing a file, the netlist name
/// otherwise, so a failure inside a multi-circuit run still says which
/// input broke.
[[noreturn]] void fail(const std::string& source, std::size_t line_no,
                       const std::string& msg) {
  throw ParseError(source, line_no, msg);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '[' || c == ']' || c == '.' || c == '-' || c == '$' || c == '/';
}

/// Splits "NAND(G10, G11)" into keyword and argument names.
struct Call {
  std::string keyword;
  std::vector<std::string> args;
};

Call parse_call(std::string_view rhs, const std::string& source,
                std::size_t line_no) {
  Call call;
  const auto open = rhs.find('(');
  const auto close = rhs.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    fail(source, line_no, "expected KEYWORD(args)");
  }
  call.keyword = std::string(trim(rhs.substr(0, open)));
  const std::string_view args = rhs.substr(open + 1, close - open - 1);
  std::string current;
  for (const char c : args) {
    if (c == ',') {
      const auto name = trim(current);
      if (name.empty()) fail(source, line_no, "empty argument");
      call.args.emplace_back(name);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  const auto last = trim(current);
  if (!last.empty()) call.args.emplace_back(last);
  for (const auto& a : call.args) {
    for (const char c : a) {
      if (!is_name_char(c)) fail(source, line_no, "bad signal name: " + a);
    }
  }
  return call;
}

}  // namespace

Netlist parse_bench(std::istream& in, std::string name, std::string source) {
  if (source.empty()) source = name;
  Netlist nl(std::move(name));
  std::unordered_map<std::string, GateId> ids;
  std::vector<std::string> output_names;
  std::vector<std::size_t> output_lines;

  const auto get_or_declare = [&](const std::string& sig) {
    const auto it = ids.find(sig);
    if (it != ids.end()) return it->second;
    const GateId id = nl.declare(sig);
    ids.emplace(sig, id);
    return id;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string_view body = trim(line);
    if (body.empty()) continue;

    const auto eq = body.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      const Call call = parse_call(body, source, line_no);
      std::string kw = call.keyword;
      for (auto& c : kw) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      if (call.args.size() != 1) fail(source, line_no, "expected one argument");
      if (kw == "INPUT") {
        const GateId id = get_or_declare(call.args[0]);
        nl.define(id, CellType::kInput, {});
      } else if (kw == "OUTPUT") {
        output_names.push_back(call.args[0]);
        output_lines.push_back(line_no);
      } else {
        fail(source, line_no, "unknown directive: " + call.keyword);
      }
      continue;
    }

    // name = GATE(a, b, ...)
    const auto lhs = trim(body.substr(0, eq));
    if (lhs.empty()) fail(source, line_no, "missing signal name before '='");
    for (const char c : lhs) {
      if (!is_name_char(c)) {
        fail(source, line_no,
             std::string("bad signal name: ") + std::string(lhs));
      }
    }
    const Call call = parse_call(body.substr(eq + 1), source, line_no);
    const auto type = parse_cell_type(call.keyword);
    if (!type) fail(source, line_no, "unknown gate type: " + call.keyword);
    std::vector<GateId> fanins;
    fanins.reserve(call.args.size());
    for (const auto& a : call.args) fanins.push_back(get_or_declare(a));
    const GateId id = get_or_declare(std::string(lhs));
    try {
      nl.define(id, *type, std::move(fanins));
    } catch (const std::exception& e) {
      fail(source, line_no, e.what());
    }
  }

  for (std::size_t i = 0; i < output_names.size(); ++i) {
    const auto it = ids.find(output_names[i]);
    if (it == ids.end()) {
      fail(source, output_lines[i],
           "OUTPUT of undefined signal: " + output_names[i]);
    }
    nl.add_output(it->second);
  }

  try {
    nl.freeze();
  } catch (const std::exception& e) {
    // Graph-level failures (undriven nets, cycles) have no single line;
    // line 0 = whole-input diagnostic, still naming the source.
    throw ParseError(source, 0, e.what());
  }
  return nl;
}

Netlist parse_bench_string(std::string_view text, std::string name) {
  std::istringstream in{std::string(text)};
  return parse_bench(in, std::move(name));
}

Netlist parse_bench_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open bench file: " + path.string());
  }
  return parse_bench(in, path.stem().string(), path.string());
}

void write_bench(const Netlist& nl, std::ostream& out) {
  out << "# " << nl.name() << " - written by sddd\n";
  for (const GateId g : nl.inputs()) {
    out << "INPUT(" << nl.gate(g).name << ")\n";
  }
  for (const GateId g : nl.outputs()) {
    out << "OUTPUT(" << nl.gate(g).name << ")\n";
  }
  out << "\n";
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.type == CellType::kInput) continue;
    std::string kw(cell_type_name(gate.type));
    for (auto& c : kw) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    out << gate.name << " = " << kw << "(";
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      if (i != 0) out << ", ";
      out << nl.gate(gate.fanins[i]).name;
    }
    out << ")\n";
  }
}

std::string to_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(nl, os);
  return os.str();
}

}  // namespace sddd::netlist
