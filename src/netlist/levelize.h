// levelize.h - Topological ordering and level assignment of a netlist.
//
// Every downstream analysis (logic simulation, statistical timing, path
// enumeration) walks the circuit in topological order.  Sequential netlists
// are legal only insofar as every cycle passes through a DFF; the DFF's
// data-input dependency is cut for ordering purposes (the flop's output is
// treated as a level-0 source, the standard full-scan view).  A purely
// combinational cycle is a modeling error and throws.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace sddd::netlist {

/// Result of levelizing a frozen netlist.
class Levelization {
 public:
  /// Computes topological order and levels.  Throws std::invalid_argument
  /// on a combinational cycle.  The netlist must be frozen.
  explicit Levelization(const Netlist& nl);

  /// Gates in a valid evaluation order: all combinational fanins of a gate
  /// precede it.  kInput/kDff/kConst* gates come first.
  const std::vector<GateId>& topo_order() const { return order_; }

  /// Level of each gate: sources are level 0; a combinational gate is
  /// 1 + max(level of fanins).  (DFF data inputs do not constrain levels.)
  const std::vector<std::uint32_t>& levels() const { return level_; }

  std::uint32_t level(GateId g) const { return level_[g]; }

  /// Maximum level over all gates = combinational depth of the circuit.
  std::uint32_t depth() const { return depth_; }

 private:
  std::vector<GateId> order_;
  std::vector<std::uint32_t> level_;
  std::uint32_t depth_ = 0;
};

}  // namespace sddd::netlist
