// iscas_catalog.h - Profiles of the ISCAS-89 circuits used in the paper,
// plus tiny embedded reference netlists.
//
// Table I of the paper reports diagnosis accuracy on eight ISCAS-89
// benchmarks.  This catalog records their published structural profiles
// (PI / PO / FF / gate counts, logic depth) together with the K values the
// paper used per circuit, and provides a factory that synthesizes an
// ISCAS-class stand-in circuit matched to the profile (see synth.h for the
// substitution rationale).  If the real `.bench` files are available on
// disk, load them with parse_bench_file + full_scan_transform instead; the
// experiment harness accepts either source.
//
// Two genuinely tiny public-domain reference netlists (c17, s27) are
// embedded verbatim for parser and end-to-end tests.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "netlist/netlist.h"
#include "netlist/synth.h"

namespace sddd::netlist {

/// Published structural profile of one ISCAS-89 benchmark plus the K values
/// used for it in the paper's Table I.
struct IscasProfile {
  std::string_view name;
  std::uint32_t n_pi = 0;     ///< primary inputs
  std::uint32_t n_po = 0;     ///< primary outputs
  std::uint32_t n_ff = 0;     ///< D flip-flops
  std::uint32_t n_gates = 0;  ///< combinational gates
  std::uint32_t depth = 0;    ///< logic depth (levels)
  std::array<int, 3> table1_k{};  ///< the three K values of Table I rows
};

/// The eight circuits of Table I, in the paper's order.
std::span<const IscasProfile> table1_circuits();

/// Profile lookup by name; nullptr when unknown.
const IscasProfile* find_profile(std::string_view name);

/// Synthesizes the full-scan combinational stand-in for `profile`:
/// inputs = PI + FF, outputs = PO + FF, gates ~= n_gates * scale,
/// depth = profile depth (capped so depth <= gate count).  `scale` in
/// (0, 1] shrinks the circuit proportionally for quick runs.
Netlist make_standin(const IscasProfile& profile, double scale = 1.0,
                     std::uint64_t seed = 2003);

/// The ISCAS-85 c17 netlist (6 NAND gates), embedded verbatim.
std::string_view c17_bench_text();

/// The ISCAS-89 s27 netlist (10 gates, 3 DFFs), embedded verbatim.
std::string_view s27_bench_text();

}  // namespace sddd::netlist
