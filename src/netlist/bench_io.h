// bench_io.h - Reader/writer for the ISCAS-85/89 `.bench` netlist format.
//
// The paper evaluates on ISCAS-89 benchmark circuits (s1196 ... s15850).
// Those netlists are publicly distributed in the `.bench` format:
//
//     # comment
//     INPUT(G0)
//     OUTPUT(G17)
//     G10 = DFF(G14)
//     G17 = NAND(G10, G11)
//
// The parser accepts the common dialect: case-insensitive keywords, BUFF as
// alias of BUF, blank/comment lines, forward references, and multi-line
// whitespace.  The writer emits canonical form so round-tripping is exact
// up to formatting.
#pragma once

#include <filesystem>
#include <istream>
#include <ostream>
#include <string_view>

#include "netlist/netlist.h"

namespace sddd::netlist {

/// Parses `.bench` text.  Throws sddd::ParseError (a std::runtime_error)
/// carrying the source label and 1-based line on malformed input; `source`
/// defaults to `name` and should be the file path when parsing a file.
/// The returned netlist is frozen.
Netlist parse_bench(std::istream& in, std::string name = "bench",
                    std::string source = "");

/// Parses `.bench` from a string (convenience for tests and the embedded
/// ISCAS catalog).
Netlist parse_bench_string(std::string_view text, std::string name = "bench");

/// Parses a `.bench` file; the netlist name defaults to the file stem.
Netlist parse_bench_file(const std::filesystem::path& path);

/// Writes canonical `.bench` text for a frozen netlist.
void write_bench(const Netlist& nl, std::ostream& out);

/// Convenience string form of write_bench.
std::string to_bench_string(const Netlist& nl);

}  // namespace sddd::netlist
