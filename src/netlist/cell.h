// cell.h - Cell (gate) types of the structural netlist.
//
// The circuit model of Definition D.1 is a DAG whose vertices are cells and
// whose arcs carry pin-to-pin delay random variables.  This header defines
// the cell vocabulary; it matches the ISCAS-85/89 `.bench` format gate set
// so that public benchmark netlists parse without translation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sddd::netlist {

/// Gate/cell function.  kInput is a primary-input pseudo-cell; kDff is a
/// D-flip-flop which the full-scan transform (scan.h) converts into a
/// pseudo-input/pseudo-output pair before any timing analysis.
enum class CellType : std::uint8_t {
  kInput,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kDff,
  kConst0,
  kConst1,
};

/// Lower-case `.bench` keyword for the type ("and", "nand", ...).
std::string_view cell_type_name(CellType type);

/// Parses a `.bench` gate keyword (case-insensitive).  Returns nullopt for
/// unknown keywords.
std::optional<CellType> parse_cell_type(std::string_view name);

/// True for the two-state controlled gates (AND/NAND/OR/NOR) that have a
/// controlling input value; XOR/XNOR/NOT/BUF have none.
bool has_controlling_value(CellType type);

/// Controlling input value of a controlled gate (0 for AND/NAND, 1 for
/// OR/NOR).  Precondition: has_controlling_value(type).
bool controlling_value(CellType type);

/// True when the gate's output inverts relative to its (non-controlling)
/// inputs: NOT, NAND, NOR, XNOR.
bool is_inverting(CellType type);

/// True when the cell computes a logic function of its fanins (everything
/// except kInput/kDff/kConst*).
bool is_combinational(CellType type);

/// Fanin arity constraints: minimum number of inputs for a valid gate of
/// this type (e.g. 1 for NOT/BUF, 2 for AND...).  kInput/kConst* take 0,
/// kDff takes exactly 1.
int min_fanin(CellType type);

}  // namespace sddd::netlist
