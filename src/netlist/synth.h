// synth.h - Seeded synthetic benchmark-circuit generator.
//
// The paper's Table I evaluates on ISCAS-89 circuits.  Those netlists are
// public but cannot be redistributed inside this repository, so the
// experiment harness synthesizes *ISCAS-class* circuits: random
// combinational DAGs matched to each benchmark's published profile (PI/PO
// count, gate count, logic depth, typical gate mix).  Table I measures
// relative accuracy of diagnosis error functions, which depends on circuit
// scale, reconvergent fanout and path-length spread - all reproduced here by
// construction.  Real `.bench` files can be substituted at any time via
// bench_io.h; everything downstream is agnostic to the netlist's origin.
//
// Generation is fully deterministic given the spec's seed.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace sddd::netlist {

/// Profile of the synthetic circuit to generate.  All counts refer to the
/// combinational core (run full_scan_transform first when matching a
/// sequential benchmark: inputs = PI + FF, outputs = PO + FF).
struct SynthSpec {
  std::string name = "synth";
  std::uint32_t n_inputs = 8;
  std::uint32_t n_outputs = 8;
  std::uint32_t n_gates = 100;   ///< combinational gates (excl. PIs)
  std::uint32_t depth = 12;      ///< target logic depth (levels)
  double fanin3_fraction = 0.15; ///< fraction of 3-input gates
  double inverter_fraction = 0.15; ///< fraction of NOT/BUF gates
  double xor_fraction = 0.08;    ///< fraction of XOR/XNOR among 2-input gates
  std::uint64_t seed = 1;
};

/// Generates a frozen combinational netlist matching `spec`.
/// Guarantees:
///   - exactly spec.n_inputs PIs, spec.n_outputs POs, spec.n_gates gates;
///   - every gate lies on some PI -> PO path (no dangling logic);
///   - logic depth is close to spec.depth (within rounding of the level
///     schedule); at least 1;
///   - deterministic for a fixed spec.
Netlist synthesize(const SynthSpec& spec);

}  // namespace sddd::netlist
