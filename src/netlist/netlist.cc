#include "netlist/netlist.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sddd::netlist {

void Netlist::require_frozen(bool expect) const {
  if (frozen_ != expect) {
    throw std::logic_error(expect ? "Netlist: operation requires freeze()"
                                  : "Netlist: netlist is frozen");
  }
}

GateId Netlist::add_input(std::string name) {
  require_frozen(false);
  const auto id = static_cast<GateId>(gates_.size());
  if (!by_name_.emplace(name, id).second) {
    throw std::invalid_argument("Netlist: duplicate signal name: " + name);
  }
  gates_.push_back(Gate{CellType::kInput, std::move(name), {}, {}});
  inputs_.push_back(id);
  return id;
}

namespace {

void check_arity(CellType type, std::size_t fanin_count,
                 const std::string& name) {
  if (static_cast<int>(fanin_count) < min_fanin(type)) {
    throw std::invalid_argument("Netlist: too few fanins for gate " + name);
  }
  if ((type == CellType::kBuf || type == CellType::kNot ||
       type == CellType::kDff) &&
      fanin_count != 1) {
    throw std::invalid_argument("Netlist: unary gate with multiple fanins: " +
                                name);
  }
}

}  // namespace

GateId Netlist::add_gate(CellType type, std::string name,
                         std::vector<GateId> fanins) {
  require_frozen(false);
  if (type == CellType::kInput) {
    throw std::invalid_argument("Netlist: use add_input for primary inputs");
  }
  check_arity(type, fanins.size(), name);
  const auto id = static_cast<GateId>(gates_.size());
  if (!by_name_.emplace(name, id).second) {
    throw std::invalid_argument("Netlist: duplicate signal name: " + name);
  }
  gates_.push_back(Gate{type, std::move(name), std::move(fanins), {}});
  return id;
}

GateId Netlist::declare(std::string name) {
  require_frozen(false);
  const auto id = static_cast<GateId>(gates_.size());
  if (!by_name_.emplace(name, id).second) {
    throw std::invalid_argument("Netlist: duplicate signal name: " + name);
  }
  gates_.push_back(Gate{CellType::kBuf, std::move(name), {}, {}});
  undefined_.push_back(id);
  return id;
}

void Netlist::define(GateId id, CellType type, std::vector<GateId> fanins) {
  require_frozen(false);
  if (id >= gates_.size()) {
    throw std::invalid_argument("Netlist: define of unknown gate id");
  }
  const auto it = std::find(undefined_.begin(), undefined_.end(), id);
  if (it == undefined_.end()) {
    throw std::logic_error("Netlist: define of a gate that was not declared: " +
                           gates_[id].name);
  }
  undefined_.erase(it);
  if (type == CellType::kInput) {
    gates_[id].type = CellType::kInput;
    inputs_.push_back(id);
    return;
  }
  check_arity(type, fanins.size(), gates_[id].name);
  gates_[id].type = type;
  gates_[id].fanins = std::move(fanins);
}

void Netlist::add_output(GateId driver) {
  require_frozen(false);
  if (driver >= gates_.size()) {
    throw std::invalid_argument("Netlist: output driver out of range");
  }
  output_index_.emplace(driver, static_cast<int>(outputs_.size()));
  outputs_.push_back(driver);
}

void Netlist::freeze() {
  require_frozen(false);
  if (!undefined_.empty()) {
    throw std::logic_error("Netlist: freeze with undefined signal: " +
                           gates_[undefined_.front()].name);
  }
  for (const Gate& g : gates_) {
    for (const GateId f : g.fanins) {
      if (f >= gates_.size()) {
        throw std::logic_error("Netlist: fanin id out of range in gate " +
                               g.name);
      }
    }
  }
  arcs_.clear();
  arc_base_.assign(gates_.size(), kInvalidArc);
  for (GateId g = 0; g < gates_.size(); ++g) {
    arc_base_[g] = static_cast<ArcId>(arcs_.size());
    for (std::uint32_t pin = 0; pin < gates_[g].fanins.size(); ++pin) {
      arcs_.push_back(Arc{g, pin});
      gates_[gates_[g].fanins[pin]].fanouts.push_back(g);
    }
  }
  frozen_ = true;
}

int Netlist::output_index(GateId id) const {
  const auto it = output_index_.find(id);
  return it == output_index_.end() ? -1 : it->second;
}

GateId Netlist::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidGate : it->second;
}

std::size_t Netlist::dff_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) n += (g.type == CellType::kDff) ? 1U : 0U;
  return n;
}

std::string Netlist::summary() const {
  std::ostringstream os;
  os << name_ << ": " << inputs_.size() << " PI, " << outputs_.size()
     << " PO, " << gates_.size() - inputs_.size() << " gates, " << dff_count()
     << " DFF, " << arcs_.size() << " arcs";
  return os.str();
}

}  // namespace sddd::netlist
